"""Optimization pipelines mirroring the paper's comparison points (§V).

* ``O0``          — straight from the front end.
* ``O3-scalar``   — scalar cleanups only (simplify, GVN, LICM, DCE); the
  Fig. 16 "LLVM -O3 without vectorization" baseline.
* ``O3``          — scalar cleanups + the loop-versioning vectorizer
  (SLP restricted to hoistable checks); stands in for LLVM's -O3 with
  its loop + SLP vectorizers.
* ``supervec``    — scalar cleanups + SLP *without* versioning
  (SuperVectorization as published).
* ``supervec+v``  — scalar cleanups + SLP with the fine-grained
  versioning framework (the paper's system).

Each pipeline takes ``honor_restrict`` so the Fig. 16 restrict on/off
toggle is one flag.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.frontend import compile_c
from repro.ir import Module, verify_module
from repro.opt import run_dce, run_gvn, run_licm, run_simplify
from repro.analysis.alias import AliasAnalysis
from repro.rle import RLEStats, run_rle
from repro.vectorizer import SLPStats, VectorizeConfig, vectorize_function


@dataclass
class PipelineStats:
    slp: dict = field(default_factory=dict)  # fn name -> SLPStats
    rle: dict = field(default_factory=dict)  # fn name -> RLEStats
    licm_hoisted: int = 0
    gvn_deleted: int = 0


def _scalar_cleanup(module: Module, honor_restrict: bool, stats: PipelineStats) -> None:
    aa = AliasAnalysis(honor_restrict=honor_restrict)
    for fn in module.functions.values():
        run_simplify(fn)
        stats.gvn_deleted += run_gvn(fn, aa)
        stats.licm_hoisted += run_licm(fn, aa)
        run_dce(fn)


def optimize(
    module: Module,
    level: str = "supervec+v",
    honor_restrict: bool = True,
    vl: int = 4,
    rle: bool = False,
) -> PipelineStats:
    """Run a named pipeline in place; returns per-pass statistics."""
    stats = PipelineStats()
    if level == "O0":
        return stats
    _scalar_cleanup(module, honor_restrict, stats)
    if rle:
        for name, fn in module.functions.items():
            stats.rle[name] = run_rle(fn, honor_restrict=honor_restrict)
        # RLE unlocks more LICM/GVN downstream (the paper's Fig. 22 rows)
        _scalar_cleanup(module, honor_restrict, stats)
    mode = {
        "O3-scalar": None,
        "O3": "loop",
        "supervec": "none",
        "supervec+v": "fine",
    }.get(level, "unknown")
    if mode == "unknown":
        raise ValueError(f"unknown pipeline level {level!r}")
    if mode is not None:
        for name, fn in module.functions.items():
            cfg = VectorizeConfig(mode=mode, honor_restrict=honor_restrict, vl=vl)
            stats.slp[name] = vectorize_function(fn, cfg)
    _scalar_cleanup(module, honor_restrict, stats)
    verify_module(module)
    return stats


def compile_and_optimize(
    source: str,
    level: str = "supervec+v",
    honor_restrict: bool = True,
    vl: int = 4,
    rle: bool = False,
    name: str = "module",
) -> tuple[Module, PipelineStats]:
    module = compile_c(source, name)
    stats = optimize(module, level, honor_restrict, vl, rle)
    return module, stats


PIPELINES = ["O0", "O3-scalar", "O3", "supervec", "supervec+v"]

__all__ = ["optimize", "compile_and_optimize", "PipelineStats", "PIPELINES"]
