"""Optimization pipelines mirroring the paper's comparison points (§V).

* ``O0``          — straight from the front end.
* ``O3-scalar``   — scalar cleanups only (simplify, GVN, LICM, DCE); the
  Fig. 16 "LLVM -O3 without vectorization" baseline.
* ``O3``          — scalar cleanups + the loop-versioning vectorizer
  (SLP restricted to hoistable checks); stands in for LLVM's -O3 with
  its loop + SLP vectorizers.
* ``supervec``    — scalar cleanups + SLP *without* versioning
  (SuperVectorization as published).
* ``supervec+v``  — scalar cleanups + SLP with the fine-grained
  versioning framework (the paper's system).

Each pipeline takes ``honor_restrict`` so the Fig. 16 restrict on/off
toggle is one flag.

Every pass invocation goes through a :class:`repro.diag.PassManager`, so
with diagnostics enabled (``REPRO_DIAG=1`` or ``repro.diag.collect()``)
the pipeline records per-pass wall time and instruction/loop deltas, and
``REPRO_DUMP_IR=<dir>`` writes before/after IR snapshots of every pass.
With diagnostics off the wrapper is a direct call.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro import telemetry
from repro.diag import PassManager
from repro.diag.context import get_context
from repro.frontend import compile_c
from repro.ir import Module, VerificationError, verify_function, verify_module
from repro.opt import run_dce, run_gvn, run_licm, run_simplify
from repro.analysis.alias import AliasAnalysis
from repro.analysis.manager import ALIAS, AnalysisManager
from repro.rle import RLEStats, run_rle
from repro.vectorizer import SLPStats, VectorizeConfig, vectorize_function

#: What each cleanup pass leaves intact when it reports changes.  All of
#: them preserve alias analysis (it is stateless over the IR shapes they
#: produce); none preserve the dependence graph — they delete, move, or
#: rewrite instructions the graph indexes by identity.
PASS_PRESERVES = {
    "simplify": frozenset((ALIAS,)),
    "gvn": frozenset((ALIAS,)),
    "licm": frozenset((ALIAS,)),
    "dce": frozenset((ALIAS,)),
    "rle": frozenset((ALIAS,)),
    # SLP materializes versioning plans, which stamp noalias scope
    # groups: aliasing itself changes, so nothing is preserved.
    "slp": frozenset(),
}

#: Vectorizer mode selected by each pipeline level (None = no SLP run).
#: ``repro.service.manifest.pipeline_fingerprint`` hashes this table, so
#: a change to what a level means shows up as a provenance change.
LEVEL_MODES = {
    "O0": None,
    "O3-scalar": None,
    "O3": "loop",
    "supervec": "none",
    "supervec+v": "fine",
}


def pass_sequence(level: str, rle: bool = False) -> tuple:
    """The ordered pass invocations ``optimize`` runs at ``level``.

    This is the provenance view of the pipeline: two builds are
    comparable only if they ran the same sequence.  Kept next to
    ``optimize`` so the two cannot drift apart silently.
    """
    if level not in LEVEL_MODES:
        raise ValueError(f"unknown pipeline level {level!r}")
    if level == "O0":
        return ()
    cleanup = ("simplify", "gvn", "licm", "dce")
    seq = list(cleanup)
    if rle:
        seq += ["rle", *cleanup]
    if LEVEL_MODES[level] is not None:
        seq.append(f"slp:{LEVEL_MODES[level]}")
    seq += cleanup
    return tuple(seq)


@dataclass
class PipelineStats:
    """Per-pass statistics, keyed by function name for every pass.

    ``gvn`` / ``licm`` map function name -> instructions deleted/hoisted
    (summed over all cleanup rounds the pipeline runs); the historical
    module-wide totals remain available as ``gvn_deleted`` and
    ``licm_hoisted`` properties.
    """

    slp: dict = field(default_factory=dict)  # fn name -> SLPStats
    rle: dict = field(default_factory=dict)  # fn name -> RLEStats
    gvn: dict = field(default_factory=dict)  # fn name -> #deleted
    licm: dict = field(default_factory=dict)  # fn name -> #hoisted

    @property
    def gvn_deleted(self) -> int:
        return sum(self.gvn.values())

    @property
    def licm_hoisted(self) -> int:
        return sum(self.licm.values())


def _scalar_cleanup(
    module: Module,
    honor_restrict: bool,
    stats: PipelineStats,
    run_pass,
    am: AnalysisManager | None = None,
) -> None:
    aa = am.alias() if am is not None else AliasAnalysis(
        honor_restrict=honor_restrict
    )
    # Clean-function rounds are skipped only with diagnostics off: a
    # skipped round changes no IR and no stats (the per-round deltas are
    # all zero), but it would drop the round's pass-timing records and
    # any zero-change remarks (e.g. GVN "load not merged") from the
    # diagnostic stream, which is pinned bit-for-bit by the golden tests.
    may_skip = am is not None and not get_context().enabled
    for name, fn in module.functions.items():
        if may_skip and am.is_clean(fn):
            # analysis-cache hit: the round's per-function deltas are
            # zero — keep the sums accumulated by earlier rounds intact
            # (and materialize the keys for functions skipped on their
            # first round).
            stats.gvn[name] = stats.gvn.get(name, 0)
            stats.licm[name] = stats.licm.get(name, 0)
            telemetry.counter(
                "repro_pipeline_clean_round_skips_total",
                "cleanup rounds skipped because the function was "
                "proven clean by an earlier round").inc()
            continue
        folded = run_pass("simplify", fn, lambda fn=fn: run_simplify(fn))
        deleted = run_pass("gvn", fn, lambda fn=fn: run_gvn(fn, aa))
        stats.gvn[name] = stats.gvn.get(name, 0) + deleted
        hoisted = run_pass("licm", fn, lambda fn=fn: run_licm(fn, aa))
        stats.licm[name] = stats.licm.get(name, 0) + hoisted
        removed = run_pass("dce", fn, lambda fn=fn: run_dce(fn))
        if am is not None:
            if folded or deleted or hoisted or removed:
                am.invalidate(fn, preserved=PASS_PRESERVES["dce"])
            else:
                am.mark_clean(fn)


def optimize(
    module: Module,
    level: str = "supervec+v",
    honor_restrict: bool = True,
    vl: int = 4,
    rle: bool = False,
    verify_each_pass: bool | None = None,
) -> PipelineStats:
    """Run a named pipeline in place; returns per-pass statistics.

    ``verify_each_pass`` runs :func:`verify_function` after *every* pass
    invocation (not just at pipeline end), so a pass that corrupts the IR
    is localized by name the moment it runs — the fuzzer enables this to
    distinguish "pass N miscompiles" from "pass N broke an invariant and
    pass N+1 tripped over it".  Defaults to the ``REPRO_VERIFY_EACH_PASS``
    environment variable.
    """
    if verify_each_pass is None:
        verify_each_pass = os.environ.get(
            "REPRO_VERIFY_EACH_PASS", ""
        ).lower() in ("1", "true", "yes")
    if level not in LEVEL_MODES:
        raise ValueError(f"unknown pipeline level {level!r}")
    stats = PipelineStats()
    if level == "O0":
        return stats
    telemetry.counter("repro_pipeline_runs_total",
                      "optimize() invocations by level", level=level).inc()
    am = AnalysisManager(honor_restrict=honor_restrict)
    pm = PassManager(module_name=module.name)

    def run_pass(pass_name, fn, thunk):
        out = pm.run(pass_name, fn, thunk)
        if verify_each_pass:
            try:
                verify_function(fn)
            except VerificationError as e:
                raise VerificationError(
                    f"IR invalid after pass {pass_name!r} on "
                    f"{fn.name!r}: {e}"
                ) from e
        return out

    _scalar_cleanup(module, honor_restrict, stats, run_pass, am)
    if rle:
        for name, fn in module.functions.items():
            rs = run_pass(
                "rle", fn,
                lambda fn=fn: run_rle(fn, honor_restrict=honor_restrict),
            )
            stats.rle[name] = rs
            if rs.loads_removed or rs.plans_materialized or rs.groups_committed:
                am.invalidate(fn, preserved=PASS_PRESERVES["rle"])
        # RLE unlocks more LICM/GVN downstream (the paper's Fig. 22 rows)
        _scalar_cleanup(module, honor_restrict, stats, run_pass, am)
    mode = LEVEL_MODES[level]
    if mode is not None:
        for name, fn in module.functions.items():
            cfg = VectorizeConfig(mode=mode, honor_restrict=honor_restrict, vl=vl)
            stats.slp[name] = run_pass(
                "slp", fn, lambda fn=fn, cfg=cfg: vectorize_function(fn, cfg)
            )
            am.invalidate(fn, preserved=PASS_PRESERVES["slp"])
    _scalar_cleanup(module, honor_restrict, stats, run_pass, am)
    verify_module(module)
    return stats


def compile_and_optimize(
    source: str,
    level: str = "supervec+v",
    honor_restrict: bool = True,
    vl: int = 4,
    rle: bool = False,
    name: str = "module",
) -> tuple[Module, PipelineStats]:
    module = compile_c(source, name)
    stats = optimize(module, level, honor_restrict, vl, rle)
    return module, stats


PIPELINES = ["O0", "O3-scalar", "O3", "supervec", "supervec+v"]

__all__ = ["optimize", "compile_and_optimize", "pass_sequence",
           "LEVEL_MODES", "PipelineStats", "PIPELINES"]
