"""Named optimization pipelines mirroring the paper's comparison points."""

from .pipelines import PIPELINES, PipelineStats, compile_and_optimize, optimize

__all__ = ["PIPELINES", "PipelineStats", "compile_and_optimize", "optimize"]
