"""The SLP vectorizer, with pluggable versioning (paper §V-A).

Modes mirror the paper's comparison points:

* ``fine``  — SuperVectorization + our fine-grained versioning framework:
  a pack whose members are conditionally dependent is accepted whenever a
  versioning plan exists; checks may run inside loops when they must.
* ``loop``  — the LLVM-style baseline: packs are accepted only when the
  plan's checks can all be *promoted out of the enclosing loop* (classic
  whole-loop versioning).  Loop-variant conditions (in-place updates,
  triangular interference, guard-value speculation) are rejected — these
  are exactly the programs the paper uses to separate the approaches.
* ``none``  — SLP with no versioning at all: packs must be statically
  independent.

The integration with the framework is the paper's two-line story: the
legality filter forwards conditionally-dependent packs to plan inference,
and the driver materializes collected plans before vector code
generation.  Loops are vectorized by unrolling the innermost loop by VL
first and letting the packer fuse the copies (the paper's Fig. 18 view);
loop-carried reductions are rewritten to vector accumulators.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.analysis.affine import affine_of, difference
from repro.analysis.memloc import mem_location
from repro.diag.context import get_context
from repro.ir.instructions import (
    BinOp,
    BuildVector,
    Eta,
    Instruction,
    Mu,
    Phi,
    Reduce,
    Store,
    VecBin,
)
from repro.ir.loops import Function, Loop, ScopeMixin
from repro.ir.predicates import Predicate
from repro.ir.values import const_float, const_int
from repro.ir.verifier import verify_function
from repro.opt import run_dce, run_simplify, unroll_innermost_loops
from repro.versioning import VersioningFramework
from repro.versioning.condopt import optimize_plan
from repro.versioning.materialize import MaterializationError
from repro.versioning.plans import VersioningPlan, merge_plans

from .codegen import (
    VectorEmitter,
    erase_tree_members,
    extract_external_uses,
    schedule_with_group,
)
from .cost import tree_cost
from .packs import TreeBuilder, TreeNode

_REDUCTION_OPS = {"add", "mul", "min", "max"}
_NEUTRAL = {"add": 0.0, "mul": 1.0}


@dataclass
class VectorizeConfig:
    vl: int = 4
    mode: str = "fine"  # 'fine' | 'loop' | 'none'
    honor_restrict: bool = True
    unroll: bool = True
    reductions: bool = True
    cost_gate: bool = True


@dataclass
class SLPStats:
    trees: int = 0
    packed_instructions: int = 0
    plans_materialized: int = 0
    reductions: int = 0
    rejected_infeasible: int = 0
    rejected_cost: int = 0
    rejected_schedule: int = 0

    @property
    def vectorized(self) -> bool:
        return self.trees > 0 or self.reductions > 0


class _ScopeVectorizer:
    def __init__(
        self,
        fn: Function,
        scope: ScopeMixin,
        vf: VersioningFramework,
        config: VectorizeConfig,
        stats: SLPStats,
    ):
        self.fn = fn
        self.scope = scope
        self.vf = vf
        self.config = config
        self.stats = stats
        self.claimed: set[int] = set()
        self.removed_edges: set = set()
        self._plans: dict[tuple, Optional[VersioningPlan]] = {}
        self._loc = scope.name if isinstance(scope, Loop) else ""

    def _remark(self, kind: str, message: str, **args) -> None:
        dc = get_context()
        if dc.enabled:
            dc.remark("slp", kind, self.fn.name, self._loc, message, **args)

    # -- legality: the versioning integration point ---------------------------

    def _legal(self, members: list[Instruction]) -> bool:
        if any(id(m) in self.claimed for m in members):
            return False
        if any(m.parent is not self.scope for m in members):
            return False
        key = tuple(sorted(id(m) for m in members))
        if key in self._plans:
            return self._plans[key] is not None
        plan = self.vf.infer_for_items(members)
        if plan is not None and not plan.is_empty():
            if self.config.mode == "none":
                self._remark(
                    "Missed",
                    "pack of {n} ({first}, ...) needs run-time checks but "
                    "versioning is disabled (mode=none)",
                    n=len(members), first=members[0].display_name(),
                )
                plan = None
            elif self.config.mode == "loop":
                optimize_plan(plan)
                if not self._fully_hoisted(plan):
                    self._remark(
                        "Missed",
                        "pack of {n} ({first}, ...) rejected: residual "
                        "in-loop checks cannot be hoisted (mode=loop only "
                        "accepts whole-loop versioning)",
                        n=len(members), first=members[0].display_name(),
                    )
                    plan = None
        if plan is None:
            self.stats.rejected_infeasible += 1
        self._plans[key] = plan
        return plan is not None

    def _fully_hoisted(self, plan: VersioningPlan) -> bool:
        """loop-mode gate: every (nested) plan's check must have been
        promoted out of this loop."""
        if not isinstance(self.scope, Loop):
            return True  # straight-line code: checks are upfront anyway
        p: Optional[VersioningPlan] = plan
        while p is not None:
            if p.conditions:  # residual in-loop checks remain
                return False
            p = p.secondary
        return True

    def _plans_for_tree(self, tree: TreeNode) -> list[VersioningPlan]:
        plans = []
        for node in tree.all_nodes():
            key = tuple(sorted(id(m) for m in node.members))
            plan = self._plans.get(key)
            if plan is not None and not plan.is_empty():
                # RCE + hull coalescing + promotion before costing; the
                # coalesced form is the paper's Fig. 18 shape: one range
                # check per base pair guarding the vectorized group
                optimize_plan(plan, coalesce=True)
                plans.append(plan)
        return plans

    def _check_split(self, plans: list[VersioningPlan]) -> tuple[int, int]:
        inline = hoisted = 0
        for plan in plans:
            p: Optional[VersioningPlan] = plan
            while p is not None:
                hoisted += len(p.hoisted_conditions)
                if isinstance(self.scope, Loop):
                    inline += len(p.conditions)
                else:
                    hoisted += len(p.conditions)  # runs once anyway
                p = p.secondary
        return inline, hoisted

    # -- seeds ---------------------------------------------------------------

    def _store_seeds(self) -> list[list[Instruction]]:
        vl = self.config.vl
        stores = [
            it
            for it in self.scope.items
            if isinstance(it, Store) and id(it) not in self.claimed
        ]
        buckets: dict = {}
        for s in stores:
            loc = mem_location(s)
            if loc is None:
                continue
            sig = (id(loc.base), frozenset(loc.offset.terms.items()), s.predicate)
            buckets.setdefault(sig, []).append((loc.offset.const, s))
        seeds = []
        for group in buckets.values():
            group.sort(key=lambda t: t[0])
            run: list[Instruction] = []
            last = None
            for off, s in group:
                if last is not None and off == last + 1:
                    run.append(s)
                else:
                    run = [s]
                last = off
                if len(run) == vl:
                    seeds.append(list(run))
                    run = []
                    last = None
        return seeds

    # -- driver ----------------------------------------------------------------

    def run(self) -> None:
        if self.config.reductions and isinstance(self.scope, Loop):
            self._vectorize_reductions()
        for seed in self._store_seeds():
            self._try_tree(seed)

    def _try_tree(self, seed: list[Instruction]) -> None:
        if any(id(m) in self.claimed for m in seed):
            return
        builder = TreeBuilder(self._legal)
        tree = builder.build(seed)
        if tree is None:
            self._remark(
                "Missed",
                "no SLP tree from store seed {store}: operand packs "
                "illegal or non-isomorphic",
                store=seed[0].display_name(),
            )
            return
        nodes = list(tree.all_nodes())
        self._remark(
            "Analysis",
            "built SLP tree from seed {store}: {packs} pack(s), "
            "{members} instruction(s)",
            store=seed[0].display_name(), packs=len(nodes),
            members=len(tree.all_members()),
        )
        plans = self._plans_for_tree(tree)
        # schedulability: no dependence path may leave the tree's member
        # set and re-enter it (the contiguous-fusion condition); the
        # framework versions such paths away like any other
        sched = self.vf.infer_schedulability(tree.all_members())
        if sched is None:
            self._remark(
                "Missed",
                "tree at seed {store} rejected: dependence paths re-enter "
                "the member set and cannot be versioned away",
                store=seed[0].display_name(),
            )
            self.stats.rejected_infeasible += 1
            return
        if not sched.is_empty():
            if self.config.mode == "none":
                self._remark(
                    "Missed",
                    "tree at seed {store} needs schedulability checks but "
                    "versioning is disabled (mode=none)",
                    store=seed[0].display_name(),
                )
                self.stats.rejected_infeasible += 1
                return
            optimize_plan(sched, coalesce=True)
            if self.config.mode == "loop" and not self._fully_hoisted(sched):
                self._remark(
                    "Missed",
                    "tree at seed {store} rejected: schedulability checks "
                    "stay in the loop (mode=loop)",
                    store=seed[0].display_name(),
                )
                self.stats.rejected_infeasible += 1
                return
            plans.append(sched)
        # merge per-pack plans into one uniform plan (one combined check
        # guards the whole tree, keeping member predicates equal)
        merged = merge_plans(plans) if plans else None
        if self.config.cost_gate:
            inline, hoisted = self._check_split([merged] if merged else [])
            cost = tree_cost(tree, self.config.vl, inline, hoisted)
            if not cost.profitable:
                self._remark(
                    "Missed",
                    "tree at seed {store} rejected by cost model: scalar "
                    "{scalar} vs vector {vector} + checks {checks} "
                    "({inline} in-loop, {hoisted} hoisted)",
                    store=seed[0].display_name(),
                    scalar=round(cost.scalar, 2), vector=round(cost.vector, 2),
                    checks=round(cost.checks, 2), inline=inline,
                    hoisted=hoisted,
                )
                self.stats.rejected_cost += 1
                return
            self._remark(
                "Analysis",
                "cost model accepts tree at seed {store}: scalar {scalar} "
                "vs vector {vector} + checks {checks}",
                store=seed[0].display_name(), scalar=round(cost.scalar, 2),
                vector=round(cost.vector, 2), checks=round(cost.checks, 2),
            )
        if merged is not None:
            try:
                self.vf.materialize([merged], optimize=False, verify=False)
            except MaterializationError:
                self._remark(
                    "Missed",
                    "tree at seed {store} rejected: versioning plan failed "
                    "to materialize",
                    store=seed[0].display_name(),
                )
                self.stats.rejected_infeasible += 1
                return
            self.removed_edges |= merged.removed_edges
            self.stats.plans_materialized += 1
            self._plans.clear()  # the IR changed; cached plans are stale
        graph = self.vf.graph_for(
            self.scope, assume_independent=self.removed_edges
        )
        members = tree.all_members()
        if not schedule_with_group(self.scope, members, graph):
            self._remark(
                "Missed",
                "tree at seed {store} rejected: members cannot be "
                "scheduled as one contiguous group",
                store=seed[0].display_name(),
            )
            self.stats.rejected_schedule += 1
            return
        emitter = VectorEmitter(self.scope, self.config.vl)
        emitter.emit_tree(tree)
        extract_external_uses(self.scope, tree, emitter)
        erase_tree_members(tree, self.scope)
        self.claimed.update(id(m) for m in members)
        self.stats.trees += 1
        self.stats.packed_instructions += len(members)
        self._remark(
            "Passed",
            "vectorized tree at seed {store}: {members} instruction(s) "
            "-> VL={vl} vector code{versioned}",
            store=seed[0].display_name(), members=len(members),
            vl=self.config.vl,
            versioned=" under a versioning plan" if merged is not None else "",
        )
        self.vf.invalidate()

    # -- reductions -------------------------------------------------------------

    def _vectorize_reductions(self) -> None:
        loop: Loop = self.scope  # type: ignore[assignment]
        vl = self.config.vl
        if loop.metadata.get("unroll_main") != vl:
            return
        for mu in list(loop.mus):
            chain = self._reduction_chain(loop, mu, vl)
            if chain is None:
                continue
            op, links, terms = chain
            self._rewrite_reduction(loop, mu, op, links, terms)

    def _reduction_chain(self, loop: Loop, mu: Mu, vl: int):
        """Detect ``mu.rec`` as a chain of ``vl`` same-op binops each
        folding one term into the previous value, starting at ``mu``."""
        if not mu.type.is_float() and not mu.type.is_int():
            return None
        rec = mu.rec
        links: list[BinOp] = []
        cur = rec
        while isinstance(cur, BinOp) and cur.op in _REDUCTION_OPS and len(links) < vl:
            links.append(cur)
            nxt = None
            if cur.operands[0] is mu or isinstance(cur.operands[0], BinOp):
                nxt = cur.operands[0]
            links_ok = True
            cur = nxt
            if cur is None:
                break
        links.reverse()
        if len(links) != vl:
            return None
        op = links[0].op
        if any(l.op != op for l in links):
            return None
        if op not in _NEUTRAL and op not in ("min", "max"):
            return None
        # validate chain shape: link0 folds into mu, link k into link k-1
        prev = mu
        terms = []
        for l in links:
            if l.operands[0] is prev:
                terms.append(l.operands[1])
            elif l.operands[1] is prev and op in ("add", "mul", "min", "max"):
                terms.append(l.operands[0])
            else:
                return None
            if not l.predicate.is_true():
                return None
            prev = l
        # intermediate links must feed only the next link; the final link
        # may feed the mu recurrence and etas only
        for k, l in enumerate(links):
            users = l.users()
            if k < len(links) - 1:
                if any(u is not links[k + 1] for u in users):
                    return None
            else:
                if any(
                    not (u is mu or isinstance(u, Eta)) for u in users
                ):
                    return None
        # the mu itself must only feed the first link (plus its own rec slot)
        if any(not (u is links[0] or u is mu) for u in mu.users()):
            return None
        return op, links, terms

    def _rewrite_reduction(self, loop: Loop, mu: Mu, op: str, links, terms) -> None:
        vl = self.config.vl
        parent = loop.parent
        assert parent is not None
        is_float = mu.type.is_float()

        def const(v):
            return const_float(v) if is_float else const_int(int(v))

        # initial accumulator vector in the parent scope
        if op in _NEUTRAL:
            lanes = [mu.init] + [const(_NEUTRAL[op])] * (vl - 1)
        else:  # min/max: the init value is idempotent
            lanes = [mu.init] * vl
        init_vec = BuildVector(lanes, name=f"{mu.name}.vinit")
        init_vec.set_predicate(loop.predicate)
        parent.insert_before(loop, init_vec)

        acc = Mu(init_vec, name=f"{mu.name}.vacc")
        loop.add_mu(acc)

        # pack the folded terms (SLP tree if possible, gather otherwise)
        anchor = links[-1]
        tvec = None
        if all(isinstance(t, Instruction) for t in terms):
            builder = TreeBuilder(self._legal)
            tnode = builder.build(list(terms))
            if tnode is not None:
                # a versioned term tree would run only on the check-pass
                # path while the vector accumulator updates
                # unconditionally — so reductions accept only packs that
                # are *statically* independent (empty plans); anything
                # conditional falls back to gathering the scalar terms,
                # which later versioning reroutes through phis correctly
                plans = self._plans_for_tree(tnode)
                sched = self.vf.infer_schedulability(
                    tnode.all_members() + list(links)
                )
                if plans or sched is None or not sched.is_empty():
                    tnode = None
            if tnode is not None:
                graph = self.vf.graph_for(
                    self.scope, assume_independent=self.removed_edges
                )
                group = tnode.all_members() + list(links)
                if schedule_with_group(self.scope, group, graph):
                    emitter = VectorEmitter(self.scope, vl)
                    tvec = emitter.emit_tree(tnode)
                    extract_external_uses(self.scope, tnode, emitter)
                    erase_tree_members(tnode, self.scope)
                    self.claimed.update(id(m) for m in tnode.all_members())
        if tvec is None:
            tvec = BuildVector(list(terms), name=f"{mu.name}.vterms")
            tvec.set_predicate(Predicate.true())
            loop.insert_before(anchor, tvec)

        vrec = VecBin(op, acc, tvec, name=f"{mu.name}.vred")
        vrec.set_predicate(Predicate.true())
        loop.insert_before(anchor, vrec)
        acc.set_rec(vrec)

        # rewire live-outs: reduce the accumulator after the loop
        last = links[-1]
        for eta in [u for u in last.users() if isinstance(u, Eta)]:
            vec_eta = Eta(loop, vrec, name=eta.name + ".v")
            vec_eta.set_predicate(eta.predicate)
            eta.parent.insert_after(eta, vec_eta)
            red = Reduce(op, vec_eta, name=eta.name + ".red")
            red.set_predicate(eta.predicate)
            eta.parent.insert_after(vec_eta, red)
            for u in list(eta.users()):
                u.replace_uses_of(eta, red)
            if self.fn.return_value is eta:
                self.fn.set_return(red)
            eta.scope_erase()
            loop.etas.remove(eta)

        # delete the scalar chain and the old mu
        mu.set_rec(mu)  # break the self-reference through the chain
        for l in reversed(links):
            if not l.has_users():
                l.scope_erase()
        if not mu.has_users() or all(u is mu for u in mu.users()):
            mu.drop_all_references()
            loop.mus.remove(mu)
        self.stats.reductions += 1
        self.claimed.update(id(l) for l in links)
        self._remark(
            "Passed",
            "vectorized {op} reduction over {mu}: {n} scalar links -> "
            "vector accumulator + horizontal reduce",
            op=op, mu=mu.display_name(), n=len(links),
        )
        self.vf.invalidate()
        self._plans.clear()  # the IR changed; cached plans are stale


def vectorize_function(fn: Function, config: Optional[VectorizeConfig] = None) -> SLPStats:
    """Run the SLP pipeline on ``fn``; returns vectorization statistics."""
    cfg = config if config is not None else VectorizeConfig()
    stats = SLPStats()
    if cfg.unroll:
        unroll_innermost_loops(fn, cfg.vl)
        run_simplify(fn)
        run_dce(fn)
    vf = VersioningFramework(fn, honor_restrict=cfg.honor_restrict)
    scopes: list[ScopeMixin] = [fn] + list(fn.loops())
    for scope in scopes:
        _ScopeVectorizer(fn, scope, vf, cfg, stats).run()
    run_simplify(fn)
    run_dce(fn)
    verify_function(fn)
    dc = get_context()
    if dc.enabled:
        dc.remark(
            "slp", "Analysis", fn.name, "",
            "summary (mode={mode}): {trees} tree(s) / {packed} packed, "
            "{reductions} reduction(s), {plans} plan(s) materialized; "
            "rejected {inf} infeasible, {cost} cost, {sched} schedule",
            mode=cfg.mode, trees=stats.trees, packed=stats.packed_instructions,
            reductions=stats.reductions, plans=stats.plans_materialized,
            inf=stats.rejected_infeasible, cost=stats.rejected_cost,
            sched=stats.rejected_schedule,
        )
    return stats


__all__ = ["VectorizeConfig", "SLPStats", "vectorize_function"]
