"""SLP vectorization with pluggable versioning, plus vector codegen.

``vectorize_function(fn, VectorizeConfig(mode=...))`` with modes:
``fine`` (the paper's framework), ``loop`` (LLVM-style whole-loop
versioning baseline), ``none`` (no versioning).
"""

from .codegen import VectorEmitter, schedule_with_group
from .cost import TreeCost, tree_cost
from .packs import OperandSlot, TreeBuilder, TreeNode, consecutive_direction
from .slp import SLPStats, VectorizeConfig, vectorize_function

__all__ = [
    "VectorEmitter",
    "schedule_with_group",
    "TreeCost",
    "tree_cost",
    "OperandSlot",
    "TreeBuilder",
    "TreeNode",
    "consecutive_direction",
    "SLPStats",
    "VectorizeConfig",
    "vectorize_function",
]
