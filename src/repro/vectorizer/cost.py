"""SLP profitability model.

Compares the scalar cost of a pack tree's members against the vector
cost: one wide op per node, gathers/broadcasts/shuffles for unpacked
operands, extracts for externally-used lanes, and the run-time checks of
any versioning plans the tree needs (amortized when the check was
promoted out of the enclosing loop).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.interp.costmodel import DEFAULT_COST_MODEL, CostModel

from .packs import OperandSlot, TreeNode

# rough per-check instruction cost: bound computations fold into
# addressing; two compares + a combine
CHECK_COST = 3.5
# assumed trip count for amortizing checks hoisted out of a loop
AMORTIZE_TRIPS = 64.0


@dataclass
class TreeCost:
    scalar: float
    vector: float
    checks: float

    @property
    def profitable(self) -> bool:
        return self.vector + self.checks < self.scalar


def tree_cost(
    tree: TreeNode,
    vl: int,
    n_checks_inline: int,
    n_checks_hoisted: int,
    cm: CostModel = DEFAULT_COST_MODEL,
) -> TreeCost:
    scalar = 0.0
    vector = 0.0
    members_in_tree = {id(m) for m in tree.all_members()}
    for node in tree.all_nodes():
        scalar += sum(cm.instruction_cost(m) for m in node.members)
        vector += _node_cost(node, vl, cm)
        # lanes used outside the tree must be extracted
        for m in node.members:
            if node.kind == "store":
                continue
            if any(id(u) not in members_in_tree for u in m.users()):
                vector += cm.lane_move
        for slot in node.operands:
            if slot.kind == "gather":
                vector += cm.lane_move * vl
            elif slot.kind == "broadcast":
                vector += cm.lane_move
    checks = CHECK_COST * n_checks_inline + (
        CHECK_COST * n_checks_hoisted / AMORTIZE_TRIPS
    )
    return TreeCost(scalar, vector, checks)


def _node_cost(node: TreeNode, vl: int, cm: CostModel) -> float:
    if node.kind in ("store", "load"):
        return cm.mem
    if node.kind == "load_reverse":
        return cm.mem + cm.shuffle
    if node.kind in ("bin", "un"):
        op = getattr(node.members[0], "op", "add")
        from repro.interp.costmodel import _EXPENSIVE_OPS, _EXPENSIVE_UNOPS

        if op in _EXPENSIVE_OPS or op in _EXPENSIVE_UNOPS:
            return cm.expensive_alu
        return cm.alu
    if node.kind == "cmp":
        return cm.alu
    if node.kind == "select":
        return cm.select
    return cm.alu


__all__ = ["TreeCost", "tree_cost", "CHECK_COST", "AMORTIZE_TRIPS"]
