"""Vector code generation: scheduling + emission.

Predicated SSA makes placement a pure list problem (the paper's point
about global code motion): we contract a tree's members into one
supernode, topologically re-order the scope by the (versioning-aware)
dependence graph, and — if acyclic — the members become contiguous with
every operand ahead of the block.  Vector instructions are then inserted
at the block head, external lane uses are extracted, and the scalar
members die.

Cyclic contraction means the tree cannot be scheduled (some outside
instruction both feeds and consumes the pack); the tree is abandoned and
the scalar code stays — correct, merely unvectorized.
"""

from __future__ import annotations

import heapq
from typing import Optional

from repro.analysis.depgraph import DependenceGraph
from repro.ir.instructions import (
    Broadcast,
    BuildVector,
    ExtractLane,
    Instruction,
    Shuffle,
    VecBin,
    VecCmp,
    VecLoad,
    VecSelect,
    VecStore,
    VecUn,
)
from repro.ir.loops import ScopeMixin
from repro.ir.types import vector_of
from repro.ir.values import Value

from .packs import OperandSlot, TreeNode


def schedule_with_group(
    scope: ScopeMixin, group: list[Instruction], graph: DependenceGraph
) -> bool:
    """Re-order ``scope.items`` so ``group`` is contiguous, respecting
    every dependence edge in ``graph``.  Returns False when the
    contraction is cyclic (the group cannot be scheduled)."""
    items = list(scope.items)
    pos = {id(it): i for i, it in enumerate(items)}
    gset = {id(m) for m in group if id(m) in pos}
    if not gset:
        return True
    GROUP = -1

    def rep(it_id: int):
        return GROUP if it_id in gset else it_id

    # adjacency: an item's dependencies must come first
    preds: dict = {}  # node -> set of nodes that must precede it
    nodes = {GROUP} | {id(it) for it in items if id(it) not in gset}
    for n in nodes:
        preds[n] = set()
    for e in graph.all_edges():
        if id(e.src) not in pos or id(e.dst) not in pos:
            continue
        a, b = rep(id(e.src)), rep(id(e.dst))
        if a != b:
            preds[a].add(b)

    first_pos = {n: (min(pos[g] for g in gset) if n == GROUP else pos[n]) for n in nodes}
    succs: dict = {n: set() for n in nodes}
    indeg = {n: 0 for n in nodes}
    for n, ps in preds.items():
        for p in ps:
            succs[p].add(n)
            indeg[n] += 1

    heap = [(first_pos[n], n) for n in nodes if indeg[n] == 0]
    heapq.heapify(heap)
    order: list[int] = []
    while heap:
        _, n = heapq.heappop(heap)
        order.append(n)
        for s in succs[n]:
            indeg[s] -= 1
            if indeg[s] == 0:
                heapq.heappush(heap, (first_pos[s], s))
    if len(order) != len(nodes):
        return False  # cycle: unschedulable

    by_id = {id(it): it for it in items}
    new_items: list = []
    group_sorted = sorted((m for m in group if id(m) in pos), key=lambda m: pos[id(m)])
    for n in order:
        if n == GROUP:
            new_items.extend(group_sorted)
        else:
            new_items.append(by_id[n])
    scope.items[:] = new_items
    return True


class VectorEmitter:
    """Emits the vector form of a scheduled tree."""

    def __init__(self, scope: ScopeMixin, vl: int):
        self.scope = scope
        self.vl = vl
        self._vec_of: dict[int, Value] = {}  # id(TreeNode) -> vector value
        self._in_progress: set[int] = set()
        self._member_map: dict[int, tuple[TreeNode, int]] = {}
        self.emitted: list[Instruction] = []

    def _insert(self, inst: Instruction, anchor: Instruction, pred) -> Instruction:
        inst.set_predicate(pred)
        self.scope.insert_before(anchor, inst)
        self.emitted.append(inst)
        return inst

    def emit_tree(self, tree: TreeNode) -> Optional[Value]:
        """Emit vector code for ``tree``, anchored before its earliest
        member in the (post-scheduling) scope order; returns the root's
        vector value (None for store roots)."""
        pos = {id(it): i for i, it in enumerate(self.scope.items)}
        members = tree.all_members()
        anchor = min(members, key=lambda m: pos.get(id(m), 1 << 30))
        for node in tree.all_nodes():
            if node.kind != "store":
                for lane, m in enumerate(node.members):
                    self._member_map.setdefault(id(m), (node, lane))
        return self._emit_node(tree, anchor)

    def _emit_node(self, node: TreeNode, anchor: Instruction) -> Optional[Value]:
        cached = self._vec_of.get(id(node))
        if cached is not None:
            return cached
        self._in_progress.add(id(node))
        pred = node.members[0].predicate
        operand_vecs: list[Value] = []
        if node.kind != "cast":
            for slot in node.operands:
                operand_vecs.append(self._emit_slot(slot, anchor, pred))

        first = node.members[0]
        result: Optional[Value] = None
        if node.kind == "store":
            vec = operand_vecs[0]
            self._insert(VecStore(first.pointer, vec), anchor, pred)
        elif node.kind in ("load", "load_reverse"):
            lane0 = node.members[0 if node.kind == "load" else -1]
            ty = vector_of(first.type, self.vl)
            v = self._insert(VecLoad(lane0.pointer, ty, name="vld"), anchor, pred)
            if node.kind == "load_reverse":
                v = self._insert(
                    Shuffle(v, None, list(reversed(range(self.vl))), name="vrev"),
                    anchor,
                    pred,
                )
            result = v
        elif node.kind == "bin":
            result = self._insert(
                VecBin(first.op, operand_vecs[0], operand_vecs[1], name="vbin"),
                anchor,
                pred,
            )
        elif node.kind == "un":
            result = self._insert(
                VecUn(first.op, operand_vecs[0], name="vun"), anchor, pred
            )
        elif node.kind == "cmp":
            result = self._insert(
                VecCmp(first.rel, operand_vecs[0], operand_vecs[1], name="vcmp"),
                anchor,
                pred,
            )
        elif node.kind == "select":
            result = self._insert(
                VecSelect(operand_vecs[0], operand_vecs[1], operand_vecs[2], name="vsel"),
                anchor,
                pred,
            )
        elif node.kind == "cast":
            # elementwise cast: lane-wise scalar casts gathered into a
            # vector.  Lane operands go through _lane_value: an operand
            # that is itself a packed member (e.g. a load sub-pack) is
            # rematerialized as vector + extract ahead of the anchor —
            # referencing the original scalar directly would use a value
            # scheduled *inside* the group, after the insertion point.
            from repro.ir.instructions import Cast

            lanes = []
            for m in node.members:
                sv = self._lane_value(m.operands[0], anchor, pred)
                c = Cast(sv, m.type)
                self._insert(c, anchor, pred)
                lanes.append(c)
            result = self._insert(BuildVector(lanes, name="vcast"), anchor, pred)
        else:  # pragma: no cover - defensive
            raise NotImplementedError(node.kind)
        if result is not None:
            self._vec_of[id(node)] = result
        self._in_progress.discard(id(node))
        return result

    def _emit_slot(self, slot: OperandSlot, anchor: Instruction, pred) -> Value:
        if slot.kind == "node":
            assert slot.node is not None
            v = self._emit_node(slot.node, anchor)
            assert v is not None
            return v
        if slot.kind == "broadcast":
            bval = self._lane_value(slot.values[0], anchor, pred)
            return self._insert(Broadcast(bval, self.vl, name="vsplat"), anchor, pred)
        lanes = [self._lane_value(v, anchor, pred) for v in slot.values]
        return self._insert(BuildVector(lanes, name="vgather"), anchor, pred)

    def _lane_value(self, v: Value, anchor: Instruction, pred) -> Value:
        """A gathered scalar that is itself a packed member must come from
        its pack's vector (the scalar will be erased); a member of a pack
        currently mid-emission stays scalar (and therefore stays alive)."""
        hit = self._member_map.get(id(v))
        if hit is None:
            return v
        node, lane = hit
        if id(node) in self._in_progress:
            return v
        vec = self._emit_node(node, anchor)
        if vec is None:
            return v
        ext = ExtractLane(vec, lane, name="vx")
        return self._insert(ext, anchor, pred)


def extract_external_uses(
    scope: ScopeMixin,
    tree: TreeNode,
    emitter: VectorEmitter,
) -> None:
    """Replace uses of packed values outside the tree with lane extracts."""
    member_ids = {id(m) for m in tree.all_members()}
    member_ids |= {id(e) for e in emitter.emitted}
    for node in tree.all_nodes():
        if node.kind == "store":
            continue
        vec = emitter._vec_of.get(id(node))
        if vec is None:
            continue
        for lane, m in enumerate(node.members):
            src_lane = lane if node.kind != "load_reverse" else lane
            external = [u for u in m.users() if id(u) not in member_ids]
            if not external:
                continue
            ext = ExtractLane(vec, src_lane, name=f"{m.display_name()}.x")
            ext.set_predicate(m.predicate)
            scope.insert_after(vec if isinstance(vec, Instruction) else m, ext)
            for u in external:
                u.replace_uses_of(m, ext)


def erase_tree_members(tree: TreeNode, scope: ScopeMixin) -> int:
    """Delete the scalar members (reverse program order so users die
    before their operands).  Returns the number erased."""
    members = [m for m in tree.all_members() if m.parent is not None]
    pos = {id(it): i for i, it in enumerate(scope.items)}
    members.sort(key=lambda m: pos.get(id(m), 0), reverse=True)
    erased = 0
    for m in members:
        if m.opcode == "store" or not m.has_users():
            m.scope_erase()
            erased += 1
    return erased


__all__ = [
    "schedule_with_group",
    "VectorEmitter",
    "extract_external_uses",
    "erase_tree_members",
]
