"""SLP pack trees.

A *pack* is a group of isomorphic scalar instructions that become one
vector instruction; a *tree* is a pack plus recursively packed operands.
Operand positions that cannot be packed become gathers (``BuildVector``),
broadcasts, or — for consecutive loads — wide loads, possibly reversed
through a shuffle.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.analysis.affine import affine_of, difference
from repro.analysis.memloc import mem_location
from repro.ir.instructions import (
    BinOp,
    Cast,
    Cmp,
    Instruction,
    Load,
    Select,
    Store,
    UnOp,
)
from repro.ir.values import Constant, Value


@dataclass
class TreeNode:
    """A packed group of isomorphic instructions."""

    kind: str  # 'store' | 'load' | 'load_reverse' | 'bin' | 'un' | 'cmp' | 'select' | 'cast'
    members: list[Instruction]
    operands: list["OperandSlot"] = field(default_factory=list)

    def all_members(self) -> list[Instruction]:
        """Every packed instruction in the tree, deduplicated (shared
        sub-packs appear in several operand slots via memoization)."""
        out: list[Instruction] = []
        seen: set[int] = set()
        for node in self.all_nodes():
            for m in node.members:
                if id(m) not in seen:
                    seen.add(id(m))
                    out.append(m)
        return out

    def all_nodes(self) -> list["TreeNode"]:
        out: list[TreeNode] = []
        seen: set[int] = set()

        def visit(node: "TreeNode") -> None:
            if id(node) in seen:
                return
            seen.add(id(node))
            out.append(node)
            for slot in node.operands:
                if slot.node is not None:
                    visit(slot.node)

        visit(self)
        return out


@dataclass
class OperandSlot:
    """One operand position of a pack: a sub-pack, a broadcast, or a
    gather of arbitrary scalar values."""

    kind: str  # 'node' | 'broadcast' | 'gather'
    values: list[Value] = field(default_factory=list)
    node: Optional[TreeNode] = None


def consecutive_direction(insts: list[Instruction]) -> Optional[int]:
    """+1 / -1 when the memory accesses are unit-stride consecutive in
    order (or exactly reversed); None otherwise."""
    locs = [mem_location(i) for i in insts]
    if any(l is None for l in locs):
        return None
    base = locs[0].base
    if any(l.base is not base for l in locs):
        return None
    deltas = []
    for prev, cur in zip(locs, locs[1:]):
        d = difference(cur.offset, prev.offset)
        if d is None:
            return None
        deltas.append(d)
    if all(d == 1 for d in deltas):
        return 1
    if all(d == -1 for d in deltas):
        return -1
    return None


def _isomorphic(insts: list[Instruction]) -> Optional[str]:
    """The node kind if the instructions are pack-compatible."""
    first = insts[0]
    if len(set(map(id, insts))) != len(insts):
        return None
    if any(type(i) is not type(first) for i in insts):
        return None
    if any(i.predicate != first.predicate for i in insts):
        return None
    if isinstance(first, Store):
        return "store"
    if isinstance(first, Load):
        return "load"
    if isinstance(first, BinOp):
        return "bin" if all(i.op == first.op for i in insts) else None
    if isinstance(first, UnOp):
        return "un" if all(i.op == first.op for i in insts) else None
    if isinstance(first, Cmp):
        if any(i.is_branch_source for i in insts):
            return None
        return "cmp" if all(i.rel == first.rel for i in insts) else None
    if isinstance(first, Select):
        return "select"
    if isinstance(first, Cast):
        return "cast" if all(str(i.type) == str(first.type) for i in insts) else None
    return None


class TreeBuilder:
    """Builds a pack tree from a seed, sharing sub-packs via memoization.

    ``legal`` is a callback deciding whether a candidate pack's members
    may be packed (mutual independence — where the versioning framework
    plugs in) — it returns True/False and records any plan it made.
    """

    def __init__(self, legal, max_depth: int = 8):
        self.legal = legal
        self.max_depth = max_depth
        self._memo: dict[tuple, Optional[TreeNode]] = {}

    def build(self, seed: list[Instruction]) -> Optional[TreeNode]:
        return self._build(seed, 0)

    def _build(self, insts: list[Instruction], depth: int) -> Optional[TreeNode]:
        key = tuple(id(i) for i in insts)
        if key in self._memo:
            return self._memo[key]
        self._memo[key] = None  # break cycles
        node = self._build_uncached(insts, depth)
        self._memo[key] = node
        return node

    def _build_uncached(self, insts: list[Instruction], depth: int) -> Optional[TreeNode]:
        kind = _isomorphic(insts)
        if kind is None:
            return None
        if kind == "load":
            direction = consecutive_direction(insts)
            if direction is None:
                return None  # caller falls back to a gather of scalars
            if not self.legal(insts):
                return None
            return TreeNode("load" if direction == 1 else "load_reverse", list(insts))
        if kind == "store":
            if consecutive_direction(insts) != 1:
                return None
            if not self.legal(insts):
                return None
            node = TreeNode("store", list(insts))
            node.operands.append(
                self._operand_slot([i.value for i in insts], depth)  # type: ignore[attr-defined]
            )
            return node
        if not self.legal(insts):
            return None
        node = TreeNode(kind, list(insts))
        first = insts[0]
        skip = set()
        if kind == "select":
            # operand 0 is the condition; pack it like any value
            pass
        for idx in range(len(first.operands)):
            vals = [i.operands[idx] for i in insts]
            node.operands.append(self._operand_slot(vals, depth))
        return node

    def _operand_slot(self, vals: list[Value], depth: int) -> OperandSlot:
        if all(v is vals[0] for v in vals):
            return OperandSlot("broadcast", vals)
        if all(isinstance(v, Constant) for v in vals):
            return OperandSlot("gather", vals)
        if depth < self.max_depth and all(
            isinstance(v, Instruction) for v in vals
        ):
            sub = self._build(vals, depth + 1)  # type: ignore[arg-type]
            if sub is not None:
                return OperandSlot("node", vals, node=sub)
        return OperandSlot("gather", vals)


__all__ = ["TreeNode", "OperandSlot", "TreeBuilder", "consecutive_direction"]
