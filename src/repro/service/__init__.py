"""Compile service: a long-running sharded build/run daemon.

The library's fast build path (worklist passes, analysis caching, the
persistent artifact cache) pays off chiefly when many requests share the
work — the serve-many-requests setting.  This package turns the library
into exactly that: an asyncio front end over a multiprocessing worker
pool, speaking a newline-delimited-JSON protocol over a TCP socket, with

* ``build`` / ``run`` / ``diag`` / ``fuzz`` / ``metrics`` / ``status``
  endpoints (:mod:`repro.service.protocol` defines the wire format);
* in-flight request deduplication (single-flight per cache key) and
  micro-batched dispatch onto the worker pool, generalizing the
  ``perf.batch.build_many`` ordered-map + telemetry-absorb protocol;
* a **sharded** content-addressed artifact store
  (:mod:`repro.service.store`), grown out of :mod:`repro.perf.diskcache`:
  N shard directories keyed by hash prefix, per-shard lock files and LRU
  budgets;
* a **provenance manifest** beside every artifact
  (:mod:`repro.service.manifest`): source hash, pipeline level and
  pass-pipeline fingerprint, artifact-format version, repro version, and
  creation lineage — loads verify it, so artifacts from incompatible
  pipeline versions can never mix, and a mismatch is refused with a
  structured error rather than silently rebuilt over.

CLI::

    python -m repro.service serve  --port 0 --workers 4 --store DIR
    python -m repro.service client [--addr H:P] {ping,build,run,fuzz,metrics,shutdown} ...
    python -m repro.service status [--addr H:P]

``REPRO_SERVICE_ADDR=host:port`` makes library clients use a running
daemon: :func:`repro.perf.measure.build` and the fuzz oracle's build
step fetch artifacts from the service (falling back to local builds if
it is unreachable), and ``python -m repro.telemetry dump --addr`` /
``python -m repro.diag report --from-service`` pull the daemon's live
telemetry over the wire.
"""

from .client import (
    ServiceError,
    fetch_metrics,
    fetch_status,
    maybe_remote_build,
    remote_build,
    request,
    service_addr,
)
from .manifest import Manifest, ManifestMismatch, pipeline_fingerprint
from .protocol import PROTOCOL_VERSION, parse_addr
from .store import ShardedStore

__all__ = [
    "Manifest",
    "ManifestMismatch",
    "PROTOCOL_VERSION",
    "ServiceError",
    "ShardedStore",
    "fetch_metrics",
    "fetch_status",
    "maybe_remote_build",
    "parse_addr",
    "pipeline_fingerprint",
    "remote_build",
    "request",
    "service_addr",
]
