"""Provenance manifests: what exactly produced a stored artifact.

Every artifact the service stores gains a small JSON manifest written
atomically beside it (SNIPPETS.md #1's immutable per-build-key +
manifest discipline).  The manifest pins everything a *consumer* must
agree on before trusting the pickle:

* the cache **key** and the **source hash** it covers;
* the build configuration (entry, level, restrict, vl, rle);
* the **pass-pipeline fingerprint** — a hash over the exact pass
  sequence ``repro.pipeline.optimize`` runs at that level plus the
  preserved-analyses contract, so a change to what a level *means*
  changes the fingerprint even when the level name does not;
* the **artifact-format version** (:data:`repro.perf.diskcache.
  FORMAT_VERSION`) and the Python major.minor (the payload is a
  pickle);
* creation lineage: repro version, creating pid/host, creation time.

Loads verify the manifest against the requester's expectations and the
current process; any disagreement raises :class:`ManifestMismatch`,
which the service surfaces as a structured ``manifest-mismatch`` error —
incompatible versions refuse loudly instead of mixing.
"""

from __future__ import annotations

import hashlib
import json
import os
import socket
import sys
import time
from dataclasses import asdict, dataclass
from typing import Optional

from repro import __version__ as REPRO_VERSION
from repro.perf.diskcache import FORMAT_VERSION
from repro.pipeline.pipelines import PASS_PRESERVES, pass_sequence

MANIFEST_VERSION = 1


def source_sha256(source: str) -> str:
    return hashlib.sha256(source.encode()).hexdigest()


def pipeline_fingerprint(level: str, honor_restrict: bool = True,
                         vl: int = 4, rle: bool = False) -> str:
    """Hash of the pass pipeline one build configuration runs.

    Covers the ordered pass sequence (including the vectorizer mode),
    the preserved-analyses contract each pass declares, and the
    configuration knobs that change what the passes do.  Sixteen hex
    chars: enough to never collide by accident, short enough to read in
    a manifest diff.
    """
    preserves = ";".join(
        f"{name}={','.join(sorted(kept))}"
        for name, kept in sorted(PASS_PRESERVES.items())
    )
    text = "\x00".join((
        "|".join(pass_sequence(level, rle)),
        f"restrict={int(bool(honor_restrict))}",
        f"vl={int(vl)}",
        f"preserves={preserves}",
    ))
    return hashlib.sha256(text.encode()).hexdigest()[:16]


@dataclass(frozen=True)
class Manifest:
    """The provenance record stored beside one artifact."""

    key: str
    source_sha256: str
    entry: str
    level: str
    honor_restrict: bool
    vl: int
    rle: bool
    pipeline_fingerprint: str
    artifact_format: int
    manifest_version: int
    repro_version: str
    python: str
    created_at: float
    creator: dict

    def to_dict(self) -> dict:
        return asdict(self)

    @staticmethod
    def from_dict(d: dict) -> "Manifest":
        fields = {f: d[f] for f in Manifest.__dataclass_fields__}
        return Manifest(**fields)


def make_manifest(key: str, source: str, entry: str, level: str,
                  honor_restrict: bool, vl: int, rle: bool,
                  creator: Optional[dict] = None) -> Manifest:
    return Manifest(
        key=key,
        source_sha256=source_sha256(source),
        entry=entry,
        level=level,
        honor_restrict=bool(honor_restrict),
        vl=int(vl),
        rle=bool(rle),
        pipeline_fingerprint=pipeline_fingerprint(
            level, honor_restrict, vl, rle),
        artifact_format=FORMAT_VERSION,
        manifest_version=MANIFEST_VERSION,
        repro_version=REPRO_VERSION,
        python=f"{sys.version_info.major}.{sys.version_info.minor}",
        created_at=time.time(),
        creator=creator or {
            "pid": os.getpid(),
            "host": socket.gethostname(),
        },
    )


class ManifestMismatch(Exception):
    """A stored artifact's provenance disagrees with the requester.

    ``field`` names the first disagreeing manifest field; ``expected``
    and ``actual`` carry both sides, so the structured service error is
    self-describing.
    """

    def __init__(self, key: str, field: str, expected, actual):
        self.key = key
        self.field = field
        self.expected = expected
        self.actual = actual
        super().__init__(
            f"artifact {key[:12]}…: manifest {field} mismatch: "
            f"stored {actual!r} != expected {expected!r}"
        )

    def details(self) -> dict:
        return {"key": self.key, "field": self.field,
                "expected": self.expected, "actual": self.actual}


def verify_manifest(m: Manifest, *, key: str, source: str, entry: str,
                    level: str, honor_restrict: bool, vl: int,
                    rle: bool) -> None:
    """Refuse ``m`` unless it matches the requested build exactly.

    Checked in provenance-severity order: format/schema versions first
    (the pickle may not even be readable), then the pass-pipeline
    fingerprint (the pipeline changed under the same level name), then
    the per-request configuration (a mis-filed artifact).
    """
    expected = {
        "manifest_version": MANIFEST_VERSION,
        "artifact_format": FORMAT_VERSION,
        "python": f"{sys.version_info.major}.{sys.version_info.minor}",
        "pipeline_fingerprint": pipeline_fingerprint(
            level, honor_restrict, vl, rle),
        "key": key,
        "source_sha256": source_sha256(source),
        "entry": entry,
        "level": level,
        "honor_restrict": bool(honor_restrict),
        "vl": int(vl),
        "rle": bool(rle),
    }
    for field, want in expected.items():
        got = getattr(m, field)
        if got != want:
            raise ManifestMismatch(key, field, want, got)


# -- on-disk form -------------------------------------------------------------


def manifest_path(artifact_path: str) -> str:
    """``<key>.pkl`` -> ``<key>.manifest.json`` (always side by side)."""
    base = artifact_path[:-len(".pkl")] if artifact_path.endswith(".pkl") \
        else artifact_path
    return base + ".manifest.json"


def write_manifest(path: str, m: Manifest) -> None:
    """Atomic write (private tmp + ``os.replace``), like the artifact."""
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "w") as f:
        json.dump(m.to_dict(), f, indent=2, sort_keys=True)
        f.write("\n")
    os.replace(tmp, path)


def read_manifest(path: str) -> Optional[Manifest]:
    """The manifest at ``path``, or None when absent/unreadable."""
    try:
        with open(path) as f:
            return Manifest.from_dict(json.load(f))
    except (OSError, ValueError, KeyError, TypeError):
        return None


__all__ = [
    "MANIFEST_VERSION",
    "Manifest",
    "ManifestMismatch",
    "make_manifest",
    "manifest_path",
    "pipeline_fingerprint",
    "read_manifest",
    "source_sha256",
    "verify_manifest",
    "write_manifest",
]
