"""Sharded content-addressed artifact store with provenance manifests.

Grown out of :mod:`repro.perf.diskcache` for the serving setting: one
flat directory with a global mtime scan does not survive N worker
processes hammering it.  Here the key space is split over ``shards``
directories by hash prefix, so

* concurrent writers contend on *one shard*, not the whole store;
* the LRU budget is **per shard** (``cap_per_shard``), so an eviction
  scan walks one directory and runs under that shard's lock file —
  two evictors can never both shrink past the cap or race each other's
  ``stat`` calls;
* occupancy is reportable per shard (the ``status`` endpoint renders
  it), which is how you see a hot prefix before it becomes a problem.

Layout::

    root/
      store.json            # store schema: version, shard count, format
      shard-00/ … shard-NN/
        <key>.pkl           # pickled (module, stats), atomic write
        <key>.manifest.json # provenance manifest, atomic write
        .lock               # per-shard eviction lock (flock)

Every load re-reads and verifies the manifest (see
:mod:`repro.service.manifest`): an absent manifest is a miss (the
artifact is rebuilt and re-manifested), but a *mismatched* one raises
:class:`~repro.service.manifest.ManifestMismatch` — version skew is
refused, never papered over.  Like the flat disk cache, loads unpickle
a fresh object graph per call, so no two consumers ever share IR.
"""

from __future__ import annotations

import json
import os
import pickle
from typing import Optional

from repro import telemetry
from repro.perf.diskcache import FORMAT_VERSION

from .manifest import (
    Manifest,
    make_manifest,
    manifest_path,
    read_manifest,
    verify_manifest,
    write_manifest,
)

try:  # POSIX only; the store degrades to lock-free best effort without
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None

STORE_VERSION = 1
DEFAULT_SHARDS = 8
DEFAULT_CAP_PER_SHARD = 64


def _req(outcome: str) -> None:
    telemetry.counter("repro_service_store_requests_total",
                      "sharded-store lookups by outcome",
                      outcome=outcome).inc()


class _ShardLock:
    """``flock`` on a shard's ``.lock`` file; non-blocking by choice.

    ``blocking=False`` acquisitions that lose the race report
    ``acquired == False`` — an eviction someone else is already running
    does not need to run twice.
    """

    def __init__(self, shard_dir: str, blocking: bool = True):
        self._path = os.path.join(shard_dir, ".lock")
        self._blocking = blocking
        self._fh = None
        self.acquired = False

    def __enter__(self) -> "_ShardLock":
        if fcntl is None:
            self.acquired = True  # best effort without flock
            return self
        try:
            self._fh = open(self._path, "a+")
            flags = fcntl.LOCK_EX | (0 if self._blocking else fcntl.LOCK_NB)
            fcntl.flock(self._fh, flags)
            self.acquired = True
        except OSError:
            if self._fh is not None:
                self._fh.close()
                self._fh = None
            self.acquired = False
        return self

    def __exit__(self, *exc) -> None:
        if self._fh is not None:
            try:
                fcntl.flock(self._fh, fcntl.LOCK_UN)
            except OSError:
                pass
            self._fh.close()
            self._fh = None


class ShardedStore:
    """N-way sharded artifact store; every artifact carries a manifest."""

    def __init__(self, root: str, shards: int = DEFAULT_SHARDS,
                 cap_per_shard: int = DEFAULT_CAP_PER_SHARD):
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        self.root = root
        self.shards = int(shards)
        self.cap_per_shard = int(cap_per_shard)
        os.makedirs(root, exist_ok=True)
        self._check_config()

    # -- layout ---------------------------------------------------------------

    def _config_path(self) -> str:
        return os.path.join(self.root, "store.json")

    def _check_config(self) -> None:
        """Pin the shard count in ``store.json``: reopening an existing
        store with a different shard count would misroute every key, so
        it is refused outright (concurrent creators racing on the first
        write produce identical bytes — last write wins harmlessly)."""
        path = self._config_path()
        config = {"store_version": STORE_VERSION, "shards": self.shards,
                  "artifact_format": FORMAT_VERSION}
        try:
            with open(path) as f:
                existing = json.load(f)
        except (OSError, ValueError):
            tmp = f"{path}.tmp.{os.getpid()}"
            with open(tmp, "w") as f:
                json.dump(config, f, indent=2, sort_keys=True)
            os.replace(tmp, path)
            return
        if existing.get("shards") != self.shards:
            raise ValueError(
                f"store at {self.root!r} was created with "
                f"{existing.get('shards')} shard(s); refusing to open "
                f"with {self.shards}"
            )

    def shard_of(self, key: str) -> int:
        return int(key[:8], 16) % self.shards

    def _shard_dir(self, index: int) -> str:
        return os.path.join(self.root, f"shard-{index:02d}")

    def _artifact_path(self, key: str) -> str:
        return os.path.join(self._shard_dir(self.shard_of(key)),
                            key + ".pkl")

    # -- load / store ---------------------------------------------------------

    def get(self, key: str, *, source: str, entry: str, level: str,
            honor_restrict: bool, vl: int, rle: bool):
        """Return ``(module, stats, manifest)`` or None on miss.

        The manifest is verified before the pickle is touched; a
        mismatch raises :class:`ManifestMismatch` (counted as
        ``refused``).  Corrupt pickles are dropped and miss.
        """
        path = self._artifact_path(key)
        m = read_manifest(manifest_path(path))
        if m is None:
            _req("miss")
            return None
        try:
            verify_manifest(m, key=key, source=source, entry=entry,
                            level=level, honor_restrict=honor_restrict,
                            vl=vl, rle=rle)
        except Exception:
            _req("refused")
            raise
        try:
            with open(path, "rb") as f:
                payload = f.read()
            module, stats = pickle.loads(payload)
        except FileNotFoundError:
            _req("miss")
            return None
        except Exception:
            _req("error")
            for victim in (path, manifest_path(path)):
                try:
                    os.remove(victim)
                except OSError:
                    pass
            return None
        for p in (path, manifest_path(path)):
            try:
                os.utime(p)  # eviction is least-recently-used
            except OSError:
                pass
        _req("hit")
        telemetry.counter("repro_service_store_bytes_total",
                          "sharded-store bytes moved",
                          direction="read").inc(len(payload))
        return module, stats, m

    def put(self, key: str, module, stats, m: Manifest) -> Optional[str]:
        """Persist artifact + manifest atomically; best-effort.

        The manifest lands *after* the pickle: a reader that sees the
        manifest can rely on the artifact being in place (the reverse
        order would advertise an artifact that is not there yet).
        """
        path = self._artifact_path(key)
        tmp = f"{path}.tmp.{os.getpid()}"
        try:
            payload = pickle.dumps((module, stats),
                                   protocol=pickle.HIGHEST_PROTOCOL)
            os.makedirs(os.path.dirname(path), exist_ok=True)
            with open(tmp, "wb") as f:
                f.write(payload)
            os.replace(tmp, path)
            write_manifest(manifest_path(path), m)
        except Exception:
            try:
                os.remove(tmp)
            except OSError:
                pass
            return None
        telemetry.counter("repro_service_store_stores_total",
                          "sharded-store artifacts written").inc()
        telemetry.counter("repro_service_store_bytes_total",
                          "sharded-store bytes moved",
                          direction="written").inc(len(payload))
        self._evict(self.shard_of(key))
        return path

    def build_manifest(self, key: str, source: str, entry: str, level: str,
                       honor_restrict: bool, vl: int, rle: bool,
                       creator: Optional[dict] = None) -> Manifest:
        return make_manifest(key, source, entry, level, honor_restrict,
                             vl, rle, creator=creator)

    # -- eviction / occupancy -------------------------------------------------

    def _evict(self, index: int) -> None:
        """Shrink one shard to its LRU budget, under the shard lock.

        Non-blocking: if another process holds the lock it is already
        evicting this shard, so there is nothing to do.  The scan
        tolerates entries vanishing mid-flight (a concurrent evictor
        from before the lock, a concurrent ``get`` dropping a corrupt
        entry).
        """
        shard_dir = self._shard_dir(index)
        if not os.path.isdir(shard_dir):
            return
        with _ShardLock(shard_dir, blocking=False) as lock:
            if not lock.acquired:
                return
            entries = []
            try:
                names = os.listdir(shard_dir)
            except OSError:
                return
            for name in names:
                if not name.endswith(".pkl"):
                    continue
                p = os.path.join(shard_dir, name)
                try:
                    entries.append((os.path.getmtime(p), p))
                except (FileNotFoundError, OSError):
                    pass
            if len(entries) <= self.cap_per_shard:
                return
            entries.sort()
            for _, p in entries[: len(entries) - self.cap_per_shard]:
                for victim in (p, manifest_path(p)):
                    try:
                        os.remove(victim)
                    except OSError:
                        pass
                telemetry.counter(
                    "repro_service_store_evictions_total",
                    "sharded-store LRU evictions",
                    shard=f"{index:02d}").inc()

    def occupancy(self) -> list[dict]:
        """Per-shard ``{shard, entries, bytes, cap}`` rows (all shards,
        including empty ones, so the distribution is visible)."""
        rows = []
        for i in range(self.shards):
            shard_dir = self._shard_dir(i)
            entries = 0
            size = 0
            try:
                names = os.listdir(shard_dir)
            except OSError:
                names = []
            for name in names:
                if name.endswith(".pkl"):
                    entries += 1
                if name.endswith((".pkl", ".manifest.json")):
                    try:
                        size += os.path.getsize(
                            os.path.join(shard_dir, name))
                    except OSError:
                        pass
            rows.append({"shard": i, "entries": entries, "bytes": size,
                         "cap": self.cap_per_shard})
        return rows

    def entry_count(self) -> int:
        return sum(r["entries"] for r in self.occupancy())


__all__ = ["DEFAULT_CAP_PER_SHARD", "DEFAULT_SHARDS", "STORE_VERSION",
           "ShardedStore"]
