"""The daemon: asyncio front end over a multiprocessing worker pool.

Request lifecycle::

    client ──NDJSON──▶ asyncio handler
        parent op (ping/metrics/status/shutdown)?  answer in place
        else:
            single-flight: identical request already in flight?
                await its future (counted, response marked coalesced)
            else enqueue ──▶ dispatcher drains the queue into a
                micro-batch ──▶ pool.map_async over the batch
                (the ``perf.batch.build_many`` protocol generalized:
                ordered map, per-task telemetry deltas absorbed by the
                parent) ──▶ futures resolved, responses written

**Single-flight** is keyed by the canonical JSON of ``(op, params)``:
any number of identical concurrent requests trigger exactly one worker
task, and the late arrivals are answered from the same result
(``repro_service_singleflight_total`` counts them; coalesced responses
carry ``"coalesced": true``).  Requests that *completed* are not
memoized here — the sharded store is the cache, and every store answer
is manifest-verified.

**Micro-batching**: the dispatcher takes whatever is queued (up to
``max_batch``) and ships it to the pool as one ordered ``map_async``.
Under a request storm this amortizes pool dispatch overhead exactly the
way ``build_many`` batches a bench sweep's builds; under light load a
batch is simply one request.
"""

from __future__ import annotations

import asyncio
import json
import os
import time
from typing import Optional

from repro import __version__ as REPRO_VERSION
from repro import telemetry

from . import protocol
from .store import DEFAULT_CAP_PER_SHARD, DEFAULT_SHARDS, ShardedStore
from .workers import handle_task, init_worker


class _Pending:
    """One dispatched request: the task dict plus its waiters' future."""

    __slots__ = ("sig", "task", "future")

    def __init__(self, sig: str, task: dict,
                 future: "asyncio.Future"):
        self.sig = sig
        self.task = task
        self.future = future


def _signature(op: str, params: dict) -> str:
    """Canonical identity of a request for single-flight dedup."""
    return json.dumps({"op": op, "params": params}, sort_keys=True,
                      separators=(",", ":"))


class ServiceServer:
    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 workers: int = 2, store_root: Optional[str] = None,
                 shards: int = DEFAULT_SHARDS,
                 cap_per_shard: int = DEFAULT_CAP_PER_SHARD,
                 max_batch: int = 16):
        self.host = host
        self.port = port
        self.workers = max(1, int(workers))
        self.store_root = store_root
        self.shards = shards
        self.cap_per_shard = cap_per_shard
        self.max_batch = max(1, int(max_batch))
        # the parent opens the store too: status reports occupancy
        # without a round trip through a worker
        self.store = (ShardedStore(store_root, shards, cap_per_shard)
                      if store_root else None)
        self._pool = None
        self._queue: "asyncio.Queue[_Pending]" = None  # set in serve()
        self._inflight: dict[str, _Pending] = {}
        # distributed-campaign lease table: lease id -> result future.
        # Leases bypass single-flight (two batches are never identical
        # work, and a re-leased batch must re-run, not coalesce).
        self._leases: dict[str, "asyncio.Future"] = {}
        self._stop = None  # asyncio.Event, set in serve()
        self._started_at = time.time()
        self._requests: dict[str, int] = {}
        self._coalesced = 0
        self._batches = 0

    # -- lifecycle ------------------------------------------------------------

    def _start_pool(self):
        import multiprocessing as mp

        self._pool = mp.Pool(
            self.workers, initializer=init_worker,
            initargs=(self.store_root, self.shards, self.cap_per_shard),
        )

    async def serve(self, addr_file: Optional[str] = None,
                    ready_message: bool = True) -> None:
        """Run until a ``shutdown`` request (or cancellation)."""
        loop = asyncio.get_running_loop()
        self._queue = asyncio.Queue()
        self._stop = asyncio.Event()
        self._start_pool()
        server = await asyncio.start_server(
            self._handle_conn, self.host, self.port,
            limit=protocol.MAX_LINE_BYTES,
        )
        self.port = server.sockets[0].getsockname()[1]
        addr = protocol.format_addr(self.host, self.port)
        if addr_file:
            tmp = f"{addr_file}.tmp.{os.getpid()}"
            with open(tmp, "w") as f:
                f.write(addr + "\n")
            os.replace(tmp, addr_file)
        if ready_message:
            print(f"repro.service: listening on {addr} "
                  f"({self.workers} worker(s), store="
                  f"{self.store_root or 'off'})", flush=True)
        dispatcher = loop.create_task(self._dispatch_loop())
        try:
            async with server:
                await self._stop.wait()
        finally:
            dispatcher.cancel()
            pool, self._pool = self._pool, None
            if pool is not None:
                pool.close()
                pool.join()
            for p in self._inflight.values():
                if not p.future.done():
                    p.future.set_exception(
                        ConnectionError("service shut down"))
            self._inflight.clear()
            for fut in self._leases.values():
                if not fut.done():
                    fut.set_exception(ConnectionError("service shut down"))
            self._leases.clear()

    # -- connection handling --------------------------------------------------

    async def _handle_conn(self, reader: asyncio.StreamReader,
                           writer: asyncio.StreamWriter) -> None:
        write_lock = asyncio.Lock()
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    async with write_lock:
                        writer.write(protocol.encode(protocol.error_response(
                            None, protocol.ERR_BAD_REQUEST,
                            "request line too long")))
                        await writer.drain()
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                # handle concurrently so one slow build does not stall
                # pipelined requests behind it on the same connection
                asyncio.get_running_loop().create_task(
                    self._handle_request(line, writer, write_lock))
        except ConnectionError:
            pass
        except asyncio.CancelledError:
            # loop teardown after shutdown cancels parked readers; ending
            # the task normally keeps the streams machinery quiet
            pass
        finally:
            try:
                writer.close()
            except Exception:
                pass

    async def _handle_request(self, line: bytes,
                              writer: asyncio.StreamWriter,
                              write_lock: asyncio.Lock) -> None:
        t0 = time.perf_counter()
        try:
            req = protocol.decode(line)
        except ValueError as e:
            await self._write(writer, write_lock, protocol.error_response(
                None, protocol.ERR_BAD_REQUEST, f"bad JSON: {e}"))
            return
        req_id = req.get("id")
        op = req.get("op")
        params = req.get("params") or {}
        self._requests[op] = self._requests.get(op, 0) + 1
        telemetry.counter("repro_service_requests_total",
                          "service requests by op", op=str(op)).inc()
        try:
            if op in protocol.PARENT_OPS:
                resp = self._parent_op(req_id, op, params)
            elif op in protocol.CAMPAIGN_OPS:
                resp = await self._campaign_op(req_id, op, params)
            elif op in protocol.OPS:
                resp = await self._dispatch(req_id, op, params)
            else:
                resp = protocol.error_response(
                    req_id, protocol.ERR_UNKNOWN_OP,
                    f"unknown op {op!r}")
        except Exception as e:
            resp = protocol.error_response(
                req_id, protocol.ERR_INTERNAL,
                f"{type(e).__name__}: {e}")
        telemetry.histogram("repro_service_request_seconds",
                            "request handling wall time",
                            op=str(op)).observe(time.perf_counter() - t0)
        await self._write(writer, write_lock, resp)
        if op == "shutdown":
            self._stop.set()

    async def _write(self, writer, write_lock, resp: dict) -> None:
        try:
            async with write_lock:
                writer.write(protocol.encode(resp))
                await writer.drain()
        except ConnectionError:
            pass

    # -- parent-side ops ------------------------------------------------------

    def _parent_op(self, req_id, op: str, params: dict) -> dict:
        if op == "ping":
            return protocol.ok_response(
                req_id, version=REPRO_VERSION,
                protocol=protocol.PROTOCOL_VERSION)
        if op == "metrics":
            snap = telemetry.snapshot(include_spans=False)
            if params.get("format") == "prom":
                return protocol.ok_response(
                    req_id, prom=telemetry.to_prometheus(snap))
            return protocol.ok_response(req_id, snapshot=snap)
        if op == "status":
            return protocol.ok_response(req_id, status=self.status())
        if op == "shutdown":
            return protocol.ok_response(req_id, stopping=True)
        raise AssertionError(op)

    def status(self) -> dict:
        store = None
        if self.store is not None:
            occupancy = self.store.occupancy()
            store = {
                "root": self.store.root,
                "shards": self.store.shards,
                "cap_per_shard": self.store.cap_per_shard,
                "per_shard": occupancy,
                "total_entries": sum(r["entries"] for r in occupancy),
                "total_bytes": sum(r["bytes"] for r in occupancy),
            }
        return {
            "version": REPRO_VERSION,
            "protocol": protocol.PROTOCOL_VERSION,
            "pid": os.getpid(),
            "addr": protocol.format_addr(self.host, self.port),
            "uptime_s": time.time() - self._started_at,
            "workers": self.workers,
            "max_batch": self.max_batch,
            "requests": dict(sorted(self._requests.items())),
            "inflight": len(self._inflight),
            "leases": len(self._leases),
            "singleflight_coalesced": self._coalesced,
            "batches": self._batches,
            "store": store,
        }

    # -- distributed-campaign leases ------------------------------------------

    async def _campaign_op(self, req_id, op: str, params: dict) -> dict:
        if op == "campaign.heartbeat":
            return protocol.ok_response(req_id, leases={
                lid: ("done" if fut.done() else "running")
                for lid, fut in self._leases.items()
            })
        lease_id = params.get("lease")
        if not isinstance(lease_id, str) or not lease_id:
            return protocol.error_response(
                req_id, protocol.ERR_BAD_REQUEST,
                f"{op} needs a string 'lease' id")
        if op == "campaign.lease":
            if lease_id in self._leases:
                return protocol.error_response(
                    req_id, protocol.ERR_BAD_REQUEST,
                    f"lease {lease_id!r} already exists")
            tasks = params.get("tasks")
            if not isinstance(tasks, list) or not tasks:
                return protocol.error_response(
                    req_id, protocol.ERR_BAD_REQUEST,
                    "campaign.lease needs a non-empty 'tasks' list")
            future = asyncio.get_running_loop().create_future()
            self._leases[lease_id] = future
            # enqueue alongside regular requests — one lease is one
            # worker-pool task (the batch amortizes dispatch, exactly
            # like a build micro-batch)
            await self._queue.put(_Pending(
                f"lease:{lease_id}",
                {"id": None, "op": "campaign.batch", "params": params},
                future))
            telemetry.counter("repro_service_leases_total",
                              "campaign batches leased to this daemon").inc()
            return protocol.ok_response(req_id, lease=lease_id,
                                        tasks=len(tasks))
        # campaign.result — await the batch, hand back its rows, drop
        # the lease (pipelining keeps heartbeats on the same connection
        # responsive while this waits)
        future = self._leases.get(lease_id)
        if future is None:
            return protocol.error_response(
                req_id, protocol.ERR_BAD_REQUEST,
                f"unknown lease {lease_id!r}")
        try:
            resp = dict(await asyncio.shield(future))
        finally:
            self._leases.pop(lease_id, None)
        resp["id"] = req_id
        resp["lease"] = lease_id
        return resp

    # -- single-flight + batched dispatch -------------------------------------

    async def _dispatch(self, req_id, op: str, params: dict) -> dict:
        sig = _signature(op, params)
        pending = self._inflight.get(sig)
        if pending is not None:
            self._coalesced += 1
            telemetry.counter(
                "repro_service_singleflight_total",
                "requests coalesced onto an identical in-flight one",
                op=op).inc()
            resp = dict(await asyncio.shield(pending.future))
            resp["id"] = req_id
            resp["coalesced"] = True
            return resp
        future = asyncio.get_running_loop().create_future()
        pending = _Pending(sig, {"id": None, "op": op, "params": params},
                           future)
        self._inflight[sig] = pending
        await self._queue.put(pending)
        telemetry.gauge("repro_service_inflight",
                        "requests currently in flight").set(
            len(self._inflight))
        try:
            resp = dict(await asyncio.shield(future))
        finally:
            self._inflight.pop(sig, None)
            telemetry.gauge("repro_service_inflight",
                            "requests currently in flight").set(
                len(self._inflight))
        resp["id"] = req_id
        return resp

    async def _dispatch_loop(self) -> None:
        """Drain the queue into micro-batches and ship them to the pool."""
        loop = asyncio.get_running_loop()
        while True:
            batch = [await self._queue.get()]
            while (len(batch) < self.max_batch
                   and not self._queue.empty()):
                batch.append(self._queue.get_nowait())
            self._batches += 1
            telemetry.counter("repro_service_batches_total",
                              "worker-pool micro-batches dispatched").inc()
            telemetry.histogram("repro_service_batch_size",
                                "requests per micro-batch",
                                buckets=tuple(
                                    float(1 << k) for k in range(10)),
                                ).observe(len(batch))
            done = loop.create_future()
            self._pool.map_async(
                handle_task, [p.task for p in batch],
                callback=lambda rows: loop.call_soon_threadsafe(
                    done.set_result, rows),
                error_callback=lambda exc: loop.call_soon_threadsafe(
                    done.set_exception, exc),
            )
            try:
                rows = await done
            except Exception as e:
                for p in batch:
                    if not p.future.done():
                        p.future.set_exception(e)
                continue
            for p, (resp, snap) in zip(batch, rows):
                if telemetry.absorb(snap):
                    telemetry.counter(
                        "repro_worker_snapshots_merged_total",
                        "worker telemetry snapshots absorbed by the "
                        "parent", kind="service").inc()
                if not p.future.done():
                    p.future.set_result(resp)


def serve_forever(host: str, port: int, workers: int,
                  store_root: Optional[str], shards: int,
                  cap_per_shard: int, max_batch: int = 16,
                  addr_file: Optional[str] = None) -> None:
    """Blocking entry point used by the CLI."""
    server = ServiceServer(host, port, workers, store_root, shards,
                           cap_per_shard, max_batch)
    try:
        asyncio.run(server.serve(addr_file=addr_file))
    except KeyboardInterrupt:
        pass


__all__ = ["ServiceServer", "serve_forever"]
