"""The service wire format: newline-delimited JSON over a stream socket.

One request is one JSON object on one line; the response is one JSON
object on one line.  Clients may pipeline (every request carries an
``id`` the response echoes), but the bundled client keeps it simple and
uses one connection per request.

Request shape::

    {"op": "build", "id": 7, "params": {...}}

Response shape::

    {"ok": true,  "id": 7, ...op-specific fields...}
    {"ok": false, "id": 7, "error": {"code": "...", "message": "...",
                                     "details": {...}}}

Ops
---

``ping``      liveness + versions (handled in the server process).
``build``     compile + optimize one configuration through the sharded
              store; returns the cache key, the provenance manifest, and
              (``want_artifact``) the pickled artifact, base64-encoded.
``run``       build (as above) then execute; params carry either
              explicit ``source`` + ``bindings`` (the corpus encoding:
              array/alias/scalar/global entries) or a named suite
              workload (``suite`` + ``workload``); returns cycles,
              counters, checksum, return value.
``diag``      a fresh diagnostics-enabled build; returns the rendered
              remark stream and per-pass records.
``fuzz``      one generator seed through the differential oracle.
``metrics``   the daemon's merged telemetry snapshot (or Prometheus
              text with ``format: "prom"``).
``status``    uptime, request/single-flight/batch counts, worker pool
              size, per-shard store occupancy.
``shutdown``  graceful stop (the response is sent first).

Campaign ops (the distributed-fuzzing lease protocol; a campaign
coordinator keeps one pipelined connection per daemon):

``campaign.lease``      accept a batch of campaign tasks for execution:
                        ``{"lease": id, "tasks": [...], "refs": {hash:
                        ref}}``.  The daemon acks immediately and runs
                        the batch on its worker pool; ``refs`` carries
                        content-addressed O0 reference results the
                        coordinator ships at most once per host.
``campaign.result``     await one lease's rows: ``{"lease": id}`` blocks
                        (pipelined heartbeats stay responsive) until the
                        batch completes, then returns ``rows`` +
                        newly-computed ``refs`` + the batch's telemetry
                        delta ``snapshot``, and drops the lease.
``campaign.heartbeat``  liveness + per-lease state (``running``/
                        ``done``); the coordinator re-leases a batch
                        when heartbeats stop answering.

Error codes are stable strings: ``bad-request``, ``unknown-op``,
``manifest-mismatch``, ``build-failed``, ``internal``.
"""

from __future__ import annotations

import json
from typing import Optional

PROTOCOL_VERSION = 2

#: Upper bound for one protocol line (requests carry whole kernel
#: sources; build responses may carry a base64 pickled artifact).
MAX_LINE_BYTES = 64 * 1024 * 1024

OPS = ("ping", "build", "run", "diag", "fuzz", "metrics", "status",
       "shutdown", "campaign.lease", "campaign.result",
       "campaign.heartbeat")

#: Ops answered by the asyncio front end itself; everything else is
#: dispatched to the worker pool.
PARENT_OPS = ("ping", "metrics", "status", "shutdown")

#: The distributed-campaign lease protocol: accepted and tracked by the
#: asyncio front end (the lease table lives there), with the batch body
#: running on the worker pool as an internal ``campaign.batch`` task.
CAMPAIGN_OPS = ("campaign.lease", "campaign.result", "campaign.heartbeat")

ERR_BAD_REQUEST = "bad-request"
ERR_UNKNOWN_OP = "unknown-op"
ERR_MANIFEST_MISMATCH = "manifest-mismatch"
ERR_BUILD_FAILED = "build-failed"
ERR_INTERNAL = "internal"


def encode(obj: dict) -> bytes:
    """One protocol line: compact JSON + newline."""
    return json.dumps(obj, separators=(",", ":")).encode() + b"\n"


def decode(line: bytes) -> dict:
    obj = json.loads(line)
    if not isinstance(obj, dict):
        raise ValueError("protocol messages must be JSON objects")
    return obj


def ok_response(req_id, **fields) -> dict:
    resp = {"ok": True, "id": req_id}
    resp.update(fields)
    return resp


def error_response(req_id, code: str, message: str,
                   details: Optional[dict] = None) -> dict:
    err = {"code": code, "message": message}
    if details:
        err["details"] = details
    return {"ok": False, "id": req_id, "error": err}


def parse_addr(addr: str) -> tuple[str, int]:
    """``"host:port"`` -> ``(host, port)`` (the one address syntax)."""
    host, sep, port = addr.rpartition(":")
    if not sep or not host:
        raise ValueError(f"service address {addr!r} is not host:port")
    return host, int(port)


def format_addr(host: str, port: int) -> str:
    return f"{host}:{port}"


__all__ = [
    "CAMPAIGN_OPS",
    "ERR_BAD_REQUEST",
    "ERR_BUILD_FAILED",
    "ERR_INTERNAL",
    "ERR_MANIFEST_MISMATCH",
    "ERR_UNKNOWN_OP",
    "MAX_LINE_BYTES",
    "OPS",
    "PARENT_OPS",
    "PROTOCOL_VERSION",
    "decode",
    "encode",
    "error_response",
    "format_addr",
    "ok_response",
    "parse_addr",
]
