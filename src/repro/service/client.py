"""Blocking client for the compile service.

One connection per request, one NDJSON line each way — deliberately
boring, so it works from worker pools, test fixtures, shell pipelines,
and the library integration points alike.

``REPRO_SERVICE_ADDR=host:port`` is the one environment knob:
:func:`service_addr` reads it, and :func:`maybe_remote_build` is the
library-side integration used by :func:`repro.perf.measure.build` and
the fuzz oracle — when the variable is set and the daemon answers, the
build comes back as a fresh unpickle of the service artifact (manifest-
verified on the service side); when the daemon is unreachable the caller
falls back to building locally (counted, never silent in telemetry).
A *structured* service error (e.g. ``manifest-mismatch``) is raised, not
swallowed: the daemon refusing an artifact is a real answer.
"""

from __future__ import annotations

import base64
import os
import pickle
import random
import socket
import time
from typing import Optional

from repro import telemetry

from . import protocol

DEFAULT_TIMEOUT = 300.0

ADDR_ENV = "REPRO_SERVICE_ADDR"

#: Bounded retry for *transient* transport failures (a daemon restarting
#: mid-campaign throws ``ECONNREFUSED`` for a few hundred ms; an
#: overloaded accept queue resets connections) — falling back in-process
#: on the first refused connect converts a blip into a silent local
#: rebuild.  Overridable per process for tests and impatient callers.
RETRY_ATTEMPTS_ENV = "REPRO_SERVICE_RETRIES"
RETRY_BASE_ENV = "REPRO_SERVICE_RETRY_BASE"
DEFAULT_RETRY_ATTEMPTS = 3
DEFAULT_RETRY_BASE_S = 0.05


class ServiceError(Exception):
    """A structured error response from the daemon."""

    def __init__(self, code: str, message: str,
                 details: Optional[dict] = None):
        self.code = code
        self.details = details or {}
        super().__init__(f"[{code}] {message}")


def service_addr() -> Optional[str]:
    """The configured daemon address, or None when unset."""
    addr = os.environ.get(ADDR_ENV, "").strip()
    return addr or None


def request(addr: str, payload: dict,
            timeout: float = DEFAULT_TIMEOUT) -> dict:
    """Send one request, return the raw response dict.

    Raises :class:`ServiceError` for ``ok: false`` responses and the
    usual ``OSError`` family for transport failures.
    """
    host, port = protocol.parse_addr(addr)
    with socket.create_connection((host, port), timeout=timeout) as sock:
        sock.sendall(protocol.encode(payload))
        with sock.makefile("rb") as f:
            line = f.readline()
    if not line:
        raise ConnectionError(f"service at {addr} closed the connection")
    resp = protocol.decode(line)
    if not resp.get("ok"):
        err = resp.get("error") or {}
        raise ServiceError(err.get("code", "unknown"),
                           err.get("message", "unspecified error"),
                           err.get("details"))
    return resp


def retry_attempts() -> int:
    return max(1, int(os.environ.get(RETRY_ATTEMPTS_ENV,
                                     DEFAULT_RETRY_ATTEMPTS)))


def request_with_retry(addr: str, payload: dict,
                       timeout: float = DEFAULT_TIMEOUT,
                       attempts: Optional[int] = None) -> dict:
    """:func:`request` with bounded retry + jittered backoff.

    Only transport-level failures (the ``OSError`` family — which
    includes ``ConnectionResetError`` and ``ECONNREFUSED`` — plus a
    garbled response line) are retried; a structured
    :class:`ServiceError` is a real answer and propagates immediately.
    The last error re-raises after the attempts are exhausted.
    """
    attempts = retry_attempts() if attempts is None else max(1, attempts)
    base = float(os.environ.get(RETRY_BASE_ENV, DEFAULT_RETRY_BASE_S))
    last: Optional[Exception] = None
    for i in range(attempts):
        try:
            return request(addr, payload, timeout=timeout)
        except ServiceError:
            raise
        except (OSError, ValueError) as e:
            last = e
            if i + 1 < attempts:
                telemetry.counter(
                    "repro_service_retries_total",
                    "transient service transport failures retried",
                    op=str(payload.get("op"))).inc()
                time.sleep(base * (1 << i) * (1.0 + random.random()))
    assert last is not None
    raise last


def _call(addr: str, op: str, params: Optional[dict] = None,
          req_id=0, timeout: float = DEFAULT_TIMEOUT) -> dict:
    return request(addr, {"op": op, "id": req_id, "params": params or {}},
                   timeout=timeout)


# -- typed helpers ------------------------------------------------------------


def ping(addr: str, timeout: float = DEFAULT_TIMEOUT) -> dict:
    return _call(addr, "ping", timeout=timeout)


def remote_build(addr: str, source: str, entry: str = "kernel",
                 level: str = "supervec+v", honor_restrict: bool = True,
                 vl: int = 4, rle: bool = False,
                 want_artifact: bool = True,
                 timeout: float = DEFAULT_TIMEOUT) -> dict:
    """One build through the daemon; with ``want_artifact`` the response
    gains ``module``/``stats`` unpickled from the shipped artifact (a
    fresh object graph per call, the disk-cache guarantee)."""
    resp = _call(addr, "build", {
        "source": source, "entry": entry, "level": level,
        "honor_restrict": honor_restrict, "vl": vl, "rle": rle,
        "want_artifact": bool(want_artifact),
    }, timeout=timeout)
    if want_artifact and resp.get("artifact"):
        module, stats = pickle.loads(
            base64.b64decode(resp["artifact"]))
        resp["module"] = module
        resp["stats"] = stats
    return resp


def maybe_remote_build(source: str, entry: str, level: str,
                       honor_restrict: bool, vl: int, rle: bool):
    """``(module, stats)`` from the configured daemon, or None.

    None means "build locally": the address is unset, or the daemon
    stayed unreachable through a bounded jittered-backoff retry
    (transient resets/refused connects are retried first — only an
    *exhausted* retry counts ``repro_service_fallback_total`` and the
    legacy ``repro_service_client_requests_total{outcome="unreachable"}``
    before falling back).  Structured refusals — above all
    ``manifest-mismatch`` — propagate: a provenance conflict must never
    degrade into a silent local rebuild.
    """
    addr = service_addr()
    if addr is None:
        return None
    payload = {"op": "build", "id": 0, "params": {
        "source": source, "entry": entry, "level": level,
        "honor_restrict": honor_restrict, "vl": vl, "rle": rle,
        "want_artifact": True,
    }}
    try:
        resp = request_with_retry(addr, payload)
    except (OSError, ValueError) as e:
        telemetry.counter("repro_service_client_requests_total",
                          "library-side service calls by outcome",
                          outcome="unreachable").inc()
        telemetry.counter("repro_service_fallback_total",
                          "local fallbacks after exhausting the "
                          "transport retry budget",
                          reason=type(e).__name__).inc()
        return None
    telemetry.counter("repro_service_client_requests_total",
                      "library-side service calls by outcome",
                      outcome=resp.get("origin", "ok")).inc()
    module, stats = pickle.loads(base64.b64decode(resp["artifact"]))
    return module, stats


def remote_run(addr: str, params: dict,
               timeout: float = DEFAULT_TIMEOUT) -> dict:
    return _call(addr, "run", params, timeout=timeout)


def remote_fuzz(addr: str, seed: int, full: bool = False,
                timeout: float = DEFAULT_TIMEOUT) -> dict:
    return _call(addr, "fuzz", {"seed": seed, "full": full},
                 timeout=timeout)


def fetch_metrics(addr: str, prom: bool = False,
                  timeout: float = DEFAULT_TIMEOUT):
    """The daemon's merged telemetry: snapshot dict, or Prometheus text
    with ``prom=True``."""
    params = {"format": "prom"} if prom else {}
    resp = _call(addr, "metrics", params, timeout=timeout)
    return resp["prom"] if prom else resp["snapshot"]


def fetch_status(addr: str, timeout: float = DEFAULT_TIMEOUT) -> dict:
    return _call(addr, "status", timeout=timeout)["status"]


def shutdown(addr: str, timeout: float = DEFAULT_TIMEOUT) -> dict:
    return _call(addr, "shutdown", timeout=timeout)


__all__ = [
    "ADDR_ENV",
    "RETRY_ATTEMPTS_ENV",
    "RETRY_BASE_ENV",
    "ServiceError",
    "fetch_metrics",
    "fetch_status",
    "maybe_remote_build",
    "ping",
    "remote_build",
    "remote_fuzz",
    "remote_run",
    "request",
    "request_with_retry",
    "retry_attempts",
    "service_addr",
    "shutdown",
]
