"""Worker-side request handlers for the compile service.

Everything CPU-bound — compiling, optimizing, executing, fuzzing — runs
here, inside ``multiprocessing.Pool`` workers the server forks at
startup.  The contract mirrors :mod:`repro.perf.batch`:

* task bodies are module-level functions over plain dicts, so they
  pickle;
* each task zeroes the fork-inherited telemetry registry at start and
  ships a per-task delta snapshot home with its result, which the
  parent ``absorb()``s — worker counters (store traffic, pipeline
  builds) survive the process boundary without double counting;
* workers never serve from an in-process memo: every build consults the
  sharded store, so a "cache hit" response is always a
  **manifest-verified** load, never a stale private copy.

Workers deliberately clear ``REPRO_SERVICE_ADDR`` at init: library code
they call (``measure.build``, the fuzz oracle) would otherwise route its
builds back to the very daemon these workers serve, deadlocking a
single-worker pool on itself.
"""

from __future__ import annotations

import base64
import os
import pickle
import traceback
from typing import Optional

from repro import telemetry
from repro.frontend import compile_c
from repro.perf import diskcache
from repro.perf.measure import (
    AliasArg,
    ArrayArg,
    ScalarArg,
    Workload,
    execute,
)
from repro.pipeline.pipelines import optimize

from .manifest import ManifestMismatch
from .protocol import (
    ERR_BAD_REQUEST,
    ERR_BUILD_FAILED,
    ERR_INTERNAL,
    ERR_MANIFEST_MISMATCH,
    ERR_UNKNOWN_OP,
    error_response,
    ok_response,
)
from .store import ShardedStore

_STORE: Optional[ShardedStore] = None


def init_worker(store_root: Optional[str], shards: int,
                cap_per_shard: int) -> None:
    """Pool initializer: open the shared store, break request loops."""
    global _STORE
    os.environ.pop("REPRO_SERVICE_ADDR", None)
    _STORE = (ShardedStore(store_root, shards, cap_per_shard)
              if store_root else None)


# -- build --------------------------------------------------------------------


def _build_params(params: dict) -> dict:
    """Normalize + default the build-configuration fields."""
    source = params.get("source")
    if not isinstance(source, str) or not source.strip():
        raise ValueError("build/run requests need a non-empty 'source'")
    return {
        "source": source,
        "entry": params.get("entry", "kernel"),
        "level": params.get("level", "supervec+v"),
        "honor_restrict": bool(params.get("honor_restrict", True)),
        "vl": int(params.get("vl", 4)),
        "rle": bool(params.get("rle", False)),
    }


def _store_build(bp: dict):
    """Build one configuration through the sharded store.

    Returns ``(module, stats, manifest, origin)`` with ``origin`` one of
    ``"store"`` (manifest-verified load) or ``"built"`` (fresh pipeline
    run, stored with a new manifest).  :class:`ManifestMismatch`
    propagates — version skew is the caller's problem to surface, not
    ours to rebuild over.
    """
    key = diskcache.cache_key(bp["source"], bp["entry"], bp["level"],
                              bp["honor_restrict"], bp["vl"], bp["rle"])
    if _STORE is not None:
        hit = _STORE.get(key, source=bp["source"], entry=bp["entry"],
                         level=bp["level"],
                         honor_restrict=bp["honor_restrict"],
                         vl=bp["vl"], rle=bp["rle"])
        if hit is not None:
            module, stats, m = hit
            telemetry.counter("repro_service_builds_total",
                              "service builds by origin",
                              origin="store").inc()
            return module, stats, m, "store"
    with telemetry.span("service.build", detail=bp["entry"],
                        level=bp["level"]):
        module = compile_c(bp["source"], name=bp["entry"])
        stats = optimize(module, bp["level"],
                         honor_restrict=bp["honor_restrict"],
                         vl=bp["vl"], rle=bp["rle"])
    telemetry.counter("repro_service_builds_total",
                      "service builds by origin", origin="built").inc()
    m = None
    if _STORE is not None:
        m = _STORE.build_manifest(key, bp["source"], bp["entry"],
                                  bp["level"], bp["honor_restrict"],
                                  bp["vl"], bp["rle"])
        _STORE.put(key, module, stats, m)
    return module, stats, m, "built"


def _op_build(req_id, params: dict) -> dict:
    bp = _build_params(params)
    module, stats, m, origin = _store_build(bp)
    resp = ok_response(
        req_id,
        key=diskcache.cache_key(bp["source"], bp["entry"], bp["level"],
                                bp["honor_restrict"], bp["vl"], bp["rle"]),
        origin=origin,
        manifest=m.to_dict() if m is not None else None,
    )
    if params.get("want_artifact"):
        payload = pickle.dumps((module, stats),
                               protocol=pickle.HIGHEST_PROTOCOL)
        resp["artifact"] = base64.b64encode(payload).decode("ascii")
    return resp


# -- run ----------------------------------------------------------------------


def _workload_from_bindings(name: str, source: str, entry: str,
                            bindings: list) -> Workload:
    """The corpus binding encoding -> a Workload (plus ``global``
    entries, which the corpus format does not need but TSVC-style
    kernels do)."""
    args: list = []
    globals_init: dict = {}
    for b in bindings:
        kind = b[0]
        if kind == "array":
            _, bname, size, values = b
            values = [float(v) for v in values]
            args.append(ArrayArg(bname, int(size),
                                 init=lambda i, v=values: v[i]))
        elif kind == "alias":
            _, bname, of, offset = b
            args.append(AliasArg(bname, of, int(offset)))
        elif kind == "scalar":
            args.append(ScalarArg(b[1], b[2]))
        elif kind == "global":
            _, gname, values = b
            values = [float(v) for v in values]
            globals_init[gname] = lambda i, v=values: v[i]
        else:
            raise ValueError(f"unknown binding kind {kind!r}")
    return Workload(name=name, source=source, entry=entry, args=args,
                    globals_init=globals_init)


def _resolve_workload(params: dict):
    """A run request's Workload: named suite kernel or explicit source."""
    if params.get("workload"):
        from repro.diag.report import suite_workloads

        suite = params.get("suite", "polybench")
        return suite_workloads(suite, params["workload"])[0]
    bp = _build_params(params)
    return _workload_from_bindings(
        params.get("name", bp["entry"]), bp["source"], bp["entry"],
        params.get("bindings", []),
    )


def _op_run(req_id, params: dict) -> dict:
    w = _resolve_workload(params)
    bp = _build_params({**params, "source": w.source,
                        "entry": w.entry})
    module, stats, m, origin = _store_build(bp)
    backend = params.get("backend")
    max_steps = params.get("max_steps")
    result = execute(module, w, stats, backend=backend,
                     max_steps=max_steps)
    key = diskcache.cache_key(bp["source"], bp["entry"], bp["level"],
                              bp["honor_restrict"], bp["vl"], bp["rle"])
    return ok_response(
        req_id,
        key=key,
        origin=origin,
        manifest=m.to_dict() if m is not None else None,
        workload=w.name,
        level=bp["level"],
        backend=backend,
        cycles=result.cycles,
        counters=result.counters.as_dict(),
        checksum=result.checksum,
        return_value=result.return_value,
        code_size=result.code_size,
    )


# -- diag ---------------------------------------------------------------------


def _op_diag(req_id, params: dict) -> dict:
    """A fresh diagnostics-enabled build: the remark stream over the
    wire.  Never store-cached — a cached build emits no remarks."""
    from repro.diag.context import collect

    bp = _build_params(params)
    with collect() as dc:
        module = compile_c(bp["source"], name=bp["entry"])
        optimize(module, bp["level"],
                 honor_restrict=bp["honor_restrict"],
                 vl=bp["vl"], rle=bp["rle"])
    return ok_response(
        req_id,
        level=bp["level"],
        remarks=[r.render() for r in dc.remarks],
        passes=[{"pass": p.pass_name, "function": p.function,
                 "dur_us": p.dur_us, "inst_delta": p.inst_delta}
                for p in dc.passes],
    )


# -- fuzz ---------------------------------------------------------------------


def _op_fuzz(req_id, params: dict) -> dict:
    from repro.fuzz.generator import generate_kernel
    from repro.fuzz.oracle import check_kernel

    seed = int(params.get("seed", 0))
    kernel = generate_kernel(seed, name=f"svc{seed:06d}")
    report = check_kernel(kernel, full=bool(params.get("full", False)))
    telemetry.counter("repro_service_fuzz_seeds_total",
                      "service-run fuzz seeds by outcome",
                      outcome="ok" if report.ok else "fail").inc()
    return ok_response(
        req_id,
        seed=seed,
        fuzz_ok=report.ok,
        configs_run=report.configs_run,
        mismatches=[str(m) for m in report.mismatches],
    )


# -- campaign batches (the distributed-fuzzing lease protocol) ----------------


def _op_campaign_batch(req_id, params: dict) -> dict:
    """One leased campaign batch: run every task, return its rows.

    ``refs`` maps content hashes to shipped O0 reference results — the
    coordinator ships each at most once per host; we install them into
    the oracle memo before running, so an escalation screened elsewhere
    never rebuilds its reference here.  Tasks whose coordinator does not
    yet hold the reference (``ref_known`` false) get theirs exported
    back in ``refs`` of the response.
    """
    from repro.fuzz import oracle
    from repro.fuzz.campaign import _materialize, _run_task
    from repro.fuzz.shard import content_hash

    tasks = params.get("tasks")
    if not isinstance(tasks, list) or not tasks:
        raise ValueError("campaign.lease needs a non-empty 'tasks' list")
    shipped = params.get("refs") or {}
    rows = []
    new_refs: dict = {}
    for t in tasks:
        spec = _materialize(t)
        h = t.get("hash") or content_hash(spec.name, spec.source,
                                          spec.bindings)
        if h in shipped:
            oracle.seed_reference(spec, t.get("max_steps"), shipped[h])
        row = _run_task(t, spec=spec)
        row["hash"] = h
        if not t.get("ref_known") and h not in new_refs:
            exp = oracle.export_reference(spec, t.get("max_steps"))
            if exp is not None:
                new_refs[h] = exp
        rows.append(row)
    telemetry.counter("repro_campaign_remote_tasks_total",
                      "campaign tasks executed under a lease").inc(len(rows))
    # the batch's own telemetry delta rides home in the response: the
    # coordinator absorbs it under the existing lineage rules (the
    # daemon separately absorbs the per-task snapshot into *its*
    # registry — different process, different registry, no double count)
    return ok_response(req_id, rows=rows, refs=new_refs,
                       snapshot=telemetry.snapshot(include_spans=False))


# -- dispatch -----------------------------------------------------------------

_OPS = {
    "build": _op_build,
    "run": _op_run,
    "diag": _op_diag,
    "fuzz": _op_fuzz,
    "campaign.batch": _op_campaign_batch,
}


def handle_task(task: dict) -> tuple[dict, dict]:
    """Pool task body: one request -> ``(response, telemetry delta)``.

    Never raises — every failure becomes a structured error response, so
    one bad request in a micro-batch cannot poison its batchmates.
    """
    telemetry.reset()
    req_id = task.get("id")
    op = task.get("op")
    params = task.get("params") or {}
    handler = _OPS.get(op)
    try:
        if handler is None:
            resp = error_response(req_id, ERR_UNKNOWN_OP,
                                  f"unknown op {op!r}")
        else:
            resp = handler(req_id, params)
    except ManifestMismatch as e:
        resp = error_response(req_id, ERR_MANIFEST_MISMATCH, str(e),
                              details=e.details())
    except (ValueError, KeyError, TypeError) as e:
        resp = error_response(req_id, ERR_BAD_REQUEST,
                              f"{type(e).__name__}: {e}")
    except Exception as e:  # parse errors, pass crashes, exec faults
        code = ERR_BUILD_FAILED if op in ("build", "run", "diag") \
            else ERR_INTERNAL
        resp = error_response(
            req_id, code, f"{type(e).__name__}: {e}",
            details={"traceback": traceback.format_exc(limit=8)},
        )
    return resp, telemetry.snapshot(include_spans=False)


__all__ = ["handle_task", "init_worker"]
