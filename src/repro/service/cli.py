"""``python -m repro.service {serve,client,status}`` — the service CLI.

* ``serve``  — run the daemon in the foreground.  Prints ``listening on
  host:port`` once ready and (``--addr-file``) writes the address
  atomically to a file, so scripts and CI can wait for it.
* ``client`` — one request against a running daemon: ``ping``,
  ``build``, ``run``, ``fuzz`` (a seed range, one request per seed),
  ``metrics``, ``shutdown``.  Build/run/fuzz responses print as JSON so
  shell pipelines can assert on them.
* ``status`` — human-readable daemon status: uptime, request counts,
  single-flight/batch statistics, per-shard store occupancy.

The client address comes from ``--addr`` or ``REPRO_SERVICE_ADDR``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Optional

from . import client as svc
from .store import DEFAULT_CAP_PER_SHARD, DEFAULT_SHARDS

DEFAULT_STORE = os.path.join(".repro-service", "store")


def _addr_of(args) -> str:
    addr = args.addr or svc.service_addr()
    if not addr:
        raise SystemExit(
            "error: no service address: pass --addr host:port or set "
            "REPRO_SERVICE_ADDR"
        )
    return addr


def _print_json(obj) -> None:
    print(json.dumps(obj, indent=2, sort_keys=True))


# -- serve --------------------------------------------------------------------


def _cmd_serve(args) -> int:
    from .server import serve_forever

    serve_forever(
        host=args.host, port=args.port, workers=args.workers,
        store_root=args.store or None, shards=args.shards,
        cap_per_shard=args.cap, max_batch=args.max_batch,
        addr_file=args.addr_file,
    )
    return 0


# -- client -------------------------------------------------------------------


def _build_params_from(args) -> dict:
    if args.source_file:
        with open(args.source_file) as f:
            source = f.read()
    else:
        source = args.source
    if not source:
        raise SystemExit("error: need --source or --source-file")
    return {
        "source": source,
        "entry": args.entry,
        "level": args.level,
        "honor_restrict": not args.no_restrict,
        "vl": args.vl,
        "rle": args.rle,
    }


def _cmd_client(args) -> int:
    addr = _addr_of(args)
    if args.client_op == "ping":
        _print_json(svc.ping(addr))
        return 0
    if args.client_op == "build":
        params = _build_params_from(args)
        resp = svc.request(addr, {"op": "build", "id": 0,
                                  "params": params})
        _print_json(resp)
        return 0
    if args.client_op == "run":
        if args.workload:
            params = {"suite": args.suite, "workload": args.workload}
        else:
            params = _build_params_from(args)
            if args.bindings_file:
                with open(args.bindings_file) as f:
                    params["bindings"] = json.load(f)
        params.update({
            "level": args.level, "vl": args.vl, "rle": args.rle,
            "honor_restrict": not args.no_restrict,
        })
        if args.backend:
            params["backend"] = args.backend
        resp = svc.remote_run(addr, params)
        _print_json(resp)
        return 0
    if args.client_op == "fuzz":
        bad = 0
        for seed in range(args.start, args.start + args.seeds):
            resp = svc.remote_fuzz(addr, seed, full=args.full)
            ok = resp["fuzz_ok"]
            if not ok:
                bad += 1
                print(f"FAIL seed {seed}:")
                for m in resp["mismatches"]:
                    print(f"  {m}")
            elif args.verbose:
                print(f"  seed {seed}: ok "
                      f"({resp['configs_run']} configs)")
        print(f"service fuzz: {args.seeds} seed(s), {bad} failing")
        return 1 if bad else 0
    if args.client_op == "metrics":
        out = svc.fetch_metrics(addr, prom=args.prom)
        if args.prom:
            sys.stdout.write(out)
        elif args.out:
            from repro.telemetry import save_snapshot

            save_snapshot(out, args.out)
            print(f"wrote telemetry snapshot to {args.out}")
        else:
            _print_json(out)
        return 0
    if args.client_op == "heartbeat":
        resp = svc.request(addr, {"op": "campaign.heartbeat", "id": 0,
                                  "params": {}})
        _print_json(resp)
        return 0
    if args.client_op == "shutdown":
        _print_json(svc.shutdown(addr))
        return 0
    raise SystemExit(f"error: unknown client op {args.client_op!r}")


# -- status -------------------------------------------------------------------


def _cmd_status(args) -> int:
    from repro.perf.report import format_table

    status = svc.fetch_status(_addr_of(args))
    print(f"repro.service v{status['version']} at {status['addr']} "
          f"(pid {status['pid']}, up {status['uptime_s']:.1f}s)")
    print(f"workers: {status['workers']}  inflight: {status['inflight']}  "
          f"leases: {status.get('leases', 0)}  "
          f"coalesced: {status['singleflight_coalesced']}  "
          f"batches: {status['batches']}")
    reqs = status.get("requests") or {}
    if reqs:
        print("requests: " + ", ".join(
            f"{op}={n}" for op, n in reqs.items()))
    store = status.get("store")
    if store is None:
        print("store: off")
        return 0
    print(f"store: {store['root']} ({store['shards']} shard(s), "
          f"cap {store['cap_per_shard']}/shard, "
          f"{store['total_entries']} artifact(s), "
          f"{store['total_bytes']} bytes)")
    rows = [
        (f"{r['shard']:02d}", r["entries"], r["cap"], r["bytes"])
        for r in store["per_shard"]
    ]
    print(format_table(["shard", "entries", "cap", "bytes"], rows))
    return 0


# -- argument parsing ---------------------------------------------------------


def _add_build_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--source", help="kernel source text")
    p.add_argument("--source-file", help="file holding the kernel source")
    p.add_argument("--entry", default="kernel")
    p.add_argument("--level", default="supervec+v")
    p.add_argument("--vl", type=int, default=4)
    p.add_argument("--rle", action="store_true")
    p.add_argument("--no-restrict", action="store_true")


def main(argv: Optional[list[str]] = None) -> int:
    ap = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="long-running sharded compile/run service",
    )
    sub = ap.add_subparsers(dest="cmd", required=True)

    p_serve = sub.add_parser("serve", help="run the daemon")
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=0,
                         help="TCP port (0 = pick a free one)")
    p_serve.add_argument("--workers", type=int,
                         default=min(4, os.cpu_count() or 1),
                         help="worker processes")
    p_serve.add_argument("--store", default=DEFAULT_STORE,
                         help="sharded artifact store root "
                              f"(default {DEFAULT_STORE}; '' disables)")
    p_serve.add_argument("--shards", type=int, default=DEFAULT_SHARDS)
    p_serve.add_argument("--cap", type=int, default=DEFAULT_CAP_PER_SHARD,
                         help="LRU budget per shard")
    p_serve.add_argument("--max-batch", type=int, default=16,
                         help="max requests per worker micro-batch")
    p_serve.add_argument("--addr-file",
                         help="write host:port here once listening")
    p_serve.set_defaults(fn=_cmd_serve)

    p_client = sub.add_parser("client", help="one request to the daemon")
    p_client.add_argument("--addr", help="host:port (default: "
                                         "$REPRO_SERVICE_ADDR)")
    csub = p_client.add_subparsers(dest="client_op", required=True)

    csub.add_parser("ping", help="liveness + versions")

    c_build = csub.add_parser("build", help="build one configuration")
    _add_build_args(c_build)

    c_run = csub.add_parser("run", help="build + execute one kernel")
    _add_build_args(c_run)
    c_run.add_argument("--suite", default="polybench",
                       choices=["polybench", "tsvc", "all"])
    c_run.add_argument("--workload",
                       help="named suite workload (instead of --source)")
    c_run.add_argument("--backend",
                       choices=["reference", "compiled", "fused", "array"])
    c_run.add_argument("--bindings-file",
                       help="JSON file of corpus-style bindings")

    c_fuzz = csub.add_parser("fuzz", help="run oracle seeds remotely")
    c_fuzz.add_argument("--seeds", type=int, default=25)
    c_fuzz.add_argument("--start", type=int, default=0)
    c_fuzz.add_argument("--full", action="store_true")
    c_fuzz.add_argument("-v", "--verbose", action="store_true")

    csub.add_parser("heartbeat",
                    help="liveness + active campaign leases")

    c_metrics = csub.add_parser("metrics", help="fetch daemon telemetry")
    c_metrics.add_argument("--prom", action="store_true")
    c_metrics.add_argument("--out", help="write snapshot JSON here")

    csub.add_parser("shutdown", help="stop the daemon gracefully")
    p_client.set_defaults(fn=_cmd_client)

    p_status = sub.add_parser("status", help="render daemon status")
    p_status.add_argument("--addr")
    p_status.set_defaults(fn=_cmd_status)

    args = ap.parse_args(argv)
    try:
        return args.fn(args)
    except BrokenPipeError:
        # stdout went away mid-print (status | head, run | jq -e ...);
        # die quietly with the conventional SIGPIPE status
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 141


__all__ = ["main"]
