"""Snapshot interchange: Prometheus text exposition, JSON, merge, diff.

Snapshots (see :meth:`repro.telemetry.registry.Registry.snapshot`) are
plain dicts; everything here is a pure function over them, so worker
processes can ship snapshots through pickles or files and the parent
merges them without touching live registries.

Merging is **deterministic**: series are keyed by (family, sorted label
items), counters and histograms add, gauges take the last snapshot's
value, and output ordering is sorted — merging the same snapshots in the
same order always yields byte-identical JSON.  Snapshots carrying a
different *lineage* (schema, python, artifact-format version, backend,
accounting mode) refuse to merge unless ``allow_mixed=True`` — numbers
from different pipeline versions must never mix silently.
"""

from __future__ import annotations

import json
from typing import IO, Iterable, Optional

from .registry import COUNTER, GAUGE, HISTOGRAM, SCHEMA_VERSION


# -- JSON --------------------------------------------------------------------


def write_snapshot(snap: dict, out: IO[str]) -> None:
    json.dump(snap, out, indent=2, sort_keys=True)
    out.write("\n")


def save_snapshot(snap: dict, path: str) -> str:
    with open(path, "w") as f:
        write_snapshot(snap, f)
    return path


def load_snapshot(path: str) -> dict:
    with open(path) as f:
        snap = json.load(f)
    fmt = snap.get("format")
    if fmt != SCHEMA_VERSION:
        raise ValueError(
            f"{path}: telemetry snapshot format {fmt!r} != "
            f"supported {SCHEMA_VERSION}"
        )
    return snap


# -- merge / diff ------------------------------------------------------------


class LineageMismatch(ValueError):
    """Two snapshots disagree on provenance labels."""


def _series_map(snap: dict) -> dict:
    """(name, label items) -> (kind, help, series dict), flattened."""
    out = {}
    for fam in snap.get("metrics", ()):
        for s in fam["series"]:
            key = (fam["name"], tuple(sorted(s.get("labels", {}).items())))
            out[key] = (fam["kind"], fam.get("help", ""), s)
    return out


def merge(snaps: Iterable[dict], allow_mixed: bool = False) -> dict:
    """Fold snapshots into one; deterministic for a given input order."""
    snaps = list(snaps)
    if not snaps:
        return {"format": SCHEMA_VERSION, "lineage": {}, "metrics": [],
                "spans": {"dropped": 0, "events": []}}
    lineage = snaps[0].get("lineage", {})
    if not allow_mixed:
        for s in snaps[1:]:
            if s.get("lineage", {}) != lineage:
                raise LineageMismatch(
                    f"snapshot lineage differs: {s.get('lineage')} != "
                    f"{lineage} (pass allow_mixed=True to force)"
                )
    acc: dict = {}
    kinds: dict = {}
    helps: dict = {}
    for snap in snaps:
        for (name, lkey), (kind, help_, s) in _series_map(snap).items():
            kinds[name] = kind
            if help_:
                helps.setdefault(name, help_)
            cur = acc.get((name, lkey))
            if kind == HISTOGRAM:
                if cur is None:
                    acc[(name, lkey)] = {
                        "labels": dict(lkey),
                        "count": s["count"], "sum": s["sum"],
                        "bounds": list(s["bounds"]),
                        "counts": list(s["counts"]),
                    }
                else:
                    if cur["bounds"] != list(s["bounds"]):
                        raise ValueError(
                            f"histogram {name!r}: bucket bounds differ "
                            "across snapshots"
                        )
                    cur["count"] += s["count"]
                    cur["sum"] += s["sum"]
                    cur["counts"] = [
                        a + b for a, b in zip(cur["counts"], s["counts"])
                    ]
            elif cur is None:
                acc[(name, lkey)] = {"labels": dict(lkey),
                                     "value": s["value"]}
            elif kind == COUNTER:
                cur["value"] += s["value"]
            else:  # gauge: last write wins
                cur["value"] = s["value"]
    metrics = []
    for name in sorted({n for n, _ in acc}):
        series = [acc[k] for k in sorted(
            (k for k in acc if k[0] == name), key=lambda k: k[1]
        )]
        metrics.append({"name": name, "kind": kinds[name],
                        "help": helps.get(name, ""), "series": series})
    dropped = 0
    events: list = []
    for snap in snaps:
        sp = snap.get("spans") or {}
        dropped += sp.get("dropped", 0)
        events.extend(sp.get("events", ()))
    return {
        "format": SCHEMA_VERSION,
        "lineage": lineage,
        "merged_from": len(snaps),
        "metrics": metrics,
        "spans": {"dropped": dropped, "events": events},
    }


def diff(old: dict, new: dict) -> list[dict]:
    """Per-series numeric deltas, sorted; gauges report (old, new).

    Returns rows ``{"name", "kind", "labels", "old", "new", "delta"}``
    for every series present in either snapshot (absent reads as 0).
    """
    a, b = _series_map(old), _series_map(new)
    rows = []
    for key in sorted(set(a) | set(b)):
        name, lkey = key
        kind = (b.get(key) or a.get(key))[0]
        def val(side):
            if side is None:
                return 0.0
            s = side[2]
            return float(s["sum"] if kind == HISTOGRAM else s["value"])
        va, vb = val(a.get(key)), val(b.get(key))
        if va == vb:
            continue
        rows.append({
            "name": name, "kind": kind, "labels": dict(lkey),
            "old": va, "new": vb, "delta": vb - va,
        })
    return rows


# -- Prometheus text exposition ----------------------------------------------


def _esc(v: str) -> str:
    return v.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _label_str(labels: dict, extra: Optional[dict] = None) -> str:
    items = dict(labels)
    if extra:
        items.update(extra)
    if not items:
        return ""
    body = ",".join(
        f'{k}="{_esc(str(v))}"' for k, v in sorted(items.items())
    )
    return "{" + body + "}"


def to_prometheus(snap: dict) -> str:
    """Render a snapshot in the Prometheus text exposition format."""
    lines = []
    for fam in snap.get("metrics", ()):
        name, kind = fam["name"], fam["kind"]
        if fam.get("help"):
            lines.append(f"# HELP {name} {fam['help']}")
        lines.append(f"# TYPE {name} {kind}")
        for s in fam["series"]:
            labels = s.get("labels", {})
            if kind == HISTOGRAM:
                cum = 0
                for le, n in zip(s["bounds"], s["counts"]):
                    cum += n
                    lines.append(
                        f"{name}_bucket"
                        f"{_label_str(labels, {'le': repr(float(le))})} {cum}"
                    )
                lines.append(
                    f"{name}_bucket{_label_str(labels, {'le': '+Inf'})} "
                    f"{s['count']}"
                )
                lines.append(f"{name}_sum{_label_str(labels)} {s['sum']}")
                lines.append(f"{name}_count{_label_str(labels)} {s['count']}")
            else:
                lines.append(f"{name}{_label_str(labels)} {s['value']}")
    return "\n".join(lines) + ("\n" if lines else "")


# -- human-readable dump -----------------------------------------------------


def render_snapshot(snap: dict, nonzero_only: bool = True) -> str:
    """A compact table of every series, for ``telemetry dump``."""
    lines = []
    lineage = snap.get("lineage", {})
    if lineage:
        lines.append("lineage: " + ", ".join(
            f"{k}={v}" for k, v in sorted(lineage.items())
        ))
    for fam in snap.get("metrics", ()):
        rows = []
        for s in fam["series"]:
            if fam["kind"] == HISTOGRAM:
                if nonzero_only and not s["count"]:
                    continue
                val = (f"count={s['count']} sum={s['sum']:.6f}"
                       f" mean={s['sum'] / s['count']:.6f}"
                       if s["count"] else "count=0")
            else:
                if nonzero_only and not s["value"]:
                    continue
                val = str(s["value"])
            lab = _label_str(s.get("labels", {}))
            rows.append(f"  {lab or '(no labels)'}: {val}")
        if rows:
            lines.append(f"{fam['name']} ({fam['kind']})")
            lines.extend(rows)
    sp = snap.get("spans") or {}
    n = len(sp.get("events", ()))
    if n or sp.get("dropped"):
        lines.append(
            f"spans: {n} event(s), {sp.get('dropped', 0)} dropped"
        )
    return "\n".join(lines) if lines else "(empty snapshot)"


__all__ = [
    "LineageMismatch",
    "diff",
    "load_snapshot",
    "merge",
    "render_snapshot",
    "save_snapshot",
    "to_prometheus",
    "write_snapshot",
]
