"""Hierarchical wall-clock spans over the default registry.

A span is one timed phase — ``build``, ``translate``, ``execute``, a
pass, a fuzz task — opened as a context manager.  Spans nest through a
thread-local stack; each completed span records

* an **event** (bounded log in the registry): name, ``/``-joined path
  encoding the nesting, start and duration in microseconds since the
  process's telemetry epoch, plus its labels — these render as a third
  track in the Chrome trace export; and
* an observation in the ``repro_span_seconds`` **histogram**, labeled by
  span name plus the caller's labels — so aggregate phase totals (e.g.
  per-backend translate time) survive the event cap.

Keep label cardinality bounded: labels go into the metric series, so use
``detail=`` for unbounded identifiers (workload names, seeds) — detail
lands only in the trace event, never in a series key.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Optional

from .registry import REGISTRY, Registry

_EPOCH = time.perf_counter()
_STACK = threading.local()


def _stack() -> list:
    s = getattr(_STACK, "frames", None)
    if s is None:
        s = _STACK.frames = []
    return s


@contextmanager
def span(name: str, detail=None,
         registry: Optional[Registry] = None, **labels):
    """Time the enclosed block as one span (no-op when disabled).

    ``detail`` is a dict of high-cardinality annotations (or a bare
    string, shorthand for ``{"detail": ...}``); it reaches only the
    trace event, never a metric series key.
    """
    reg = REGISTRY if registry is None else registry
    if isinstance(detail, str):
        detail = {"detail": detail}
    if not reg.enabled:
        yield
        return
    stack = _stack()
    path = f"{stack[-1]}/{name}" if stack else name
    stack.append(path)
    start = time.perf_counter()
    try:
        yield
    finally:
        dur = time.perf_counter() - start
        stack.pop()
        event = {
            "name": name,
            "path": path,
            "start_us": round((start - _EPOCH) * 1e6, 3),
            "dur_us": round(dur * 1e6, 3),
            "labels": dict(labels, **(detail or {})),
        }
        reg.add_span(event)
        reg.histogram(
            "repro_span_seconds",
            "wall-clock seconds per telemetry span",
            span=name, **labels,
        ).observe(dur)


def span_trace_events(registry: Optional[Registry] = None,
                      pid: int = 3, tid: int = 1) -> list[dict]:
    """Completed spans as Chrome ``trace_event`` complete ("X") events."""
    reg = REGISTRY if registry is None else registry
    events = []
    for ev in reg.spans:
        events.append({
            "name": ev["name"],
            "cat": "telemetry",
            "ph": "X",
            "pid": pid,
            "tid": tid,
            "ts": ev["start_us"],
            "dur": max(ev["dur_us"], 0.001),
            "args": dict(ev["labels"], path=ev["path"]),
        })
    if events:
        events.append(
            {"name": "process_name", "ph": "M", "pid": pid, "tid": 0,
             "args": {"name": "telemetry spans (wall clock)"}}
        )
    return events


__all__ = ["span", "span_trace_events"]
