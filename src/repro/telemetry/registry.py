"""Label-aware runtime metrics: counters, gauges, histograms.

The registry is the process-wide sink every instrumented layer writes
into — the build pipeline, the analysis manager, the measurement caches,
the disk cache, the execution backends, and the array tier's runtime
version guards.  It is deliberately *outside* the simulation: nothing in
here ever touches cycles, counters, or memory, so the repo's accounting
invariant (bit-identical cycles/counters/checksums with telemetry on or
off) holds by construction.  ``REPRO_TELEMETRY=off`` (or
:func:`set_enabled`) turns every handle into a no-op without changing
any code path that feeds the simulation.

Design points, in the Prometheus idiom:

* a **metric family** is a name plus a kind (``counter`` | ``gauge`` |
  ``histogram``); **series** within a family are distinguished by label
  key/value pairs.  ``registry.counter("x_total", cache="build",
  outcome="hit")`` returns the one live :class:`Counter` for that label
  set — handles are stable objects call sites may cache, and
  :meth:`Registry.reset` zeroes them *in place* so cached handles stay
  valid across resets (worker processes reset per task to produce
  per-task delta snapshots).
* **histograms** use exponential buckets (default: powers of two from
  1e-5, 26 buckets — microseconds to ~minutes of wall clock) and track
  count/sum alongside the bucket vector, so merged snapshots keep exact
  totals.
* a **snapshot** is a plain JSON-able dict: deterministically ordered
  (sorted family names, sorted label tuples), carrying a schema version
  and a *lineage* block (python version, artifact-format version,
  default backend, accounting mode) so series produced by different
  pipeline versions are never silently mixed — :func:`repro.telemetry.
  export.merge` refuses mismatched lineage unless told otherwise.
"""

from __future__ import annotations

import os
import sys
from bisect import bisect_left
from typing import Optional

SCHEMA_VERSION = 1

#: Default exponential bucket upper bounds (seconds): 1e-5 * 2**k.
DEFAULT_BUCKETS = tuple(1e-5 * (2.0 ** k) for k in range(26))

COUNTER = "counter"
GAUGE = "gauge"
HISTOGRAM = "histogram"


def _enabled_from_env() -> bool:
    v = os.environ.get("REPRO_TELEMETRY", "on").strip().lower()
    return v not in ("off", "0", "false", "no", "disabled")


def _span_cap_from_env() -> int:
    try:
        return max(0, int(os.environ.get("REPRO_TELEMETRY_SPAN_CAP", "20000")))
    except ValueError:
        return 20000


class Counter:
    """A monotonically increasing series.  ``inc`` is the only writer."""

    __slots__ = ("_reg", "value")

    def __init__(self, reg: "Registry"):
        self._reg = reg
        self.value = 0

    def inc(self, n: int | float = 1) -> None:
        if self._reg.enabled:
            self.value += n


class Gauge:
    """A point-in-time series: last write wins."""

    __slots__ = ("_reg", "value")

    def __init__(self, reg: "Registry"):
        self._reg = reg
        self.value = 0.0

    def set(self, v: float) -> None:
        if self._reg.enabled:
            self.value = v

    def inc(self, n: float = 1.0) -> None:
        if self._reg.enabled:
            self.value += n


class Histogram:
    """Exponential-bucket histogram with exact count and sum.

    ``bounds`` are upper bounds of the finite buckets; one implicit
    +Inf bucket catches the overflow.  ``counts`` has
    ``len(bounds) + 1`` slots.
    """

    __slots__ = ("_reg", "bounds", "counts", "sum", "count")

    def __init__(self, reg: "Registry", bounds: tuple = DEFAULT_BUCKETS):
        self._reg = reg
        self.bounds = tuple(bounds)
        self.counts = [0] * (len(self.bounds) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, v: float) -> None:
        if not self._reg.enabled:
            return
        self.counts[bisect_left(self.bounds, v)] += 1
        self.sum += v
        self.count += 1

    def _zero(self) -> None:
        self.counts = [0] * (len(self.bounds) + 1)
        self.sum = 0.0
        self.count = 0


class _Family:
    __slots__ = ("name", "kind", "help", "label_names", "children")

    def __init__(self, name: str, kind: str, help_: str = ""):
        self.name = name
        self.kind = kind
        self.help = help_
        self.label_names: set = set()
        # tuple(sorted((k, v) for ...)) -> Counter | Gauge | Histogram
        self.children: dict = {}


def _label_key(labels: dict) -> tuple:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class Registry:
    """One process-wide home for every metric family and span event."""

    def __init__(self, enabled: Optional[bool] = None):
        self.enabled = _enabled_from_env() if enabled is None else enabled
        self._families: dict[str, _Family] = {}
        # completed span events (see repro.telemetry.spans); bounded
        self.spans: list = []
        self.span_cap = _span_cap_from_env()
        self.spans_dropped = 0

    # -- handle lookup ----------------------------------------------------

    def _series(self, kind: str, name: str, help_: str, labels: dict,
                factory):
        fam = self._families.get(name)
        if fam is None:
            fam = self._families[name] = _Family(name, kind, help_)
        elif fam.kind != kind:
            raise ValueError(
                f"metric {name!r} already registered as {fam.kind}, "
                f"not {kind}"
            )
        if help_ and not fam.help:
            fam.help = help_
        fam.label_names.update(labels)
        key = _label_key(labels)
        child = fam.children.get(key)
        if child is None:
            child = fam.children[key] = factory()
        return child

    def counter(self, name: str, help: str = "", **labels) -> Counter:
        return self._series(COUNTER, name, help, labels,
                            lambda: Counter(self))

    def gauge(self, name: str, help: str = "", **labels) -> Gauge:
        return self._series(GAUGE, name, help, labels, lambda: Gauge(self))

    def histogram(self, name: str, help: str = "",
                  buckets: tuple = DEFAULT_BUCKETS, **labels) -> Histogram:
        return self._series(HISTOGRAM, name, help, labels,
                            lambda: Histogram(self, buckets))

    # -- lifecycle --------------------------------------------------------

    def reset(self) -> None:
        """Zero every series *in place* and drop the span log.

        Handles cached by instrumented call sites remain valid — worker
        processes call this at task start so a task-end snapshot is a
        per-task delta, mergeable without double counting.
        """
        for fam in self._families.values():
            for child in fam.children.values():
                if isinstance(child, Histogram):
                    child._zero()
                elif isinstance(child, Counter):
                    child.value = 0
                else:
                    child.value = 0.0
        self.spans.clear()
        self.spans_dropped = 0

    def add_span(self, event: dict) -> None:
        if len(self.spans) < self.span_cap:
            self.spans.append(event)
        else:
            self.spans_dropped += 1

    # -- snapshot / absorb ------------------------------------------------

    def lineage(self) -> dict:
        """Version/config labels stamped on every snapshot (SNIPPETS.md
        #2's lineage-entry discipline): numbers from differently
        configured pipelines must never merge silently."""
        try:
            from repro.perf.diskcache import FORMAT_VERSION as fmt
        except Exception:  # pragma: no cover - layering safety net
            fmt = None
        return {
            "schema": SCHEMA_VERSION,
            "python": f"{sys.version_info.major}.{sys.version_info.minor}",
            "artifact_format": fmt,
            "backend": os.environ.get("REPRO_BACKEND", "fused"),
            "accounting": os.environ.get("REPRO_ACCOUNTING", "exact"),
        }

    def snapshot(self, include_spans: bool = True) -> dict:
        """A deterministic, JSON-able copy of every series (and spans)."""
        metrics = []
        for name in sorted(self._families):
            fam = self._families[name]
            series = []
            for key in sorted(fam.children):
                child = fam.children[key]
                entry: dict = {"labels": dict(key)}
                if fam.kind == HISTOGRAM:
                    entry["count"] = child.count
                    entry["sum"] = child.sum
                    entry["bounds"] = list(child.bounds)
                    entry["counts"] = list(child.counts)
                else:
                    entry["value"] = child.value
                series.append(entry)
            metrics.append({
                "name": name,
                "kind": fam.kind,
                "help": fam.help,
                "series": series,
            })
        snap = {
            "format": SCHEMA_VERSION,
            "lineage": self.lineage(),
            "metrics": metrics,
        }
        if include_spans:
            snap["spans"] = {
                "dropped": self.spans_dropped,
                "events": list(self.spans),
            }
        return snap

    def absorb(self, snap: dict, include_spans: bool = False) -> None:
        """Merge a snapshot dict into the live registry (worker merge).

        Counters and histograms add; gauges take the snapshot's value.
        Writes directly (bypassing the ``enabled`` gate): absorbing is an
        explicit act, not ambient instrumentation.
        """
        for fam in snap.get("metrics", ()):
            name, kind = fam["name"], fam["kind"]
            for s in fam["series"]:
                labels = s.get("labels", {})
                if kind == HISTOGRAM:
                    h = self.histogram(name, fam.get("help", ""),
                                       buckets=tuple(s["bounds"]), **labels)
                    if tuple(s["bounds"]) != h.bounds:
                        raise ValueError(
                            f"histogram {name!r}: bucket bounds differ "
                            "between snapshot and registry"
                        )
                    for i, n in enumerate(s["counts"]):
                        h.counts[i] += n
                    h.sum += s["sum"]
                    h.count += s["count"]
                elif kind == COUNTER:
                    c = self.counter(name, fam.get("help", ""), **labels)
                    c.value += s["value"]
                else:
                    g = self.gauge(name, fam.get("help", ""), **labels)
                    g.value = s["value"]
        if include_spans:
            sp = snap.get("spans") or {}
            self.spans_dropped += sp.get("dropped", 0)
            for ev in sp.get("events", ()):
                self.add_span(ev)


#: The process-wide default registry every instrumented layer uses.
REGISTRY = Registry()


__all__ = [
    "COUNTER",
    "Counter",
    "DEFAULT_BUCKETS",
    "GAUGE",
    "Gauge",
    "HISTOGRAM",
    "Histogram",
    "REGISTRY",
    "Registry",
    "SCHEMA_VERSION",
]
