"""``python -m repro.telemetry {dump,diff,check}`` — the telemetry CLI.

* ``dump``  — render a snapshot JSON file as a table (default) or in
  the Prometheus text exposition format (``--prom``); multiple files
  are merged first (refusing mixed lineage unless ``--allow-mixed``).
  ``--addr host:port`` pulls a live snapshot from a running compile
  service (:mod:`repro.service`) instead of — or merged with — files.
* ``diff``  — per-series numeric deltas between two snapshots.
* ``check`` — evaluate the bench-trajectory regression gate over
  ``BENCH_interp.json`` / ``BENCH_build.json`` (or a custom rule file);
  exit status 1 on any failing rule.  CI runs this right after
  regenerating the bench artifacts.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional

from .check import check_thresholds, load_thresholds, render_check
from .export import (
    diff as snapshot_diff,
    load_snapshot,
    merge,
    render_snapshot,
    to_prometheus,
)


def _cmd_dump(args) -> int:
    snaps = [load_snapshot(p) for p in args.snapshots]
    if args.addr:
        # live snapshot pulled from a running compile service; merged
        # with any file snapshots under the usual lineage rules
        from repro.service.client import fetch_metrics

        snaps.append(fetch_metrics(args.addr))
    if not snaps:
        print("error: no snapshots: pass file(s) and/or --addr",
              file=sys.stderr)
        return 2
    snap = snaps[0] if len(snaps) == 1 else merge(
        snaps, allow_mixed=args.allow_mixed
    )
    if args.prom:
        sys.stdout.write(to_prometheus(snap))
    else:
        print(render_snapshot(snap, nonzero_only=not args.zeros))
    return 0


def _cmd_diff(args) -> int:
    rows = snapshot_diff(load_snapshot(args.old), load_snapshot(args.new))
    if not rows:
        print("no series changed")
        return 0
    for r in rows:
        labels = ",".join(f"{k}={v}" for k, v in sorted(r["labels"].items()))
        where = f"{r['name']}{{{labels}}}" if labels else r["name"]
        print(f"  {where}: {r['old']} -> {r['new']} ({r['delta']:+g})")
    print(f"{len(rows)} series changed")
    return 0


def _cmd_check(args) -> int:
    thresholds = load_thresholds(args.thresholds) if args.thresholds else None
    rows = check_thresholds(root=args.root, thresholds=thresholds)
    print(render_check(rows))
    return 1 if any(not r["ok"] for r in rows) else 0


def main(argv: Optional[list[str]] = None) -> int:
    ap = argparse.ArgumentParser(
        prog="python -m repro.telemetry",
        description="inspect, diff, and gate runtime telemetry snapshots",
    )
    sub = ap.add_subparsers(dest="cmd", required=True)

    p_dump = sub.add_parser("dump", help="render snapshot file(s)")
    p_dump.add_argument("snapshots", nargs="*",
                        help="snapshot JSON file(s); several are merged")
    p_dump.add_argument("--addr", metavar="HOST:PORT",
                        help="also pull a live snapshot from a running "
                             "compile service (repro.service)")
    p_dump.add_argument("--prom", action="store_true",
                        help="Prometheus text exposition instead of a table")
    p_dump.add_argument("--zeros", action="store_true",
                        help="include zero-valued series")
    p_dump.add_argument("--allow-mixed", action="store_true",
                        help="merge snapshots with differing lineage")
    p_dump.set_defaults(fn=_cmd_dump)

    p_diff = sub.add_parser("diff", help="delta between two snapshots")
    p_diff.add_argument("old")
    p_diff.add_argument("new")
    p_diff.set_defaults(fn=_cmd_diff)

    p_check = sub.add_parser(
        "check", help="gate BENCH_*.json against regression thresholds"
    )
    p_check.add_argument("--root", default=".",
                         help="directory holding the bench JSON files")
    p_check.add_argument("--thresholds",
                         help="JSON rule file overriding the built-in gate")
    p_check.set_defaults(fn=_cmd_check)

    args = ap.parse_args(argv)
    return args.fn(args)


__all__ = ["main"]
