"""Regression gate over benchmark trajectories (``telemetry check``).

``BENCH_interp.json``, ``BENCH_build.json``, and ``BENCH_fuzz.json`` are
the repo's longitudinal performance record — every CI run regenerates
them.  This module turns
them into a *gate*: a list of threshold rules, each a dotted path into
one of the JSON payloads plus a comparison, evaluated and rendered as a
pass/fail table.  The default rules pin the floors the repo's own bench
tests already assert (compiled ≥3x, fused ≥2x over compiled, array speed
mode ≥3x over fused, cold builds ≥2x and warm ≥10x over the pinned
baseline, bit-identical warm artifacts and speed-mode checksums, the
campaign engine ≥3x seeds/sec over ``fuzz run`` with a mismatch-free
500-seed sweep, and the distributed tier ≥1.8x seeds/sec over a
single-host run at equal total worker count with byte-identical
output and zero lost tasks), so a PR that regresses a trajectory
fails CI even if no unit test notices.

Custom rules come from a JSON file (``--thresholds``): a list of objects
``{"file", "path", "op", "value", ...}``; ``op`` is one of ``>= <= > <
== truthy``.  Paths traverse dicts by key and lists by integer.
"""

from __future__ import annotations

import json
import os
from typing import Optional

#: The built-in gate: every floor the bench suites assert, plus the
#: bit-identity booleans.  ``value`` for ``truthy`` rules is ignored.
DEFAULT_THRESHOLDS = [
    {"file": "BENCH_interp.json",
     "path": "geomean_exec_speedup_by_backend.compiled",
     "op": ">=", "value": 3.0},
    {"file": "BENCH_interp.json", "path": "geomean_fused_over_compiled",
     "op": ">=", "value": 2.0},
    {"file": "BENCH_interp.json",
     "path": "speed_mode.geomean_array_speed_over_fused",
     "op": ">=", "value": 3.0},
    {"file": "BENCH_interp.json", "path": "speed_mode.all_checksums_identical",
     "op": "truthy", "value": True},
    {"file": "BENCH_build.json", "path": "geomean_cold_speedup_vs_baseline",
     "op": ">=", "value": 2.0},
    {"file": "BENCH_build.json", "path": "geomean_warm_speedup_vs_baseline",
     "op": ">=", "value": 10.0},
    {"file": "BENCH_build.json", "path": "all_warm_identical",
     "op": "truthy", "value": True},
    {"file": "BENCH_fuzz.json", "path": "speedup_seeds_per_sec",
     "op": ">=", "value": 3.0},
    {"file": "BENCH_fuzz.json", "path": "speedup_configs_per_sec",
     "op": ">=", "value": 1.0},
    {"file": "BENCH_fuzz.json", "path": "sweep.seeds",
     "op": ">=", "value": 500},
    {"file": "BENCH_fuzz.json", "path": "sweep.mismatches",
     "op": "==", "value": 0},
    # a collapsing generator would make the dedup rate explode — the
    # campaign must be skipping true duplicates, not most of its work
    {"file": "BENCH_fuzz.json", "path": "campaign.dedup_rate",
     "op": "<=", "value": 0.5},
    # distributed tier: two daemons at the same total worker count must
    # actually go faster than one local pool — and produce the same
    # bytes while doing it, with every lease accounted for
    {"file": "BENCH_fuzz.json", "path": "distributed.speedup_seeds_per_sec",
     "op": ">=", "value": 1.8},
    {"file": "BENCH_fuzz.json", "path": "distributed.mismatches",
     "op": "==", "value": 0},
    {"file": "BENCH_fuzz.json", "path": "distributed.lost_tasks",
     "op": "==", "value": 0},
    {"file": "BENCH_fuzz.json",
     "path": "distributed.identical_to_single_host",
     "op": "truthy", "value": True},
]

_OPS = {
    ">=": lambda a, b: a >= b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    "<": lambda a, b: a < b,
    "==": lambda a, b: a == b,
    "truthy": lambda a, b: bool(a),
}


def resolve_path(payload, path: str):
    """Walk ``a.b.0.c`` through dicts (by key) and lists (by index)."""
    cur = payload
    for part in path.split("."):
        if isinstance(cur, list):
            cur = cur[int(part)]
        elif isinstance(cur, dict):
            if part not in cur:
                raise KeyError(path)
            cur = cur[part]
        else:
            raise KeyError(path)
    return cur


def load_thresholds(path: str) -> list[dict]:
    with open(path) as f:
        rules = json.load(f)
    if not isinstance(rules, list):
        raise ValueError(f"{path}: thresholds file must be a JSON list")
    for r in rules:
        for field in ("file", "path", "op"):
            if field not in r:
                raise ValueError(f"{path}: rule missing {field!r}: {r}")
        if r["op"] not in _OPS:
            raise ValueError(f"{path}: unknown op {r['op']!r}")
    return rules


def check_thresholds(root: str = ".",
                     thresholds: Optional[list[dict]] = None) -> list[dict]:
    """Evaluate every rule; returns result rows (see ``ok`` per row).

    A missing bench file or path is itself a failure — a gate that
    silently skips is not a gate.
    """
    rules = DEFAULT_THRESHOLDS if thresholds is None else thresholds
    payloads: dict[str, object] = {}
    rows = []
    for r in rules:
        fname = r["file"]
        row = {"file": fname, "path": r["path"], "op": r["op"],
               "threshold": r.get("value")}
        if fname not in payloads:
            fpath = os.path.join(root, fname)
            try:
                with open(fpath) as f:
                    payloads[fname] = json.load(f)
            except (OSError, ValueError) as e:
                payloads[fname] = e
        payload = payloads[fname]
        if isinstance(payload, Exception):
            row.update(ok=False, actual=None,
                       error=f"cannot read {fname}: {payload}")
            rows.append(row)
            continue
        try:
            actual = resolve_path(payload, r["path"])
        except (KeyError, IndexError, ValueError):
            row.update(ok=False, actual=None,
                       error=f"path {r['path']!r} not found")
            rows.append(row)
            continue
        row["actual"] = actual
        row["ok"] = bool(_OPS[r["op"]](actual, r.get("value")))
        rows.append(row)
    return rows


def render_check(rows: list[dict]) -> str:
    lines = ["== telemetry check: bench trajectory gate =="]
    width = max((len(f"{r['file']}:{r['path']}") for r in rows), default=0)
    for r in rows:
        status = "ok  " if r["ok"] else "FAIL"
        where = f"{r['file']}:{r['path']}".ljust(width)
        if r.get("error"):
            lines.append(f"  {status}  {where}  {r['error']}")
        elif r["op"] == "truthy":
            lines.append(f"  {status}  {where}  truthy (got {r['actual']!r})")
        else:
            lines.append(
                f"  {status}  {where}  {r['actual']} {r['op']} "
                f"{r['threshold']}"
            )
    bad = sum(1 for r in rows if not r["ok"])
    lines.append(
        f"{len(rows)} rule(s), {bad} failing" if bad
        else f"{len(rows)} rule(s), all within thresholds"
    )
    return "\n".join(lines)


__all__ = [
    "DEFAULT_THRESHOLDS",
    "check_thresholds",
    "load_thresholds",
    "render_check",
    "resolve_path",
]
