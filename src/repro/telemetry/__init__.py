"""Unified runtime telemetry: metrics registry, spans, regression gate.

One process-wide, label-aware home for operational numbers the
diagnostics subsystem (compile-time remarks, exact cycle attribution)
deliberately does not cover: cache hit rates, guard-dispatch outcomes,
pass and phase wall time, worker merge statistics.  Everything here
lives *outside* the simulation — the hard invariant, enforced by
``tests/test_telemetry.py``, is that cycles, counters, and checksums are
bit-identical with telemetry enabled, disabled, and under
``REPRO_TELEMETRY=off``.

Quick use::

    from repro import telemetry

    telemetry.counter("my_events_total", kind="retry").inc()
    with telemetry.span("rebuild", level="O3"):
        ...
    snap = telemetry.snapshot()          # JSON-able, deterministic
    print(telemetry.to_prometheus(snap)) # text exposition

CLI::

    python -m repro.telemetry dump SNAP.json [--prom] [--addr H:P]
    python -m repro.telemetry diff OLD.json NEW.json
    python -m repro.telemetry check [--root DIR] [--thresholds FILE]

``check`` gates the regenerated ``BENCH_interp.json`` /
``BENCH_build.json`` trajectories against threshold rules (CI runs it).
"""

from __future__ import annotations

from typing import Optional

from .check import (
    DEFAULT_THRESHOLDS,
    check_thresholds,
    load_thresholds,
    render_check,
)
from .export import (
    LineageMismatch,
    diff,
    load_snapshot,
    merge,
    render_snapshot,
    save_snapshot,
    to_prometheus,
    write_snapshot,
)
from .registry import (
    DEFAULT_BUCKETS,
    REGISTRY,
    SCHEMA_VERSION,
    Counter,
    Gauge,
    Histogram,
    Registry,
)
from .spans import span, span_trace_events


# -- module-level convenience over the default registry ----------------------


def counter(name: str, help: str = "", **labels) -> Counter:
    return REGISTRY.counter(name, help, **labels)


def gauge(name: str, help: str = "", **labels) -> Gauge:
    return REGISTRY.gauge(name, help, **labels)


def histogram(name: str, help: str = "",
              buckets: tuple = DEFAULT_BUCKETS, **labels) -> Histogram:
    return REGISTRY.histogram(name, help, buckets=buckets, **labels)


def enabled() -> bool:
    return REGISTRY.enabled


def set_enabled(on: bool) -> None:
    """Flip collection at runtime (``REPRO_TELEMETRY`` sets the default)."""
    REGISTRY.enabled = bool(on)


def reset() -> None:
    """Zero every series in place and drop the span log."""
    REGISTRY.reset()


def snapshot(include_spans: bool = True) -> dict:
    return REGISTRY.snapshot(include_spans=include_spans)


def absorb(snap: Optional[dict], include_spans: bool = False) -> bool:
    """Merge a worker snapshot into the live registry; returns whether
    anything was merged (None snapshots — in-process workers — are
    skipped, so call sites need no branching)."""
    if not snap:
        return False
    REGISTRY.absorb(snap, include_spans=include_spans)
    return True


__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "DEFAULT_THRESHOLDS",
    "Gauge",
    "Histogram",
    "LineageMismatch",
    "REGISTRY",
    "Registry",
    "SCHEMA_VERSION",
    "absorb",
    "check_thresholds",
    "counter",
    "diff",
    "enabled",
    "gauge",
    "histogram",
    "load_snapshot",
    "load_thresholds",
    "merge",
    "render_check",
    "render_snapshot",
    "reset",
    "save_snapshot",
    "set_enabled",
    "snapshot",
    "span",
    "span_trace_events",
    "to_prometheus",
    "write_snapshot",
]
