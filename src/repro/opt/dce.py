"""Dead code elimination over predicated SSA.

Worklist-based: erasing an instruction enqueues its operands'
definitions, so chains die in one pass.  Loops whose bodies have no side
effects and whose live-outs are unused are erased afterwards (innermost
first, repeated until stable — the loop count is tiny).

Uses (operands, predicate literals, phi edge predicates, loop
continuations) are all tracked by the IR's def-use machinery, so a
comparison that only guards a predicate is correctly considered live.
"""

from __future__ import annotations

from repro.diag.context import get_context
from repro.ir.instructions import Call, Eta, Instruction, Store, VecStore
from repro.ir.loops import Function, Loop, ScopeMixin
from repro.ir.predicates import Predicate
from repro.ir.values import Value


def _has_side_effects(inst: Instruction) -> bool:
    if isinstance(inst, (Store, VecStore)):
        return True
    if isinstance(inst, Call):
        return inst.may_write() or inst.may_read()
    return False


def _operand_insts(inst: Instruction) -> list[Instruction]:
    out = []
    for op in inst.operands:
        if isinstance(op, Instruction):
            out.append(op)
    for v in inst.predicate.values():
        if isinstance(v, Instruction):
            out.append(v)
    return out


def run_dce(fn: Function) -> int:
    """Delete dead instructions and loops; returns the number removed."""
    keep = {fn.return_value} if fn.return_value is not None else set()
    removed = 0

    # only user-free instructions can die now; anything that becomes
    # user-free later is enqueued as a feeder of an erased instruction,
    # so the fixpoint (the unique dead set) is unchanged
    worklist: list[Instruction] = [
        i for i in fn.instructions()
        if not isinstance(i, (Store, VecStore)) and not i.has_users()
    ]
    seen = set(map(id, worklist))
    while worklist:
        inst = worklist.pop()
        seen.discard(id(inst))
        if (
            inst.parent is None
            or inst in keep
            or _has_side_effects(inst)
            or inst.has_users()
        ):
            continue
        if isinstance(inst.parent, Loop) and inst.parent.cont is inst:
            continue
        feeders = _operand_insts(inst)
        if isinstance(inst, Eta) and inst.loop is not None:
            try:
                inst.loop.etas.remove(inst)
            except ValueError:
                pass
        inst.scope_erase()
        removed += 1
        for f in feeders:
            if id(f) not in seen:
                seen.add(id(f))
                worklist.append(f)

    removed += _erase_dead_loops(fn)
    dc = get_context()
    if dc.enabled and removed:
        dc.remark(
            "dce", "Passed", fn.name, "",
            "removed {n} dead instructions/loops", n=removed,
        )
    return removed


def _erase_dead_loops(fn: Function) -> int:
    # One reverse pre-order sweep reaches the fixpoint: SSA uses flow
    # forward, so erasing a later (or inner) loop can only release values
    # feeding loops visited *afterwards* in this order — an earlier loop
    # never holds the last use of a later loop's live-outs.
    removed = 0
    # Side-effect summaries in one bottom-up walk: a loop has effects iff
    # any direct member does or any nested loop does.  The flags stay
    # valid throughout — the main worklist never erases side-effecting
    # instructions, and only effect-free loops are erased here.
    effects: dict[int, bool] = {}

    def _summarize(scope) -> bool:
        has = False
        for item in scope.items:
            if isinstance(item, Loop):
                has = _summarize(item) or has
            elif _has_side_effects(item):
                has = True
        effects[id(scope)] = has
        return has

    _summarize(fn)
    for loop in reversed(fn.loops()):  # innermost last in pre-order
        if loop.parent is None:
            continue
        if effects[id(loop)]:
            continue
        live_etas = [e for e in loop.etas if e.parent is not None]
        if any(e.has_users() or e is fn.return_value for e in live_etas):
            continue
        for e in live_etas:
            e.scope_erase()
            removed += 1
        _erase_loop(loop)
        removed += 1
    return removed


def _erase_loop(loop: Loop) -> None:
    for inst in list(loop.instructions()):
        inst.drop_all_references()
    for mu in loop.mus:
        mu.drop_all_references()
    if loop.cont is not None:
        loop.cont._remove_user(loop)  # type: ignore[arg-type]
        loop.cont = None
    loop.set_predicate(Predicate.true())
    if loop.parent is not None:
        loop.parent.remove(loop)


__all__ = ["run_dce"]
