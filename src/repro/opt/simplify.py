"""Instruction simplification: constant folding and algebraic identities.

Keeps versioned programs tidy (materialization introduces ``and``/``not``
chains and constant-footed phis) and gives the cost model honest inputs.
"""

from __future__ import annotations

import math

from repro.diag.context import get_context
from repro.ir.instructions import BinOp, Cast, Cmp, Instruction, Phi, Select, UnOp
from repro.ir.loops import Function, Loop, ScopeMixin
from repro.ir.values import Constant, Value, const_bool, const_float, const_int


def _const(v: Value):
    return v.value if isinstance(v, Constant) else None


def _make_const(value, like: Value) -> Constant:
    if like.type.is_bool():
        return const_bool(bool(value))
    if like.type.is_int():
        return const_int(int(value))
    return const_float(float(value))


def _fold_binop(inst: BinOp):
    a, b = _const(inst.operands[0]), _const(inst.operands[1])
    op = inst.op
    x, y = inst.operands
    if a is not None and b is not None:
        from repro.interp.interpreter import _binop

        try:
            return _make_const(_binop(op, a, b), inst)
        except (ZeroDivisionError, ValueError):
            return None
    # identities
    if op == "add":
        if a == 0:
            return y
        if b == 0:
            return x
    elif op == "sub" and b == 0:
        return x
    elif op == "mul":
        if a == 1:
            return y
        if b == 1:
            return x
        if (a == 0 or b == 0) and inst.type.is_int():
            return _make_const(0, inst)
    elif op == "div" and b == 1:
        return x
    elif op == "and":
        if a is not None:
            return y if bool(a) else _make_const(False, inst)
        if b is not None:
            return x if bool(b) else _make_const(False, inst)
        if x is y:
            return x
    elif op == "or":
        if a is not None:
            return _make_const(True, inst) if bool(a) else y
        if b is not None:
            return _make_const(True, inst) if bool(b) else x
        if x is y:
            return x
    return None


def _fold_instruction(inst: Instruction):
    if isinstance(inst, BinOp):
        return _fold_binop(inst)
    if isinstance(inst, Cmp):
        a, b = _const(inst.operands[0]), _const(inst.operands[1])
        if a is not None and b is not None:
            from repro.interp.interpreter import _cmp

            return const_bool(_cmp(inst.rel, a, b))
        if inst.operands[0] is inst.operands[1]:
            return const_bool(inst.rel in ("eq", "le", "ge"))
        return None
    if isinstance(inst, UnOp):
        a = _const(inst.operands[0])
        if a is None:
            return None
        from repro.interp.interpreter import _unop

        try:
            return _make_const(_unop(inst.op, a), inst)
        except ValueError:
            return None
    if isinstance(inst, Select):
        c = _const(inst.cond)
        if c is not None:
            return inst.true_value if bool(c) else inst.false_value
        if inst.true_value is inst.false_value:
            return inst.true_value
        return None
    if isinstance(inst, Cast):
        a = _const(inst.operands[0])
        if a is None:
            return None
        if inst.type.is_int():
            return const_int(int(a))
        if inst.type.is_float():
            return const_float(float(a))
        if inst.type.is_bool():
            return const_bool(bool(a))
        return None
    if isinstance(inst, Phi):
        # collapse a phi whose single live edge is always taken whenever
        # the phi executes (edges with unsatisfiable guards are dead)
        live = [(v, p) for v, p in inst.incomings() if not p.is_false()]
        if len(live) == 1 and inst.predicate.implies(live[0][1]):
            return live[0][0]
        return None
    return None


def run_simplify(fn: Function) -> int:
    """Fold constants and identities to a fixpoint; returns #rewrites.

    Worklist-driven: rewriting an instruction enqueues its users (whose
    operands or predicates just changed), so the fixpoint is reached in
    one sweep instead of repeated whole-function rescans.  Folding is
    confluent — each instruction folds at most once before it is
    replaced — so the rewrite count and final IR match the rescan
    formulation exactly.
    """
    total = 0
    worklist: list[Instruction] = list(fn.instructions())
    queued = set(map(id, worklist))
    while worklist:
        inst = worklist.pop()
        queued.discard(id(inst))
        if inst.parent is None:
            continue
        replacement = _fold_instruction(inst)
        if replacement is None or replacement is inst:
            continue
        users = list(inst.users())
        for user in users:
            user.replace_uses_of(inst, replacement)
        _fix_loop_refs(fn, inst, replacement)
        if fn.return_value is inst:
            fn.set_return(replacement)
        if not inst.has_users():
            inst.scope_erase()
        total += 1
        for u in users:
            if isinstance(u, Instruction) and id(u) not in queued:
                queued.add(id(u))
                worklist.append(u)
        if isinstance(replacement, Instruction) and id(replacement) not in queued:
            queued.add(id(replacement))
            worklist.append(replacement)
        if inst.parent is not None and id(inst) not in queued:
            # still anchored (a non-tracked reference kept it alive):
            # revisit, matching the rescan formulation
            queued.add(id(inst))
            worklist.append(inst)
    dc = get_context()
    if dc.enabled and total:
        dc.remark(
            "simplify", "Passed", fn.name, "",
            "folded {n} instructions (constants, identities, trivial phis)",
            n=total,
        )
    return total


def _fix_loop_refs(fn: Function, old: Value, new: Value) -> None:
    for loop in fn.loops():
        loop.replace_uses_of(old, new)


__all__ = ["run_simplify"]
