"""Scalar optimizations and loop transforms: DCE, simplification, GVN,
LICM, and loop unrolling (the SLP loop-vectorization enabler)."""

from .dce import run_dce
from .gvn import run_gvn
from .licm import run_licm
from .simplify import run_simplify
from .unroll import can_unroll, unroll_innermost_loops, unroll_loop

__all__ = [
    "run_dce",
    "run_gvn",
    "run_licm",
    "run_simplify",
    "can_unroll",
    "unroll_innermost_loops",
    "unroll_loop",
]
