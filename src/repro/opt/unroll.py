"""Loop unrolling for counted loops, with an epilogue for remainders.

SLP vectorization of loops works by unrolling the innermost loop by the
vector length and letting the packer fuse the unrolled copies (the paper
illustrates exactly this with the unroll-by-2 view of floyd-warshall,
Fig. 17/18).  The transformation is purely structural — no dependence
analysis is needed, because each unrolled body copy preserves the original
iteration order:

    main loop (runs while >= F full iterations remain):
        F chained copies of the body, loop-carried mus threaded through
    epilogue = the original loop, its mu inits rewired to the main loop's
        live-outs, entered only when iterations remain

Requires a loop whose trip count is computable before entry
(:func:`repro.analysis.affine.trip_count_affine`) and whose live-outs are
recurrence values (which is what the front end generates).
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.affine import Affine, trip_count_affine
from repro.ir.clone import clone_item
from repro.ir.instructions import BinOp, Cmp, Eta, Instruction, Mu, Phi
from repro.ir.loops import Function, Loop, ScopeMixin
from repro.ir.predicates import Predicate
from repro.ir.values import Value, const_int


def _materialize_affine(aff: Affine, insert_scope: ScopeMixin, anchor, pred) -> Value:
    acc: Optional[Value] = None

    def emit(inst: Instruction) -> Instruction:
        inst.set_predicate(pred)
        insert_scope.insert_before(anchor, inst)
        return inst

    for sym, coeff in sorted(aff.terms.items(), key=lambda kv: kv[0].vid):
        term: Value = sym
        if coeff != 1:
            term = emit(BinOp("mul", sym, const_int(coeff)))
        acc = term if acc is None else emit(BinOp("add", acc, term))
    if acc is None:
        return const_int(aff.const)
    if aff.const != 0:
        acc = emit(BinOp("add", acc, const_int(aff.const)))
    return acc


def can_unroll(loop: Loop) -> bool:
    if trip_count_affine(loop) is None:
        return False
    recs = {id(m.rec) for m in loop.mus}
    return all(id(e.inner) in recs for e in loop.etas if e.parent is not None)


def unroll_loop(fn: Function, loop: Loop, factor: int) -> bool:
    """Unroll ``loop`` by ``factor`` in place; returns False when the loop
    shape is unsupported."""
    if factor < 2:
        return False
    scope = loop.parent
    if scope is None or not can_unroll(loop):
        return False
    tc = trip_count_affine(loop)
    assert tc is not None
    p0 = loop.predicate

    def emit_before(inst: Instruction, pred: Predicate) -> Instruction:
        inst.set_predicate(pred)
        scope.insert_before(loop, inst)
        return inst

    trips = _materialize_affine(tc, scope, loop, p0)
    ge_f = emit_before(Cmp("ge", trips, const_int(factor), name="unroll.main"), p0)
    ge_f.is_branch_source = True
    p_main = p0.and_value(ge_f)
    p_skip_main = p0.and_value(ge_f, negated=True)

    main = Loop(loop.name + ".unrolled")
    main.set_predicate(p_main)
    main.metadata["unrolled"] = True
    main.metadata["unroll_main"] = factor
    scope.insert_before(loop, main)

    counter = Mu(const_int(0), name="unroll.iter")
    main.add_mu(counter)
    mus1: dict[Mu, Mu] = {}
    for m in loop.mus:
        m1 = Mu(m.init, name=m.name)
        main.add_mu(m1)
        mus1[m] = m1

    current: dict[Mu, Value] = dict(mus1)
    for _k in range(factor):
        vmap: dict = {m: cur for m, cur in current.items()}
        for item in loop.items:
            clone = clone_item(item, vmap)
            main.append(clone)
        current = {m: vmap.get(m.rec, m.rec) for m in loop.mus}
    for m, m1 in mus1.items():
        m1.set_rec(current[m])

    c_next = BinOp("add", counter, const_int(factor), name="unroll.next")
    c_next.set_predicate(Predicate.true())
    main.append(c_next)
    counter.set_rec(c_next)
    lookahead = BinOp("add", c_next, const_int(factor))
    lookahead.set_predicate(Predicate.true())
    main.append(lookahead)
    cont = Cmp("le", lookahead, trips, name="unroll.cont")
    cont.set_predicate(Predicate.true())
    cont.is_branch_source = True
    main.append(cont)
    main.set_cont(cont)

    # live-outs of the main loop joined with the skip path
    after: dict[Mu, Value] = {}
    for m in loop.mus:
        eta = Eta(main, current[m], name=f"{m.name}.main")
        emit_before(eta, p_main)
        phi = Phi([(eta, p_main), (m.init, p_skip_main)], name=f"{m.name}.mid")
        emit_before(phi, p0)
        after[m] = phi
    c_eta = Eta(main, c_next, name="unroll.done")
    emit_before(c_eta, p_main)
    done = Phi([(c_eta, p_main), (const_int(0), p_skip_main)], name="unroll.donephi")
    emit_before(done, p0)

    # epilogue = the original loop, entered only when iterations remain
    entry_epi = Cmp("lt", done, trips, name="unroll.epi")
    entry_epi.is_branch_source = True
    emit_before(entry_epi, p0)
    p_epi = p0.and_value(entry_epi)
    loop.set_predicate(p_epi)
    for m in loop.mus:
        m.set_operand(0, after[m])

    rec_to_mu = {id(m.rec): m for m in loop.mus}
    for eta in list(loop.etas):
        if eta.parent is None:
            continue
        p_eta = eta.predicate
        eta.set_predicate(p_eta.and_value(entry_epi))
        m = rec_to_mu[id(eta.inner)]
        final = Phi(
            [(eta, eta.predicate), (after[m], p_eta.and_value(entry_epi, negated=True))],
            name=f"{eta.name}.fin",
        )
        final.set_predicate(p_eta)
        eta.parent.insert_after(eta, final)
        for user in list(eta.users()):
            if user is final:
                continue
            user.replace_uses_of(eta, final)
        if fn.return_value is eta:
            fn.set_return(final)

    return True


def unroll_innermost_loops(fn: Function, factor: int) -> int:
    """Unroll every innermost unrollable loop by ``factor``; returns the
    number of loops transformed."""
    done = 0
    for loop in fn.loops():
        if any(isinstance(it, Loop) for it in loop.items):
            continue  # not innermost
        if loop.metadata.get("unrolled"):
            continue
        if unroll_loop(fn, loop, factor):
            loop.metadata["unrolled"] = True
            done += 1
    return done


__all__ = ["unroll_loop", "unroll_innermost_loops", "can_unroll"]
