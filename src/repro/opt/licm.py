"""Loop-invariant code motion over predicated SSA.

Hoists pure, unconditionally-executed, loop-invariant instructions out of
loop bodies into the parent scope (before the loop).  Loads are hoisted
when no may-write in the loop can alias them — which is where the noalias
scope groups stamped by versioning pay off downstream ("LICM hoisted 6.4%
more instructions", paper Fig. 22).

Hoisting is sound in rotated-loop form: the loop predicate guards entry,
so the hoisted instruction executes at least as often as it used to; we
predicate it with the loop's predicate to avoid executing it when the
loop is skipped entirely (loads could otherwise fault).
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.alias import AliasAnalysis, AliasResult
from repro.diag.context import get_context
from repro.ir.instructions import (
    BinOp,
    Cast,
    Cmp,
    Instruction,
    Load,
    PtrAdd,
    Select,
    UnOp,
)
from repro.ir.loops import Function, Loop, ScopeMixin


_HOISTABLE = (BinOp, UnOp, Cmp, Cast, PtrAdd, Select, Load)


def run_licm(fn: Function, alias: Optional[AliasAnalysis] = None) -> int:
    """Hoist invariant instructions; returns the number hoisted."""
    aa = alias if alias is not None else AliasAnalysis()
    hoisted = 0

    dc = get_context()

    # Per-loop may-write summaries in one bottom-up walk.  LICM only
    # moves pure instructions and loads (never writes), and only to the
    # immediate parent scope, so each loop's write set is fixed for the
    # whole pass.
    loop_writes: dict[int, list[Instruction]] = {}

    def _collect_writes(scope: ScopeMixin) -> list[Instruction]:
        writes: list[Instruction] = []
        for item in scope.items:
            if isinstance(item, Loop):
                writes.extend(_collect_writes(item))
            elif item.may_write():
                writes.append(item)
        loop_writes[id(scope)] = writes
        return writes

    _collect_writes(fn)

    def visit(scope: ScopeMixin) -> None:
        nonlocal hoisted
        for item in list(scope.items):
            if isinstance(item, Loop):
                visit(item)  # innermost first
                n = _hoist_from(scope, item, aa, loop_writes[id(item)])
                hoisted += n
                if dc.enabled and n:
                    dc.remark(
                        "licm", "Passed", fn.name, item.name,
                        "hoisted {n} loop-invariant instructions out of {loop}",
                        n=n, loop=item.name,
                    )

    visit(fn)
    return hoisted


def _hoist_from(
    parent: ScopeMixin, loop: Loop, aa: AliasAnalysis,
    writes: list[Instruction],
) -> int:
    inner: set = set(loop.header_and_body_instructions())
    # The write set is fixed for the whole hoisting fixpoint and hoisting
    # never rewrites operands, so a load's verdict against the writes is
    # stable — memoize it across rounds.
    load_clobbered: dict[int, bool] = {}
    count = 0
    changed = True
    while changed:
        changed = False
        for item in list(loop.items):
            if isinstance(item, Loop) or not isinstance(item, _HOISTABLE):
                continue
            inst: Instruction = item
            if inst is loop.cont:
                continue
            if not inst.predicate.is_true():
                continue  # conditionally executed: not guaranteed invariant
            if any(op in inner for op in inst.operands):
                continue
            from repro.ir.instructions import Eta

            if any(isinstance(u, Eta) for u in inst.users()):
                continue  # live-out anchor must stay in the loop
            if isinstance(inst, Load):
                verdict = load_clobbered.get(id(inst))
                if verdict is None:
                    verdict = any(
                        aa.alias(inst, w) != AliasResult.NO for w in writes
                    )
                    load_clobbered[id(inst)] = verdict
                if verdict:
                    continue
            loop.remove(inst)
            parent.insert_before(loop, inst)
            inst.set_predicate(loop.predicate)
            inner.discard(inst)
            count += 1
            changed = True
    return count


__all__ = ["run_licm"]
