"""Global value numbering over predicated SSA.

Within one scope (and descending into loop bodies), pure instructions
computing the same expression are merged: a later instruction reuses an
earlier one when the earlier is guaranteed to have executed (the later's
predicate implies the earlier's).

Loads participate too — a load is redundant with an identical earlier load
when no may-write instruction sits between them (checked with the alias
analysis, which honours the noalias scope groups that versioning stamps —
this is the "GVN deleted 8.5% more instructions" downstream effect in the
paper's Fig. 22).
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.alias import AliasAnalysis, AliasResult
from repro.diag.context import get_context
from repro.ir.instructions import (
    BinOp,
    Cast,
    Cmp,
    Instruction,
    Load,
    PtrAdd,
    Select,
    UnOp,
)
from repro.ir.loops import Function, Loop, ScopeMixin


def _opkey(v):
    from repro.ir.values import Constant

    if isinstance(v, Constant):
        # type objects are interned, so they hash/compare pointer-fast
        return ("c", v.type, v.value)
    return id(v)


def _key(inst: Instruction):
    ops = tuple(_opkey(o) for o in inst.operands)
    if isinstance(inst, BinOp):
        if inst.op in ("add", "mul", "and", "or", "min", "max"):
            ops = tuple(sorted(ops, key=repr))
        return ("bin", inst.op, ops)
    if isinstance(inst, UnOp):
        return ("un", inst.op, ops)
    if isinstance(inst, Cmp):
        return ("cmp", inst.rel, ops)
    if isinstance(inst, Cast):
        return ("cast", inst.type, ops)
    if isinstance(inst, PtrAdd):
        return ("ptradd", ops)
    if isinstance(inst, Select):
        return ("select", ops)
    if isinstance(inst, Load):
        return ("load", ops)
    return None


def run_gvn(fn: Function, alias: Optional[AliasAnalysis] = None) -> int:
    """Merge redundant pure computations; returns #instructions deleted."""
    aa = alias if alias is not None else AliasAnalysis()
    deleted = 0
    dc = get_context()

    # Alias results between a candidate load and earlier writes are
    # memoized for the duration of this run.  GVN merges only replace a
    # value with a structurally identical one, so an instruction's memory
    # location (and hence its alias relations) never changes mid-run.
    alias_memo: dict = {}

    def _alias(a, b):
        k = (a, b)
        r = alias_memo.get(k)
        if r is None:
            r = aa.alias(a, b)
            alias_memo[k] = r
        return r

    # Per-loop may-write summaries in one bottom-up walk, instead of
    # re-walking each loop's whole subtree (``mem_instructions``) every
    # time the scan meets a loop item.
    loop_writes: dict[int, list[Instruction]] = {}

    def _collect_writes(scope: ScopeMixin) -> list[Instruction]:
        writes: list[Instruction] = []
        for item in scope.items:
            if isinstance(item, Loop):
                writes.extend(_collect_writes(item))
            elif item.may_write():
                writes.append(item)
        loop_writes[id(scope)] = writes
        return writes

    _collect_writes(fn)

    def visit(scope: ScopeMixin) -> None:
        nonlocal deleted
        loc = scope.name if isinstance(scope, Loop) else ""
        table: dict = {}
        writes_since: dict[int, list[Instruction]] = {}
        mem_writes: list[Instruction] = []
        for item in list(scope.items):
            if isinstance(item, Loop):
                visit(item)
                mem_writes.extend(loop_writes[id(item)])
                continue
            inst: Instruction = item  # type: ignore[assignment]
            if inst.may_write():
                mem_writes.append(inst)
                continue
            k = _key(inst)
            if k is None:
                continue
            prior = table.get(k)
            if prior is not None and inst.predicate.implies(prior[0].predicate):
                earlier, write_mark = prior
                if isinstance(inst, Load):
                    clobbered = any(
                        _alias(inst, w) != AliasResult.NO
                        for w in mem_writes[write_mark:]
                    )
                    if clobbered:
                        if dc.enabled:
                            dc.remark(
                                "gvn", "Missed", fn.name, loc,
                                "load {load} not merged with {prior}: "
                                "intervening write may alias",
                                load=inst.display_name(),
                                prior=earlier.display_name(),
                            )
                        table[k] = (inst, len(mem_writes))
                        continue
                for user in list(inst.users()):
                    user.replace_uses_of(inst, earlier)
                if fn.return_value is inst:
                    fn.set_return(earlier)
                inst.scope_erase()
                deleted += 1
                continue
            table[k] = (inst, len(mem_writes))

    visit(fn)
    if dc.enabled and deleted:
        dc.remark(
            "gvn", "Passed", fn.name, "",
            "deleted {n} redundant instructions", n=deleted,
        )
    return deleted


__all__ = ["run_gvn"]
