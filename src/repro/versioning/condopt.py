"""Versioning-condition optimizations (paper §IV-A).

Run between plan inference and materialization:

* **Redundant condition elimination** — two ``intersects`` checks are
  equivalent when one's ranges are both the other's shifted by one common
  constant offset (possibly with the ranges swapped); equivalence classes
  keep a single representative.
* **Condition coalescing** — checks over the same pair of base objects
  whose ranges differ by constants merge into one hull check.  The hull
  over-approximates (fails more often), so coalescing runs after RCE and
  is off by default for clients that prefer precision.
* **Condition promotion** — when a plan lives inside a loop and all its
  conditions can be promoted loop-invariant (precisely, or imprecisely via
  the trip count), the check is re-anchored to the loop's parent scope so
  it executes once per loop entry instead of once per iteration.  This is
  what amortizes the two-level s258 checks in the paper's experiment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.analysis.affine import difference
from repro.analysis.conditions import DepCond, IntersectCond, PredCond
from repro.analysis.promote import promote_intersect
from repro.ir.instructions import Item
from repro.ir.loops import Function, Loop, ScopeMixin

from .plans import VersioningPlan


# ---------------------------------------------------------------------------
# Redundant condition elimination
# ---------------------------------------------------------------------------


def _shift_delta(x: IntersectCond, y: IntersectCond) -> Optional[int]:
    """The common constant d with x = y shifted by d, else None."""

    def range_delta(rx, ry) -> Optional[int]:
        if rx.base is not ry.base:
            return None
        lo = difference(rx.lo, ry.lo)
        hi = difference(rx.hi, ry.hi)
        if lo is None or hi is None or lo != hi:
            return None  # paper: offset undefined when bounds shift unevenly
        return lo

    d1 = range_delta(x.a, y.a)
    d2 = range_delta(x.b, y.b)
    if d1 is not None and d1 == d2:
        return d1
    d1 = range_delta(x.a, y.b)
    d2 = range_delta(x.b, y.a)
    if d1 is not None and d1 == d2:
        return d1
    return None


def eliminate_redundant_conditions(conds: list[DepCond]) -> list[DepCond]:
    """Partition into equivalence classes; keep one representative each."""
    out: list[DepCond] = []
    reps: list[IntersectCond] = []
    for c in conds:
        if not isinstance(c, IntersectCond):
            if c not in out:
                out.append(c)
            continue
        if any(_shift_delta(c, r) is not None for r in reps):
            continue
        reps.append(c)
        out.append(c)
    return out


# ---------------------------------------------------------------------------
# Condition coalescing
# ---------------------------------------------------------------------------


def _try_coalesce(x: IntersectCond, y: IntersectCond) -> Optional[IntersectCond]:
    """Hull of two checks over the same base pair, when bounds differ by
    constants.  The hull check is implied false => both originals false."""

    def hull(r1, r2):
        if r1.base is not r2.base:
            return None
        dlo = difference(r2.lo, r1.lo)
        dhi = difference(r2.hi, r1.hi)
        if dlo is None or dhi is None:
            return None
        lo = r1.lo if dlo >= 0 else r2.lo
        hi = r1.hi if dhi <= 0 else r2.hi
        from repro.analysis.conditions import SymRange

        return SymRange(r1.base, lo, hi)

    ha = hull(x.a, y.a)
    hb = hull(x.b, y.b)
    if ha is not None and hb is not None:
        return IntersectCond(ha, hb)
    ha = hull(x.a, y.b)
    hb = hull(x.b, y.a)
    if ha is not None and hb is not None:
        return IntersectCond(ha, hb)
    return None


def coalesce_conditions(conds: list[DepCond]) -> list[DepCond]:
    """Greedy pairwise coalescing of intersects checks."""
    intersects = [c for c in conds if isinstance(c, IntersectCond)]
    others = [c for c in conds if not isinstance(c, IntersectCond)]
    changed = True
    while changed and len(intersects) > 1:
        changed = False
        for i in range(len(intersects)):
            for j in range(i + 1, len(intersects)):
                merged = _try_coalesce(intersects[i], intersects[j])
                if merged is not None:
                    intersects[i] = merged
                    del intersects[j]
                    changed = True
                    break
            if changed:
                break
    return others + intersects


# ---------------------------------------------------------------------------
# Condition promotion (check hoisting)
# ---------------------------------------------------------------------------


def promote_plan(plan: VersioningPlan) -> None:
    """Hoist each condition out of enclosing loops as far as it promotes.

    Promotion is per-condition: a check whose ranges all promote walks
    outward loop by loop and lands in ``plan.hoisted_conditions`` as
    ``(condition, (outer_scope, loop_item))``; conditions that resist at
    the innermost level (same-object iteration-variant interference,
    guard-value speculation) stay in ``plan.conditions`` and execute
    inside the loop.  The paper's s258 experiment relies on exactly this
    split — the alias checks hoist and amortize while the fine-grained
    machinery keeps the loop versionable at all.

    ``plan.check_anchor`` is kept (legacy single-anchor form) when every
    condition hoisted to one common anchor.
    """
    graph = plan.graph
    if graph is None or not isinstance(graph.scope, Loop):
        return
    residual: list[DepCond] = []
    hoisted: list[tuple[DepCond, tuple]] = list(
        getattr(plan, "hoisted_conditions", [])
    )
    for c in plan.conditions:
        cur = c
        anchor = None
        s = graph.scope
        while isinstance(s, Loop) and s.parent is not None:
            if not isinstance(cur, IntersectCond):
                break
            p = promote_intersect(cur, s)
            if p is None:
                break
            cur = p
            anchor = (s.parent, s)
            s = s.parent
        if anchor is not None:
            hoisted.append((cur, anchor))
        else:
            residual.append(cur)
    plan.conditions = residual
    setattr(plan, "hoisted_conditions", hoisted)
    if not residual and hoisted:
        anchors = {id(a[1][1]) for a in hoisted}
        if len(anchors) == 1:
            setattr(plan, "check_anchor", hoisted[0][1])


def optimize_plan(
    plan: VersioningPlan,
    rce: bool = True,
    coalesce: bool = False,
    promote: bool = True,
) -> VersioningPlan:
    """Apply §IV-A optimizations to a (nested) plan, in the paper's order:
    RCE first, then coalescing, then promotion."""
    if plan.secondary is not None:
        optimize_plan(plan.secondary, rce=rce, coalesce=coalesce, promote=promote)
    if rce:
        plan.conditions = eliminate_redundant_conditions(plan.conditions)
    if coalesce:
        plan.conditions = coalesce_conditions(plan.conditions)
    if promote:
        promote_plan(plan)
    return plan


__all__ = [
    "eliminate_redundant_conditions",
    "coalesce_conditions",
    "promote_plan",
    "optimize_plan",
]
