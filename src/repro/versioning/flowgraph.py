"""Dependence-graph cuts via the node-split flow network (paper Fig. 8).

``find_cut(graph, S, T)`` answers: which *conditional* dependence edges
must be removed so that no node in S (transitively) depends on a node in
T?  Construction follows the paper exactly:

1. DFS from S over dependence edges (conditional and unconditional) to
   collect the relevant subgraph.
2. Split every node v into ``in(v) -> out(v)`` (auxiliary edge); each
   dependence edge ``i -> j`` becomes ``out(i) -> in(j)``.  Splitting
   matters: without it the sink stays reachable through a node even after
   all its conditional in-edges are cut.
3. ``source -> out(s)`` for s in S, ``in(t) -> sink`` for t in T.
4. Conditional edges get capacity 1 (or a caller-supplied likelihood);
   unconditional and auxiliary edges get an "infinite" capacity chosen
   larger than the sum of all conditional capacities, so a min cut that
   meets it proves versioning infeasible.

Trivial reachability ``s -> s`` for ``s ∈ S ∩ T`` is ignored (the paper's
footnote): node splitting gives this for free, since ``source -> out(s)``
and ``in(s) -> sink`` touch different halves of the split node.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional

from repro.analysis.depgraph import DepEdge, DependenceGraph
from repro.ir.instructions import Item
from repro.ir.loops import program_order

from .mincut import FlowNetwork

_SCALE = 1024  # fixed-point scale for float likelihoods


@dataclass
class Cut:
    """Result of a feasible cut."""

    cut_edges: list[DepEdge]
    source_nodes: list[Item]  # source side of the cut that can reach T
    value: float = 0.0

    @property
    def empty(self) -> bool:
        return not self.cut_edges


EdgeKey = tuple[int, int]


def _edge_key(e: DepEdge) -> EdgeKey:
    return (id(e.src), id(e.dst))


def find_cut(
    graph: DependenceGraph,
    sources: Iterable[Item],
    targets: Iterable[Item],
    removed: Optional[set[EdgeKey]] = None,
    likelihood: Optional[Callable[[DepEdge], float]] = None,
    internal: Optional[set[int]] = None,
) -> Optional[Cut]:
    """Find a minimal conditional cut separating ``sources`` from
    ``targets``; None when infeasible (an unconditional path exists).

    ``removed`` holds keys of dependence edges already eliminated by other
    (secondary) versioning plans; they are excluded from the graph, which
    implements the paper's ``update_cut``.

    ``internal`` holds item ids whose mutual edges are exempt: an SLP
    client passes the whole pack-tree member set so that a member may
    depend on another member *directly* (vector lanes preserve relative
    order), while paths that leave the set and come back must still be
    cut — that is the schedulability condition for fusing the members
    into adjacent vector lanes.
    """
    S = list(dict.fromkeys(sources))
    T = list(dict.fromkeys(targets))
    removed = removed or set()
    internal = internal or set()
    t_set = set(map(id, T))

    # 1. DFS from S over live dependence edges
    live_edges: list[DepEdge] = []
    reach: dict[int, Item] = {}
    stack = list(S)
    seen = set(map(id, S))
    while stack:
        node = stack.pop()
        reach[id(node)] = node
        for e in graph.deps(node):
            if _edge_key(e) in removed:
                continue
            if id(e.src) in internal and id(e.dst) in internal:
                continue  # intra-group edge: relative order is preserved
            live_edges.append(e)
            if id(e.dst) not in seen:
                seen.add(id(e.dst))
                stack.append(e.dst)

    if not _reaches(live_edges, S, t_set):
        # S already independent of T (paper: two empty sets)
        return Cut([], [])

    # capacities
    cond_edges = [e for e in live_edges if e.conditional]
    if likelihood is not None:
        caps = {id(e): max(1, int(likelihood(e) * _SCALE)) for e in cond_edges}
    else:
        caps = {id(e): _SCALE for e in cond_edges}
    inf_cap = sum(caps.values()) + _SCALE

    # 2-3. node-split network
    ids = list(reach.keys())
    for t in T:  # ensure targets present even if unreached (harmless)
        if id(t) not in reach:
            reach[id(t)] = t
            ids.append(id(t))
    index: dict[int, int] = {}
    for nid in ids:
        index[nid] = len(index)
    n_items = len(index)

    def node_in(nid: int) -> int:
        return 2 + 2 * index[nid]

    def node_out(nid: int) -> int:
        return 2 + 2 * index[nid] + 1

    net = FlowNetwork(2 + 2 * n_items)
    SOURCE, SINK = 0, 1
    for nid in ids:
        net.add_edge(node_in(nid), node_out(nid), inf_cap)
    edge_handles: list[tuple[DepEdge, tuple[int, int]]] = []
    for e in live_edges:
        cap = caps.get(id(e), inf_cap)
        h = net.add_edge(node_out(id(e.src)), node_in(id(e.dst)), cap)
        edge_handles.append((e, h))
    for s in S:
        net.add_edge(SOURCE, node_out(id(s)), inf_cap)
    for t in T:
        net.add_edge(node_in(id(t)), SINK, inf_cap)

    # 4. max-flow + feasibility
    flow = net.max_flow(SOURCE, SINK)
    if flow >= inf_cap:
        return None

    side = net.min_cut_side(SOURCE)
    cut_edges = []
    for e, (u, i) in edge_handles:
        src_out = node_out(id(e.src))
        dst_in = node_in(id(e.dst))
        if src_out in side and dst_in not in side:
            cut_edges.append(e)

    # source-side items that can reach T through dependence edges
    source_nodes = _source_side_reaching(
        graph, live_edges, side, node_out, reach, t_set
    )
    return Cut(cut_edges, source_nodes, value=flow / _SCALE)


def _reaches(edges: list[DepEdge], sources: list[Item], t_set: set[int]) -> bool:
    adj: dict[int, list[int]] = {}
    for e in edges:
        adj.setdefault(id(e.src), []).append(id(e.dst))
    stack = [id(s) for s in sources]
    seen: set[int] = set()
    while stack:
        u = stack.pop()
        for v in adj.get(u, ()):
            if v in t_set:
                return True
            if v not in seen:
                seen.add(v)
                stack.append(v)
    return False


def _source_side_reaching(
    graph: DependenceGraph,
    live_edges: list[DepEdge],
    side: set[int],
    node_out,
    reach: dict[int, Item],
    t_set: set[int],
) -> list[Item]:
    # reverse-reachability from T over *all* live dependence edges
    radj: dict[int, list[int]] = {}
    for e in live_edges:
        radj.setdefault(id(e.dst), []).append(id(e.src))
    reaches_t: set[int] = set()
    stack = list(t_set)
    while stack:
        u = stack.pop()
        for v in radj.get(u, ()):
            if v not in reaches_t:
                reaches_t.add(v)
                stack.append(v)
    out: list[Item] = []
    for nid, item in reach.items():
        if nid in reaches_t and node_out(nid) in side:
            out.append(item)
    # keep a stable program order
    fn = _owning_function(graph)
    if fn is not None:
        order = program_order(fn)
        out.sort(key=lambda it: order.get(it, 1 << 30))
    return out


def _owning_function(graph: DependenceGraph):
    from repro.ir.loops import Function

    scope = graph.scope
    while scope is not None and not isinstance(scope, Function):
        scope = getattr(scope, "parent", None)
    return scope


__all__ = ["Cut", "find_cut"]
