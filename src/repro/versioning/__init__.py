"""The fine-grained versioning framework — the paper's core contribution.

Plan inference (min-cut over the conditional dependence graph, with nested
secondary plans), condition optimization (RCE / coalescing / promotion),
and materialization (checks, clones, versioning phis, noalias scopes).
"""

from .api import VersioningFramework, make_independent
from .condopt import (
    coalesce_conditions,
    eliminate_redundant_conditions,
    optimize_plan,
    promote_plan,
)
from .flowgraph import Cut, find_cut
from .materialize import MaterializationError, Materializer, materialize_plans
from .mincut import FlowNetwork
from .plans import (
    PlanInferenceError,
    VersioningPlan,
    infer_plan_for_items,
    infer_versioning_plan,
)

__all__ = [
    "VersioningFramework",
    "make_independent",
    "coalesce_conditions",
    "eliminate_redundant_conditions",
    "optimize_plan",
    "promote_plan",
    "Cut",
    "find_cut",
    "MaterializationError",
    "Materializer",
    "materialize_plans",
    "FlowNetwork",
    "PlanInferenceError",
    "VersioningPlan",
    "infer_plan_for_items",
    "infer_versioning_plan",
]
