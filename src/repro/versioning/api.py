"""Public interface of the versioning framework.

The paper's library exposes exactly two entry points (§IV): plan
inference over a group of instructions/loops, and plan materialization.
:class:`VersioningFramework` wraps both, caching one dependence graph per
scope and invalidating the caches after materialization mutates the IR.

Typical client shape (this is all the SLP integration needed, §V-A):

    vf = VersioningFramework(fn)
    plan = vf.infer_for_items(pack_members)     # None -> reject the pack
    ...collect plans during planning...
    vf.materialize(plans)                       # then generate code
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional

from repro.analysis.alias import AliasAnalysis
from repro.analysis.conditions import flatten
from repro.analysis.depgraph import DepEdge, DependenceGraph
from repro.analysis.manager import AnalysisManager
from repro.diag.context import get_context
from repro.ir.instructions import Item
from repro.ir.loops import Function, Loop, ScopeMixin
from repro.ir.verifier import verify_function

from .condopt import optimize_plan
from .materialize import Materializer
from .plans import VersioningPlan, infer_plan_for_items, infer_versioning_plan


def _scope_loc(scope) -> str:
    return scope.name if isinstance(scope, Loop) else ""


def _conds_text(plan: VersioningPlan) -> str:
    """Stable one-line rendering of a plan's (nested) conditions."""
    return "; ".join(str(c) for c in plan.all_conditions())


def _remark_inference(
    dc, fn_name: str, query: str, scope, n_items: int,
    plan: Optional[VersioningPlan],
) -> None:
    """Trace one plan-inference query: the dependence conditions the
    min-cut selected (Analysis) or the infeasibility (Missed)."""
    loc = _scope_loc(scope)
    if plan is None:
        dc.remark(
            "versioning", "Missed", fn_name, loc,
            "{query}: no versioning plan makes {n} items independent",
            query=query, n=n_items,
        )
    elif plan.is_empty():
        dc.remark(
            "versioning", "Analysis", fn_name, loc,
            "{query}: {n} items already independent (no checks needed)",
            query=query, n=n_items,
        )
    else:
        dc.remark(
            "versioning", "Analysis", fn_name, loc,
            "{query}: min-cut plan over {n} items cuts {edges} dependence "
            "edge(s), {checks} check(s), depth {depth}: {conds}",
            query=query, n=n_items, edges=len(plan.removed_edges),
            checks=plan.check_count(), depth=plan.depth(),
            conds=_conds_text(plan),
        )


class VersioningFramework:
    """Plan inference + materialization over one function."""

    def __init__(
        self,
        fn: Function,
        honor_restrict: bool = True,
        likelihood: Optional[Callable[[DepEdge], float]] = None,
        manager: Optional[AnalysisManager] = None,
    ):
        self.fn = fn
        self.am = manager if manager is not None else AnalysisManager(
            honor_restrict=honor_restrict
        )
        self.likelihood = likelihood

    @property
    def alias(self) -> AliasAnalysis:
        return self.am.alias()

    # -- graphs ---------------------------------------------------------------

    def graph_for(
        self, scope: ScopeMixin, assume_independent=None
    ) -> DependenceGraph:
        return self.am.depgraph(scope, assume_independent=assume_independent)

    def invalidate(self) -> None:
        # materialization rewrites predicates/operands in place and stamps
        # noalias groups: nothing is preserved
        self.am.invalidate(self.fn, preserved=frozenset())

    # -- inference (API function 1) -------------------------------------------

    def infer_for_items(self, items: Iterable[Item]) -> Optional[VersioningPlan]:
        """Infer a plan making ``items`` (same scope) mutually independent.

        Returns None when infeasible.  An *empty* plan (``is_empty()``)
        means the items are already independent — the client may proceed
        with no run-time checks.
        """
        items = list(items)
        if not items:
            return None
        scope = items[0].parent
        if any(it.parent is not scope for it in items):
            raise ValueError("all items must share one scope")
        graph = self.graph_for(scope)
        plan = infer_plan_for_items(graph, items, likelihood=self.likelihood)
        dc = get_context()
        if dc.enabled:
            _remark_inference(dc, self.fn.name, "independence", scope,
                              len(items), plan)
        return plan

    def infer_independence(
        self, nodes: Iterable[Item], input_nodes: Iterable[Item]
    ) -> Optional[VersioningPlan]:
        """Infer a plan making ``nodes`` independent of ``input_nodes``."""
        nodes = list(nodes)
        input_nodes = list(input_nodes)
        scope = (nodes + input_nodes)[0].parent
        graph = self.graph_for(scope)
        plan = infer_versioning_plan(
            graph, nodes, input_nodes, likelihood=self.likelihood
        )
        dc = get_context()
        if dc.enabled:
            _remark_inference(dc, self.fn.name, "independence-of-inputs",
                              scope, len(nodes), plan)
        return plan

    def infer_schedulability(self, members: Iterable[Item]) -> Optional[VersioningPlan]:
        """Infer a plan eliminating every dependence path that *leaves and
        re-enters* ``members`` — the condition for fusing the members into
        one contiguous group (an SLP tree) while intra-group edges keep
        their relative order."""
        members = list(members)
        if not members:
            return None
        scope = members[0].parent
        graph = self.graph_for(scope)
        plan = infer_versioning_plan(
            graph,
            members,
            members,
            likelihood=self.likelihood,
            internal=set(map(id, members)),
        )
        dc = get_context()
        if dc.enabled:
            _remark_inference(dc, self.fn.name, "schedulability", scope,
                              len(members), plan)
        return plan

    # -- materialization (API function 2) ------------------------------------------

    def materialize(
        self,
        plans: Iterable[VersioningPlan],
        optimize: bool = True,
        coalesce: bool = False,
        verify: bool = True,
    ) -> None:
        """Lower ``plans`` into checks and duplicated code (§III-D), after
        optionally optimizing their conditions (§IV-A)."""
        plan_list = [p for p in plans if p is not None and not p.is_empty()]
        if optimize:
            for p in plan_list:
                optimize_plan(p, coalesce=coalesce)
        dc = get_context()
        if dc.enabled:
            # predicted overhead mirrors the SLP profitability model:
            # CHECK_COST per residual in-scope check, amortized over
            # AMORTIZE_TRIPS iterations for checks promoted out of a loop
            from repro.vectorizer.cost import AMORTIZE_TRIPS, CHECK_COST

            for p in plan_list:
                inline = hoisted = 0
                q: Optional[VersioningPlan] = p
                while q is not None:
                    inline += sum(len(flatten(c)) for c in q.conditions)
                    hoisted += sum(
                        len(flatten(c)) for c, _ in q.hoisted_conditions
                    )
                    q = q.secondary
                overhead = CHECK_COST * inline + (
                    CHECK_COST * hoisted / AMORTIZE_TRIPS
                )
                scope = p.nodes[0].parent if p.nodes else self.fn
                dc.remark(
                    "versioning", "Passed", self.fn.name, _scope_loc(scope),
                    "materialized plan: {checks} check(s) "
                    "({inline} in-scope, {hoisted} hoisted), {dup} node(s) "
                    "duplicated, predicted overhead ~{ov} cycles/entry: "
                    "{conds}",
                    checks=inline + hoisted, inline=inline, hoisted=hoisted,
                    dup=len(p.nodes), ov=round(overhead, 2),
                    conds=_conds_text(p),
                )
        mat = Materializer(self.fn)
        mat.materialize_plans(plan_list)
        self.invalidate()
        if verify:
            verify_function(self.fn)


def make_independent(fn: Function, items: Iterable[Item], **kwargs) -> bool:
    """One-shot convenience: version ``fn`` so ``items`` are independent.

    Returns True on success (plan inferred and materialized), False when
    versioning is infeasible.
    """
    vf = VersioningFramework(fn, **kwargs)
    plan = vf.infer_for_items(items)
    if plan is None:
        return False
    if not plan.is_empty():
        vf.materialize([plan])
    return True


__all__ = ["VersioningFramework", "make_independent"]
