"""Versioning-plan materialization (paper Fig. 14 / Fig. 15).

Plans are lowered secondary-first.  For one plan:

1. **Hoist** the defining chains of the plan's condition operands in front
   of the first versioned item.  This is the step the secondary plan makes
   legal: post-secondary, the check-passing copies of those chains are
   guaranteed independent of the versioned nodes (in the running example
   the ``x = load X`` / ``c = cmp`` pair moves above the stores).
2. **Emit the check**: one boolean ``ok`` asserting *none* of the
   versioning conditions hold.  Predicate conditions lower to a
   default-false phi (sound under the interpreter's missing-is-false
   rule: if the guard never ran, the dependence cannot occur), and
   intersects conditions lower to materialized affine bounds plus two
   range comparisons.  Identical condition sets share one check.
3. **Clone** every versioned item: the original's predicate is
   strengthened with ``ok``, the clone's with ``!ok``; a clone's operands
   and predicates reference the clones of other versioned items.
4. **Repair def-use**: each versioned value feeding a non-versioned user
   is routed through a versioning phi ``phi(ok: orig, !ok: clone)``; loop
   live-outs get cloned etas joined the same way; the function return is
   rerouted too.  Dead phis are swept.
5. **Annotate** (§IV-B): the check-passing copies of the plan's input
   memory instructions are stamped with a fresh noalias scope group, so
   LLVM-style alias queries — and therefore any downstream client — see
   their independence.
"""

from __future__ import annotations

import itertools
from typing import Optional

from repro.analysis.alias import add_noalias_group
from repro.analysis.conditions import (
    DepCond,
    IntersectCond,
    OrCond,
    PredCond,
    SymRange,
)
from repro.analysis.affine import Affine
from repro.ir.clone import clone_item
from repro.ir.instructions import (
    BinOp,
    Cmp,
    Eta,
    Instruction,
    Item,
    Phi,
    PtrAdd,
    UnOp,
)
from repro.ir.loops import Function, Loop, ScopeMixin
from repro.ir.predicates import Predicate
from repro.ir.types import VOID
from repro.ir.values import Value, const_bool, const_int

from .plans import VersioningPlan

_group_ids = itertools.count(1)


class MaterializationError(Exception):
    pass


class Materializer:
    """Lowers versioning plans into checks, clones, and phis."""

    def __init__(self, fn: Function):
        self.fn = fn
        # (scope id, condition-set) -> ok value, for check sharing
        self._check_cache: dict[tuple[int, frozenset], Value] = {}

    # -- public ----------------------------------------------------------------

    def materialize_plans(self, plans: list[VersioningPlan]) -> None:
        for plan in plans:
            self.materialize(plan)

    def materialize(self, plan: VersioningPlan) -> None:
        if plan.secondary is not None:
            self.materialize(plan.secondary)
        if plan.is_empty() or not plan.nodes:
            return
        assert plan.graph is not None
        scope = plan.graph.scope
        nodes = [n for n in plan.nodes if not isinstance(n, Eta)]
        for n in nodes:
            if n.parent is not scope:
                raise MaterializationError(
                    f"versioned item {n!r} is not in the plan's scope"
                )
        order = {id(it): i for i, it in enumerate(scope.items)}
        nodes.sort(key=lambda n: order[id(n)])
        anchor = nodes[0]

        # condition promotion (§IV-A) may have re-anchored some checks to
        # outer scopes; each anchor group gets its own check, residual
        # conditions are checked in place, and the ok values combine
        # Checks run under a guard implied by every versioned node's
        # predicate (the intersection of their literal sets): condition
        # operands such as inter-loop induction merges are only bound when
        # the guarded region executes, so an unconditional check would read
        # unbound values (e.g. an epilogue-loop bound of `i.mid` with
        # `n == 0`).  Whenever any node's predicate holds the guard holds
        # too, so ``ok`` is always bound where the strengthened predicates
        # need it.
        node_guard = Predicate(
            frozenset.intersection(*(n.predicate.literals for n in nodes))
        )
        ok_vals: list[Value] = []
        guards: list[Predicate] = []
        groups: dict[int, tuple] = {}
        for cond, (h_scope, h_anchor) in plan.hoisted_conditions:
            entry = groups.setdefault(id(h_anchor), (h_scope, h_anchor, []))
            entry[2].append(cond)
        for h_scope, h_anchor, conds in groups.values():
            self._hoist_condition_chains(h_scope, conds, h_anchor, set())
            ok_vals.append(
                self._emit_check(h_scope, conds, h_anchor, h_anchor.predicate)
            )
            guards.append(h_anchor.predicate)
        if plan.conditions:
            self._hoist_condition_chains(
                scope, plan.conditions, anchor, {id(n) for n in nodes}
            )
            ok_vals.append(
                self._emit_check(scope, plan.conditions, anchor, node_guard)
            )
            guards.append(node_guard)
        if len(ok_vals) == 1:
            ok = ok_vals[0]
        else:
            # combining reads every component ok, so the combiner's guard is
            # the conjunction of the component guards (each is implied by
            # any node predicate, so the conjunction is too)
            comb_pred = Predicate(
                frozenset().union(*(g.literals for g in guards))
            )
            acc = ok_vals[0]
            for v in ok_vals[1:]:
                combined = BinOp("and", acc, v, name="vchk")
                combined.set_predicate(comb_pred)
                scope.insert_before(anchor, combined)
                acc = combined
            ok = acc

        vmap: dict = {}
        clones: dict[int, Item] = {}
        for node in nodes:
            orig_pred = node.predicate
            clone = clone_item(node, vmap)
            clone.set_predicate(
                orig_pred.substitute(vmap).and_value(ok, negated=True)
            )
            node.set_predicate(orig_pred.and_value(ok))
            scope.insert_after(node, clone)
            clones[id(node)] = clone

        versioned_ids = {id(n) for n in nodes} | {id(c) for c in clones.values()}
        new_phis: list[Phi] = []
        for node in nodes:
            clone = clones[id(node)]
            if isinstance(node, Loop):
                self._join_loop_liveouts(
                    scope, node, clone, vmap, ok, versioned_ids, new_phis
                )
            else:
                self._join_instruction(
                    scope, node, clone, versioned_ids, new_phis
                )

        # sweep dead versioning phis
        for phi in new_phis:
            if not phi.has_users() and self.fn.return_value is not phi:
                phi.scope_erase()

        self._undef_dead_edges(plan)
        self._annotate_noalias(plan)

    # -- hoisting ----------------------------------------------------------------

    def _hoist_condition_chains(
        self,
        scope: ScopeMixin,
        conditions: list[DepCond],
        anchor: Item,
        versioned_ids: set[int],
    ) -> None:
        from repro.analysis.depgraph import _item_defined, _item_used

        def_map: dict[Value, Item] = {}
        for it in scope.items:
            for v in _item_defined(it):
                def_map[v] = it

        anchor_idx = scope.index_of(anchor)
        position = {id(it): i for i, it in enumerate(scope.items)}

        needed: set[int] = set()
        work: list[Value] = []
        for cond in conditions:
            work.extend(cond.operands())
        while work:
            v = work.pop()
            item = def_map.get(v)
            if item is None or id(item) in needed:
                continue
            if position[id(item)] <= anchor_idx:
                continue
            if id(item) in versioned_ids:
                raise MaterializationError(
                    "condition operand chain reaches a versioned node; "
                    "the plan is not materializable"
                )
            needed.add(id(item))
            work.extend(_item_used(item))

        if not needed:
            return
        to_move = [it for it in scope.items if id(it) in needed]
        for it in to_move:
            scope.remove(it)
        for it in to_move:
            scope.insert_before(anchor, it)

    # -- check emission ---------------------------------------------------------------

    def _emit_check(
        self,
        scope: ScopeMixin,
        conditions: list[DepCond],
        anchor: Item,
        guard: Predicate,
    ) -> Value:
        key = (id(scope), frozenset(conditions), guard)
        cached = self._check_cache.get(key)
        if cached is not None:
            pos = {id(it): i for i, it in enumerate(scope.items)}
            holder = cached if isinstance(cached, Instruction) else None
            if holder is not None and pos.get(id(holder), 1 << 30) < pos[id(anchor)]:
                return cached

        emitted: list[Instruction] = []

        def emit(inst: Instruction, pred: Optional[Predicate] = None) -> Instruction:
            inst.set_predicate(guard if pred is None else pred)
            scope.insert_before(anchor, inst)
            emitted.append(inst)
            return inst

        occur_values: list[Value] = []
        for cond in conditions:
            occur_values.append(self._emit_condition(cond, emit))

        ok: Value
        if not occur_values:
            ok = const_bool(True)
        else:
            acc: Optional[Instruction] = None
            for ov in occur_values:
                neg = emit(UnOp("not", ov, name="no_dep"))
                acc = neg if acc is None else emit(BinOp("and", acc, neg, name="vchk"))
            ok = acc  # type: ignore[assignment]
            ok.name = "vchk"
        self._check_cache[key] = ok
        return ok

    def _emit_condition(self, cond: DepCond, emit) -> Value:
        """Emit IR computing whether ``cond`` holds; returns a bool value."""
        if isinstance(cond, OrCond):
            acc: Optional[Value] = None
            for part in cond.parts:
                v = self._emit_condition(part, emit)
                acc = v if acc is None else emit(BinOp("or", acc, v, name="dep_or"))
            assert acc is not None
            return acc
        if isinstance(cond, PredCond):
            # default-false phi: true iff the guard actually held
            phi = Phi(
                [
                    (const_bool(True), cond.pred),
                    (const_bool(False), Predicate.true()),
                ],
                name="dep_pred",
            )
            return emit(phi)
        if isinstance(cond, IntersectCond):
            lo_a = self._emit_bound(cond.a, cond.a.lo, emit, "lo")
            hi_a = self._emit_bound(cond.a, cond.a.hi, emit, "hi")
            lo_b = self._emit_bound(cond.b, cond.b.lo, emit, "lo")
            hi_b = self._emit_bound(cond.b, cond.b.hi, emit, "hi")
            c1 = emit(Cmp("lt", lo_a, hi_b, name="ovl1"))
            c2 = emit(Cmp("lt", lo_b, hi_a, name="ovl2"))
            for c in (c1, c2):
                c.is_versioning_check = True
                c.is_branch_source = True
            return emit(BinOp("and", c1, c2, name="intersects"))
        if cond.is_true():
            return const_bool(True)
        if cond.is_false():
            return const_bool(False)
        raise MaterializationError(f"cannot emit condition {cond!r}")

    def _emit_bound(self, rng: SymRange, bound: Affine, emit, tag: str) -> Value:
        off = self._emit_affine(bound, emit)
        return emit(PtrAdd(rng.base, off, name=f"{tag}"))

    def _emit_affine(self, aff: Affine, emit) -> Value:
        acc: Optional[Value] = None
        for sym, coeff in sorted(aff.terms.items(), key=lambda kv: kv[0].vid):
            term: Value = sym
            if coeff != 1:
                term = emit(BinOp("mul", sym, const_int(coeff)))
            acc = term if acc is None else emit(BinOp("add", acc, term))
        if acc is None:
            return const_int(aff.const)
        if aff.const != 0:
            acc = emit(BinOp("add", acc, const_int(aff.const)))
        return acc

    # -- def-use repair -------------------------------------------------------------

    def _join_instruction(
        self,
        scope: ScopeMixin,
        node: Instruction,
        clone: Instruction,
        versioned_ids: set[int],
        new_phis: list[Phi],
    ) -> None:
        if node.type is VOID or isinstance(node.type, type(VOID)):
            return
        external = [
            u for u in node.users()
            if id(u) not in versioned_ids and u is not clone
        ]
        needs_return = self.fn.return_value is node
        if not external and not needs_return:
            return
        phi = Phi(
            [(node, node.predicate), (clone, clone.predicate)],
            name=(node.name or "v") + ".ver",
        )
        phi.set_predicate(_common_pred(node.predicate, clone.predicate))
        scope.insert_after(clone, phi)
        new_phis.append(phi)
        for u in external:
            u.replace_uses_of(node, phi)
        if needs_return:
            self.fn.set_return(phi)

    def _join_loop_liveouts(
        self,
        scope: ScopeMixin,
        loop: Loop,
        clone: Loop,
        vmap: dict,
        ok: Value,
        versioned_ids: set[int],
        new_phis: list[Phi],
    ) -> None:
        for eta in list(loop.etas):
            if eta.parent is not scope:
                continue
            orig_eta_pred = eta.predicate
            inner_clone = vmap.get(eta.inner, eta.inner)
            eta_clone = Eta(clone, inner_clone, name=eta.name + ".c")
            eta_clone.set_predicate(
                orig_eta_pred.substitute(vmap).and_value(ok, negated=True)
            )
            scope.insert_after(eta, eta_clone)
            eta.set_predicate(orig_eta_pred.and_value(ok))
            phi = Phi(
                [(eta, eta.predicate), (eta_clone, eta_clone.predicate)],
                name=eta.name + ".ver",
            )
            phi.set_predicate(orig_eta_pred)
            scope.insert_after(eta_clone, phi)
            new_phis.append(phi)
            for u in eta.users():
                if u is phi or id(u) in versioned_ids or u is eta_clone:
                    continue
                u.replace_uses_of(eta, phi)
            if self.fn.return_value is eta:
                self.fn.set_return(phi)

    # -- dead phi/select edges (Fig. 14 lines 66-73) --------------------------

    def _undef_dead_edges(self, plan: VersioningPlan) -> None:
        """A cut phi (or select-arm) edge means the edge's guard is
        asserted false on the check-pass path: the original's operand is
        never read there, so replace it with UNDEFINED — the clone keeps
        the real operand for the fallback path.  Without this, the dead
        operand would still impose a textual def-before-use constraint
        that scheduling could not satisfy."""
        from repro.analysis.depgraph import _item_defined
        from repro.ir.instructions import Select
        from repro.ir.values import Undef

        for src, dst in plan.cut_pairs:
            if isinstance(src, Phi):
                defined = _item_defined(dst)
                for idx, (v, _p) in enumerate(src.incomings()):
                    if v in defined:
                        src.set_incoming_value(idx, Undef(v.type))
            elif isinstance(src, Select):
                defined = _item_defined(dst)
                for idx in (1, 2):
                    if src.operands[idx] in defined:
                        src.set_operand(idx, Undef(src.operands[idx].type))

    # -- noalias (§IV-B) --------------------------------------------------------------

    def _annotate_noalias(self, plan: VersioningPlan) -> None:
        gid = next(_group_ids)
        for item in plan.input_nodes:
            for mem in item.mem_instructions():
                add_noalias_group(mem, gid)
        # each discharged dependence edge: the two endpoints provably do
        # not conflict once the check passes — share a scope per pair so
        # alias queries (GVN's clobber walk, LICM's hoist test) see it
        for src, dst in plan.cut_pairs:
            src_mems = src.mem_instructions()
            dst_mems = dst.mem_instructions()
            if len(src_mems) == 1 and len(dst_mems) == 1:
                # only single-instruction endpoints: a shared scope on a
                # loop's own mems would wrongly disambiguate them from
                # each other
                pair_gid = next(_group_ids)
                add_noalias_group(src_mems[0], pair_gid)
                add_noalias_group(dst_mems[0], pair_gid)


def _common_pred(a: Predicate, b: Predicate) -> Predicate:
    """Literals shared by both predicates (the join point's guard)."""
    return Predicate(a.literals & b.literals)


def materialize_plans(fn: Function, plans: list[VersioningPlan]) -> None:
    """Materialize ``plans`` into ``fn`` (paper's second API entry point)."""
    Materializer(fn).materialize_plans(plans)


__all__ = ["Materializer", "MaterializationError", "materialize_plans"]
