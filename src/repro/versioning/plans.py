"""Versioning-plan inference (paper Fig. 13).

A plan is ``V = (N, C, V')``: the nodes to duplicate, the conditions to
assert false at run time, and an optional secondary plan that makes the
conditions themselves evaluable before the versioned code (the paper's
*nested versioning*).

The recursion mirrors Fig. 13 line by line:

* find a cut separating ``nodes`` from ``input_nodes``;
* its cut-set conditions become the candidate versioning conditions;
* bail out if any condition *directly* uses an input node (line 16 —
  recursion could never fix an unconditional use);
* recurse to make the condition operands independent of the input nodes;
* update the cut to account for the dependence edges the secondary plan
  eliminated (we re-run ``find_cut`` with those edges removed, the
  alternative the paper explicitly sanctions), and take the final
  conditions from the updated cut — in the running example this is what
  shrinks the primary conditions from {c, intersects} to {c} (Fig. 12);
* version the source side of the cut that can reach the inputs, plus the
  inputs themselves (line 31).

Termination follows the paper's program-order argument; a defensive depth
cap turns a violation into a hard error rather than a hang.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional

from repro.analysis.conditions import DepCond, flatten
from repro.analysis.depgraph import DepEdge, DependenceGraph
from repro.ir.instructions import Item
from repro.ir.loops import program_order

from .flowgraph import Cut, EdgeKey, _edge_key, find_cut

_MAX_DEPTH = 32


@dataclass
class VersioningPlan:
    """``(N, C, V')`` plus bookkeeping for cut updates and annotation."""

    nodes: list[Item]
    conditions: list[DepCond]
    secondary: Optional["VersioningPlan"]
    input_nodes: list[Item]
    removed_edges: set[EdgeKey] = field(default_factory=set)
    graph: Optional[DependenceGraph] = None
    # conditions promoted out of the plan's loop by §IV-A promotion:
    # (condition, (outer_scope, loop_item)) pairs
    hoisted_conditions: list = field(default_factory=list)
    # the dependence-edge endpoints this plan's checks discharge; the
    # materializer gives each pair a shared noalias scope (§IV-B) so
    # downstream passes (GVN, LICM) see the independence
    cut_pairs: list = field(default_factory=list)

    def is_empty(self) -> bool:
        """True when the inputs were already independent — nothing to do."""
        return not self.conditions and not self.hoisted_conditions

    def depth(self) -> int:
        return 1 + (self.secondary.depth() if self.secondary is not None else 0)

    def all_conditions(self) -> list[DepCond]:
        out = list(self.conditions) + [c for c, _ in self.hoisted_conditions]
        if self.secondary is not None:
            out.extend(self.secondary.all_conditions())
        return out

    def check_count(self) -> int:
        """Number of atomic run-time checks this plan (nested) implies."""
        return sum(len(flatten(c)) for c in self.all_conditions())

    def describe(self, indent: int = 0) -> str:
        pad = "  " * indent
        lines = [f"{pad}VersioningPlan:"]
        lines.append(f"{pad}  N = {[n.display_name() for n in self.nodes]}")
        lines.append(f"{pad}  C = {self.conditions}")
        if self.secondary is not None:
            lines.append(f"{pad}  V' =")
            lines.append(self.secondary.describe(indent + 2))
        return "\n".join(lines)


class PlanInferenceError(Exception):
    pass


def infer_versioning_plan(
    graph: DependenceGraph,
    nodes: Iterable[Item],
    input_nodes: Iterable[Item],
    removed: Optional[set[EdgeKey]] = None,
    likelihood: Optional[Callable[[DepEdge], float]] = None,
    internal: Optional[set[int]] = None,
    _depth: int = 0,
) -> Optional[VersioningPlan]:
    """Infer a (possibly nested) plan making ``nodes`` independent of
    ``input_nodes``, or None when infeasible."""
    if _depth > _MAX_DEPTH:
        raise PlanInferenceError("plan recursion exceeded depth bound")
    nodes = list(dict.fromkeys(nodes))
    input_nodes = list(dict.fromkeys(input_nodes))
    removed = set(removed or ())

    cut = find_cut(graph, nodes, input_nodes, removed, likelihood, internal)
    if cut is None:
        return None
    if cut.empty:
        return VersioningPlan([], [], None, input_nodes, set(), graph)

    dep_conds = _unique_conds(cut.cut_edges)

    # line 16: conditions must not *directly* use an input node
    cond_items = _condition_items(graph, dep_conds)
    if set(map(id, cond_items)) & set(map(id, input_nodes)):
        return None

    secondary: Optional[VersioningPlan] = None
    if cond_items:
        secondary = infer_versioning_plan(
            graph, cond_items, input_nodes, removed, likelihood, _depth=_depth + 1
        )
        if secondary is None:
            return None
        if secondary.removed_edges:
            # update the cut: re-solve with secondary-eliminated edges gone
            cut = find_cut(
                graph, nodes, input_nodes, removed | secondary.removed_edges,
                likelihood, internal,
            )
            if cut is None:  # pragma: no cover - removal only helps
                return None
            dep_conds = _unique_conds(cut.cut_edges)
        if secondary.is_empty():
            secondary = None

    removed_here = {_edge_key(e) for e in cut.cut_edges}
    if secondary is not None:
        removed_here |= secondary.removed_edges

    plan_nodes = _ordered_union(graph, cut.source_nodes, input_nodes)
    cut_pairs = [(e.src, e.dst) for e in cut.cut_edges]
    if secondary is not None:
        cut_pairs.extend(secondary.cut_pairs)
    return VersioningPlan(
        nodes=plan_nodes,
        conditions=dep_conds,
        secondary=secondary,
        input_nodes=input_nodes,
        removed_edges=removed_here,
        graph=graph,
        cut_pairs=cut_pairs,
    )


def infer_plan_for_items(
    graph: DependenceGraph,
    items: Iterable[Item],
    likelihood: Optional[Callable[[DepEdge], float]] = None,
) -> Optional[VersioningPlan]:
    """Paper Fig. 13 ``infer_version_plans_for_insts``: make ``items``
    mutually independent."""
    items = list(items)
    return infer_versioning_plan(graph, items, items, likelihood=likelihood)


def _unique_conds(edges: list[DepEdge]) -> list[DepCond]:
    out: list[DepCond] = []
    seen: set[DepCond] = set()
    for e in edges:
        for atom in flatten(e.cond):
            if atom not in seen:
                seen.add(atom)
                out.append(atom)
    return out


def _condition_items(graph: DependenceGraph, conds: list[DepCond]) -> list[Item]:
    """Scope items defining the operands of ``conds`` (arguments, globals
    and constants have no defining item and need no versioning)."""
    items: list[Item] = []
    seen: set[int] = set()
    for c in conds:
        for v in c.operands():
            it = graph.defining_item(v)
            if it is not None and id(it) not in seen:
                seen.add(id(it))
                items.append(it)
    return items


def _ordered_union(graph: DependenceGraph, a: list[Item], b: list[Item]) -> list[Item]:
    seen: set[int] = set()
    out: list[Item] = []
    for it in list(a) + list(b):
        if id(it) not in seen:
            seen.add(id(it))
            out.append(it)
    fn = None
    scope = graph.scope
    from repro.ir.loops import Function

    while scope is not None and not isinstance(scope, Function):
        scope = getattr(scope, "parent", None)
    fn = scope
    if fn is not None:
        order = program_order(fn)
        out.sort(key=lambda it: order.get(it, 1 << 30))
    return out


def merge_plans(plans: list[VersioningPlan]) -> Optional[VersioningPlan]:
    """Merge several plans over one scope into a single uniform plan.

    The merged plan versions the union of the nodes under the union of the
    conditions (redundant conditions eliminated).  Asserting a superset of
    conditions false removes a superset of dependence edges, so every
    constituent plan's independence guarantee still holds — and every
    versioned item ends up under the *same* check, which is what keeps the
    members of an SLP tree's packs predicate-uniform for vector codegen
    (one combined check guarding the vectorized group, as in the paper's
    Fig. 18).  This realizes the effect of Fig. 14's per-instruction
    condition-union table in the common case where a client versions a
    cluster of interdependent packs together.
    """
    plans = [p for p in plans if p is not None and not p.is_empty()]
    if not plans:
        return None
    if len(plans) == 1:
        return plans[0]
    from .condopt import coalesce_conditions, eliminate_redundant_conditions

    graph = plans[0].graph
    assert all(p.graph is graph for p in plans), "merge requires one scope"
    nodes = _ordered_union(graph, [], [n for p in plans for n in p.nodes])
    conditions = coalesce_conditions(
        eliminate_redundant_conditions([c for p in plans for c in p.conditions])
    )
    input_nodes = _ordered_union(graph, [], [n for p in plans for n in p.input_nodes])
    removed: set[EdgeKey] = set()
    for p in plans:
        removed |= p.removed_edges
    # merge hoisted conditions per anchor, deduplicating equivalent checks
    by_anchor: dict[int, tuple] = {}
    for p in plans:
        for cond, anchor in p.hoisted_conditions:
            key = id(anchor[1])
            scope_, item_, conds_ = by_anchor.setdefault(key, (anchor[0], anchor[1], []))
            conds_.append(cond)
    hoisted: list = []
    for scope_, item_, conds_ in by_anchor.values():
        for c in coalesce_conditions(eliminate_redundant_conditions(conds_)):
            hoisted.append((c, (scope_, item_)))
    secondary = merge_plans([p.secondary for p in plans if p.secondary is not None])
    merged = VersioningPlan(
        nodes=nodes,
        conditions=conditions,
        secondary=secondary,
        input_nodes=input_nodes,
        removed_edges=removed,
        graph=graph,
        hoisted_conditions=hoisted,
        cut_pairs=[pair for p in plans for pair in p.cut_pairs],
    )
    return merged


__all__ = [
    "VersioningPlan",
    "PlanInferenceError",
    "infer_versioning_plan",
    "infer_plan_for_items",
    "merge_plans",
]
