"""Dinic's max-flow / min-cut, from scratch.

The versioning framework reduces "find a minimal set of conditional
dependence edges whose removal makes S unreachable from T" to s-t min-cut
(paper §III-A).  Kernels produce graphs of at most a few hundred nodes, so
Dinic's O(V²E) is far more than sufficient; the implementation is exact
over integer-scaled capacities.

The paper notes that with profile information conditional-edge capacities
can be set to dependence likelihoods; callers can pass arbitrary positive
floats, which are scaled to integers internally.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field


@dataclass
class _Edge:
    to: int
    cap: int
    rev: int  # index of the reverse edge in adj[to]


class FlowNetwork:
    """A capacitated directed graph supporting max-flow queries."""

    def __init__(self, n: int):
        self.n = n
        self.adj: list[list[_Edge]] = [[] for _ in range(n)]

    def add_edge(self, u: int, v: int, cap: int) -> tuple[int, int]:
        """Add edge u->v; returns (u, index) identifying the edge."""
        if cap < 0:
            raise ValueError("negative capacity")
        fwd = _Edge(v, cap, len(self.adj[v]))
        bwd = _Edge(u, 0, len(self.adj[u]))
        self.adj[u].append(fwd)
        self.adj[v].append(bwd)
        return (u, len(self.adj[u]) - 1)

    def edge(self, handle: tuple[int, int]) -> _Edge:
        u, i = handle
        return self.adj[u][i]

    # -- Dinic ---------------------------------------------------------------

    def _bfs_levels(self, s: int, t: int) -> list[int] | None:
        level = [-1] * self.n
        level[s] = 0
        q = deque([s])
        while q:
            u = q.popleft()
            for e in self.adj[u]:
                if e.cap > 0 and level[e.to] < 0:
                    level[e.to] = level[u] + 1
                    q.append(e.to)
        return level if level[t] >= 0 else None

    def _dfs_push(self, u: int, t: int, f: int, level: list[int], it: list[int]) -> int:
        if u == t:
            return f
        while it[u] < len(self.adj[u]):
            e = self.adj[u][it[u]]
            if e.cap > 0 and level[e.to] == level[u] + 1:
                d = self._dfs_push(e.to, t, min(f, e.cap), level, it)
                if d > 0:
                    e.cap -= d
                    self.adj[e.to][e.rev].cap += d
                    return d
            it[u] += 1
        return 0

    def max_flow(self, s: int, t: int) -> int:
        if s == t:
            raise ValueError("source equals sink")
        flow = 0
        while True:
            level = self._bfs_levels(s, t)
            if level is None:
                return flow
            it = [0] * self.n
            while True:
                pushed = self._dfs_push(s, t, 1 << 60, level, it)
                if pushed == 0:
                    break
                flow += pushed

    def min_cut_side(self, s: int) -> set[int]:
        """Source side of the min cut: nodes reachable from s in the
        residual graph.  Call after :meth:`max_flow`."""
        seen = {s}
        q = deque([s])
        while q:
            u = q.popleft()
            for e in self.adj[u]:
                if e.cap > 0 and e.to not in seen:
                    seen.add(e.to)
                    q.append(e.to)
        return seen


__all__ = ["FlowNetwork"]
