"""Workload definition and cycle measurement.

A :class:`Workload` is a mini-C kernel plus an input specification.  The
harness compiles it under a chosen pipeline, executes it on the
interpreter, checksums the output arrays (so every configuration is
verified against the O0 reference before its cycles count), and reports
the deterministic cycle counts that stand in for the paper's wall-clock
medians.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from repro.frontend import compile_c
from repro.interp import Counters, Interpreter, Memory
from repro.pipeline.pipelines import PipelineStats, optimize


@dataclass
class ArrayArg:
    """An array argument: ``init(i)`` gives element i's initial value."""

    name: str
    size: int
    init: Callable[[int], float] = lambda i: 0.0
    check: bool = True  # include in the output checksum


@dataclass
class ScalarArg:
    name: str
    value: float | int = 0


@dataclass
class AliasArg:
    """A pointer argument aliasing a previously declared array argument
    at a slot offset — how workloads express real run-time overlap."""

    name: str
    of: str
    offset: int = 0


@dataclass
class Workload:
    name: str
    source: str
    args: list = field(default_factory=list)  # ArrayArg | ScalarArg
    entry: str = "kernel"
    externals: Optional[dict] = None
    globals_init: dict = field(default_factory=dict)  # global name -> init fn


@dataclass
class RunResult:
    cycles: float
    counters: Counters
    checksum: float
    return_value: object
    code_size: int
    pipeline_stats: Optional[PipelineStats] = None


class ChecksumMismatch(AssertionError):
    pass


def build(workload: Workload, level: str, honor_restrict: bool = True,
          vl: int = 4, rle: bool = False):
    module = compile_c(workload.source, name=workload.name)
    stats = optimize(module, level, honor_restrict=honor_restrict, vl=vl, rle=rle)
    return module, stats


def execute(module, workload: Workload, stats: Optional[PipelineStats] = None) -> RunResult:
    interp = Interpreter(module, externals=workload.externals)
    for gname, init in workload.globals_init.items():
        base = interp.global_base(gname)
        g = module.globals[gname]
        interp.memory.write_array(base, [float(init(i)) for i in range(g.size)])
    argv = []
    arrays = []
    bases: dict[str, int] = {}
    for a in workload.args:
        if isinstance(a, ArrayArg):
            base = interp.memory.alloc(a.size, a.name)
            interp.memory.write_array(base, [float(a.init(i)) for i in range(a.size)])
            argv.append(base)
            arrays.append((a, base))
            bases[a.name] = base
        elif isinstance(a, AliasArg):
            argv.append(bases[a.of] + a.offset)
        else:
            argv.append(a.value)
    res = interp.run(module.functions[workload.entry], argv)
    checksum = 0.0
    for a, base in arrays:
        if a.check:
            for k, v in enumerate(interp.memory.read_array(base, a.size)):
                checksum += float(v) * math.sin(k * 0.7 + 0.1)
    for gname, _ in workload.globals_init.items():
        g = module.globals[gname]
        base = interp.global_base(gname)
        for k, v in enumerate(interp.memory.read_array(base, g.size)):
            checksum += float(v) * math.sin(k * 0.7 + 0.1)
    if res.return_value is not None:
        checksum += float(res.return_value)
    code_size = sum(fn.code_size() for fn in module.functions.values())
    return RunResult(res.cycles, res.counters, checksum, res.return_value,
                     code_size, stats)


def run_workload(workload: Workload, level: str, honor_restrict: bool = True,
                 vl: int = 4, rle: bool = False) -> RunResult:
    module, stats = build(workload, level, honor_restrict, vl, rle)
    return execute(module, workload, stats)


def verified_run(workload: Workload, level: str, reference: Optional[RunResult] = None,
                 honor_restrict: bool = True, rle: bool = False,
                 rel_tol: float = 1e-6) -> RunResult:
    """Run under ``level`` and check the output checksum against O0."""
    if reference is None:
        reference = run_workload(workload, "O0", honor_restrict=honor_restrict)
    result = run_workload(workload, level, honor_restrict=honor_restrict, rle=rle)
    ref, got = reference.checksum, result.checksum
    if not math.isclose(ref, got, rel_tol=rel_tol, abs_tol=1e-6):
        raise ChecksumMismatch(
            f"{workload.name} @ {level}: checksum {got!r} != reference {ref!r}"
        )
    return result


def geomean(values: Sequence[float]) -> float:
    vals = [v for v in values if v > 0]
    if not vals:
        return 0.0
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


__all__ = [
    "AliasArg",
    "ArrayArg",
    "ScalarArg",
    "Workload",
    "RunResult",
    "ChecksumMismatch",
    "build",
    "execute",
    "run_workload",
    "verified_run",
    "geomean",
]
