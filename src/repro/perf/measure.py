"""Workload definition and cycle measurement.

A :class:`Workload` is a mini-C kernel plus an input specification.  The
harness compiles it under a chosen pipeline, executes it on one of the
execution backends (the reference tree-walking interpreter, the
closure-compiled backend, or the superblock-fused backend — all three
charge bit-identical cycles and counters, see :mod:`repro.interp.compile`
and :mod:`repro.interp.fuse`), checksums the output arrays (so every
configuration is verified against the O0 reference before its cycles
count), and reports the deterministic cycle counts that stand in for the
paper's wall-clock medians.

Three caches keep repeated measurement cheap:

* a **build cache** keyed by source and pipeline configuration, so the
  same workload built at the same (level, restrict, vl, rle) point is
  compiled and optimized once and executed many times — this is what
  makes the compiled/fused backends' compile-once/run-many pay off
  across the restrict/vl/rle sweeps the benchmarks perform;
* a **run cache** memoizing whole :class:`RunResult` objects per
  configuration (execution is deterministic);
* a **reference cache** in :func:`verified_run`, so the O0 reference for
  a workload is compiled and run once per ``honor_restrict`` setting
  rather than once per configuration under test.

All three are LRU-bounded (long fuzz and benchmark sweeps would
otherwise grow them without bound); ``REPRO_CACHE_CAP`` sets the
per-cache entry cap (default 256, ``0`` disables caching entirely).
``clear_reference_cache()`` / ``clear_build_cache()`` reset them (tests
use this to isolate cache behavior).

A fourth cache is persistent: when ``REPRO_CACHE_DIR`` is set,
:func:`build` consults the on-disk artifact cache
(:mod:`repro.perf.diskcache`) before compiling, so identical builds are
shared *across processes* — the second run of a benchmark or fuzz sweep
skips the pipeline entirely.
"""

from __future__ import annotations

import math
import os
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro import telemetry
from repro.diag.context import ProfileRecord, get_context
from repro.frontend import compile_c
from repro.interp import BACKENDS, Counters
from repro.pipeline.pipelines import PipelineStats, optimize

from . import diskcache
from .report import geomean  # re-exported; canonical home is perf.report


@dataclass
class ArrayArg:
    """An array argument: ``init(i)`` gives element i's initial value."""

    name: str
    size: int
    init: Callable[[int], float] = lambda i: 0.0
    check: bool = True  # include in the output checksum


@dataclass
class ScalarArg:
    name: str
    value: float | int = 0


@dataclass
class AliasArg:
    """A pointer argument aliasing a previously declared array argument
    at a slot offset — how workloads express real run-time overlap."""

    name: str
    of: str
    offset: int = 0


@dataclass
class Workload:
    name: str
    source: str
    args: list = field(default_factory=list)  # ArrayArg | ScalarArg
    entry: str = "kernel"
    externals: Optional[dict] = None
    globals_init: dict = field(default_factory=dict)  # global name -> init fn


@dataclass
class RunResult:
    cycles: float
    counters: Counters
    checksum: float
    return_value: object
    code_size: int
    pipeline_stats: Optional[PipelineStats] = None
    # full contents of every ArrayArg after the run, keyed by arg name;
    # populated only when ``execute(..., capture_arrays=True)`` (the fuzz
    # oracle's memory-equality checks need more than the checksum)
    arrays: Optional[dict] = None


class ChecksumMismatch(AssertionError):
    """A configuration's output checksum diverged from its O0 reference.

    Carries the full run configuration so a failure deep inside a sweep
    is self-describing: workload, pipeline level, backend, vectorization
    and RLE settings, and both checksums.
    """

    def __init__(self, workload: str, level: str, backend: str,
                 honor_restrict: bool, vl: int, rle: bool,
                 expected: float, actual: float):
        self.workload = workload
        self.level = level
        self.backend = backend
        self.honor_restrict = honor_restrict
        self.vl = vl
        self.rle = rle
        self.expected = expected
        self.actual = actual
        super().__init__(
            f"{workload} @ {level} [backend={backend}, "
            f"restrict={'on' if honor_restrict else 'off'}, vl={vl}, "
            f"rle={'on' if rle else 'off'}]: checksum {actual!r} != "
            f"reference {expected!r}"
        )


# -- backend selection -------------------------------------------------------

DEFAULT_BACKEND = os.environ.get("REPRO_BACKEND", "fused")


def set_default_backend(name: str) -> None:
    """Select the executor used when callers don't pass ``backend=``.

    Switching backends drops the build/run/reference caches: cached
    :class:`RunResult` objects (the reference cache in particular, whose
    key does not include the backend) were produced by the previously
    selected executor and must not be served as results of the new one.
    """
    global DEFAULT_BACKEND
    if name not in BACKENDS:
        raise ValueError(
            f"unknown backend {name!r}; expected one of {sorted(BACKENDS)}"
        )
    if name != DEFAULT_BACKEND:
        clear_reference_cache()
    DEFAULT_BACKEND = name


def get_default_backend() -> str:
    return DEFAULT_BACKEND


# -- build + reference caches ------------------------------------------------


def _cache_cap() -> int:
    try:
        return max(0, int(os.environ.get("REPRO_CACHE_CAP", "256")))
    except ValueError:
        return 256


class _LRUCache:
    """A dict-like memo bounded to ``cap`` entries, evicting least
    recently used.  ``cap=0`` disables storage (every lookup misses).

    Every lookup and eviction is counted (``hits`` / ``misses`` /
    ``evictions``, cumulative over the cache's lifetime — ``clear()``
    drops entries, not history) and mirrored into the telemetry
    registry as ``repro_cache_requests_total{cache=<name>,outcome=...}``
    and ``repro_cache_evictions_total{cache=<name>}``.
    """

    def __init__(self, cap: Optional[int] = None, name: str = "anon"):
        self._cap = _cache_cap() if cap is None else cap
        self._data: "OrderedDict" = OrderedDict()
        self.name = name
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        # handles are stable across telemetry.reset(), so binding them
        # once keeps the hot-path cost to one attribute check + int add
        _help = "measurement-cache lookups by outcome"
        self._tel_hit = telemetry.counter(
            "repro_cache_requests_total", _help, cache=name, outcome="hit")
        self._tel_miss = telemetry.counter(
            "repro_cache_requests_total", _help, cache=name, outcome="miss")
        self._tel_evict = telemetry.counter(
            "repro_cache_evictions_total",
            "measurement-cache LRU evictions", cache=name)

    def get(self, key, default=None):
        hit = self._data.get(key, _LRU_ABSENT)
        if hit is _LRU_ABSENT:
            self.misses += 1
            self._tel_miss.inc()
            return default
        self.hits += 1
        self._tel_hit.inc()
        self._data.move_to_end(key)
        return hit

    def __setitem__(self, key, value) -> None:
        if self._cap <= 0:
            return
        if key in self._data:
            self._data.move_to_end(key)
        self._data[key] = value
        while len(self._data) > self._cap:
            self._data.popitem(last=False)
            self.evictions += 1
            self._tel_evict.inc()

    def __contains__(self, key) -> bool:
        return key in self._data

    def __len__(self) -> int:
        return len(self._data)

    def clear(self) -> None:
        self._data.clear()

    def reset_stats(self) -> None:
        self.hits = self.misses = self.evictions = 0

    def stats(self) -> dict:
        total = self.hits + self.misses
        return {
            "entries": len(self._data),
            "cap": self._cap,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": (self.hits / total) if total else 0.0,
        }


_LRU_ABSENT = object()

_BUILD_CACHE = _LRUCache(name="build")
_REFERENCE_CACHE = _LRUCache(name="reference")
_RUN_CACHE = _LRUCache(name="run")


def _data_signature(workload: Workload) -> tuple:
    """A hashable fingerprint of the workload's *input data*, probing the
    init callables at a few indices.  Two workloads sharing a name but
    initialized differently (e.g. the biased s258 variants) must not
    share cached reference results."""
    parts: list = []
    for a in workload.args:
        if isinstance(a, ArrayArg):
            probes = tuple(
                float(a.init(i)) for i in range(min(a.size, 7))
            ) + ((float(a.init(a.size - 1)),) if a.size else ())
            parts.append(("arr", a.name, a.size, a.check, probes))
        elif isinstance(a, AliasArg):
            parts.append(("alias", a.name, a.of, a.offset))
        else:
            parts.append(("scalar", a.name, a.value))
    for gname in sorted(workload.globals_init):
        init = workload.globals_init[gname]
        parts.append(("global", gname, tuple(float(init(i)) for i in range(7))))
    return tuple(parts)


def clear_build_cache() -> None:
    _BUILD_CACHE.clear()
    _RUN_CACHE.clear()


def clear_reference_cache() -> None:
    """Drop cached O0 reference results (and built modules and runs)."""
    _REFERENCE_CACHE.clear()
    _BUILD_CACHE.clear()
    _RUN_CACHE.clear()


def cache_stats() -> dict:
    """Hit/miss/eviction statistics for the three measurement caches,
    keyed by cache name.  Counts are cumulative over the process (they
    survive ``clear_*`` — those drop entries, not history)."""
    return {
        c.name: c.stats()
        for c in (_BUILD_CACHE, _RUN_CACHE, _REFERENCE_CACHE)
    }


def clear_all_caches() -> None:
    """Drop every in-process cache: the three measurement memos *and*
    the per-module translate caches of the compiled/fused/array
    backends.  The persistent disk cache (``REPRO_CACHE_DIR``) is left
    alone — it is shared across processes and content-addressed."""
    clear_reference_cache()
    from repro.interp.array import clear_array_cache
    from repro.interp.compile import clear_compile_cache
    from repro.interp.fuse import clear_fuse_cache

    clear_compile_cache()
    clear_fuse_cache()
    clear_array_cache()


def build(workload: Workload, level: str, honor_restrict: bool = True,
          vl: int = 4, rle: bool = False, use_cache: bool = False):
    """Compile + optimize a workload; returns ``(module, stats)``.

    With ``use_cache=True`` the built module is memoized per (source,
    level, restrict, vl, rle); callers must then treat the module as
    immutable (executing it is fine — execution never mutates the IR —
    but running further passes on it would poison the cache).  When
    ``REPRO_CACHE_DIR`` is set (and diagnostics are off) the memo is
    backed by the persistent disk cache, shared across processes.
    """
    disk_key = None
    if use_cache:
        key = (workload.name, workload.entry, workload.source,
               level, honor_restrict, vl, rle)
        hit = _BUILD_CACHE.get(key)
        if hit is not None:
            telemetry.counter("repro_build_total",
                              "builds by artifact source",
                              source="memo").inc()
            return hit
        # a running compile service (REPRO_SERVICE_ADDR) outranks the
        # local disk cache: its sharded store is shared across every
        # client on the machine and each answer is manifest-verified.
        # Same diagnostics gate as the disk cache — a served artifact
        # emits no pass remarks.  Unreachable daemons fall back to the
        # local path (counted by the service client).
        if os.environ.get("REPRO_SERVICE_ADDR") and not get_context().enabled:
            from repro.service.client import maybe_remote_build

            remote = maybe_remote_build(
                workload.source, workload.entry, level,
                honor_restrict, vl, rle,
            )
            if remote is not None:
                _BUILD_CACHE[key] = remote
                telemetry.counter("repro_build_total",
                                  "builds by artifact source",
                                  source="service").inc()
                return remote
        # the persistent disk cache (REPRO_CACHE_DIR) is consulted only
        # with diagnostics off: a cached build emits no pass remarks or
        # timings, and the diagnostic stream is pinned by golden tests
        if diskcache.cache_dir() is not None and not get_context().enabled:
            disk_key = diskcache.cache_key(
                workload.source, workload.entry, level,
                honor_restrict, vl, rle,
            )
            hit = diskcache.load(disk_key)
            if hit is not None:
                _BUILD_CACHE[key] = hit
                telemetry.counter("repro_build_total",
                                  "builds by artifact source",
                                  source="disk").inc()
                return hit
    with telemetry.span("build", detail=workload.name, level=level):
        module = compile_c(workload.source, name=workload.name)
        stats = optimize(module, level, honor_restrict=honor_restrict,
                         vl=vl, rle=rle)
    telemetry.counter("repro_build_total", "builds by artifact source",
                      source="pipeline").inc()
    if use_cache:
        _BUILD_CACHE[key] = (module, stats)
        if disk_key is not None:
            diskcache.store(disk_key, module, stats)
    return module, stats


def execute(module, workload: Workload, stats: Optional[PipelineStats] = None,
            backend: Optional[str] = None, capture_arrays: bool = False,
            max_steps: Optional[int] = None) -> RunResult:
    """Run ``workload`` on a built module and checksum the outputs.

    ``backend`` picks the executor: ``"reference"`` (tree-walking
    interpreter), ``"compiled"`` (closure-compiled), or ``"fused"``
    (superblock-fused, the default for measurement).  All three charge
    identical cycles and counters.

    ``capture_arrays=True`` additionally snapshots every ``ArrayArg``'s
    final contents into ``RunResult.arrays`` — the differential fuzz
    oracle compares full memory, not just the checksum.  ``max_steps``
    overrides the executor's runaway bound (reducers use a small cap so
    degenerate candidates fail fast).
    """
    name = backend if backend is not None else DEFAULT_BACKEND
    executor_cls = BACKENDS.get(name)
    if executor_cls is None:
        raise ValueError(
            f"unknown backend {name!r}; expected one of {sorted(BACKENDS)}"
        )
    kwargs = {} if max_steps is None else {"max_steps": max_steps}
    telemetry.counter("repro_exec_total", "workload executions by backend",
                      backend=name).inc()
    with telemetry.span("execute", detail=workload.name, backend=name):
        interp = executor_cls(module, externals=workload.externals, **kwargs)
        for gname, init in workload.globals_init.items():
            base = interp.global_base(gname)
            g = module.globals[gname]
            interp.memory.write_array(
                base, [float(init(i)) for i in range(g.size)])
        argv = []
        arrays = []
        bases: dict[str, int] = {}
        for a in workload.args:
            if isinstance(a, ArrayArg):
                base = interp.memory.alloc(a.size, a.name)
                interp.memory.write_array(
                    base, [float(a.init(i)) for i in range(a.size)])
                argv.append(base)
                arrays.append((a, base))
                bases[a.name] = base
            elif isinstance(a, AliasArg):
                argv.append(bases[a.of] + a.offset)
            else:
                argv.append(a.value)
        res = interp.run(module.functions[workload.entry], argv)
    dc = get_context()
    if dc.enabled and res.profile is not None:
        dc.add_profile(ProfileRecord(
            workload=workload.name,
            function=workload.entry,
            backend=name,
            total_cycles=res.cycles,
            regions=res.profile,
        ))
    captured: Optional[dict] = None
    if capture_arrays:
        captured = {
            a.name: list(interp.memory.read_array(base, a.size))
            for a, base in arrays
        }
    checksum = 0.0
    for a, base in arrays:
        if a.check:
            for k, v in enumerate(interp.memory.read_array(base, a.size)):
                checksum += float(v) * math.sin(k * 0.7 + 0.1)
    for gname, _ in workload.globals_init.items():
        g = module.globals[gname]
        base = interp.global_base(gname)
        for k, v in enumerate(interp.memory.read_array(base, g.size)):
            checksum += float(v) * math.sin(k * 0.7 + 0.1)
    if res.return_value is not None:
        checksum += float(res.return_value)
    code_size = sum(fn.code_size() for fn in module.functions.values())
    return RunResult(res.cycles, res.counters, checksum, res.return_value,
                     code_size, stats, captured)


def run_workload(workload: Workload, level: str, honor_restrict: bool = True,
                 vl: int = 4, rle: bool = False, backend: Optional[str] = None,
                 use_cache: bool = True) -> RunResult:
    """Build and execute one configuration.

    Execution is a deterministic simulation — the same source, pipeline
    configuration, and input data always produce the same cycles,
    counters, and checksum — so with ``use_cache=True`` the whole
    :class:`RunResult` is memoized and repeated sweeps over the same
    configuration (as the figure benchmarks perform) cost one run.
    """
    # custom externals are opaque callables we cannot fingerprint; never
    # serve a memoized result for such workloads
    use_run_cache = use_cache and workload.externals is None
    if use_run_cache:
        key = (workload.name, workload.entry, workload.source, level,
               honor_restrict, vl, rle,
               backend if backend is not None else DEFAULT_BACKEND,
               _data_signature(workload))
        hit = _RUN_CACHE.get(key)
        if hit is not None:
            return hit
    module, stats = build(workload, level, honor_restrict, vl, rle,
                          use_cache=use_cache)
    result = execute(module, workload, stats, backend=backend)
    if use_run_cache:
        _RUN_CACHE[key] = result
    return result


def verified_run(workload: Workload, level: str, reference: Optional[RunResult] = None,
                 honor_restrict: bool = True, vl: int = 4, rle: bool = False,
                 rel_tol: float = 1e-6, backend: Optional[str] = None,
                 use_cache: bool = True) -> RunResult:
    """Run under ``level`` and check the output checksum against O0.

    The O0 reference is cached per (workload name, honor_restrict, input
    data), so sweeping many configurations of the same workload compiles
    and executes the reference once instead of once per configuration.
    """
    if reference is None:
        use_ref_cache = use_cache and workload.externals is None
        ref_key = (workload.name, honor_restrict, _data_signature(workload))
        reference = _REFERENCE_CACHE.get(ref_key) if use_ref_cache else None
        if reference is None:
            reference = run_workload(workload, "O0", honor_restrict=honor_restrict,
                                     backend=backend, use_cache=use_cache)
            if use_ref_cache:
                _REFERENCE_CACHE[ref_key] = reference
    result = run_workload(workload, level, honor_restrict=honor_restrict,
                          vl=vl, rle=rle, backend=backend, use_cache=use_cache)
    ref, got = reference.checksum, result.checksum
    if not math.isclose(ref, got, rel_tol=rel_tol, abs_tol=1e-6):
        raise ChecksumMismatch(
            workload=workload.name, level=level,
            backend=backend if backend is not None else DEFAULT_BACKEND,
            honor_restrict=honor_restrict, vl=vl, rle=rle,
            expected=ref, actual=got,
        )
    return result


__all__ = [
    "AliasArg",
    "ArrayArg",
    "ScalarArg",
    "Workload",
    "RunResult",
    "ChecksumMismatch",
    "build",
    "cache_stats",
    "clear_all_caches",
    "clear_build_cache",
    "clear_reference_cache",
    "execute",
    "geomean",
    "get_default_backend",
    "run_workload",
    "set_default_backend",
    "verified_run",
]
