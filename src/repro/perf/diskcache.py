"""Persistent content-addressed artifact cache for built modules.

Building a module (front end + optimization pipeline) dominates the cost
of every measurement sweep — the fuzzer and the benchmarks rebuild
thousands of modules, most of them identical across processes.  This
cache stores the *build artifact* — the optimized :class:`Module` plus
its :class:`PipelineStats`, pickled — on disk, keyed by a SHA-256 over
everything that determines the build output:

    source text x entry x pipeline level x honor_restrict x vl x rle

(plus a format version and the Python major.minor, since the payload is
a pickle).  Input *data* is deliberately absent from the key: building
never reads it.

Alongside the pickle, :func:`store` writes the generated superblock-fused
and array executor sources of every function (``<key>.exec.txt``) so the
end-to-end artifacts of a build — what the fused and array backends
actually run, including which loops the array tier batched — survive for
inspection without re-deriving them.

Knobs (both honored by :func:`repro.perf.measure.build`):

* ``REPRO_CACHE_DIR`` — cache root; unset/empty disables the disk cache
  entirely (the in-memory LRU caches still apply).
* ``REPRO_CACHE_CAP`` — maximum number of cached builds kept on disk
  (default 256, shared with the in-memory cap; ``0`` disables caching).

Concurrency: writers dump to a private ``.tmp`` file and ``os.replace``
it into place, so a reader never observes a half-written pickle and
parallel ``-j N`` builders racing on one key simply last-write-win with
identical bytes.  Loads unpickle a **fresh object graph per call** —
two loads never share IR objects, so a caller mutating its copy (the
fuzzer planting bugs, a pipeline running further passes) cannot poison
other consumers.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import sys
from typing import Optional

from repro import telemetry

#: Bump when the pickled layout (IR object shapes, stats fields) changes;
#: old entries then miss instead of unpickling garbage.
#: 2: the companion ``.exec.txt`` dump gained the array-tier executor
#: source alongside the fused one.
FORMAT_VERSION = 2


def _req(outcome: str) -> None:
    telemetry.counter("repro_diskcache_requests_total",
                      "persistent artifact-cache lookups by outcome",
                      outcome=outcome).inc()


def cache_dir() -> Optional[str]:
    """The configured cache root, or None when disk caching is off."""
    d = os.environ.get("REPRO_CACHE_DIR", "").strip()
    if not d:
        return None
    try:
        cap = int(os.environ.get("REPRO_CACHE_CAP", "256"))
    except ValueError:
        cap = 256
    if cap <= 0:
        return None
    return d


def cache_key(source: str, entry: str, level: str, honor_restrict: bool,
              vl: int, rle: bool) -> str:
    """Content hash of one build configuration."""
    text = "\x00".join((
        f"v{FORMAT_VERSION}",
        f"py{sys.version_info.major}.{sys.version_info.minor}",
        entry, level, f"restrict={int(bool(honor_restrict))}",
        f"vl={int(vl)}", f"rle={int(bool(rle))}", source,
    ))
    return hashlib.sha256(text.encode()).hexdigest()


def _path(root: str, key: str) -> str:
    return os.path.join(root, key[:2], key + ".pkl")


def load(key: str):
    """Return a fresh ``(module, stats)`` for ``key``, or None on miss.

    Every call unpickles anew; corrupt or unreadable entries are treated
    as misses (and removed when possible).
    """
    root = cache_dir()
    if root is None:
        return None
    path = _path(root, key)
    try:
        with open(path, "rb") as f:
            payload = f.read()
        module, stats = pickle.loads(payload)
    except FileNotFoundError:
        _req("miss")
        return None
    except Exception:
        _req("error")
        try:
            os.remove(path)
        except OSError:
            pass
        return None
    try:
        os.utime(path)  # refresh mtime: eviction is least-recently-used
    except OSError:
        pass
    _req("hit")
    telemetry.counter("repro_diskcache_bytes_total",
                      "artifact-cache bytes moved",
                      direction="read").inc(len(payload))
    return module, stats


def store(key: str, module, stats) -> Optional[str]:
    """Persist a build artifact; returns the entry path (None if off).

    Best-effort: an unwritable cache directory never fails the build.
    """
    root = cache_dir()
    if root is None:
        return None
    path = _path(root, key)
    tmp = f"{path}.tmp.{os.getpid()}"
    try:
        payload = pickle.dumps((module, stats),
                               protocol=pickle.HIGHEST_PROTOCOL)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(tmp, "wb") as f:
            f.write(payload)
        os.replace(tmp, path)
    except Exception:
        try:
            os.remove(tmp)
        except OSError:
            pass
        return None
    telemetry.counter("repro_diskcache_stores_total",
                      "artifact-cache entries written").inc()
    telemetry.counter("repro_diskcache_bytes_total",
                      "artifact-cache bytes moved",
                      direction="written").inc(len(payload))
    try:
        _write_exec_source(path, module)
    except Exception:
        pass  # the companion dump is best-effort; the pickle is in place
    _evict(root)
    return path


def _write_exec_source(entry_path: str, module) -> None:
    """Dump the fused and array executor sources of every function next
    to the pickle.  Both translations are memoized weakly per function,
    so the work is reused when the module is executed in this process."""
    from repro.interp import array_function, fuse_function

    chunks = []
    for fn in module.functions.values():
        prog = fuse_function(fn)
        chunks.append(f"# == fused executor: {fn.name} ==\n{prog.source}")
        aprog = array_function(fn)
        regions = ", ".join(aprog.array_regions) or "(none)"
        chunks.append(
            f"# == array executor: {fn.name} "
            f"[batched regions: {regions}] ==\n{aprog.source}"
        )
    tmp = f"{entry_path}.exec.tmp.{os.getpid()}"
    with open(tmp, "w") as f:
        f.write("\n".join(chunks))
    os.replace(tmp, entry_path[: -len(".pkl")] + ".exec.txt")


def _cap() -> int:
    try:
        return max(0, int(os.environ.get("REPRO_CACHE_CAP", "256")))
    except ValueError:
        return 256


def _evict_lock(root: str):
    """Exclusive, non-blocking per-store lock for the evict step.

    Two concurrent writers both reaching the cap used to race the same
    mtime scan: each saw the full over-cap listing and both deleted,
    shrinking the cache well past the cap (and ``stat``-ing entries the
    other had just removed).  With the lock, exactly one of them evicts;
    the loser simply skips — the winner's scan already covers its entry.
    Returns the held lock file handle, or None when another process owns
    it (or the platform has no ``flock``).
    """
    try:
        import fcntl
    except ImportError:  # pragma: no cover - non-POSIX platforms
        return None
    try:
        fh = open(os.path.join(root, ".evict.lock"), "a+")
    except OSError:
        return None
    try:
        fcntl.flock(fh, fcntl.LOCK_EX | fcntl.LOCK_NB)
    except OSError:
        fh.close()
        return None
    return fh


def _evict(root: str) -> None:
    """Drop least-recently-used entries beyond ``REPRO_CACHE_CAP``.

    Single-evictor (per-store lock file) and tolerant of entries
    vanishing mid-scan — a concurrent ``load`` dropping a corrupt entry,
    or a leftover deletion landing between ``listdir`` and ``stat``,
    must not abort the scan.
    """
    cap = _cap()
    lock = _evict_lock(root)
    if lock is None and os.path.exists(os.path.join(root, ".evict.lock")):
        return  # another process is already evicting this store
    try:
        entries = []
        try:
            subs = os.listdir(root)
        except OSError:
            return
        for sub in subs:
            subdir = os.path.join(root, sub)
            if len(sub) != 2 or not os.path.isdir(subdir):
                continue
            try:
                names = os.listdir(subdir)
            except (FileNotFoundError, OSError):
                continue
            for name in names:
                if name.endswith(".pkl"):
                    p = os.path.join(subdir, name)
                    try:
                        entries.append((os.path.getmtime(p), p))
                    except (FileNotFoundError, OSError):
                        pass
        if len(entries) <= cap:
            return
        entries.sort()
        for _, p in entries[: len(entries) - cap]:
            for victim in (p, p[: -len(".pkl")] + ".exec.txt"):
                try:
                    os.remove(victim)
                except OSError:
                    pass
            telemetry.counter("repro_diskcache_evictions_total",
                              "artifact-cache LRU evictions").inc()
    finally:
        if lock is not None:
            try:
                import fcntl

                fcntl.flock(lock, fcntl.LOCK_UN)
            except OSError:
                pass
            lock.close()


def entry_count() -> int:
    """Number of cached builds currently on disk (0 when disabled)."""
    root = cache_dir()
    if root is None or not os.path.isdir(root):
        return 0
    n = 0
    for sub in os.listdir(root):
        subdir = os.path.join(root, sub)
        if len(sub) == 2 and os.path.isdir(subdir):
            n += sum(1 for f in os.listdir(subdir) if f.endswith(".pkl"))
    return n


__all__ = ["cache_dir", "cache_key", "load", "store", "entry_count",
           "FORMAT_VERSION"]
