"""Parallel batch building against the persistent artifact cache.

``build_many`` pushes a list of build configurations through worker
processes (``-j N``), each of which compiles + optimizes its module and
stores the artifact in the shared ``REPRO_CACHE_DIR`` disk cache.  The
parent (and any later process) then loads every build as a cache hit —
this is how ``bench_wallclock`` warms the cache for its warm-build tier
and how a fuzz sweep's repeated configurations stop paying the pipeline.

Only the *build inputs* cross the process boundary (name, entry, source,
level, flags — plain strings and scalars), never Workload objects: input
``init`` callables are lambdas, which do not pickle, and building never
reads input data anyway.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro import telemetry

from .measure import Workload, build


@dataclass(frozen=True)
class BuildSpec:
    """One build configuration, reduced to its picklable inputs."""

    name: str
    entry: str
    source: str
    level: str
    honor_restrict: bool = True
    vl: int = 4
    rle: bool = False

    @staticmethod
    def of(workload, level: str, honor_restrict: bool = True,
           vl: int = 4, rle: bool = False) -> "BuildSpec":
        return BuildSpec(workload.name, workload.entry, workload.source,
                         level, honor_restrict, vl, rle)


def _build_one(spec: BuildSpec) -> tuple[str, float]:
    """Worker body (module-level so it pickles): build one spec.

    ``use_cache=True`` routes through the disk cache when
    ``REPRO_CACHE_DIR`` is set (inherited via the environment), so the
    artifact persists for the parent; a warm entry makes this a no-op.
    Returns ``(name, seconds)``.
    """
    t0 = time.perf_counter()
    w = Workload(name=spec.name, source=spec.source, entry=spec.entry)
    build(w, spec.level, honor_restrict=spec.honor_restrict,
          vl=spec.vl, rle=spec.rle, use_cache=True)
    return spec.name, time.perf_counter() - t0


def _build_one_worker(spec: BuildSpec):
    """Pool task body: build one spec and ship the telemetry delta home.

    The child inherits the parent's registry contents via fork, so the
    per-task delta is obtained by zeroing first: ``reset()`` at task
    start, ``snapshot()`` at task end.  The parent ``absorb()``s each
    snapshot — counters from the workers (disk-cache traffic, pipeline
    builds) thus survive the process boundary.  Spans are skipped: a
    child's monotonic clock is not comparable with the parent's.
    """
    telemetry.reset()
    result = _build_one(spec)
    return result, telemetry.snapshot(include_spans=False)


def build_many(specs, jobs: int = 1) -> list[tuple[str, float]]:
    """Build every spec, ``jobs`` at a time; returns per-spec timings.

    Results come back in submission order regardless of ``jobs`` (the
    pool uses ordered ``map``), which also makes the parent's telemetry
    merge deterministic.  With ``jobs <= 1`` everything runs in the
    calling process — same code path, no pool overhead, and no registry
    reset (in-process builds hit the live registry directly).
    """
    specs = list(specs)
    if jobs <= 1 or len(specs) <= 1:
        return [_build_one(s) for s in specs]
    import multiprocessing as mp

    with mp.Pool(min(jobs, len(specs))) as pool:
        tagged = pool.map(_build_one_worker, specs)
    results = []
    for result, snap in tagged:
        results.append(result)
        if telemetry.absorb(snap):
            telemetry.counter(
                "repro_worker_snapshots_merged_total",
                "worker telemetry snapshots absorbed by the parent",
                kind="build").inc()
    return results


__all__ = ["BuildSpec", "build_many"]
