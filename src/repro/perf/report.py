"""Result tables and summaries (the DESIGN.md §2 ``perf/report.py``).

Formatting helpers shared by the benchmark scripts: fixed-width tables,
geometric-mean summary rows, and dynamic-counter reports including the
per-opcode breakdown that :meth:`Counters.as_dict` carries.  Pure
presentation — no measurement logic lives here, so benchmarks and tests
can import it without touching the harness.
"""

from __future__ import annotations

import math
from typing import Mapping, Optional, Sequence


def geomean(values: Sequence[float]) -> float:
    """Geometric mean over the positive entries of ``values``."""
    vals = [v for v in values if v > 0]
    if not vals:
        return 0.0
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


def _fmt_cell(v, width: int, floatfmt: str) -> str:
    if isinstance(v, float):
        return f"{v:>{width}{floatfmt}}"
    return f"{v!s:>{width}}"


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence],
    floatfmt: str = ".2f",
    min_width: int = 8,
) -> str:
    """Render a fixed-width text table; first column is left-aligned."""
    cols = len(headers)
    widths = [max(min_width, len(h)) for h in headers]
    rendered: list[list[str]] = []
    for row in rows:
        cells = []
        for j in range(cols):
            v = row[j] if j < len(row) else ""
            cell = (
                f"{v:{floatfmt}}" if isinstance(v, float) else str(v)
            )
            widths[j] = max(widths[j], len(cell))
            cells.append(cell)
        rendered.append(cells)
    lines = [
        f"{headers[0]:<{widths[0]}}  "
        + "  ".join(f"{h:>{widths[j + 1]}}" for j, h in enumerate(headers[1:]))
    ]
    for cells in rendered:
        lines.append(
            f"{cells[0]:<{widths[0]}}  "
            + "  ".join(f"{c:>{widths[j + 1]}}" for j, c in enumerate(cells[1:]))
        )
    return "\n".join(lines)


def speedup_table(
    rows: Sequence[tuple],
    series: Sequence[str],
    kernel_header: str = "kernel",
    with_geomean: bool = True,
) -> str:
    """Table of per-kernel speedups with an optional geomean footer.

    ``rows`` is a sequence of ``(name, v1, v2, ...)`` tuples aligned with
    ``series`` labels.
    """
    body = [list(r) for r in rows]
    if with_geomean:
        geo: list = ["geomean"]
        for j in range(len(series)):
            geo.append(geomean([r[j + 1] for r in rows]))
        body.append(geo)
    return format_table([kernel_header, *series], body)


def backend_geomean_table(
    speedups: Mapping[str, float],
    order: Sequence[str] = ("reference", "compiled", "fused", "array",
                            "array-speed"),
) -> str:
    """Per-backend geomean summary (execute-phase speedup over reference).

    ``speedups`` maps backend name to its geomean speedup factor; the
    table lists backends in ``order`` followed by any extras, so a new
    registry entry shows up without touching the benchmarks.
    """
    names = [n for n in order if n in speedups]
    names += [n for n in sorted(speedups) if n not in names]
    rows = [(n, f"{speedups[n]:.2f}x") for n in names]
    return format_table(["backend", "geomean exec speedup"], rows)


def counters_report(counters, title: str = "", top: Optional[int] = None) -> str:
    """Human-readable dynamic-counter summary with the by-opcode breakdown.

    ``counters`` is a :class:`repro.interp.Counters` or its ``as_dict()``
    form.  The per-opcode rows are sorted by descending dynamic count;
    ``top`` truncates the breakdown.
    """
    d: Mapping = counters.as_dict() if hasattr(counters, "as_dict") else dict(counters)
    by = dict(d.get("by_opcode", {}))
    lines = [title] if title else []
    for key in (
        "instructions", "loads", "stores", "branches", "backedges",
        "checks", "vector_ops", "calls",
    ):
        lines.append(f"  {key:12s} {d.get(key, 0):>12}")
    if by:
        lines.append("  by opcode:")
        ranked = sorted(by.items(), key=lambda kv: (-kv[1], kv[0]))
        if top is not None:
            ranked = ranked[:top]
        total = max(d.get("instructions", 0), 1)
        for op, n in ranked:
            lines.append(f"    {op:10s} {n:>12}  ({n / total * 100:5.1f}%)")
    return "\n".join(lines)


__all__ = [
    "backend_geomean_table", "counters_report", "format_table", "geomean",
    "speedup_table",
]
