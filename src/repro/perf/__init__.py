"""Measurement harness: workloads, verified runs, cycle counting, tables."""

from .measure import (
    AliasArg,
    ArrayArg,
    ChecksumMismatch,
    RunResult,
    ScalarArg,
    Workload,
    build,
    execute,
    geomean,
    run_workload,
    verified_run,
)

__all__ = [
    "AliasArg", "ArrayArg", "ChecksumMismatch", "RunResult", "ScalarArg",
    "Workload", "build", "execute", "geomean", "run_workload", "verified_run",
]
