"""Measurement harness: workloads, verified runs, cycle counting, tables."""

from .measure import (
    AliasArg,
    ArrayArg,
    ChecksumMismatch,
    RunResult,
    ScalarArg,
    Workload,
    build,
    cache_stats,
    clear_all_caches,
    clear_build_cache,
    clear_reference_cache,
    execute,
    geomean,
    get_default_backend,
    run_workload,
    set_default_backend,
    verified_run,
)
from .batch import BuildSpec, build_many
from .report import counters_report, format_table, speedup_table

__all__ = [
    "AliasArg", "ArrayArg", "BuildSpec", "ChecksumMismatch", "RunResult",
    "ScalarArg", "Workload", "build", "build_many", "cache_stats",
    "clear_all_caches", "clear_build_cache", "clear_reference_cache",
    "counters_report", "execute", "format_table", "geomean",
    "get_default_backend", "run_workload", "set_default_backend",
    "speedup_table", "verified_run",
]
