"""Core value classes for the predicated-SSA IR.

Everything that can be an operand is a :class:`Value`.  Values track their
users so that the versioning materializer (paper Fig. 14) can repair
def-use relations after cloning, and so clients like redundant load
elimination can query ``inst.users()``.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING

from .types import BOOL, FLOAT, INT, PTR, Type

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .instructions import Instruction

_value_ids = itertools.count()


class Value:
    """Base class of everything usable as an operand."""

    __slots__ = ("type", "name", "vid", "_users", "__weakref__")

    def __init__(self, type_: Type, name: str = ""):
        self.type = type_
        self.name = name
        self.vid = next(_value_ids)
        # Multiset of users: an instruction may use the same value in more
        # than one operand slot (e.g. ``add x, x``).
        self._users: dict["Instruction", int] = {}

    # -- def-use maintenance (called by Instruction only) ---------------

    def _add_user(self, user: "Instruction") -> None:
        self._users[user] = self._users.get(user, 0) + 1

    def _remove_user(self, user: "Instruction") -> None:
        n = self._users.get(user, 0)
        if n <= 1:
            self._users.pop(user, None)
        else:
            self._users[user] = n - 1

    def users(self) -> list["Instruction"]:
        """Instructions using this value as an operand (deduplicated)."""
        return sorted(self._users, key=lambda u: u.vid)

    def has_users(self) -> bool:
        return bool(self._users)

    # -- convenience -----------------------------------------------------

    def is_instruction(self) -> bool:
        return False

    def is_constant(self) -> bool:
        return False

    def display_name(self) -> str:
        return self.name if self.name else f"v{self.vid}"

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.display_name()}: {self.type}>"


class Constant(Value):
    """An immediate constant."""

    __slots__ = ("value",)

    def __init__(self, value, type_: Type):
        super().__init__(type_)
        self.value = value

    def is_constant(self) -> bool:
        return True

    def display_name(self) -> str:
        if self.type.is_float():
            return repr(float(self.value))
        return str(self.value)

    def __repr__(self) -> str:
        return f"<Constant {self.display_name()}: {self.type}>"


def const_int(v: int) -> Constant:
    return Constant(int(v), INT)


def const_float(v: float) -> Constant:
    return Constant(float(v), FLOAT)


def const_bool(v: bool) -> Constant:
    return Constant(bool(v), BOOL)


class Argument(Value):
    """A function argument.

    ``restrict`` mirrors the C qualifier: a restrict pointer argument is
    assumed not to alias any other restrict pointer or allocation, which is
    the toggle the PolyBench experiment (paper Fig. 16) flips.
    """

    __slots__ = ("restrict",)

    def __init__(self, name: str, type_: Type, restrict: bool = False):
        super().__init__(type_, name)
        self.restrict = restrict


class Undef(Value):
    """Placeholder for operands whose guard became impossible (Fig. 14)."""

    def __init__(self, type_: Type):
        super().__init__(type_, "undef")

    def display_name(self) -> str:
        return "undef"


__all__ = [
    "Value",
    "Constant",
    "Argument",
    "Undef",
    "const_int",
    "const_float",
    "const_bool",
    "BOOL",
    "FLOAT",
    "INT",
    "PTR",
]
