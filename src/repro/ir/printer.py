"""Textual dump of predicated-SSA functions (in the style of paper Fig. 4)."""

from __future__ import annotations

from .instructions import Instruction
from .loops import Function, Loop, Module, ScopeMixin


def _format_scope(scope: ScopeMixin, indent: int, lines: list[str]) -> None:
    pad = "  " * indent
    for item in scope.items:
        if isinstance(item, Loop):
            header = ", ".join(m.brief() for m in item.mus)
            lines.append(f"{pad}{item.name}: with {header} do".rstrip() + f"  ; {item.predicate}")
            _format_scope(item, indent + 1, lines)
            cont = item.cont.display_name() if item.cont is not None else "?"
            lines.append(f"{pad}while {cont}")
        else:
            inst: Instruction = item  # type: ignore[assignment]
            lines.append(f"{pad}{inst.brief():<48s} ; {inst.predicate}")


def print_function(fn: Function) -> str:
    args = ", ".join(
        f"{'restrict ' if getattr(a, 'restrict', False) else ''}{a.name}: {a.type}"
        for a in fn.args
    )
    lines = [f"func {fn.name}({args}) {{"]
    _format_scope(fn, 1, lines)
    if fn.return_value is not None:
        lines.append(f"  return {fn.return_value.display_name()}")
    lines.append("}")
    return "\n".join(lines)


def print_module(module: Module) -> str:
    parts = []
    for name, g in module.globals.items():
        parts.append(f"global {name}[{g.size}]")
    for fn in module.functions.values():
        parts.append(print_function(fn))
    return "\n\n".join(parts)


__all__ = ["print_function", "print_module"]
