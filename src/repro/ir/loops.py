"""Scopes, loops, functions, and modules.

Predicated SSA has no CFG: a function is a flat list of *items*
(instructions and loops), and each loop is itself a flat list of items plus
header recurrences (mu nodes) and a continuation value, per the paper's
Fig. 3 grammar::

    fn   ::= item_1 : p_1, ..., item_n : p_n
    loop ::= with v_1 = mu_1, ... do item_1 : p_1, ... while p_cont

Loops use do-while semantics: when a loop's predicate holds, the body runs
at least once and repeats while the continuation value is true.  Rotated
loop form (the entry guard folded into the loop predicate) is produced by
the front end.
"""

from __future__ import annotations

import itertools
from typing import Iterable, Iterator, Optional

from .instructions import Instruction, Item, Mu
from .predicates import Predicate
from .types import PTR, Type
from .values import Argument, Value

_loop_ids = itertools.count()


class GlobalArray(Value):
    """A module-level array: a pointer to a distinct static allocation.

    Distinct globals never alias each other — this models TSVC's global
    arrays, and flipping ``as_parameters`` in a workload demotes them to
    may-alias arguments (the paper's two-level-versioning s258 variant).
    """

    __slots__ = ("size",)

    def __init__(self, name: str, size: int):
        super().__init__(PTR, name)
        self.size = size


class ScopeMixin:
    """List-of-items manipulation shared by functions and loops."""

    items: list[Item]

    def _adopt(self, item: Item) -> None:
        item.parent = self  # type: ignore[assignment]

    def append(self, item: Item) -> None:
        self._adopt(item)
        self.items.append(item)

    def insert(self, idx: int, item: Item) -> None:
        self._adopt(item)
        self.items.insert(idx, item)

    def index_of(self, item: Item) -> int:
        for i, it in enumerate(self.items):
            if it is item:
                return i
        raise ValueError(f"{item!r} not in scope")

    def insert_before(self, anchor: Item, item: Item) -> None:
        self.insert(self.index_of(anchor), item)

    def insert_after(self, anchor: Item, item: Item) -> None:
        self.insert(self.index_of(anchor) + 1, item)

    def remove(self, item: Item) -> None:
        self.items.remove(item)
        item.parent = None  # type: ignore[assignment]

    def instructions(self) -> Iterator[Instruction]:
        """All instructions in this scope, recursively, in program order.

        One flat generator with an explicit stack: nested ``yield from``
        chains cost a frame hop per level per instruction, and this is
        the innermost traversal of every pass.
        """
        stack = [iter(self.items)]
        while stack:
            it = stack[-1]
            for item in it:
                if isinstance(item, Loop):
                    yield from item.mus
                    stack.append(iter(item.items))
                    break
                yield item  # type: ignore[misc]
            else:
                stack.pop()

    def walk_items(self) -> Iterator[Item]:
        """All items (loops included as items), recursively, pre-order."""
        for item in self.items:
            yield item
            if isinstance(item, Loop):
                for mu in item.mus:
                    yield mu
                yield from item.walk_items()


class Loop(ScopeMixin, Item):
    """A loop item: header mus, a body of items, and a continuation value."""

    def __init__(self, name: str = ""):
        self.vid = next(_loop_ids) + 10_000_000  # distinct id space from values
        self.name = name or f"loop{self.vid - 10_000_000}"
        self.predicate = Predicate.true()
        self.parent: Optional[ScopeMixin] = None
        self.mus: list[Mu] = []
        self.items: list[Item] = []
        self.cont: Optional[Value] = None
        self.etas: list = []  # Eta instructions in the parent scope
        self.metadata: dict = {}

    # -- structure -------------------------------------------------------

    def is_loop(self) -> bool:
        return True

    def add_mu(self, mu: Mu) -> None:
        mu.loop = self
        mu.parent = self
        self.mus.append(mu)

    def set_cont(self, v: Value) -> None:
        if self.cont is not None:
            self.cont._remove_user(self)  # type: ignore[arg-type]
        self.cont = v
        v._add_user(self)  # type: ignore[arg-type]

    def replace_uses_of(self, old: Value, new: Value) -> None:
        """Rewrite the loop's own references (cont, predicate)."""
        if self.cont is old:
            self.set_cont(new)
        if any(lit.value is old for lit in self.predicate.literals):
            self.set_predicate(self.predicate.substitute({old: new}))

    def header_and_body_instructions(self) -> Iterator[Instruction]:
        yield from self.mus
        yield from self.instructions()

    # -- memory summary ----------------------------------------------------

    def mem_instructions(self) -> list[Instruction]:
        out: list[Instruction] = []
        for inst in self.instructions():
            if inst.touches_memory():
                out.append(inst)
        return out

    def may_read(self) -> bool:
        return any(i.may_read() for i in self.mem_instructions())

    def may_write(self) -> bool:
        return any(i.may_write() for i in self.mem_instructions())

    # -- misc -----------------------------------------------------------

    def display_name(self) -> str:
        return self.name

    def __repr__(self) -> str:
        return f"<Loop {self.name} [{len(self.items)} items] ; {self.predicate}>"


class Function(ScopeMixin):
    """A function: arguments plus a top-level scope of items."""

    def __init__(self, name: str, args: Iterable[Argument] = ()):
        self.name = name
        self.args: list[Argument] = list(args)
        self.items: list[Item] = []
        self.return_value: Optional[Value] = None
        self.module: Optional["Module"] = None

    def arg(self, name: str) -> Argument:
        for a in self.args:
            if a.name == name:
                return a
        raise KeyError(f"no argument named {name!r} in {self.name}")

    def set_return(self, v: Optional[Value]) -> None:
        self.return_value = v

    def loops(self, recursive: bool = True) -> list[Loop]:
        found: list[Loop] = []

        def visit(scope: ScopeMixin) -> None:
            for item in scope.items:
                if isinstance(item, Loop):
                    found.append(item)
                    if recursive:
                        visit(item)

        visit(self)
        return found

    def code_size(self) -> int:
        """Static instruction count (the Fig. 22 code-size metric)."""
        return sum(1 for _ in self.instructions())

    def __repr__(self) -> str:
        return f"<Function {self.name}({', '.join(a.name for a in self.args)})>"


class Module:
    """A translation unit: functions plus global arrays."""

    def __init__(self, name: str = "module"):
        self.name = name
        self.functions: dict[str, Function] = {}
        self.globals: dict[str, GlobalArray] = {}
        # free-form metadata (the front end records C types of params and
        # globals here so workload drivers know array shapes)
        self.meta: dict = {}

    def add_function(self, fn: Function) -> Function:
        fn.module = self
        self.functions[fn.name] = fn
        return fn

    def add_global(self, name: str, size: int) -> GlobalArray:
        g = GlobalArray(name, size)
        self.globals[name] = g
        return g

    def __getitem__(self, name: str) -> Function:
        return self.functions[name]


def program_order(fn: Function) -> dict[Item, int]:
    """Assign each item a program-order number.

    The order is a topological order of the dependence graph (the paper
    uses it to prove plan-inference termination): loops are numbered before
    their contents' successors but after everything preceding them, and an
    item depends only on lower-numbered items (mu back-edges excepted).
    """

    order: dict[Item, int] = {}
    counter = itertools.count()

    def visit(scope: ScopeMixin) -> None:
        for item in scope.items:
            if isinstance(item, Loop):
                for mu in item.mus:
                    order[mu] = next(counter)
                visit(item)
                order[item] = next(counter)
            else:
                order[item] = next(counter)

    visit(fn)
    return order


__all__ = [
    "GlobalArray",
    "ScopeMixin",
    "Loop",
    "Function",
    "Module",
    "program_order",
]
