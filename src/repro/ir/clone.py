"""Cloning of instructions and loops.

The materializer (paper Fig. 14) duplicates every versioned item.  Cloning
maps operands and predicate literals through a value map so that a cloned
subprogram is internally consistent: references to other cloned values use
the clones, references to unversioned values are shared.

Cloning preserves metadata — in particular the noalias scope annotations of
§IV-B, which the paper calls out as a benefit of LLVM's cloning utilities
that we replicate here.
"""

from __future__ import annotations

from typing import Optional

from .instructions import (
    Alloca,
    BinOp,
    Broadcast,
    BuildVector,
    Call,
    Cast,
    Cmp,
    Eta,
    ExtractLane,
    Instruction,
    Load,
    Mu,
    Phi,
    PtrAdd,
    Reduce,
    Select,
    Shuffle,
    Store,
    UnOp,
    VecBin,
    VecCmp,
    VecLoad,
    VecSelect,
    VecStore,
    VecUn,
)
from .loops import Loop
from .predicates import Predicate
from .values import Value

ValueMap = dict[Value, Value]


def _m(v: Value, vmap: ValueMap) -> Value:
    return vmap.get(v, v)


def _mpred(p: Predicate, vmap: ValueMap) -> Predicate:
    return p.substitute(vmap)


def clone_instruction(inst: Instruction, vmap: ValueMap) -> Instruction:
    """Clone one instruction, mapping operands/predicates through ``vmap``.

    The clone is registered in ``vmap`` and NOT inserted into any scope.
    """
    ops = [_m(o, vmap) for o in inst.operands]
    new: Instruction
    if isinstance(inst, BinOp):
        new = BinOp(inst.op, ops[0], ops[1], name=inst.name)
    elif isinstance(inst, UnOp):
        new = UnOp(inst.op, ops[0], name=inst.name)
    elif isinstance(inst, Cmp):
        new = Cmp(inst.rel, ops[0], ops[1], name=inst.name)
        new.is_branch_source = inst.is_branch_source
        new.is_versioning_check = inst.is_versioning_check
    elif isinstance(inst, Select):
        new = Select(ops[0], ops[1], ops[2], name=inst.name)
    elif isinstance(inst, Cast):
        new = Cast(ops[0], inst.type, name=inst.name)
    elif isinstance(inst, PtrAdd):
        new = PtrAdd(ops[0], ops[1], name=inst.name)
    elif isinstance(inst, Load):
        new = Load(ops[0], inst.type, name=inst.name)
    elif isinstance(inst, Store):
        new = Store(ops[0], ops[1], name=inst.name)
    elif isinstance(inst, Alloca):
        new = Alloca(inst.size, name=inst.name)
    elif isinstance(inst, Call):
        new = Call(inst.callee, ops, inst.type, inst.effects, name=inst.name)
    elif isinstance(inst, Phi):
        incomings = [
            (_m(v, vmap), _mpred(p, vmap)) for v, p in inst.incomings()
        ]
        new = Phi(incomings, type_=inst.type, name=inst.name)
    elif isinstance(inst, Mu):
        # rec is patched by clone_loop after the body is cloned
        new = Mu(_m(inst.init, vmap), name=inst.name)
    elif isinstance(inst, Eta):
        raise ValueError("etas are cloned by the loop-cloning path")
    elif isinstance(inst, VecLoad):
        new = VecLoad(ops[0], inst.type, name=inst.name)
    elif isinstance(inst, VecStore):
        new = VecStore(ops[0], ops[1], name=inst.name)
    elif isinstance(inst, VecBin):
        new = VecBin(inst.op, ops[0], ops[1], name=inst.name)
    elif isinstance(inst, VecUn):
        new = VecUn(inst.op, ops[0], name=inst.name)
    elif isinstance(inst, VecCmp):
        new = VecCmp(inst.rel, ops[0], ops[1], name=inst.name)
    elif isinstance(inst, VecSelect):
        new = VecSelect(ops[0], ops[1], ops[2], name=inst.name)
    elif isinstance(inst, BuildVector):
        new = BuildVector(ops, name=inst.name)
    elif isinstance(inst, ExtractLane):
        new = ExtractLane(ops[0], inst.lane, name=inst.name)
    elif isinstance(inst, Shuffle):
        b = ops[1] if len(ops) > 1 else None
        new = Shuffle(ops[0], b, inst.mask, name=inst.name)
    elif isinstance(inst, Broadcast):
        new = Broadcast(ops[0], inst.type.lanes, name=inst.name)
    elif isinstance(inst, Reduce):
        new = Reduce(inst.op, ops[0], name=inst.name)
    else:  # pragma: no cover - defensive
        raise NotImplementedError(f"cannot clone {type(inst).__name__}")
    new.set_predicate(_mpred(inst.predicate, vmap))
    new.metadata = _copy_metadata(inst.metadata)
    vmap[inst] = new
    return new


def _copy_metadata(md: dict) -> dict:
    """One-level copy so container-valued entries (noalias scope sets)
    don't end up shared between an instruction and its clone."""
    out = {}
    for k, v in md.items():
        if isinstance(v, set):
            out[k] = set(v)
        elif isinstance(v, list):
            out[k] = list(v)
        elif isinstance(v, dict):
            out[k] = dict(v)
        else:
            out[k] = v
    return out


def clone_loop(loop: Loop, vmap: ValueMap) -> Loop:
    """Deep-clone a loop (mus, body, continuation), registering every
    cloned inner value in ``vmap``.  Etas are not cloned here (they live in
    the parent scope); callers create etas on the clone as needed."""
    new = Loop(loop.name + ".clone")
    vmap[loop] = new  # type: ignore[index]
    new.set_predicate(_mpred(loop.predicate, vmap))
    new.metadata = _copy_metadata(loop.metadata)
    for mu in loop.mus:
        cmu = clone_instruction(mu, vmap)
        new.add_mu(cmu)  # type: ignore[arg-type]
    _clone_body(loop, new, vmap)
    assert loop.cont is not None
    new.set_cont(_m(loop.cont, vmap))
    for mu, cmu in zip(loop.mus, new.mus):
        assert mu.rec is not None
        cmu.set_rec(_m(mu.rec, vmap))
    return new


def _clone_body(src: Loop, dst: Loop, vmap: ValueMap) -> None:
    for item in src.items:
        if isinstance(item, Loop):
            dst.append(clone_loop(item, vmap))
        elif isinstance(item, Eta):
            # an eta of an inner loop: retarget it to that loop's clone
            target_loop = vmap.get(item.loop, item.loop)  # type: ignore[arg-type]
            new_eta = Eta(target_loop, _m(item.inner, vmap), name=item.name)
            new_eta.set_predicate(_mpred(item.predicate, vmap))
            dst.append(new_eta)
            vmap[item] = new_eta
        else:
            dst.append(clone_instruction(item, vmap))  # type: ignore[arg-type]


def clone_item(item, vmap: ValueMap):
    """Clone an instruction or a loop (dispatch helper)."""
    if isinstance(item, Loop):
        return clone_loop(item, vmap)
    return clone_instruction(item, vmap)


__all__ = ["clone_instruction", "clone_loop", "clone_item", "ValueMap"]
