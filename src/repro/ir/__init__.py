"""Predicated-SSA intermediate representation (paper Fig. 3).

This package is the substrate everything else builds on: a branch-free IR
in which each instruction or loop carries an execution predicate, loops are
hierarchical items with mu (header recurrence) and eta (live-out) nodes,
and global code motion is a list edit.
"""

from .builder import IRBuilder
from .clone import clone_instruction, clone_item, clone_loop
from .instructions import (
    Alloca,
    BinOp,
    Broadcast,
    BuildVector,
    Call,
    Cast,
    Cmp,
    Effects,
    Eta,
    ExtractLane,
    Instruction,
    Item,
    Load,
    Mu,
    Phi,
    PtrAdd,
    Reduce,
    Select,
    Shuffle,
    Store,
    UnOp,
    VecBin,
    VecCmp,
    VecLoad,
    VecSelect,
    VecStore,
    VecUn,
)
from .loops import Function, GlobalArray, Loop, Module, ScopeMixin, program_order
from .predicates import Literal, Predicate
from .printer import print_function, print_module
from .types import (
    BOOL,
    FLOAT,
    INT,
    PTR,
    VOID,
    Type,
    VectorType,
    vector_of,
)
from .values import (
    Argument,
    Constant,
    Undef,
    Value,
    const_bool,
    const_float,
    const_int,
)
from .verifier import VerificationError, verify_function, verify_module

__all__ = [
    # types
    "BOOL", "FLOAT", "INT", "PTR", "VOID", "Type", "VectorType", "vector_of",
    # values
    "Argument", "Constant", "Undef", "Value",
    "const_bool", "const_float", "const_int",
    # predicates
    "Literal", "Predicate",
    # instructions
    "Alloca", "BinOp", "Broadcast", "BuildVector", "Call", "Cast", "Cmp",
    "Effects", "Eta", "ExtractLane", "Instruction", "Item", "Load", "Mu",
    "Phi", "PtrAdd", "Reduce", "Select", "Shuffle", "Store", "UnOp",
    "VecBin", "VecCmp", "VecLoad", "VecSelect", "VecStore", "VecUn",
    # structure
    "Function", "GlobalArray", "Loop", "Module", "ScopeMixin", "program_order",
    # utilities
    "IRBuilder", "clone_instruction", "clone_item", "clone_loop",
    "print_function", "print_module",
    "VerificationError", "verify_function", "verify_module",
]
