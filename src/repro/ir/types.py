"""Type system for the predicated-SSA IR.

The IR is deliberately small: 64-bit integers, 64-bit floats, booleans,
pointers, and fixed-width vectors of the scalar types.  All scalar types
occupy exactly one memory *slot* (the interpreter's unit of addressing),
which keeps address arithmetic and intersection checks element-granular,
exactly the granularity the paper's ``intersects`` conditions reason at.
"""

from __future__ import annotations

from dataclasses import dataclass


class Type:
    """Base class of all IR types.

    The scalar types are singletons and vector types are interned
    (:func:`vector_of`), so type equality is normally a pointer
    comparison; ``__reduce__`` re-interns on unpickle to keep that true
    for modules loaded from the on-disk artifact cache.
    """

    def __reduce__(self):
        return (_scalar_type, (str(self),))

    def is_vector(self) -> bool:
        return False

    def is_pointer(self) -> bool:
        return False

    def is_bool(self) -> bool:
        return False

    def is_float(self) -> bool:
        return False

    def is_int(self) -> bool:
        return False

    @property
    def slots(self) -> int:
        """Number of memory slots a value of this type occupies."""
        return 1


@dataclass(frozen=True)
class IntType(Type):
    def is_int(self) -> bool:
        return True

    def __str__(self) -> str:
        return "i64"


@dataclass(frozen=True)
class FloatType(Type):
    def is_float(self) -> bool:
        return True

    def __str__(self) -> str:
        return "f64"


@dataclass(frozen=True)
class BoolType(Type):
    def is_bool(self) -> bool:
        return True

    def __str__(self) -> str:
        return "i1"


@dataclass(frozen=True)
class PointerType(Type):
    def is_pointer(self) -> bool:
        return True

    def __str__(self) -> str:
        return "ptr"


@dataclass(frozen=True)
class VoidType(Type):
    def __str__(self) -> str:
        return "void"


@dataclass(frozen=True)
class VectorType(Type):
    elem: Type
    lanes: int

    def __reduce__(self):
        return (vector_of, (self.elem, self.lanes))

    def is_vector(self) -> bool:
        return True

    @property
    def slots(self) -> int:
        return self.lanes

    def __str__(self) -> str:
        return f"<{self.lanes} x {self.elem}>"


INT = IntType()
FLOAT = FloatType()
BOOL = BoolType()
PTR = PointerType()
VOID = VoidType()

_SCALARS = {"i64": INT, "f64": FLOAT, "i1": BOOL, "ptr": PTR, "void": VOID}


def _scalar_type(name: str) -> Type:
    return _SCALARS[name]

_VECTOR_CACHE: dict[tuple[Type, int], VectorType] = {}


def vector_of(elem: Type, lanes: int) -> VectorType:
    """Return the (interned) vector type with ``lanes`` lanes of ``elem``."""
    if lanes < 2:
        raise ValueError(f"vector types need at least 2 lanes, got {lanes}")
    if elem.is_vector() or isinstance(elem, VoidType):
        raise ValueError(f"invalid vector element type: {elem}")
    key = (elem, lanes)
    if key not in _VECTOR_CACHE:
        _VECTOR_CACHE[key] = VectorType(elem, lanes)
    return _VECTOR_CACHE[key]
