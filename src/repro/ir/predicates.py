"""Control predicates for predicated SSA (Fig. 3 of the paper).

An execution predicate is a *conjunction of literals*, where each literal
is a boolean IR value, possibly negated.  ``true`` is the empty
conjunction.  This canonical form makes the two queries the versioning
framework needs cheap and exact:

* ``p.implies(q)`` — for conjunctions, ``p`` implies ``q`` iff ``q``'s
  literal set is a subset of ``p``'s (p is *stronger*, i.e. more specific).
* equality/hashing — literal sets compare structurally.

Disjunctions appear only in *dependence conditions* (Fig. 5), which live in
:mod:`repro.versioning.conditions`; execution guards never need them
because structured control flow only ever *refines* a guard.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Iterator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .values import Value


@dataclass(frozen=True)
class Literal:
    """A boolean IR value, possibly negated."""

    value: "Value"
    negated: bool = False

    def negate(self) -> "Literal":
        return Literal(self.value, not self.negated)

    def __str__(self) -> str:
        disp = getattr(self.value, "display_name", None)
        name = disp() if callable(disp) else str(self.value)
        return f"!{name}" if self.negated else f"{name}"


class Predicate:
    """An immutable conjunction of :class:`Literal` terms.

    The empty conjunction is the ``true`` predicate.  A predicate that
    contains both a literal and its negation is *unsatisfiable*; such
    predicates can arise transiently during versioning (a phi operand whose
    guard became impossible) and are detected with :meth:`is_false`.

    Predicates are *interned*: constructing one from a literal set that
    already exists returns the existing object, so equality is usually a
    pointer comparison and ``hash``/``is_false`` are computed once.  The
    interning is an optimization only — ``__eq__`` keeps the structural
    fallback.

    Pickling is two-phase: literals reference IR values whose operand
    predicates can point back at those same literals, so at unpickle time
    the literal objects may still be cycle stubs with no attributes.  The
    blank instance therefore stores only the raw literal tuple; the
    frozenset/hash/unsat triple is materialized by ``__getattr__`` on
    first use, after the whole object graph exists.
    """

    __slots__ = ("_literals", "_hash", "_unsat", "_raw", "__weakref__")

    _intern: "weakref.WeakValueDictionary" = weakref.WeakValueDictionary()

    def __new__(cls, literals: Iterable[Literal] = ()):
        lits = literals if isinstance(literals, frozenset) else frozenset(literals)
        self = cls._intern.get(lits)
        if self is None:
            self = super().__new__(cls)
            self._literals = lits
            self._hash = hash(lits)
            self._unsat = any(l.negate() in lits for l in lits)
            cls._intern[lits] = self
        return self

    def __init__(self, literals: Iterable[Literal] = ()):
        # state fully established in __new__ (interned instances must not
        # be re-initialized)
        pass

    def __reduce__(self):
        return (_blank_predicate, (), tuple(self._literals))

    def __setstate__(self, raw):
        self._raw = raw

    def __getattr__(self, name):
        # only unpickled instances land here: materialize the canonical
        # form lazily (hashing the literals is only safe once unpickling
        # has finished building them)
        if name in ("_literals", "_hash", "_unsat"):
            lits = frozenset(self._raw)
            self._literals = lits
            self._hash = hash(lits)
            self._unsat = any(l.negate() in lits for l in lits)
            # adopt this instance as the interned one if the set is new,
            # so later constructions can return it
            Predicate._intern.setdefault(lits, self)
            return getattr(self, name)
        raise AttributeError(name)

    # -- constructors -------------------------------------------------

    @staticmethod
    def true() -> "Predicate":
        return _TRUE

    @staticmethod
    def of(value: "Value", negated: bool = False) -> "Predicate":
        return Predicate([Literal(value, negated)])

    # -- queries ------------------------------------------------------

    @property
    def literals(self) -> frozenset[Literal]:
        return self._literals

    def is_true(self) -> bool:
        return not self._literals

    def is_false(self) -> bool:
        """True when the conjunction is syntactically unsatisfiable."""
        return self._unsat

    def implies(self, other: "Predicate") -> bool:
        """``self -> other`` for conjunctions: other ⊆ self.

        An unsatisfiable predicate implies everything.
        """
        if other is self or not other._literals or self._unsat:
            return True
        return other._literals <= self._literals

    def values(self) -> Iterator["Value"]:
        """The IR values this predicate reads (its literal operands)."""
        for lit in self._literals:
            yield lit.value

    # -- combinators ----------------------------------------------------

    def conjoin(self, other: "Predicate") -> "Predicate":
        if other is self or other.is_true():
            return self
        if self.is_true():
            return other
        return Predicate(self._literals | other._literals)

    def and_value(self, value: "Value", negated: bool = False) -> "Predicate":
        return Predicate(self._literals | {Literal(value, negated)})

    def without(self, values: Iterable["Value"]) -> "Predicate":
        """Drop literals over any of ``values`` (used when hoisting)."""
        drop = set(values)
        return Predicate(l for l in self._literals if l.value not in drop)

    def substitute(self, mapping: dict["Value", "Value"]) -> "Predicate":
        """Rewrite literal operands through ``mapping`` (used by cloning)."""
        if not any(l.value in mapping for l in self._literals):
            return self
        return Predicate(
            Literal(mapping.get(l.value, l.value), l.negated) for l in self._literals
        )

    # -- dunder ---------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if other is self:
            return True
        return isinstance(other, Predicate) and self._literals == other._literals

    def __hash__(self) -> int:
        return self._hash

    def __str__(self) -> str:
        if self.is_true():
            return "true"
        return " & ".join(sorted(str(l) for l in self._literals))

    def __repr__(self) -> str:
        return f"Predicate({self})"


def _blank_predicate() -> "Predicate":
    """Pickle helper: a bare instance, populated by ``__setstate__``."""
    return object.__new__(Predicate)


_TRUE = Predicate()
