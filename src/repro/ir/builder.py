"""Programmatic construction of predicated-SSA functions.

The builder maintains an insertion point (a scope and optional anchor) and
a *current predicate*; every instruction it creates is appended under that
predicate.  The front end and the test suite use it heavily; client
optimizations use it to emit run-time checks.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional, Sequence

from .instructions import (
    Alloca,
    BinOp,
    Broadcast,
    BuildVector,
    Call,
    Cast,
    Cmp,
    Effects,
    Eta,
    ExtractLane,
    Instruction,
    Load,
    Mu,
    Phi,
    PtrAdd,
    Reduce,
    Select,
    Shuffle,
    Store,
    UnOp,
    VecBin,
    VecCmp,
    VecLoad,
    VecSelect,
    VecStore,
    VecUn,
)
from .loops import Function, Loop, Module, ScopeMixin
from .predicates import Predicate
from .types import BOOL, FLOAT, INT, Type, VectorType, vector_of
from .values import Argument, Constant, Value, const_float, const_int


class IRBuilder:
    """Appends predicated instructions to a scope."""

    def __init__(self, scope: ScopeMixin, predicate: Predicate | None = None):
        self.scope = scope
        self.predicate = predicate if predicate is not None else Predicate.true()

    # -- insertion ----------------------------------------------------------

    def emit(self, inst: Instruction) -> Instruction:
        inst.set_predicate(self.predicate)
        self.scope.append(inst)
        return inst

    # -- predicate management -----------------------------------------------

    @contextmanager
    def under(self, value: Value, negated: bool = False) -> Iterator[None]:
        """Temporarily refine the current predicate by a literal."""
        saved = self.predicate
        self.predicate = saved.and_value(value, negated)
        try:
            yield
        finally:
            self.predicate = saved

    @contextmanager
    def at(self, scope: ScopeMixin, predicate: Predicate | None = None) -> Iterator[None]:
        saved_scope, saved_pred = self.scope, self.predicate
        self.scope = scope
        if predicate is not None:
            self.predicate = predicate
        try:
            yield
        finally:
            self.scope, self.predicate = saved_scope, saved_pred

    # -- scalar ops ---------------------------------------------------------

    def binop(self, op: str, a: Value, b: Value, name: str = "") -> Instruction:
        return self.emit(BinOp(op, a, b, name=name))

    def add(self, a: Value, b: Value, name: str = "") -> Instruction:
        return self.binop("add", a, b, name)

    def sub(self, a: Value, b: Value, name: str = "") -> Instruction:
        return self.binop("sub", a, b, name)

    def mul(self, a: Value, b: Value, name: str = "") -> Instruction:
        return self.binop("mul", a, b, name)

    def div(self, a: Value, b: Value, name: str = "") -> Instruction:
        return self.binop("div", a, b, name)

    def unop(self, op: str, v: Value, name: str = "") -> Instruction:
        return self.emit(UnOp(op, v, name=name))

    def cmp(self, rel: str, a: Value, b: Value, name: str = "", branch: bool = False) -> Cmp:
        c = Cmp(rel, a, b, name=name)
        c.is_branch_source = branch
        self.emit(c)
        return c

    def select(self, cond: Value, t: Value, f: Value, name: str = "") -> Instruction:
        return self.emit(Select(cond, t, f, name=name))

    def cast(self, v: Value, to: Type, name: str = "") -> Instruction:
        return self.emit(Cast(v, to, name=name))

    # -- memory ---------------------------------------------------------------

    def ptradd(self, base: Value, index: Value, name: str = "") -> Instruction:
        return self.emit(PtrAdd(base, index, name=name))

    def gep(self, base: Value, *indices, strides: Sequence[int] | None = None, name: str = "") -> Value:
        """Multi-dimensional address: base + sum(idx_k * stride_k).

        ``strides`` defaults to row-major with the last stride 1; indices
        may be IR values or Python ints.
        """
        if strides is None:
            if len(indices) != 1:
                raise ValueError("gep with >1 index needs explicit strides")
            strides = [1]
        flat: Optional[Value] = None
        for idx, stride in zip(indices, strides):
            iv = const_int(idx) if isinstance(idx, int) else idx
            term = iv if stride == 1 else self.mul(iv, const_int(stride))
            flat = term if flat is None else self.add(flat, term)
        assert flat is not None
        return self.ptradd(base, flat, name=name)

    def load(self, ptr: Value, type_: Type = FLOAT, name: str = "") -> Load:
        return self.emit(Load(ptr, type_, name=name))  # type: ignore[return-value]

    def store(self, ptr: Value, value: Value) -> Store:
        return self.emit(Store(ptr, value))  # type: ignore[return-value]

    def alloca(self, size: int, name: str = "") -> Alloca:
        return self.emit(Alloca(size, name=name))  # type: ignore[return-value]

    def call(
        self,
        callee: str,
        args: Sequence[Value] = (),
        ret_type: Type | None = None,
        effects: Effects | None = None,
        name: str = "",
    ) -> Call:
        from .types import VOID

        rt = ret_type if ret_type is not None else VOID
        return self.emit(Call(callee, args, rt, effects, name=name))  # type: ignore[return-value]

    # -- joins -----------------------------------------------------------------

    def phi(self, incomings: Sequence[tuple[Value, Predicate]], name: str = "") -> Phi:
        return self.emit(Phi(incomings, name=name))  # type: ignore[return-value]

    # -- vectors ----------------------------------------------------------------

    def vload(self, ptr: Value, lanes: int, elem: Type = FLOAT, name: str = "") -> Instruction:
        return self.emit(VecLoad(ptr, vector_of(elem, lanes), name=name))

    def vstore(self, ptr: Value, vec: Value) -> Instruction:
        return self.emit(VecStore(ptr, vec))

    def vbin(self, op: str, a: Value, b: Value, name: str = "") -> Instruction:
        return self.emit(VecBin(op, a, b, name=name))

    def vun(self, op: str, v: Value, name: str = "") -> Instruction:
        return self.emit(VecUn(op, v, name=name))

    def vcmp(self, rel: str, a: Value, b: Value, name: str = "") -> Instruction:
        return self.emit(VecCmp(rel, a, b, name=name))

    def vselect(self, mask: Value, t: Value, f: Value, name: str = "") -> Instruction:
        return self.emit(VecSelect(mask, t, f, name=name))

    def buildvec(self, elems: Sequence[Value], name: str = "") -> Instruction:
        return self.emit(BuildVector(elems, name=name))

    def extract(self, vec: Value, lane: int, name: str = "") -> Instruction:
        return self.emit(ExtractLane(vec, lane, name=name))

    def shuffle(self, a: Value, b: Value | None, mask: Sequence[int], name: str = "") -> Instruction:
        return self.emit(Shuffle(a, b, mask, name=name))

    def broadcast(self, v: Value, lanes: int, name: str = "") -> Instruction:
        return self.emit(Broadcast(v, lanes, name=name))

    def reduce(self, op: str, vec: Value, name: str = "") -> Instruction:
        return self.emit(Reduce(op, vec, name=name))

    # -- loops ----------------------------------------------------------------

    def make_loop(self, name: str = "") -> Loop:
        """Create a loop under the current predicate and append it."""
        loop = Loop(name)
        loop.set_predicate(self.predicate)
        self.scope.append(loop)
        return loop

    def mu(self, loop: Loop, init: Value, name: str = "") -> Mu:
        m = Mu(init, name=name)
        loop.add_mu(m)
        return m

    def eta(self, loop: Loop, inner: Value, name: str = "") -> Eta:
        """Loop live-out; emitted in the current (parent) scope."""
        return self.emit(Eta(loop, inner, name=name))  # type: ignore[return-value]


__all__ = ["IRBuilder"]
