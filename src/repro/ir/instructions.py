"""Instructions of the predicated-SSA IR (paper Fig. 3).

An *item* is anything that lives in a scope body: an instruction or a
loop.  Every item carries an execution predicate.  There are no basic
blocks and no branches; control flow is encoded entirely in predicates and
in the loop hierarchy, which is what makes the global code motion the
versioning framework performs (hoisting checks, duplicating guarded
instructions) a purely local list edit.

Uses are tracked for *all* value references an item makes: its operands,
its predicate's literals, and — for phis — the incoming-edge predicates.
The materializer (Fig. 14) relies on this when it reroutes uses of a
versioned instruction to the joining phi, including uses that occur inside
predicates (see the ``c_phi`` rewrite in the paper's Fig. 15a).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Optional, Sequence

from .predicates import Predicate
from .types import BOOL, FLOAT, INT, PTR, Type, VectorType, vector_of
from .values import Constant, Value

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .loops import Loop, Scope


# ---------------------------------------------------------------------------
# Item base
# ---------------------------------------------------------------------------


class Item:
    """Mixin for things that live in a scope body (instructions, loops)."""

    predicate: Predicate
    parent: Optional["Scope"]

    def is_loop(self) -> bool:
        return False

    def may_read(self) -> bool:
        return False

    def may_write(self) -> bool:
        return False

    def touches_memory(self) -> bool:
        return self.may_read() or self.may_write()

    def mem_instructions(self) -> list["Instruction"]:
        """All memory-touching instructions this item contains."""
        return []

    def set_predicate(self, pred: Predicate) -> None:
        """Replace the execution predicate, keeping use lists consistent."""
        for v in self.predicate.values():
            v._remove_user(self)  # type: ignore[arg-type]
        self.predicate = pred
        for v in pred.values():
            v._add_user(self)  # type: ignore[arg-type]


# ---------------------------------------------------------------------------
# Instruction base
# ---------------------------------------------------------------------------


class Instruction(Value, Item):
    """An SSA instruction guarded by an execution predicate."""

    __slots__ = ("operands", "predicate", "parent", "metadata")

    opcode: str = "?"

    def __init__(
        self,
        type_: Type,
        operands: Sequence[Value],
        predicate: Predicate | None = None,
        name: str = "",
    ):
        super().__init__(type_, name)
        self.operands: list[Value] = []
        self.predicate = Predicate.true()
        self.parent = None
        self.metadata: dict = {}
        for op in operands:
            self._append_operand(op)
        if predicate is not None:
            self.set_predicate(predicate)

    # -- operand bookkeeping -------------------------------------------

    def _append_operand(self, v: Value) -> None:
        self.operands.append(v)
        v._add_user(self)

    def set_operand(self, idx: int, v: Value) -> None:
        self.operands[idx]._remove_user(self)
        self.operands[idx] = v
        v._add_user(self)

    def replace_uses_of(self, old: Value, new: Value) -> None:
        """Replace every reference to ``old`` (operands and predicates)."""
        for i, op in enumerate(self.operands):
            if op is old:
                self.set_operand(i, new)
        if any(lit.value is old for lit in self.predicate.literals):
            self.set_predicate(self.predicate.substitute({old: new}))
        self._replace_extra_uses(old, new)

    def _replace_extra_uses(self, old: Value, new: Value) -> None:
        """Hook for subclasses with non-operand uses (phi edge predicates)."""

    def drop_all_references(self) -> None:
        """Detach from every used value (call when erasing)."""
        for op in self.operands:
            op._remove_user(self)
        self.operands.clear()
        self.set_predicate(Predicate.true())

    def is_instruction(self) -> bool:
        return True

    # -- memory interface -------------------------------------------------

    @property
    def pointer(self) -> Optional[Value]:
        """The address operand of a memory access, else None."""
        return None

    @property
    def access_slots(self) -> int:
        """Slots read/written at ``pointer`` (vector accesses span lanes)."""
        return 0

    def mem_instructions(self) -> list["Instruction"]:
        return [self] if self.touches_memory() else []

    # -- misc ---------------------------------------------------------------

    def scope_erase(self) -> None:
        """Remove this instruction from its parent scope and drop uses."""
        if self.parent is not None:
            self.parent.remove(self)
        self.drop_all_references()

    def brief(self) -> str:
        ops = ", ".join(o.display_name() for o in self.operands)
        return f"{self.display_name()} = {self.opcode} {ops}"

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.brief()} ; {self.predicate}>"


# ---------------------------------------------------------------------------
# Arithmetic / logic
# ---------------------------------------------------------------------------

BINARY_OPS = {
    "add", "sub", "mul", "div", "rem", "min", "max",
    "and", "or", "xor", "shl", "shr", "pow",
}

UNARY_OPS = {"neg", "not", "sqrt", "abs", "exp", "log", "floor", "sin", "cos"}

CMP_RELS = {"eq", "ne", "lt", "le", "gt", "ge"}


class BinOp(Instruction):
    __slots__ = ("op",)
    opcode = "bin"

    def __init__(self, op: str, lhs: Value, rhs: Value, name: str = ""):
        if op not in BINARY_OPS:
            raise ValueError(f"unknown binary op {op!r}")
        super().__init__(lhs.type, [lhs, rhs], name=name)
        self.op = op

    def brief(self) -> str:
        a, b = self.operands
        return f"{self.display_name()} = {self.op} {a.display_name()}, {b.display_name()}"


class UnOp(Instruction):
    __slots__ = ("op",)
    opcode = "un"

    def __init__(self, op: str, val: Value, name: str = ""):
        if op not in UNARY_OPS:
            raise ValueError(f"unknown unary op {op!r}")
        out = BOOL if op == "not" else val.type
        super().__init__(out, [val], name=name)
        self.op = op

    def brief(self) -> str:
        return f"{self.display_name()} = {self.op} {self.operands[0].display_name()}"


class Cmp(Instruction):
    """Comparison producing a boolean.

    ``is_branch_source`` marks comparisons that feed control decisions
    (if/loop guards and materialized versioning checks); the interpreter's
    dynamic branch counter — used for the Fig. 22 "branches increase"
    row — counts executions of such comparisons.
    """

    __slots__ = ("rel", "is_branch_source", "is_versioning_check")
    opcode = "cmp"

    def __init__(self, rel: str, lhs: Value, rhs: Value, name: str = ""):
        if rel not in CMP_RELS:
            raise ValueError(f"unknown comparison {rel!r}")
        super().__init__(BOOL, [lhs, rhs], name=name)
        self.rel = rel
        self.is_branch_source = False
        self.is_versioning_check = False

    def brief(self) -> str:
        a, b = self.operands
        return f"{self.display_name()} = cmp {self.rel} {a.display_name()}, {b.display_name()}"


class Select(Instruction):
    __slots__ = ()
    opcode = "select"

    def __init__(self, cond: Value, tval: Value, fval: Value, name: str = ""):
        super().__init__(tval.type, [cond, tval, fval], name=name)

    @property
    def cond(self) -> Value:
        return self.operands[0]

    @property
    def true_value(self) -> Value:
        return self.operands[1]

    @property
    def false_value(self) -> Value:
        return self.operands[2]


class Cast(Instruction):
    __slots__ = ()
    opcode = "cast"

    def __init__(self, val: Value, to: Type, name: str = ""):
        super().__init__(to, [val], name=name)

    def brief(self) -> str:
        return f"{self.display_name()} = cast {self.operands[0].display_name()} to {self.type}"


# ---------------------------------------------------------------------------
# Memory
# ---------------------------------------------------------------------------


class PtrAdd(Instruction):
    """Pointer plus element index (all elements are one slot wide)."""

    __slots__ = ()
    opcode = "ptradd"

    def __init__(self, base: Value, index: Value, name: str = ""):
        super().__init__(PTR, [base, index], name=name)

    @property
    def base(self) -> Value:
        return self.operands[0]

    @property
    def index(self) -> Value:
        return self.operands[1]

    def brief(self) -> str:
        return f"{self.display_name()} = &{self.base.display_name()}[{self.index.display_name()}]"


class Load(Instruction):
    __slots__ = ()
    opcode = "load"

    def __init__(self, ptr: Value, type_: Type = FLOAT, name: str = ""):
        super().__init__(type_, [ptr], name=name)

    def may_read(self) -> bool:
        return True

    @property
    def pointer(self) -> Value:
        return self.operands[0]

    @property
    def access_slots(self) -> int:
        return 1

    def brief(self) -> str:
        return f"{self.display_name()} = load {self.pointer.display_name()}"


class Store(Instruction):
    __slots__ = ()
    opcode = "store"

    def __init__(self, ptr: Value, value: Value, name: str = ""):
        from .types import VOID

        super().__init__(VOID, [ptr, value], name=name)

    def may_write(self) -> bool:
        return True

    @property
    def pointer(self) -> Value:
        return self.operands[0]

    @property
    def value(self) -> Value:
        return self.operands[1]

    @property
    def access_slots(self) -> int:
        return 1

    def brief(self) -> str:
        return f"store {self.pointer.display_name()}, {self.value.display_name()}"


class Alloca(Instruction):
    """Function-local allocation of ``size`` contiguous slots."""

    __slots__ = ("size",)
    opcode = "alloca"

    def __init__(self, size: int, name: str = ""):
        super().__init__(PTR, [], name=name)
        self.size = size

    def brief(self) -> str:
        return f"{self.display_name()} = alloca {self.size}"


@dataclass(frozen=True)
class Effects:
    """Memory effects of a call."""

    may_read: bool = True
    may_write: bool = True

    @staticmethod
    def pure() -> "Effects":
        return Effects(False, False)

    @staticmethod
    def readonly() -> "Effects":
        return Effects(True, False)


class Call(Instruction):
    """Call to an opaque external function.

    Unless annotated otherwise, a call may read and write arbitrary
    memory, which is exactly the dependence-analysis poison the running
    example's ``cold_func()`` introduces.
    """

    __slots__ = ("callee", "effects")
    opcode = "call"

    def __init__(
        self,
        callee: str,
        args: Sequence[Value],
        ret_type: Type,
        effects: Effects | None = None,
        name: str = "",
    ):
        super().__init__(ret_type, list(args), name=name)
        self.callee = callee
        self.effects = effects if effects is not None else Effects()

    def may_read(self) -> bool:
        return self.effects.may_read

    def may_write(self) -> bool:
        return self.effects.may_write

    def brief(self) -> str:
        args = ", ".join(o.display_name() for o in self.operands)
        lhs = "" if str(self.type) == "void" else f"{self.display_name()} = "
        return f"{lhs}call {self.callee}({args})"


# ---------------------------------------------------------------------------
# SSA joins: phi, mu, eta
# ---------------------------------------------------------------------------


class Phi(Instruction):
    """Predicated phi: ``phi(v1: p1, ..., vn: pn)`` (paper Fig. 3).

    Its value is the operand whose predicate holds at run time.  Incoming
    predicates are uses: rerouting a value through a versioning phi must
    also rewrite predicates that mention it.
    """

    __slots__ = ("incoming_preds",)
    opcode = "phi"

    def __init__(
        self,
        incomings: Sequence[tuple[Value, Predicate]],
        type_: Type | None = None,
        name: str = "",
    ):
        values = [v for v, _ in incomings]
        ty = type_ if type_ is not None else values[0].type
        super().__init__(ty, values, name=name)
        self.incoming_preds: list[Predicate] = []
        for _, p in incomings:
            self.incoming_preds.append(p)
            for pv in p.values():
                pv._add_user(self)

    def incomings(self) -> list[tuple[Value, Predicate]]:
        return list(zip(self.operands, self.incoming_preds))

    def set_incoming_value(self, idx: int, v: Value) -> None:
        self.set_operand(idx, v)

    def set_incoming_pred(self, idx: int, p: Predicate) -> None:
        for pv in self.incoming_preds[idx].values():
            pv._remove_user(self)
        self.incoming_preds[idx] = p
        for pv in p.values():
            pv._add_user(self)

    def _replace_extra_uses(self, old: Value, new: Value) -> None:
        for i, p in enumerate(self.incoming_preds):
            if any(lit.value is old for lit in p.literals):
                self.set_incoming_pred(i, p.substitute({old: new}))

    def drop_all_references(self) -> None:
        for p in self.incoming_preds:
            for pv in p.values():
                pv._remove_user(self)
        self.incoming_preds.clear()
        super().drop_all_references()

    def brief(self) -> str:
        inc = ", ".join(
            f"{p}: {v.display_name()}" for v, p in self.incomings()
        )
        return f"{self.display_name()} = phi({inc})"


class Mu(Instruction):
    """Loop-header recurrence ``mu(v_init, v_rec)`` (paper Fig. 3).

    Evaluates to ``v_init`` on the first iteration and to the previous
    iteration's ``v_rec`` afterwards.  The recurrence operand may be set
    after construction since it is usually defined later in the body.
    """

    __slots__ = ("loop",)
    opcode = "mu"

    def __init__(self, init: Value, rec: Value | None = None, name: str = ""):
        ops = [init] if rec is None else [init, rec]
        super().__init__(init.type, ops, name=name)
        self.loop: Optional["Loop"] = None

    @property
    def init(self) -> Value:
        return self.operands[0]

    @property
    def rec(self) -> Optional[Value]:
        return self.operands[1] if len(self.operands) > 1 else None

    def set_rec(self, v: Value) -> None:
        if len(self.operands) > 1:
            self.set_operand(1, v)
        else:
            self._append_operand(v)

    def brief(self) -> str:
        rec = self.rec.display_name() if self.rec is not None else "?"
        return f"{self.display_name()} = mu({self.init.display_name()}, {rec})"


class Eta(Instruction):
    """Loop live-out: the value ``inner`` held on the loop's final iteration.

    Lives in the loop's *parent* scope, immediately after the loop.  If the
    loop never executes the eta is undefined; the front end guards such
    uses with a phi over the loop-entry condition.
    """

    __slots__ = ("loop",)
    opcode = "eta"

    def __init__(self, loop: "Loop", inner: Value, name: str = ""):
        super().__init__(inner.type, [inner], name=name)
        self.loop = loop
        loop.etas.append(self)

    @property
    def inner(self) -> Value:
        return self.operands[0]

    def brief(self) -> str:
        return f"{self.display_name()} = eta({self.loop.display_name()}, {self.inner.display_name()})"


# ---------------------------------------------------------------------------
# Vector instructions
# ---------------------------------------------------------------------------


class VecLoad(Instruction):
    __slots__ = ()
    opcode = "vload"

    def __init__(self, ptr: Value, vec_type: VectorType, name: str = ""):
        super().__init__(vec_type, [ptr], name=name)

    def may_read(self) -> bool:
        return True

    @property
    def pointer(self) -> Value:
        return self.operands[0]

    @property
    def access_slots(self) -> int:
        return self.type.slots

    def brief(self) -> str:
        return f"{self.display_name()} = vload {self.pointer.display_name()} x{self.type.slots}"


class VecStore(Instruction):
    __slots__ = ()
    opcode = "vstore"

    def __init__(self, ptr: Value, value: Value, name: str = ""):
        from .types import VOID

        if not value.type.is_vector():
            raise ValueError("vstore requires a vector value")
        super().__init__(VOID, [ptr, value], name=name)

    def may_write(self) -> bool:
        return True

    @property
    def pointer(self) -> Value:
        return self.operands[0]

    @property
    def value(self) -> Value:
        return self.operands[1]

    @property
    def access_slots(self) -> int:
        return self.value.type.slots

    def brief(self) -> str:
        return f"vstore {self.pointer.display_name()}, {self.value.display_name()}"


class VecBin(Instruction):
    __slots__ = ("op",)
    opcode = "vbin"

    def __init__(self, op: str, lhs: Value, rhs: Value, name: str = ""):
        if op not in BINARY_OPS:
            raise ValueError(f"unknown binary op {op!r}")
        super().__init__(lhs.type, [lhs, rhs], name=name)
        self.op = op

    def brief(self) -> str:
        a, b = self.operands
        return f"{self.display_name()} = v{self.op} {a.display_name()}, {b.display_name()}"


class VecUn(Instruction):
    __slots__ = ("op",)
    opcode = "vun"

    def __init__(self, op: str, val: Value, name: str = ""):
        if op not in UNARY_OPS:
            raise ValueError(f"unknown unary op {op!r}")
        super().__init__(val.type, [val], name=name)
        self.op = op


class VecCmp(Instruction):
    __slots__ = ("rel",)
    opcode = "vcmp"

    def __init__(self, rel: str, lhs: Value, rhs: Value, name: str = ""):
        if rel not in CMP_RELS:
            raise ValueError(f"unknown comparison {rel!r}")
        lanes = lhs.type.lanes
        super().__init__(vector_of(BOOL, lanes), [lhs, rhs], name=name)
        self.rel = rel


class VecSelect(Instruction):
    __slots__ = ()
    opcode = "vselect"

    def __init__(self, mask: Value, tval: Value, fval: Value, name: str = ""):
        super().__init__(tval.type, [mask, tval, fval], name=name)


class BuildVector(Instruction):
    """Gather scalars into a vector (the SLP 'gather' fallback)."""

    __slots__ = ()
    opcode = "buildvec"

    def __init__(self, elems: Sequence[Value], name: str = ""):
        ty = vector_of(elems[0].type, len(elems))
        super().__init__(ty, list(elems), name=name)

    def brief(self) -> str:
        elems = ", ".join(o.display_name() for o in self.operands)
        return f"{self.display_name()} = buildvec [{elems}]"


class ExtractLane(Instruction):
    __slots__ = ("lane",)
    opcode = "extract"

    def __init__(self, vec: Value, lane: int, name: str = ""):
        super().__init__(vec.type.elem, [vec], name=name)
        self.lane = lane

    def brief(self) -> str:
        return f"{self.display_name()} = extract {self.operands[0].display_name()}[{self.lane}]"


class Shuffle(Instruction):
    """Permute lanes of one or two vectors by a constant mask."""

    __slots__ = ("mask",)
    opcode = "shuffle"

    def __init__(self, a: Value, b: Value | None, mask: Sequence[int], name: str = ""):
        ty = vector_of(a.type.elem, len(mask))
        ops = [a] if b is None else [a, b]
        super().__init__(ty, ops, name=name)
        self.mask = list(mask)


class Broadcast(Instruction):
    __slots__ = ()
    opcode = "broadcast"

    def __init__(self, val: Value, lanes: int, name: str = ""):
        super().__init__(vector_of(val.type, lanes), [val], name=name)


class Reduce(Instruction):
    """Horizontal reduction of a vector (used for sum/min/max idioms)."""

    __slots__ = ("op",)
    opcode = "reduce"

    def __init__(self, op: str, vec: Value, name: str = ""):
        if op not in {"add", "mul", "min", "max", "or", "and"}:
            raise ValueError(f"cannot reduce with {op!r}")
        super().__init__(vec.type.elem, [vec], name=name)
        self.op = op


__all__ = [
    "Item",
    "Instruction",
    "BinOp",
    "UnOp",
    "Cmp",
    "Select",
    "Cast",
    "PtrAdd",
    "Load",
    "Store",
    "Alloca",
    "Call",
    "Effects",
    "Phi",
    "Mu",
    "Eta",
    "VecLoad",
    "VecStore",
    "VecBin",
    "VecUn",
    "VecCmp",
    "VecSelect",
    "BuildVector",
    "ExtractLane",
    "Shuffle",
    "Broadcast",
    "Reduce",
    "BINARY_OPS",
    "UNARY_OPS",
    "CMP_RELS",
]
