"""Structural verifier for predicated-SSA functions.

Checks the invariants every pass in this repository must preserve:

* **def-before-use** in program order, with mu recurrences as the single
  sanctioned back edge;
* **scope visibility** — an operand must be defined in an enclosing scope
  (values do not escape loops except through eta nodes);
* **predicate well-formedness** — every predicate literal is a boolean
  value defined before the guarded item, and the literal's own guard is
  implied by the user's guard (so "missing value => predicate false"
  evaluation is sound);
* **predicate operand types** — predicate literals (on instructions,
  loops, and phi edges alike) must be boolean-typed values;
* **terminator placement** — a loop's continuation value is boolean and
  defined inside that loop (not hoisted past the back edge);
* **loop-scope well-nestedness** — parent links match the containing
  scope, mus live only in their loop's header and agree in type with
  both their init and recurrence operands.

Passes call :func:`verify_function` after mutating IR; the test suite
treats a verifier failure as a bug in the pass.
"""

from __future__ import annotations

from .instructions import Eta, Instruction, Mu, Phi
from .loops import Function, GlobalArray, Loop, ScopeMixin, program_order
from .values import Argument, Constant, Undef, Value


class VerificationError(Exception):
    pass


def _enclosing_scopes(item) -> list[ScopeMixin]:
    scopes = []
    scope = item.parent
    while scope is not None:
        scopes.append(scope)
        scope = getattr(scope, "parent", None)
    return scopes


def verify_function(fn: Function) -> None:
    order = program_order(fn)
    defined: set[Value] = set(fn.args)
    if fn.module is not None:
        defined.update(fn.module.globals.values())

    # each loop's header+body instruction set is needed by the cont check,
    # by every eta of the loop, and by the post-loop visibility pass;
    # materialize it once per loop instead of re-walking the subtree
    inner_cache: dict[int, set] = {}

    def inner_insts(loop: Loop) -> set:
        s = inner_cache.get(id(loop))
        if s is None:
            s = set(loop.header_and_body_instructions())
            inner_cache[id(loop)] = s
        return s

    def is_available(v: Value) -> bool:
        return (
            v in defined
            or isinstance(v, (Constant, Argument, Undef, GlobalArray))
        )

    def check_operand(user, v: Value, what: str) -> None:
        if not is_available(v):
            raise VerificationError(
                f"{fn.name}: {what} of {user!r} uses {v!r} before its definition"
            )

    def check_pred_literals(owner, pred, what: str) -> None:
        for lit in pred.literals:
            check_operand(owner, lit.value, what)
            if not lit.value.type.is_bool():
                raise VerificationError(
                    f"{fn.name}: {what} literal {lit.value!r} of "
                    f"{owner!r} is not boolean"
                )

    def visit(scope: ScopeMixin) -> None:
        for item in scope.items:
            if isinstance(item, Mu):
                raise VerificationError(
                    f"mu {item!r} appears as a scope item; mus live only "
                    f"in their loop's header"
                )
            if isinstance(item, Loop):
                loop = item
                if loop.parent is not scope:
                    raise VerificationError(f"{loop!r} has stale parent link")
                check_pred_literals(loop, loop.predicate, "predicate")
                for mu in loop.mus:
                    if mu.loop is not loop:
                        raise VerificationError(f"mu {mu!r} not linked to {loop!r}")
                    if mu.parent is not loop:
                        raise VerificationError(f"mu {mu!r} has stale parent link")
                    check_operand(mu, mu.init, "mu init")
                    if str(mu.init.type) != str(mu.type):
                        raise VerificationError(
                            f"mu {mu!r} has type {mu.type} but its init "
                            f"{mu.init!r} has type {mu.init.type}"
                        )
                    if mu.rec is None:
                        raise VerificationError(f"mu {mu!r} has no recurrence operand")
                    defined.add(mu)
                visit(loop)
                if loop.cont is None:
                    raise VerificationError(f"{loop!r} has no continuation value")
                check_operand(loop, loop.cont, "continuation")
                if not loop.cont.type.is_bool():
                    raise VerificationError(
                        f"{loop!r} continuation {loop.cont!r} is not boolean"
                    )
                if not isinstance(loop.cont, (Constant, Undef)):
                    if loop.cont not in inner_insts(loop):
                        raise VerificationError(
                            f"{loop!r} continuation {loop.cont!r} is not "
                            f"defined inside the loop"
                        )
                for mu in loop.mus:
                    check_operand(mu, mu.rec, "mu recurrence")
                    if str(mu.rec.type) != str(mu.type):
                        raise VerificationError(
                            f"mu {mu!r} has type {mu.type} but its "
                            f"recurrence {mu.rec!r} has type {mu.rec.type}"
                        )
                # values defined inside the loop are not visible afterwards
                defined.difference_update(inner_insts(loop))
            else:
                inst: Instruction = item  # type: ignore[assignment]
                if inst.parent is not scope:
                    raise VerificationError(f"{inst!r} has stale parent link")
                check_pred_literals(inst, inst.predicate, "predicate")
                if isinstance(inst, Eta):
                    if inst.loop.parent is not scope:
                        raise VerificationError(
                            f"eta {inst!r} not in its loop's parent scope"
                        )
                    # the inner value must come from within the loop
                    if inst.inner not in inner_insts(inst.loop) and not isinstance(
                        inst.inner, (Constant, Argument, Undef, GlobalArray)
                    ):
                        raise VerificationError(
                            f"eta {inst!r} names a value not defined in its loop"
                        )
                elif isinstance(inst, Phi):
                    for v, p in inst.incomings():
                        check_operand(inst, v, "phi operand")
                        check_pred_literals(inst, p, "phi edge predicate")
                else:
                    for op in inst.operands:
                        check_operand(inst, op, "operand")
                defined.add(inst)

    visit(fn)
    if fn.return_value is not None and not is_available(fn.return_value):
        raise VerificationError(f"{fn.name}: return value not defined at exit")
    # program order sanity: every item was numbered
    for item in fn.walk_items():
        if item not in order:
            raise VerificationError(f"{item!r} missing from program order")


def verify_module(module) -> None:
    for fn in module.functions.values():
        verify_function(fn)


__all__ = ["verify_function", "verify_module", "VerificationError"]
