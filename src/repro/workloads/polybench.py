"""PolyBench kernels transcribed into mini-C (paper Fig. 16 workloads).

Array sizes are scaled down from PolyBench's MINI/SMALL datasets so the
interpreter (our "testbed") finishes in seconds; the dependence structure
— which is what versioning interacts with — is unchanged.  All pointer
parameters carry ``restrict`` in the source; the Fig. 16 restrict-off
configuration is the pipeline's ``honor_restrict=False`` switch, exactly
mirroring how the paper disables the keyword.

The five kernels the paper highlights as vectorizable *only* with
fine-grained versioning — correlation, covariance, floyd-warshall, lu,
ludcmp — are all here, with their triangular/in-place structure intact.
"""

from __future__ import annotations

from contextlib import contextmanager

from repro.perf.measure import ArrayArg, ScalarArg, Workload

N = 14  # cubic kernels
M = 28  # quadratic kernels
L = 96  # linear kernels


@contextmanager
def scaled(factor: int):
    """Multiply the suite sizes by ``factor`` for workloads built inside.

    The factories read ``N``/``M``/``L`` at call time, so any workload
    constructed under this context gets the scaled problem sizes; the
    benchmark speed phase uses this to stop harness overhead from
    dominating the timings.  Sizes are restored on exit.
    """
    global N, M, L
    saved = (N, M, L)
    N, M, L = N * factor, M * factor, L * factor
    try:
        yield
    finally:
        N, M, L = saved


def _init(seed: int):
    def f(i: int) -> float:
        return ((i * 7 + seed * 13) % 11) / 11.0 + 0.5

    return f


def _w(name: str, source: str, args) -> Workload:
    return Workload(name=name, source=source, args=args, entry="kernel")


def gemm() -> Workload:
    src = f"""
    const int N = {N};
    void kernel(double C[restrict N][N], double A[restrict N][N],
                double B[restrict N][N], double alpha, double beta) {{
      for (int i = 0; i < N; i++) {{
        for (int j = 0; j < N; j++) C[i][j] = C[i][j] * beta;
        for (int k = 0; k < N; k++)
          for (int j = 0; j < N; j++)
            C[i][j] += alpha * A[i][k] * B[k][j];
      }}
    }}
    """
    return _w("gemm", src, [
        ArrayArg("C", N * N, _init(1)),
        ArrayArg("A", N * N, _init(2)),
        ArrayArg("B", N * N, _init(3)),
        ScalarArg("alpha", 1.5), ScalarArg("beta", 1.2),
    ])


def atax() -> Workload:
    src = f"""
    const int M = {M};
    void kernel(double A[restrict M][M], double x[restrict M],
                double y[restrict M], double tmp[restrict M]) {{
      for (int i = 0; i < M; i++) y[i] = 0.0;
      for (int i = 0; i < M; i++) {{
        double t = 0.0;
        for (int j = 0; j < M; j++) t += A[i][j] * x[j];
        tmp[i] = t;
        for (int j = 0; j < M; j++) y[j] = y[j] + A[i][j] * t;
      }}
    }}
    """
    return _w("atax", src, [
        ArrayArg("A", M * M, _init(1)), ArrayArg("x", M, _init(2)),
        ArrayArg("y", M, lambda i: 0.0), ArrayArg("tmp", M, lambda i: 0.0),
    ])


def bicg() -> Workload:
    src = f"""
    const int M = {M};
    void kernel(double A[restrict M][M], double s[restrict M], double q[restrict M],
                double p[restrict M], double r[restrict M]) {{
      for (int i = 0; i < M; i++) s[i] = 0.0;
      for (int i = 0; i < M; i++) {{
        q[i] = 0.0;
        for (int j = 0; j < M; j++) {{
          s[j] = s[j] + r[i] * A[i][j];
          q[i] = q[i] + A[i][j] * p[j];
        }}
      }}
    }}
    """
    return _w("bicg", src, [
        ArrayArg("A", M * M, _init(1)), ArrayArg("s", M, lambda i: 0.0),
        ArrayArg("q", M, lambda i: 0.0), ArrayArg("p", M, _init(2)),
        ArrayArg("r", M, _init(3)),
    ])


def mvt() -> Workload:
    src = f"""
    const int M = {M};
    void kernel(double x1[restrict M], double x2[restrict M], double y1[restrict M],
                double y2[restrict M], double A[restrict M][M]) {{
      for (int i = 0; i < M; i++)
        for (int j = 0; j < M; j++)
          x1[i] = x1[i] + A[i][j] * y1[j];
      for (int i = 0; i < M; i++)
        for (int j = 0; j < M; j++)
          x2[i] = x2[i] + A[j][i] * y2[j];
    }}
    """
    return _w("mvt", src, [
        ArrayArg("x1", M, _init(1)), ArrayArg("x2", M, _init(2)),
        ArrayArg("y1", M, _init(3)), ArrayArg("y2", M, _init(4)),
        ArrayArg("A", M * M, _init(5)),
    ])


def gesummv() -> Workload:
    src = f"""
    const int M = {M};
    void kernel(double A[restrict M][M], double B[restrict M][M], double tmp[restrict M],
                double x[restrict M], double y[restrict M], double alpha, double beta) {{
      for (int i = 0; i < M; i++) {{
        double t = 0.0;
        double yv = 0.0;
        for (int j = 0; j < M; j++) {{
          t += A[i][j] * x[j];
          yv += B[i][j] * x[j];
        }}
        tmp[i] = t;
        y[i] = alpha * t + beta * yv;
      }}
    }}
    """
    return _w("gesummv", src, [
        ArrayArg("A", M * M, _init(1)), ArrayArg("B", M * M, _init(2)),
        ArrayArg("tmp", M, lambda i: 0.0), ArrayArg("x", M, _init(3)),
        ArrayArg("y", M, lambda i: 0.0),
        ScalarArg("alpha", 1.3), ScalarArg("beta", 0.7),
    ])


def jacobi_1d() -> Workload:
    src = f"""
    const int L = {L};
    void kernel(double A[restrict L], double B[restrict L], int tsteps) {{
      for (int t = 0; t < tsteps; t++) {{
        for (int i = 1; i < L - 1; i++)
          B[i] = 0.33333 * (A[i-1] + A[i] + A[i+1]);
        for (int i = 1; i < L - 1; i++)
          A[i] = 0.33333 * (B[i-1] + B[i] + B[i+1]);
      }}
    }}
    """
    return _w("jacobi-1d", src, [
        ArrayArg("A", L, _init(1)), ArrayArg("B", L, _init(2)),
        ScalarArg("tsteps", 6),
    ])


def trisolv() -> Workload:
    src = f"""
    const int M = {M};
    void kernel(double Lm[restrict M][M], double x[restrict M], double b[restrict M]) {{
      for (int i = 0; i < M; i++) {{
        double t = b[i];
        for (int j = 0; j < i; j++) t -= Lm[i][j] * x[j];
        x[i] = t / Lm[i][i];
      }}
    }}
    """
    return _w("trisolv", src, [
        ArrayArg("Lm", M * M, lambda i: 2.0 if i % (M + 1) == 0 else ((i % 5) / 10.0)),
        ArrayArg("x", M, lambda i: 0.0), ArrayArg("b", M, _init(2)),
    ])


def floyd_warshall() -> Workload:
    """In-place shortest paths (paper Fig. 17): the read-write conflict on
    ``path`` defeats loop versioning; fine-grained checks enable SLP."""
    src = f"""
    const int N = {N};
    void kernel(double path[restrict N][N]) {{
      for (int k = 0; k < N; k++)
        for (int i = 0; i < N; i++)
          for (int j = 0; j < N; j++)
            path[i][j] = path[i][j] < path[i][k] + path[k][j]
                         ? path[i][j] : path[i][k] + path[k][j];
    }}
    """
    return _w("floyd-warshall", src, [
        ArrayArg("path", N * N, lambda i: float((i * 11) % 17 + 1)),
    ])


def lu() -> Workload:
    """In-place LU decomposition with triangular iteration space."""
    src = f"""
    const int N = {N};
    void kernel(double A[restrict N][N]) {{
      for (int i = 0; i < N; i++) {{
        for (int j = 0; j < i; j++) {{
          double w = A[i][j];
          for (int k = 0; k < j; k++) w -= A[i][k] * A[k][j];
          A[i][j] = w / A[j][j];
        }}
        for (int j = i; j < N; j++) {{
          double w = A[i][j];
          for (int k = 0; k < i; k++) w -= A[i][k] * A[k][j];
          A[i][j] = w;
        }}
      }}
    }}
    """
    return _w("lu", src, [
        ArrayArg("A", N * N, lambda i: 4.0 if i % (N + 1) == 0 else ((i % 7) / 8.0)),
    ])


def ludcmp() -> Workload:
    """LU decomposition plus forward/back substitution."""
    src = f"""
    const int N = {N};
    void kernel(double A[restrict N][N], double b[restrict N],
                double x[restrict N], double y[restrict N]) {{
      for (int i = 0; i < N; i++) {{
        for (int j = 0; j < i; j++) {{
          double w = A[i][j];
          for (int k = 0; k < j; k++) w -= A[i][k] * A[k][j];
          A[i][j] = w / A[j][j];
        }}
        for (int j = i; j < N; j++) {{
          double w = A[i][j];
          for (int k = 0; k < i; k++) w -= A[i][k] * A[k][j];
          A[i][j] = w;
        }}
      }}
      for (int i = 0; i < N; i++) {{
        double w = b[i];
        for (int j = 0; j < i; j++) w -= A[i][j] * y[j];
        y[i] = w;
      }}
      for (int i = N - 1; i >= 0; i--) {{
        double w = y[i];
        for (int j = i + 1; j < N; j++) w -= A[i][j] * x[j];
        x[i] = w / A[i][i];
      }}
    }}
    """
    return _w("ludcmp", src, [
        ArrayArg("A", N * N, lambda i: 4.0 if i % (N + 1) == 0 else ((i % 7) / 8.0)),
        ArrayArg("b", N, _init(2)),
        ArrayArg("x", N, lambda i: 0.0), ArrayArg("y", N, lambda i: 0.0),
    ])


def correlation() -> Workload:
    src = f"""
    const int M = {M};
    void kernel(double data[restrict M][M], double corr[restrict M][M],
                double mean[restrict M], double stddev[restrict M], double float_n) {{
      for (int j = 0; j < M; j++) {{
        double m = 0.0;
        for (int i = 0; i < M; i++) m += data[i][j];
        mean[j] = m / float_n;
      }}
      for (int j = 0; j < M; j++) {{
        double s = 0.0;
        for (int i = 0; i < M; i++)
          s += (data[i][j] - mean[j]) * (data[i][j] - mean[j]);
        s = sqrt(s / float_n);
        stddev[j] = s <= 0.1 ? 1.0 : s;
      }}
      for (int i = 0; i < M; i++)
        for (int j = 0; j < M; j++)
          data[i][j] = (data[i][j] - mean[j]) / (sqrt(float_n) * stddev[j]);
      for (int i = 0; i < M - 1; i++) {{
        corr[i][i] = 1.0;
        for (int j = i + 1; j < M; j++) {{
          double c = 0.0;
          for (int k = 0; k < M; k++) c += data[k][i] * data[k][j];
          corr[i][j] = c;
          corr[j][i] = c;
        }}
      }}
      corr[M-1][M-1] = 1.0;
    }}
    """
    return _w("correlation", src, [
        ArrayArg("data", M * M, _init(3)),
        ArrayArg("corr", M * M, lambda i: 0.0),
        ArrayArg("mean", M, lambda i: 0.0),
        ArrayArg("stddev", M, lambda i: 0.0),
        ScalarArg("float_n", float(M)),
    ])


def covariance() -> Workload:
    src = f"""
    const int M = {M};
    void kernel(double data[restrict M][M], double cov[restrict M][M],
                double mean[restrict M], double float_n) {{
      for (int j = 0; j < M; j++) {{
        double m = 0.0;
        for (int i = 0; i < M; i++) m += data[i][j];
        mean[j] = m / float_n;
      }}
      for (int i = 0; i < M; i++)
        for (int j = 0; j < M; j++)
          data[i][j] -= mean[j];
      for (int i = 0; i < M; i++)
        for (int j = i; j < M; j++) {{
          double c = 0.0;
          for (int k = 0; k < M; k++) c += data[k][i] * data[k][j];
          c = c / (float_n - 1.0);
          cov[i][j] = c;
          cov[j][i] = c;
        }}
    }}
    """
    return _w("covariance", src, [
        ArrayArg("data", M * M, _init(4)),
        ArrayArg("cov", M * M, lambda i: 0.0),
        ArrayArg("mean", M, lambda i: 0.0),
        ScalarArg("float_n", float(M)),
    ])


def syrk() -> Workload:
    src = f"""
    const int N = {N};
    void kernel(double C[restrict N][N], double A[restrict N][N],
                double alpha, double beta) {{
      for (int i = 0; i < N; i++) {{
        for (int j = 0; j <= i; j++) C[i][j] = C[i][j] * beta;
        for (int k = 0; k < N; k++)
          for (int j = 0; j <= i; j++)
            C[i][j] += alpha * A[i][k] * A[j][k];
      }}
    }}
    """
    return _w("syrk", src, [
        ArrayArg("C", N * N, _init(1)), ArrayArg("A", N * N, _init(2)),
        ScalarArg("alpha", 1.5), ScalarArg("beta", 1.2),
    ])


def gemver() -> Workload:
    src = f"""
    const int M = {M};
    void kernel(double A[restrict M][M], double u1[restrict M], double v1[restrict M],
                double u2[restrict M], double v2[restrict M], double w[restrict M],
                double x[restrict M], double y[restrict M], double z[restrict M],
                double alpha, double beta) {{
      for (int i = 0; i < M; i++)
        for (int j = 0; j < M; j++)
          A[i][j] = A[i][j] + u1[i] * v1[j] + u2[i] * v2[j];
      for (int i = 0; i < M; i++)
        for (int j = 0; j < M; j++)
          x[i] = x[i] + beta * A[j][i] * y[j];
      for (int i = 0; i < M; i++)
        x[i] = x[i] + z[i];
      for (int i = 0; i < M; i++)
        for (int j = 0; j < M; j++)
          w[i] = w[i] + alpha * A[i][j] * x[j];
    }}
    """
    return _w("gemver", src, [
        ArrayArg("A", M * M, _init(1)),
        ArrayArg("u1", M, _init(2)), ArrayArg("v1", M, _init(3)),
        ArrayArg("u2", M, _init(4)), ArrayArg("v2", M, _init(5)),
        ArrayArg("w", M, lambda i: 0.0), ArrayArg("x", M, lambda i: 0.0),
        ArrayArg("y", M, _init(6)), ArrayArg("z", M, _init(7)),
        ScalarArg("alpha", 1.1), ScalarArg("beta", 0.9),
    ])


def two_mm() -> Workload:
    src = f"""
    const int N = {N};
    void kernel(double tmp[restrict N][N], double A[restrict N][N],
                double B[restrict N][N], double C[restrict N][N],
                double D[restrict N][N], double alpha, double beta) {{
      for (int i = 0; i < N; i++)
        for (int j = 0; j < N; j++) {{
          double t = 0.0;
          for (int k = 0; k < N; k++) t += alpha * A[i][k] * B[k][j];
          tmp[i][j] = t;
        }}
      for (int i = 0; i < N; i++)
        for (int j = 0; j < N; j++) {{
          double t = D[i][j] * beta;
          for (int k = 0; k < N; k++) t += tmp[i][k] * C[k][j];
          D[i][j] = t;
        }}
    }}
    """
    return _w("2mm", src, [
        ArrayArg("tmp", N * N, lambda i: 0.0), ArrayArg("A", N * N, _init(1)),
        ArrayArg("B", N * N, _init(2)), ArrayArg("C", N * N, _init(3)),
        ArrayArg("D", N * N, _init(4)),
        ScalarArg("alpha", 1.5), ScalarArg("beta", 1.2),
    ])


def three_mm() -> Workload:
    src = f"""
    const int N = {N};
    void kernel(double E[restrict N][N], double A[restrict N][N],
                double B[restrict N][N], double F[restrict N][N],
                double C[restrict N][N], double D[restrict N][N],
                double G[restrict N][N]) {{
      for (int i = 0; i < N; i++)
        for (int j = 0; j < N; j++) {{
          double t = 0.0;
          for (int k = 0; k < N; k++) t += A[i][k] * B[k][j];
          E[i][j] = t;
        }}
      for (int i = 0; i < N; i++)
        for (int j = 0; j < N; j++) {{
          double t = 0.0;
          for (int k = 0; k < N; k++) t += C[i][k] * D[k][j];
          F[i][j] = t;
        }}
      for (int i = 0; i < N; i++)
        for (int j = 0; j < N; j++) {{
          double t = 0.0;
          for (int k = 0; k < N; k++) t += E[i][k] * F[k][j];
          G[i][j] = t;
        }}
    }}
    """
    return _w("3mm", src, [
        ArrayArg("E", N * N, lambda i: 0.0), ArrayArg("A", N * N, _init(1)),
        ArrayArg("B", N * N, _init(2)), ArrayArg("F", N * N, lambda i: 0.0),
        ArrayArg("C", N * N, _init(3)), ArrayArg("D", N * N, _init(4)),
        ArrayArg("G", N * N, lambda i: 0.0),
    ])


def jacobi_2d() -> Workload:
    src = f"""
    const int N = {N};
    void kernel(double A[restrict N][N], double B[restrict N][N], int tsteps) {{
      for (int t = 0; t < tsteps; t++) {{
        for (int i = 1; i < N - 1; i++)
          for (int j = 1; j < N - 1; j++)
            B[i][j] = 0.2 * (A[i][j] + A[i][j-1] + A[i][j+1] + A[i+1][j] + A[i-1][j]);
        for (int i = 1; i < N - 1; i++)
          for (int j = 1; j < N - 1; j++)
            A[i][j] = 0.2 * (B[i][j] + B[i][j-1] + B[i][j+1] + B[i+1][j] + B[i-1][j]);
      }}
    }}
    """
    return _w("jacobi-2d", src, [
        ArrayArg("A", N * N, _init(1)), ArrayArg("B", N * N, _init(2)),
        ScalarArg("tsteps", 3),
    ])


ALL = [
    gemm, two_mm, three_mm, syrk, gemver, atax, bicg, mvt, gesummv,
    jacobi_1d, jacobi_2d, trisolv, floyd_warshall, lu, ludcmp,
    correlation, covariance,
]

# the five kernels the paper says only versioning vectorizes (Fig. 16 text)
VERSIONING_ONLY = {"correlation", "covariance", "floyd-warshall", "lu", "ludcmp"}


def workloads() -> list[Workload]:
    return [f() for f in ALL]


__all__ = ["workloads", "scaled", "ALL", "VERSIONING_ONLY", "N", "M", "L"]
