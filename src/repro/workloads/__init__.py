"""Benchmark workloads: PolyBench, TSVC, and SPEC-2017-FP-like kernels."""

from . import polybench, speclike, tsvc

__all__ = ["polybench", "speclike", "tsvc"]
