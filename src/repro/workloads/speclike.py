"""SPEC 2017 FP stand-ins for the Fig. 22 RLE evaluation.

SPEC sources are licensed and cannot ship here, so each benchmark is
replaced by a synthetic kernel engineered to exhibit the *redundant-load
profile* the paper reports for it (DESIGN.md, substitution table):

* ``lbm_r``      — a lattice/stencil sweep that re-reads neighbour cells
  across may-alias result stores: many eliminable loads, the suite's big
  winner (paper: +6.4%, 26% of loads eliminated).
* ``blender_r``  — repeated subexpressions over re-loaded values: RLE
  itself saves little, but unlocks a large GVN harvest (paper: +4.7%,
  19% extra GVN deletions).
* ``namd_r``     — per-iteration re-loads of loop-invariant coefficients:
  the win comes from LICM hoisting after RLE's noalias scopes (paper:
  +0.5%, 50% extra LICM hoists).
* ``parest_r``   — sparse-ish accumulation where groups exist but checks
  buy nothing (paper: -0.5%): the arrays genuinely interleave.
* ``povray_r``   — many tiny groups across stores that *do* conflict at
  run time: pure check overhead (paper: -1.7%).
* ``imagick_r``  — a clean streaming kernel with no redundant loads at
  all (paper: 0.0%).
* ``nab_r``      — moderate reuse, mostly neutral (paper: 0.0%, 2.7%
  loads eliminated).
"""

from __future__ import annotations

from repro.perf.measure import AliasArg, ArrayArg, ScalarArg, Workload

N = 48


def _init(seed: int):
    def f(i: int) -> float:
        return ((i * 5 + seed * 11) % 9) / 9.0 + 0.5

    return f


def lbm_r() -> Workload:
    src = f"""
    const int N = {N};
    void kernel(double *src, double *dst, int n) {{
      for (int i = 1; i < n - 1; i++) {{
        dst[i] = src[i-1] * 0.3 + src[i] * 0.4;
        dst[i] += src[i+1] * 0.3;
        dst[i] -= src[i-1] * src[i+1] * 0.05;
        dst[i] += src[i] * src[i] * 0.01;
        dst[i] += src[i-1] * 0.02 - src[i+1] * 0.02;
        dst[i] -= src[i] * src[i-1] * 0.01;
        dst[i] += src[i+1] * src[i] * 0.005;
      }}
    }}
    """
    return Workload("lbm_r", src, [
        ArrayArg("src", N, _init(1)), ArrayArg("dst", N, lambda i: 0.0),
        ScalarArg("n", N),
    ], entry="kernel")


def blender_r() -> Workload:
    src = f"""
    const int N = {N};
    void kernel(double *v, double *light, double *out, int n) {{
      for (int i = 0; i < n; i++) {{
        out[i] = (v[i] - light[0]) * (v[i] - light[0]);
        out[i] += (v[i] - light[1]) * (v[i] - light[1]);
        out[i] = out[i] * (v[i] - light[0]) + (v[i] - light[1]);
      }}
    }}
    """
    return Workload("blender_r", src, [
        ArrayArg("v", N, _init(2)), ArrayArg("light", 4, _init(3)),
        ArrayArg("out", N, lambda i: 0.0), ScalarArg("n", N),
    ], entry="kernel")


def namd_r() -> Workload:
    src = f"""
    const int N = {N};
    void kernel(double *pos, double *coef, double *force, double *energy, int n) {{
      for (int i = 0; i < n; i++) {{
        force[i] = pos[i] * coef[0] + pos[i] * pos[i] * 0.3;
        energy[i] = pos[i] * coef[0] * 0.5 + force[i] * force[i];
      }}
    }}
    """
    return Workload("namd_r", src, [
        ArrayArg("pos", N, _init(4)), ArrayArg("coef", 4, _init(5)),
        ArrayArg("force", N, lambda i: 0.0), ArrayArg("energy", N, lambda i: 0.0),
        ScalarArg("n", N),
    ], entry="kernel")


def parest_r() -> Workload:
    """Genuinely interleaved in-place accumulation: groups exist but the
    intervening writes really hit the loaded cells, so checks only add
    overhead — the paper's slight regression."""
    src = f"""
    const int N = {N};
    void kernel(double *m, int n) {{
      for (int i = 1; i < n; i++) {{
        m[i] = m[i] + m[i-1] * 0.5;
        m[i-1] = m[i] * 0.25;
        m[i] = m[i] + m[i-1];
      }}
    }}
    """
    return Workload("parest_r", src, [
        ArrayArg("m", N, _init(6)), ScalarArg("n", N),
    ], entry="kernel")


def povray_r() -> Workload:
    """Small groups whose checks fail at run time (the dst window really
    overlaps the ray array): all overhead, no elimination."""
    src = f"""
    const int N = {N};
    void kernel(double *ray, double *hit, int n) {{
      for (int i = 1; i < n; i++) {{
        double t = ray[i];
        hit[i] = t * 0.9;
        hit[i] = hit[i] + ray[i] * 0.1;
      }}
    }}
    """
    # hit == ray: the store really clobbers the re-loaded cell, so every
    # run-time check fails — pure overhead, the paper's regression row
    return Workload("povray_r", src, [
        ArrayArg("buf", N + 2, _init(7), check=True),
        AliasArg("hit", of="buf", offset=0),
        ScalarArg("n", N),
    ], entry="kernel")


def imagick_r() -> Workload:
    src = f"""
    const int N = {N};
    void kernel(double * restrict img, double * restrict out, int n) {{
      for (int i = 0; i < n; i++) out[i] = img[i] * 0.5 + 0.25;
    }}
    """
    return Workload("imagick_r", src, [
        ArrayArg("img", N, _init(8)), ArrayArg("out", N, lambda i: 0.0),
        ScalarArg("n", N),
    ], entry="kernel")


def nab_r() -> Workload:
    src = f"""
    const int N = {N};
    void kernel(double *q, double *dist, double *en, int n) {{
      for (int i = 1; i < n; i++) {{
        en[i] = q[i] / dist[i];
        en[i] += q[i] * 0.1;
      }}
    }}
    """
    return Workload("nab_r", src, [
        ArrayArg("q", N, _init(9)), ArrayArg("dist", N, lambda i: 1.0 + (i % 7) * 0.3),
        ArrayArg("en", N, lambda i: 0.0), ScalarArg("n", N),
    ], entry="kernel")


ALL = [namd_r, parest_r, povray_r, lbm_r, blender_r, imagick_r, nab_r]


def workloads() -> list[Workload]:
    return [f() for f in ALL]


__all__ = ["workloads", "ALL", "N"]
