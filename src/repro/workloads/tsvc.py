"""TSVC loops transcribed into mini-C (paper Fig. 19 workloads).

TSVC declares its arrays as globals — distinct allocations our alias
analysis disambiguates for free, just as LLVM does for the real suite —
so versioning earns its keep on *intra-array* conflicts (s281's reversed
read-write, s113's a[0] reuse, s131's runtime offset) rather than on
pointer aliasing.  A subset of the 151 loops is implemented: every loop
the paper discusses plus representatives of each vectorization category
(plain streams, strided/reversed access, scalar expansion, reductions,
control flow, recurrences).  Loops with true loop-carried recurrences
(s112, s211, s221, ...) are included deliberately: no configuration may
vectorize them, and their presence keeps the geomean honest.

``as_parameters(w)`` rewrites a workload's globals into pointer
parameters — the paper's s258 two-level-versioning experiment, where the
compiler must additionally disambiguate the arrays themselves.
"""

from __future__ import annotations

from dataclasses import replace

from repro.perf.measure import ArrayArg, ScalarArg, Workload

LEN = 64
LEN2 = 12

_G1 = f"""
const int LEN = {LEN};
double a[LEN];
double b[LEN];
double c[LEN];
double d[LEN];
double e[LEN];
"""

_G2 = f"""
const int LEN2 = {LEN2};
double aa[LEN2][LEN2];
double bb[LEN2][LEN2];
double cc[LEN2][LEN2];
"""


def _initf(seed: int):
    def f(i: int) -> float:
        return ((i * 3 + seed * 7) % 13) / 13.0 + 0.25

    return f


def _w(name: str, body: str, use_2d: bool = False, extra_args=None,
       init_overrides=None) -> Workload:
    src = (_G1 + (_G2 if use_2d else "")) + body
    ginit = {
        "a": _initf(1), "b": _initf(2), "c": _initf(3),
        "d": _initf(4), "e": _initf(5),
    }
    if use_2d:
        ginit.update({"aa": _initf(6), "bb": _initf(7), "cc": _initf(8)})
    if init_overrides:
        ginit.update(init_overrides)
    return Workload(
        name=name,
        source=src,
        args=list(extra_args or []),
        entry="kernel",
        globals_init=ginit,
    )


def workloads() -> list[Workload]:
    ws: list[Workload] = []

    ws.append(_w("s000", """
    void kernel() {
      for (int i = 0; i < LEN; i++) a[i] = b[i] + 1.0;
    }
    """))

    ws.append(_w("vpv", """
    void kernel() {
      for (int i = 0; i < LEN; i++) a[i] = a[i] + b[i];
    }
    """))

    ws.append(_w("vtv", """
    void kernel() {
      for (int i = 0; i < LEN; i++) a[i] = a[i] * b[i];
    }
    """))

    ws.append(_w("vpvtv", """
    void kernel() {
      for (int i = 0; i < LEN; i++) a[i] = a[i] + b[i] * c[i];
    }
    """))

    ws.append(_w("vbor", """
    void kernel() {
      for (int i = 0; i < LEN; i++) {
        double a1 = b[i];
        double b1 = c[i];
        double c1 = d[i];
        a[i] = a1 * b1 * c1 + a1 * b1 + a1 * c1 + b1 * c1 + a1 + b1 + c1;
      }
    }
    """))

    ws.append(_w("s1111", """
    void kernel() {
      for (int i = 0; i < LEN / 2; i++)
        a[2*i] = c[i] * b[i] + d[i] * b[i] + c[i] * c[i] + d[i] * b[i] + c[i] * d[i];
    }
    """))

    # true forward recurrence: never vectorizable
    ws.append(_w("s112", """
    void kernel() {
      for (int i = 0; i < LEN - 1; i++) a[i+1] = a[i] + b[i];
    }
    """))

    # a[0] is read every iteration while a[i] is written (i >= 1)
    ws.append(_w("s113", """
    void kernel() {
      for (int i = 1; i < LEN; i++) a[i] = a[0] + b[i];
    }
    """))

    # write a[i], read a[i+1]: WAR across iterations, fine for SLP
    ws.append(_w("s121", """
    void kernel() {
      for (int i = 0; i < LEN - 1; i++) a[i] = a[i+1] + b[i];
    }
    """))

    # dependence distance 4 == VL: groups never self-conflict
    ws.append(_w("s1221", """
    void kernel() {
      for (int i = 4; i < LEN; i++) b[i] = b[i-4] + a[i];
    }
    """))

    # run-time offset m: dependence unknowable statically
    ws.append(_w("s131", """
    void kernel(int m) {
      for (int i = 0; i < LEN - 1; i++) a[i] = a[i+m] + b[i];
    }
    """, extra_args=[ScalarArg("m", 1)]))

    # scalar expansion
    ws.append(_w("s251", """
    void kernel() {
      for (int i = 0; i < LEN; i++) {
        double s = b[i] + c[i] * d[i];
        a[i] = s * s;
      }
    }
    """))

    ws.append(_w("s1251", """
    void kernel() {
      for (int i = 0; i < LEN; i++) {
        double s = b[i] + c[i];
        b[i] = a[i] + d[i];
        a[i] = s * e[i];
      }
    }
    """))

    # loop-carried scalar through t
    ws.append(_w("s252", """
    void kernel() {
      double t = 0.0;
      for (int i = 0; i < LEN; i++) {
        double s = b[i] * c[i];
        a[i] = s + t;
        t = s;
      }
    }
    """))

    # the paper's s258 (Fig. 21): conditionally updated loop-carried scalar
    ws.append(_w("s258", """
    void kernel() {
      double s = 0.0;
      for (int i = 0; i < LEN; i++) {
        if (a[i] > 0.0) { s = d[i] * d[i]; }
        b[i] = s * c[i] + d[i];
        e[i] = (s + 1.0) * a[i];
      }
    }
    """))

    # control flow: conditional store (needs if-conversion/masking)
    ws.append(_w("s271", """
    void kernel() {
      for (int i = 0; i < LEN; i++) {
        if (b[i] > 0.0) { a[i] += b[i] * c[i]; }
      }
    }
    """))

    # the paper's s281 (Fig. 20): reversed read-write conflict on a
    ws.append(_w("s281", """
    void kernel() {
      for (int i = 0; i < LEN; i++) {
        double x = a[LEN-i-1] + b[i] * c[i];
        a[i] = x - 1.0;
        b[i] = x;
      }
    }
    """))

    # statement reordering chains
    ws.append(_w("s211", """
    void kernel() {
      for (int i = 1; i < LEN - 1; i++) {
        a[i] = b[i-1] + c[i] * d[i];
        b[i] = b[i+1] - e[i] * d[i];
      }
    }
    """))

    ws.append(_w("s221", """
    void kernel() {
      for (int i = 1; i < LEN; i++) {
        a[i] = a[i] + c[i] * d[i];
        b[i] = b[i-1] + a[i] + d[i];
      }
    }
    """))

    ws.append(_w("s241", """
    void kernel() {
      for (int i = 0; i < LEN - 1; i++) {
        a[i] = b[i] * c[i] * d[i];
        b[i] = a[i] * a[i+1] * d[i];
      }
    }
    """))

    ws.append(_w("s243", """
    void kernel() {
      for (int i = 0; i < LEN - 1; i++) {
        a[i] = b[i] + c[i] * d[i];
        b[i] = a[i] + d[i] * e[i];
        a[i] = b[i] + a[i+1] * d[i];
      }
    }
    """))

    # 2D: inner loop independent rows
    ws.append(_w("s231", """
    void kernel() {
      for (int i = 0; i < LEN2; i++)
        for (int j = 1; j < LEN2; j++)
          aa[j][i] = aa[j-1][i] + bb[j][i];
    }
    """, use_2d=True))

    ws.append(_w("s2233", """
    void kernel() {
      for (int i = 1; i < LEN2; i++) {
        for (int j = 1; j < LEN2; j++)
          aa[j][i] = aa[j-1][i] + cc[j][i];
        for (int j = 1; j < LEN2; j++)
          bb[i][j] = bb[i][j-1] + cc[i][j];
      }
    }
    """, use_2d=True))

    # reductions
    ws.append(_w("s311", """
    double kernel() {
      double sum = 0.0;
      for (int i = 0; i < LEN; i++) sum += a[i];
      return sum;
    }
    """))

    ws.append(_w("s312", """
    double kernel() {
      double prod = 1.0;
      for (int i = 0; i < LEN; i++) prod *= (1.0 + a[i] * 0.01);
      return prod;
    }
    """))

    ws.append(_w("s313", """
    double kernel() {
      double dot = 0.0;
      for (int i = 0; i < LEN; i++) dot += a[i] * b[i];
      return dot;
    }
    """))

    ws.append(_w("s314", """
    double kernel() {
      double x = a[0];
      for (int i = 0; i < LEN; i++) x = max(x, a[i]);
      return x;
    }
    """))

    ws.append(_w("s316", """
    double kernel() {
      double x = a[0];
      for (int i = 0; i < LEN; i++) x = min(x, a[i]);
      return x;
    }
    """))

    # saxpy with a loop-invariant loaded coefficient
    ws.append(_w("s351", """
    void kernel() {
      double alpha = c[0];
      for (int i = 0; i < LEN; i++) a[i] += alpha * b[i];
    }
    """))

    # induction variable in the computation (int->double casts per lane)
    ws.append(_w("s452", """
    void kernel() {
      for (int i = 0; i < LEN; i++)
        a[i] = b[i] + c[i] * (double)(i + 1);
    }
    """))

    # reverse-order stream (decreasing loop: stays scalar everywhere)
    ws.append(_w("s1112", """
    void kernel() {
      for (int i = LEN - 1; i >= 0; i--)
        a[i] = b[i] + 1.0;
    }
    """))

    # triangular saxpy over the same array
    ws.append(_w("s115", """
    void kernel() {
      for (int j = 0; j < LEN2; j++)
        for (int i = j + 1; i < LEN2; i++)
          a[i] = a[i] - aa[j][i] * a[j];
    }
    """, use_2d=True))

    # 2D diagonal recurrence: unvectorizable inner conflict
    ws.append(_w("s119", """
    void kernel() {
      for (int i = 1; i < LEN2; i++)
        for (int j = 1; j < LEN2; j++)
          aa[i][j] = aa[i-1][j-1] + bb[i][j];
    }
    """, use_2d=True))

    # forward branch flow (both arms write different arrays)
    ws.append(_w("s161", """
    void kernel() {
      for (int i = 0; i < LEN - 1; i++) {
        if (b[i] < 0.0) {
          c[i+1] = a[i] + d[i] * d[i];
        } else {
          a[i] = c[i] + d[i] * e[i];
        }
      }
    }
    """))

    # scalar and array expansion combined
    ws.append(_w("s253", """
    void kernel() {
      for (int i = 0; i < LEN; i++) {
        if (a[i] > b[i]) {
          double s = a[i] - b[i] * d[i];
          c[i] += s;
          a[i] = s;
        }
      }
    }
    """))

    # loop with expensive math (unary op packs)
    ws.append(_w("s272", """
    void kernel(double t) {
      for (int i = 0; i < LEN; i++) {
        if (e[i] >= t) {
          a[i] += c[i] * d[i];
          b[i] += c[i] * c[i];
        }
      }
    }
    """, extra_args=[ScalarArg("t", 0.5)]))

    # three conditionally updated streams
    ws.append(_w("s274", """
    void kernel() {
      for (int i = 0; i < LEN; i++) {
        a[i] = c[i] + e[i] * d[i];
        if (a[i] > 0.0) {
          b[i] = a[i] + b[i];
        } else {
          a[i] = d[i] * e[i];
        }
      }
    }
    """))

    # if-to-else value selection (select idiom)
    ws.append(_w("s293", """
    void kernel() {
      for (int i = 0; i < LEN; i++)
        a[i] = a[0] > 0.0 ? b[i] : c[i];
    }
    """))

    # unary intrinsics per lane
    ws.append(_w("s351x", """
    void kernel() {
      for (int i = 0; i < LEN; i++)
        a[i] = sqrt(b[i] * b[i] + c[i] * c[i]);
    }
    """))

    return ws


def s258_parameter_variant() -> Workload:
    """The paper's second s258 experiment: arrays become pointer
    parameters, so speculating on ``a[i] > 0`` additionally requires
    hoisting the loads of ``a`` past the stores to ``b``/``e`` — a second
    level of versioning whose checks must be hoisted out of the loop."""
    src = f"""
    const int LEN = {LEN};
    void kernel(double *a, double *b, double *c, double *d, double *e) {{
      double s = 0.0;
      for (int i = 0; i < LEN; i++) {{
        if (a[i] > 0.0) {{ s = d[i] * d[i]; }}
        b[i] = s * c[i] + d[i];
        e[i] = (s + 1.0) * a[i];
      }}
    }}
    """
    return Workload(
        name="s258-params",
        source=src,
        args=[
            ArrayArg("a", LEN, _initf(1)),
            ArrayArg("b", LEN, _initf(2)),
            ArrayArg("c", LEN, _initf(3)),
            ArrayArg("d", LEN, _initf(4)),
            ArrayArg("e", LEN, _initf(5)),
        ],
        entry="kernel",
    )


def s258_biased(positive_fraction: float = 0.995) -> Workload:
    """s258 with ``a`` initialized so >99% of entries are positive (the
    paper's 2.0x speculation experiment)."""
    def init_a(i: int) -> float:
        return -1.0 if (i * 2654435761 % 1000) / 1000.0 > positive_fraction else 1.0 + i % 5

    base = [w for w in workloads() if w.name == "s258"][0]
    return replace(base, name="s258-biased",
                   globals_init={**base.globals_init, "a": init_a})


# loops the paper's Fig. 19 text says only versioning vectorizes
VERSIONING_ONLY = {"s281", "s113", "s131", "s121"}

__all__ = ["workloads", "s258_parameter_variant", "s258_biased",
           "VERSIONING_ONLY", "LEN", "LEN2"]
