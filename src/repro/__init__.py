"""Reproduction of "A Framework for Fine-Grained Program Versioning"
(Chen & Amarasinghe, MICRO 2024), built from scratch in Python.

Public surface:

* :mod:`repro.versioning` — the framework (plan inference + materialization)
* :mod:`repro.frontend`   — mini-C to predicated SSA
* :mod:`repro.vectorizer` — versioning-aware SLP (client 1)
* :mod:`repro.rle`        — versioned redundant load elimination (client 2)
* :mod:`repro.interp`     — the deterministic cycle-counting testbed
* :mod:`repro.pipeline` / :mod:`repro.perf` / :mod:`repro.workloads` —
  -O3-style pipelines, verified measurement, benchmark suites
"""

__version__ = "1.0.0"
