"""Recursive-descent parser for the mini-C front end.

Produces the AST of :mod:`repro.frontend.ast_nodes`.  Array dimensions
must be compile-time constants (integer literals or previously declared
``const int`` globals, combined with + - * /), which matches how PolyBench
and TSVC declare their arrays.
"""

from __future__ import annotations

from typing import Optional

from .ast_nodes import (
    AssignStmt,
    Binary,
    CallExpr,
    CastExpr,
    CType,
    DeclStmt,
    Expr,
    ExprStmt,
    ExternDecl,
    ForStmt,
    FuncDef,
    GlobalDecl,
    IfStmt,
    Index,
    NumLit,
    Param,
    Program,
    ReturnStmt,
    Stmt,
    Ternary,
    Unary,
    VarRef,
    WhileStmt,
)
from .lexer import Token, tokenize

_TYPE_KEYWORDS = {"double", "float", "int", "void"}


class ParseError(Exception):
    """Syntax error carrying the 1-based source position of the failure.

    ``line``/``col`` come from the lexer token at the point of failure
    (``None`` when no token position applies); the rendered message is
    prefixed with the position so callers need not format it themselves.
    """

    def __init__(self, msg: str, line: int | None = None,
                 col: int | None = None):
        self.line = line
        self.col = col
        if line is not None and col is not None:
            msg = f"line {line}, column {col}: {msg}"
        elif line is not None:
            msg = f"line {line}: {msg}"
        super().__init__(msg)

    @classmethod
    def at(cls, msg: str, tok: Token) -> "ParseError":
        return cls(msg, line=tok.line, col=tok.col)


class Parser:
    def __init__(self, source: str):
        self.tokens = tokenize(source)
        self.pos = 0
        self.const_ints: dict[str, int] = {}

    # -- token helpers -------------------------------------------------------

    def peek(self, ahead: int = 0) -> Token:
        return self.tokens[min(self.pos + ahead, len(self.tokens) - 1)]

    def next(self) -> Token:
        tok = self.tokens[self.pos]
        if tok.kind != "eof":
            self.pos += 1
        return tok

    def at(self, text: str) -> bool:
        return self.peek().text == text and self.peek().kind in ("symbol", "keyword")

    def accept(self, text: str) -> bool:
        if self.at(text):
            self.next()
            return True
        return False

    def expect(self, text: str) -> Token:
        tok = self.peek()
        if not self.accept(text):
            raise ParseError.at(f"expected {text!r}, found {tok.text!r}", tok)
        return tok

    def error(self, msg: str) -> ParseError:
        tok = self.peek()
        return ParseError.at(f"{msg} (found {tok.text!r})", tok)

    # -- program ---------------------------------------------------------------

    def parse_program(self) -> Program:
        prog = Program()
        while self.peek().kind != "eof":
            if self.at("extern"):
                prog.externs.append(self.parse_extern())
            elif self.at("const"):
                prog.globals.append(self.parse_const_int())
            else:
                # type ident — function if followed by '(' after declarator name
                save = self.pos
                self.parse_base_type()
                while self.accept("*") or self.accept("restrict"):
                    pass
                name_tok = self.next()
                is_func = self.at("(")
                self.pos = save
                if is_func:
                    prog.functions.append(self.parse_function())
                else:
                    prog.globals.append(self.parse_global_array())
        return prog

    def parse_extern(self) -> ExternDecl:
        line = self.peek().line
        self.expect("extern")
        ret = self.parse_base_type()
        name = self.expect_ident()
        self.expect("(")
        # parameter list of an extern is ignored (including 'void')
        depth = 1
        while depth:
            t = self.next()
            if t.kind == "eof":
                raise self.error("unterminated extern parameter list")
            if t.text == "(":
                depth += 1
            elif t.text == ")":
                depth -= 1
        pure = readonly = False
        while self.peek().kind == "ident" and self.peek().text in ("__pure", "__readonly"):
            attr = self.next().text
            pure |= attr == "__pure"
            readonly |= attr == "__readonly"
        self.expect(";")
        return ExternDecl(name, ret, pure=pure, readonly=readonly, line=line)

    def parse_const_int(self) -> GlobalDecl:
        line = self.peek().line
        self.expect("const")
        self.expect("int")
        name = self.expect_ident()
        self.expect("=")
        value = self.parse_const_expr()
        self.expect(";")
        self.const_ints[name] = value
        return GlobalDecl(name, CType("int"), const_value=value, line=line)

    def parse_global_array(self) -> GlobalDecl:
        line = self.peek().line
        base = self.parse_base_type()
        name = self.expect_ident()
        dims = []
        while self.accept("["):
            dims.append(self.parse_const_expr())
            self.expect("]")
        self.expect(";")
        if not dims:
            raise ParseError(
                f"global scalar {name!r} not supported; use a 1-element array",
                line=line,
            )
        return GlobalDecl(name, CType(base, dims=tuple(dims)), line=line)

    def parse_function(self) -> FuncDef:
        line = self.peek().line
        ret = self.parse_base_type()
        name = self.expect_ident()
        self.expect("(")
        params: list[Param] = []
        if not self.at(")"):
            if self.at("void") and self.peek(1).text == ")":
                self.next()
            else:
                while True:
                    params.append(self.parse_param())
                    if not self.accept(","):
                        break
        self.expect(")")
        body = self.parse_block()
        return FuncDef(name, ret, params, body, line=line)

    def parse_param(self) -> Param:
        base = self.parse_base_type()
        is_pointer = False
        restrict = False
        while True:
            if self.accept("*"):
                is_pointer = True
            elif self.accept("restrict"):
                restrict = True
            elif self.accept("const"):
                pass
            else:
                break
        name = self.expect_ident()
        dims = []
        while self.accept("["):
            if self.accept("restrict"):
                restrict = True
            if not self.at("]"):
                dims.append(self.parse_const_expr())
            self.expect("]")
        if dims:
            is_pointer = True
        return Param(name, CType(base, is_pointer=is_pointer, dims=tuple(dims), restrict=restrict))

    # -- small helpers --------------------------------------------------------------

    def parse_base_type(self) -> str:
        tok = self.next()
        if tok.text not in _TYPE_KEYWORDS:
            raise ParseError.at(f"expected a type, found {tok.text!r}", tok)
        return "double" if tok.text == "float" else tok.text

    def expect_ident(self) -> str:
        tok = self.next()
        if tok.kind != "ident":
            raise ParseError.at(f"expected identifier, found {tok.text!r}", tok)
        return tok.text

    def parse_const_expr(self) -> int:
        """Compile-time integer expression over literals and const ints."""
        return self._const_additive()

    def _const_additive(self) -> int:
        v = self._const_multiplicative()
        while self.peek().text in ("+", "-") and self.peek().kind == "symbol":
            op = self.next().text
            rhs = self._const_multiplicative()
            v = v + rhs if op == "+" else v - rhs
        return v

    def _const_multiplicative(self) -> int:
        v = self._const_primary()
        while self.peek().text in ("*", "/") and self.peek().kind == "symbol":
            op = self.next().text
            rhs = self._const_primary()
            v = v * rhs if op == "*" else v // rhs
        return v

    def _const_primary(self) -> int:
        tok = self.next()
        if tok.kind == "int":
            return int(tok.text)
        if tok.kind == "ident":
            if tok.text not in self.const_ints:
                raise ParseError.at(f"{tok.text!r} is not a const int", tok)
            return self.const_ints[tok.text]
        if tok.text == "(":
            v = self.parse_const_expr()
            self.expect(")")
            return v
        raise ParseError.at(
            f"expected constant expression, found {tok.text!r}", tok
        )

    # -- statements --------------------------------------------------------------------

    def parse_block(self) -> list[Stmt]:
        self.expect("{")
        stmts: list[Stmt] = []
        while not self.accept("}"):
            if self.peek().kind == "eof":
                raise self.error("unterminated block")
            stmts.append(self.parse_statement())
        return stmts

    def parse_statement(self) -> Stmt:
        tok = self.peek()
        if tok.text in _TYPE_KEYWORDS or tok.text == "const":
            return self.parse_decl_stmt()
        if self.at("if"):
            return self.parse_if()
        if self.at("for"):
            return self.parse_for()
        if self.at("while"):
            return self.parse_while()
        if self.at("return"):
            line = self.next().line
            value = None if self.at(";") else self.parse_expression()
            self.expect(";")
            return ReturnStmt(value, line=line)
        if self.at("{"):
            # anonymous block: flatten (we have no block scoping of decls)
            body = self.parse_block()
            if len(body) == 1:
                return body[0]
            # represent as if(1){...} -- simpler: wrap in IfStmt with const cond
            return IfStmt(NumLit(1, False), body, [], line=tok.line)
        stmt = self.parse_simple_statement()
        self.expect(";")
        return stmt

    def parse_decl_stmt(self) -> Stmt:
        line = self.peek().line
        self.accept("const")
        base = self.parse_base_type()
        name = self.expect_ident()
        if self.at("["):
            dims = []
            while self.accept("["):
                dims.append(self.parse_const_expr())
                self.expect("]")
            self.expect(";")
            return DeclStmt(name, CType(base, dims=tuple(dims)), None, line=line)
        init = None
        if self.accept("="):
            init = self.parse_expression()
        stmts: list[Stmt] = [DeclStmt(name, CType(base), init, line=line)]
        # support `int i = 0, j = 1;`
        while self.accept(","):
            nm = self.expect_ident()
            ini = self.parse_expression() if self.accept("=") else None
            stmts.append(DeclStmt(nm, CType(base), ini, line=line))
        self.expect(";")
        if len(stmts) == 1:
            return stmts[0]
        return IfStmt(NumLit(1, False), stmts, [], line=line)

    def parse_if(self) -> IfStmt:
        line = self.expect("if").line
        self.expect("(")
        cond = self.parse_expression()
        self.expect(")")
        then_body = self.parse_body_or_single()
        else_body: list[Stmt] = []
        if self.accept("else"):
            if self.at("if"):
                else_body = [self.parse_if()]
            else:
                else_body = self.parse_body_or_single()
        return IfStmt(cond, then_body, else_body, line=line)

    def parse_body_or_single(self) -> list[Stmt]:
        if self.at("{"):
            return self.parse_block()
        return [self.parse_statement()]

    def parse_for(self) -> ForStmt:
        line = self.expect("for").line
        self.expect("(")
        init: Optional[Stmt] = None
        if not self.at(";"):
            if self.peek().text in _TYPE_KEYWORDS:
                # inline declaration without trailing ';' handling
                base = self.parse_base_type()
                name = self.expect_ident()
                self.expect("=")
                init_expr = self.parse_expression()
                init = DeclStmt(name, CType(base), init_expr, line=line)
            else:
                init = self.parse_simple_statement()
        self.expect(";")
        cond = None if self.at(";") else self.parse_expression()
        self.expect(";")
        update = None if self.at(")") else self.parse_simple_statement()
        self.expect(")")
        body = self.parse_body_or_single()
        return ForStmt(init, cond, update, body, line=line)

    def parse_while(self) -> WhileStmt:
        line = self.expect("while").line
        self.expect("(")
        cond = self.parse_expression()
        self.expect(")")
        body = self.parse_body_or_single()
        return WhileStmt(cond, body, line=line)

    def parse_simple_statement(self) -> Stmt:
        """Assignment, increment, or expression statement (no ';')."""
        line = self.peek().line
        if self.peek().kind == "symbol" and self.peek().text in ("++", "--"):
            op = self.next().text
            target = self.parse_unary()
            one = NumLit(1, False, line=line)
            return AssignStmt(target, one, op="+" if op == "++" else "-", line=line)
        expr = self.parse_expression()
        tok = self.peek()
        if tok.text in ("=", "+=", "-=", "*=", "/=", "%="):
            self.next()
            value = self.parse_expression()
            op = None if tok.text == "=" else tok.text[0]
            if not isinstance(expr, (VarRef, Index)):
                raise ParseError("invalid assignment target", line=line)
            return AssignStmt(expr, value, op=op, line=line)
        if tok.text in ("++", "--"):
            self.next()
            if not isinstance(expr, (VarRef, Index)):
                raise ParseError("invalid increment target", line=line)
            one = NumLit(1, False, line=line)
            return AssignStmt(expr, one, op="+" if tok.text == "++" else "-", line=line)
        return ExprStmt(expr, line=line)

    # -- expressions -------------------------------------------------------------

    def parse_expression(self) -> Expr:
        return self.parse_ternary()

    def parse_ternary(self) -> Expr:
        cond = self.parse_logical_or()
        if self.accept("?"):
            then = self.parse_expression()
            self.expect(":")
            other = self.parse_ternary()
            return Ternary(cond, then, other, line=cond.line)
        return cond

    def parse_logical_or(self) -> Expr:
        lhs = self.parse_logical_and()
        while self.at("||"):
            line = self.next().line
            rhs = self.parse_logical_and()
            lhs = Binary("||", lhs, rhs, line=line)
        return lhs

    def parse_logical_and(self) -> Expr:
        lhs = self.parse_equality()
        while self.at("&&"):
            line = self.next().line
            rhs = self.parse_equality()
            lhs = Binary("&&", lhs, rhs, line=line)
        return lhs

    def parse_equality(self) -> Expr:
        lhs = self.parse_relational()
        while self.peek().text in ("==", "!="):
            op = self.next()
            rhs = self.parse_relational()
            lhs = Binary(op.text, lhs, rhs, line=op.line)
        return lhs

    def parse_relational(self) -> Expr:
        lhs = self.parse_additive()
        while self.peek().text in ("<", "<=", ">", ">="):
            op = self.next()
            rhs = self.parse_additive()
            lhs = Binary(op.text, lhs, rhs, line=op.line)
        return lhs

    def parse_additive(self) -> Expr:
        lhs = self.parse_multiplicative()
        while self.peek().text in ("+", "-") and self.peek().kind == "symbol":
            op = self.next()
            rhs = self.parse_multiplicative()
            lhs = Binary(op.text, lhs, rhs, line=op.line)
        return lhs

    def parse_multiplicative(self) -> Expr:
        lhs = self.parse_unary()
        while self.peek().text in ("*", "/", "%") and self.peek().kind == "symbol":
            op = self.next()
            rhs = self.parse_unary()
            lhs = Binary(op.text, lhs, rhs, line=op.line)
        return lhs

    def parse_unary(self) -> Expr:
        tok = self.peek()
        if tok.text in ("-", "!", "+") and tok.kind == "symbol":
            self.next()
            operand = self.parse_unary()
            if tok.text == "+":
                return operand
            return Unary(tok.text, operand, line=tok.line)
        # cast: '(' type ')' unary
        if tok.text == "(" and self.peek(1).text in _TYPE_KEYWORDS and self.peek(2).text == ")":
            self.next()
            ty = self.parse_base_type()
            self.expect(")")
            operand = self.parse_unary()
            return CastExpr("double" if ty in ("double", "float") else ty, operand, line=tok.line)
        return self.parse_postfix()

    def parse_postfix(self) -> Expr:
        expr = self.parse_primary()
        while True:
            if self.at("["):
                indices = []
                while self.accept("["):
                    indices.append(self.parse_expression())
                    self.expect("]")
                expr = Index(expr, indices, line=expr.line)
            elif self.at("(") and isinstance(expr, VarRef):
                self.next()
                args = []
                if not self.at(")"):
                    while True:
                        args.append(self.parse_expression())
                        if not self.accept(","):
                            break
                self.expect(")")
                expr = CallExpr(expr.name, args, line=expr.line)
            else:
                return expr

    def parse_primary(self) -> Expr:
        tok = self.next()
        if tok.kind == "int":
            return NumLit(int(tok.text), False, line=tok.line)
        if tok.kind == "float":
            return NumLit(float(tok.text), True, line=tok.line)
        if tok.kind == "ident":
            return VarRef(tok.text, line=tok.line)
        if tok.text == "(":
            e = self.parse_expression()
            self.expect(")")
            return e
        raise ParseError.at(
            f"unexpected token {tok.text!r} in expression", tok
        )


def parse(source: str) -> Program:
    return Parser(source).parse_program()


__all__ = ["parse", "Parser", "ParseError"]
