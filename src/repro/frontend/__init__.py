"""Mini-C front end: lexer, parser, and lowering to predicated SSA.

The subset covers what the paper's benchmarks need: scalar int/double
variables, constant-dimension arrays (globals, locals, and parameters),
``restrict``-qualified pointer parameters, ``for``/``while``/``if``,
ternaries, compound assignment, math builtins, and extern calls with
effect annotations (``__pure`` / ``__readonly``).
"""

from .ast_nodes import CType, Program
from .lexer import LexError, tokenize
from .lower import LoweringError, compile_c, lower_program
from .parser import ParseError, parse

__all__ = [
    "CType",
    "Program",
    "LexError",
    "tokenize",
    "LoweringError",
    "compile_c",
    "lower_program",
    "ParseError",
    "parse",
]
