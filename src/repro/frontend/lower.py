"""Lowering from the mini-C AST to predicated SSA.

Structured control flow maps directly onto the paper's IR (Fig. 3):

* ``if`` — the branch condition becomes a literal refining the current
  predicate; variables assigned in either arm are joined with a
  predicated phi.
* ``for``/``while`` — lowered in rotated form: the entry condition is
  evaluated before the loop and becomes part of the loop's predicate
  (do-while semantics inside); every scalar variable assigned in the body
  gets a mu at the header, an eta after the loop, and an entry-guarded phi
  joining the eta with the pre-loop value.
* scalar variables are pure SSA (no memory); arrays live in memory.

The produced IR is verifier-clean and directly executable by the
interpreter, and it is the form on which dependence analysis and the
versioning framework operate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.ir import (
    BOOL,
    FLOAT,
    INT,
    PTR,
    Argument,
    Effects,
    Function,
    IRBuilder,
    Module,
    Predicate,
    Value,
    const_bool,
    const_float,
    const_int,
    verify_function,
)
from repro.ir.instructions import Cmp
from repro.ir.loops import GlobalArray

from .ast_nodes import (
    AssignStmt,
    Binary,
    CallExpr,
    CastExpr,
    CType,
    DeclStmt,
    Expr,
    ExprStmt,
    ForStmt,
    FuncDef,
    IfStmt,
    Index,
    NumLit,
    Program,
    ReturnStmt,
    Stmt,
    Ternary,
    Unary,
    VarRef,
    WhileStmt,
)
from .parser import parse

_MATH_UNARY = {
    "sqrt": "sqrt",
    "fabs": "abs",
    "abs": "abs",
    "exp": "exp",
    "log": "log",
    "floor": "floor",
    "sin": "sin",
    "cos": "cos",
}
_MATH_BINARY = {"pow": "pow", "fmin": "min", "fmax": "max", "min": "min", "max": "max"}


class LoweringError(Exception):
    pass


@dataclass
class Binding:
    """A name in scope: an SSA value plus its C type."""

    value: Value
    ctype: CType


class FunctionLowerer:
    def __init__(self, module: Module, func: FuncDef, externs: dict, const_ints: dict):
        self.module = module
        self.func = func
        self.externs = externs
        self.const_ints = const_ints
        self.fn = Function(func.name)
        self.symtab: dict[str, Binding] = {}
        self.returned = False

    # -- entry -------------------------------------------------------------

    def lower(self) -> Function:
        for p in self.func.params:
            ir_type = PTR if p.ctype.is_array_like else (
                INT if p.ctype.base == "int" else FLOAT
            )
            arg = Argument(p.name, ir_type, restrict=p.ctype.restrict)
            self.fn.args.append(arg)
            self.symtab[p.name] = Binding(arg, p.ctype)
        self.builder = IRBuilder(self.fn)
        self.module.add_function(self.fn)
        self.lower_stmts(self.func.body)
        return self.fn

    # -- type plumbing ----------------------------------------------------------

    def kind_of(self, ctype: CType) -> str:
        if ctype.is_array_like:
            return "ptr"
        return ctype.base

    def to_bool(self, v: Value, kind: str) -> Value:
        if kind == "bool":
            return v
        zero = const_int(0) if kind == "int" else const_float(0.0)
        return self.builder.cmp("ne", v, zero)

    def to_double(self, v: Value, kind: str) -> Value:
        if kind == "double":
            return v
        from repro.ir.values import Constant

        if isinstance(v, Constant):
            return const_float(float(v.value))
        return self.builder.cast(v, FLOAT)

    def to_int(self, v: Value, kind: str) -> Value:
        if kind == "int":
            return v
        from repro.ir.values import Constant

        if isinstance(v, Constant):
            return const_int(int(v.value))
        if kind == "bool":
            return self.builder.cast(v, INT)
        return self.builder.cast(v, INT)

    def coerce(self, v: Value, kind: str, want: str) -> Value:
        if kind == want:
            return v
        if want == "double":
            return self.to_double(v, kind)
        if want == "int":
            return self.to_int(v, kind)
        if want == "bool":
            return self.to_bool(v, kind)
        raise LoweringError(f"cannot coerce {kind} to {want}")

    def unify(self, a: Value, ka: str, b: Value, kb: str) -> tuple[Value, Value, str]:
        """Usual arithmetic conversions (int + bool promote to the other)."""
        rank = {"bool": 0, "int": 1, "double": 2, "ptr": 3}
        if ka == kb:
            return a, b, ka
        want = ka if rank[ka] >= rank[kb] else kb
        if want == "ptr":
            raise LoweringError("pointer arithmetic outside indexing is unsupported")
        return self.coerce(a, ka, want), self.coerce(b, kb, want), want

    # -- statements ------------------------------------------------------------

    def lower_stmts(self, stmts: list[Stmt]) -> None:
        for s in stmts:
            self.lower_stmt(s)

    def lower_stmt(self, stmt: Stmt) -> None:
        if self.returned:
            raise LoweringError(
                f"{self.func.name}: statements after return (line {stmt.line})"
            )
        if isinstance(stmt, DeclStmt):
            self.lower_decl(stmt)
        elif isinstance(stmt, AssignStmt):
            self.lower_assign(stmt)
        elif isinstance(stmt, IfStmt):
            self.lower_if(stmt)
        elif isinstance(stmt, ForStmt):
            self.lower_for(stmt)
        elif isinstance(stmt, WhileStmt):
            self.lower_while(stmt)
        elif isinstance(stmt, ReturnStmt):
            self.lower_return(stmt)
        elif isinstance(stmt, ExprStmt):
            self.lower_expr(stmt.expr)
        else:  # pragma: no cover - defensive
            raise LoweringError(f"unsupported statement {type(stmt).__name__}")

    def lower_decl(self, stmt: DeclStmt) -> None:
        if stmt.ctype.dims:
            total = 1
            for d in stmt.ctype.dims:
                total *= d
            buf = self.builder.alloca(total, name=stmt.name)
            self.symtab[stmt.name] = Binding(buf, stmt.ctype)
            return
        want = stmt.ctype.base
        if stmt.init is not None:
            v, k = self.lower_expr(stmt.init)
            v = self.coerce(v, k, want)
        else:
            v = const_int(0) if want == "int" else const_float(0.0)
        self.symtab[stmt.name] = Binding(v, stmt.ctype)

    def lower_assign(self, stmt: AssignStmt) -> None:
        if isinstance(stmt.target, VarRef):
            name = stmt.target.name
            if name not in self.symtab:
                raise LoweringError(f"assignment to undeclared {name!r} (line {stmt.line})")
            binding = self.symtab[name]
            want = self.kind_of(binding.ctype)
            rhs, rk = self.lower_expr(stmt.value)
            if stmt.op is not None:
                cur = binding.value
                new, _ = self.lower_binop(stmt.op, cur, want, rhs, rk, stmt.line)
                rhs, rk = new, want
            self.symtab[name] = Binding(self.coerce(rhs, rk, want), binding.ctype)
            return
        if isinstance(stmt.target, Index):
            addr, elem_kind = self.lower_address(stmt.target)
            rhs, rk = self.lower_expr(stmt.value)
            if stmt.op is not None:
                cur = self.builder.load(addr, INT if elem_kind == "int" else FLOAT)
                new, nk = self.lower_binop(stmt.op, cur, elem_kind, rhs, rk, stmt.line)
                rhs, rk = new, nk
            self.builder.store(addr, self.coerce(rhs, rk, elem_kind))
            return
        raise LoweringError(f"invalid assignment target (line {stmt.line})")

    def lower_if(self, stmt: IfStmt) -> None:
        cond, ck = self.lower_expr(stmt.cond)
        cond = self.to_bool(cond, ck)
        if isinstance(cond, Cmp):
            cond.is_branch_source = True
        before = dict(self.symtab)
        with self.builder.under(cond):
            self.lower_stmts(stmt.then_body)
        then_tab = self.symtab
        self.symtab = dict(before)
        if stmt.else_body:
            with self.builder.under(cond, negated=True):
                self.lower_stmts(stmt.else_body)
        else_tab = self.symtab
        # join: phi for every pre-existing scalar that changed in either arm
        merged = dict(before)
        p_then = self.builder.predicate.and_value(cond)
        p_else = self.builder.predicate.and_value(cond, negated=True)
        for name, pre in before.items():
            tv = then_tab.get(name, pre)
            ev = else_tab.get(name, pre)
            if tv.value is pre.value and ev.value is pre.value:
                continue
            phi = self.builder.phi(
                [(tv.value, p_then), (ev.value, p_else)], name=name
            )
            merged[name] = Binding(phi, pre.ctype)
        self.symtab = merged

    # -- loops -------------------------------------------------------------------

    def lower_for(self, stmt: ForStmt) -> None:
        if stmt.init is not None:
            self.lower_stmt(stmt.init)
        cond_expr = stmt.cond if stmt.cond is not None else NumLit(1, False)
        body = list(stmt.body)
        update = [stmt.update] if stmt.update is not None else []
        self._lower_loop(cond_expr, body, update, line=stmt.line)

    def lower_while(self, stmt: WhileStmt) -> None:
        self._lower_loop(stmt.cond, list(stmt.body), [], line=stmt.line)

    def _lower_loop(self, cond_expr: Expr, body: list[Stmt], update: list[Stmt], line: int) -> None:
        assigned = _assigned_vars(body + update)
        carried = [n for n in assigned if n in self.symtab and not self.symtab[n].ctype.is_array_like]
        # entry condition with pre-loop values
        entry, ek = self.lower_expr(cond_expr)
        entry = self.to_bool(entry, ek)
        if isinstance(entry, Cmp):
            entry.is_branch_source = True
        outer_pred = self.builder.predicate
        before = dict(self.symtab)

        with self.builder.under(entry):
            loop = self.builder.make_loop(f"loop@{line}")
        mus = {}
        for name in carried:
            mu = self.builder.mu(loop, before[name].value, name=name)
            mus[name] = mu
            self.symtab[name] = Binding(mu, before[name].ctype)
        with self.builder.at(loop, Predicate.true()):
            self.lower_stmts(body)
            for u in update:
                self.lower_stmt(u)
            cont, ck = self.lower_expr(cond_expr)
            cont = self.to_bool(cont, ck)
            if isinstance(cont, Cmp):
                cont.is_branch_source = True
            body_tab = dict(self.symtab)
        for name in carried:
            mus[name].set_rec(body_tab[name].value)
        loop.set_cont(cont)
        # restore and join liveouts: eta under entry, phi with pre value
        self.symtab = dict(before)
        p_entry = outer_pred.and_value(entry)
        p_skip = outer_pred.and_value(entry, negated=True)
        for name in carried:
            final_inner = body_tab[name].value
            if final_inner is mus[name]:
                # never actually reassigned (e.g. assigned only in dead code)
                continue
            with self.builder.at(self.builder.scope, p_entry):
                eta = self.builder.eta(loop, final_inner, name=f"{name}.out")
            phi = self.builder.phi(
                [(eta, p_entry), (before[name].value, p_skip)], name=name
            )
            self.symtab[name] = Binding(phi, before[name].ctype)

    def lower_return(self, stmt: ReturnStmt) -> None:
        if not self.builder.predicate.is_true():
            raise LoweringError(
                f"{self.func.name}: conditional return unsupported (line {stmt.line})"
            )
        if stmt.value is not None:
            v, k = self.lower_expr(stmt.value)
            want = "double" if self.func.ret == "double" else self.func.ret
            if want in ("double", "int"):
                v = self.coerce(v, k, want)
            self.fn.set_return(v)
        self.returned = True

    # -- expressions ------------------------------------------------------------

    def lower_expr(self, expr: Expr) -> tuple[Value, str]:
        if isinstance(expr, NumLit):
            if expr.is_float:
                return const_float(float(expr.value)), "double"
            return const_int(int(expr.value)), "int"
        if isinstance(expr, VarRef):
            return self.lower_varref(expr)
        if isinstance(expr, Index):
            addr, elem_kind = self.lower_address(expr)
            ld = self.builder.load(addr, INT if elem_kind == "int" else FLOAT)
            return ld, elem_kind
        if isinstance(expr, Unary):
            v, k = self.lower_expr(expr.operand)
            if expr.op == "-":
                from repro.ir.values import Constant

                if isinstance(v, Constant):
                    return (
                        (const_int(-v.value), "int")
                        if k == "int"
                        else (const_float(-v.value), "double")
                    )
                return self.builder.unop("neg", v), k
            if expr.op == "!":
                return self.builder.unop("not", self.to_bool(v, k)), "bool"
            raise LoweringError(f"unsupported unary {expr.op}")
        if isinstance(expr, Binary):
            return self.lower_binary(expr)
        if isinstance(expr, Ternary):
            c, ck = self.lower_expr(expr.cond)
            c = self.to_bool(c, ck)
            t, tk = self.lower_expr(expr.then)
            e, ek2 = self.lower_expr(expr.otherwise)
            t, e, k = self.unify(t, tk, e, ek2)
            return self.builder.select(c, t, e), k
        if isinstance(expr, CallExpr):
            return self.lower_call(expr)
        if isinstance(expr, CastExpr):
            v, k = self.lower_expr(expr.operand)
            want = "double" if expr.to == "double" else "int"
            return self.coerce(v, k, want), want
        raise LoweringError(f"unsupported expression {type(expr).__name__}")

    def lower_varref(self, expr: VarRef) -> tuple[Value, str]:
        if expr.name in self.symtab:
            b = self.symtab[expr.name]
            return b.value, self.kind_of(b.ctype)
        if expr.name in self.module.globals:
            g = self.module.globals[expr.name]
            return g, "ptr"
        if expr.name in self.const_ints:
            return const_int(self.const_ints[expr.name]), "int"
        raise LoweringError(f"undeclared identifier {expr.name!r} (line {expr.line})")

    def _array_ctype(self, base: Expr) -> tuple[Value, CType]:
        if isinstance(base, VarRef):
            if base.name in self.symtab:
                b = self.symtab[base.name]
                if not b.ctype.is_array_like:
                    raise LoweringError(f"{base.name!r} is not indexable (line {base.line})")
                return b.value, b.ctype
            if base.name in self.module.globals:
                ctype = self.module.meta["global_ctypes"][base.name]
                return self.module.globals[base.name], ctype
        raise LoweringError(f"cannot index expression (line {base.line})")

    def lower_address(self, expr: Index) -> tuple[Value, str]:
        """Compute the slot address of an indexed element."""
        base_val, ctype = self._array_ctype(expr.base)
        ndims = max(len(ctype.dims), 1)
        if len(expr.indices) != ndims:
            raise LoweringError(
                f"expected {ndims} indices, got {len(expr.indices)} (line {expr.line})"
            )
        strides = ctype.strides()
        flat: Optional[Value] = None
        for idx_expr, stride in zip(expr.indices, strides):
            iv, ik = self.lower_expr(idx_expr)
            iv = self.to_int(iv, ik)
            from repro.ir.values import Constant

            if stride != 1:
                if isinstance(iv, Constant):
                    term: Value = const_int(iv.value * stride)
                else:
                    term = self.builder.mul(iv, const_int(stride))
            else:
                term = iv
            if flat is None:
                flat = term
            else:
                from repro.ir.values import Constant as C

                if isinstance(flat, C) and isinstance(term, C):
                    flat = const_int(flat.value + term.value)
                else:
                    flat = self.builder.add(flat, term)
        assert flat is not None
        addr = self.builder.ptradd(base_val, flat)
        return addr, ctype.base

    def lower_binop(self, op: str, a: Value, ka: str, b: Value, kb: str, line: int) -> tuple[Value, str]:
        if op in ("+", "-", "*", "/", "%"):
            a, b, k = self.unify(a, ka, b, kb)
            if k == "bool":
                a, b, k = self.to_int(a, "bool"), self.to_int(b, "bool"), "int"
            if op == "%" and k != "int":
                raise LoweringError(f"%% requires ints (line {line})")
            name = {"+": "add", "-": "sub", "*": "mul", "/": "div", "%": "rem"}[op]
            return self.builder.binop(name, a, b), k
        raise LoweringError(f"unsupported operator {op} (line {line})")

    def lower_binary(self, expr: Binary) -> tuple[Value, str]:
        op = expr.op
        if op in ("&&", "||"):
            a, ka = self.lower_expr(expr.lhs)
            b, kb = self.lower_expr(expr.rhs)
            a, b = self.to_bool(a, ka), self.to_bool(b, kb)
            return self.builder.binop("and" if op == "&&" else "or", a, b), "bool"
        a, ka = self.lower_expr(expr.lhs)
        b, kb = self.lower_expr(expr.rhs)
        if op in ("+", "-", "*", "/", "%"):
            return self.lower_binop(op, a, ka, b, kb, expr.line)
        if op in ("<", "<=", ">", ">=", "==", "!="):
            a, b, _ = self.unify(a, ka, b, kb)
            rel = {"<": "lt", "<=": "le", ">": "gt", ">=": "ge", "==": "eq", "!=": "ne"}[op]
            return self.builder.cmp(rel, a, b), "bool"
        raise LoweringError(f"unsupported operator {op} (line {expr.line})")

    def lower_call(self, expr: CallExpr) -> tuple[Value, str]:
        args = [self.lower_expr(a) for a in expr.args]
        if expr.callee in _MATH_UNARY and len(args) == 1:
            v = self.to_double(*args[0])
            return self.builder.unop(_MATH_UNARY[expr.callee], v), "double"
        if expr.callee in _MATH_BINARY and len(args) == 2:
            a = self.to_double(*args[0])
            b = self.to_double(*args[1])
            return self.builder.binop(_MATH_BINARY[expr.callee], a, b), "double"
        ext = self.externs.get(expr.callee)
        if ext is None:
            raise LoweringError(f"call to undeclared function {expr.callee!r} (line {expr.line})")
        if ext.pure:
            effects = Effects.pure()
        elif ext.readonly:
            effects = Effects.readonly()
        else:
            effects = Effects()
        from repro.ir.types import VOID

        ret = {"double": FLOAT, "int": INT, "void": VOID}[ext.ret]
        call = self.builder.call(expr.callee, [v for v, _ in args], ret_type=ret, effects=effects, name=expr.callee)
        kind = "double" if ext.ret == "double" else ("int" if ext.ret == "int" else "void")
        return call, kind if kind != "void" else "int"


def _assigned_vars(stmts: list[Stmt]) -> list[str]:
    """Names of scalar variables assigned anywhere in ``stmts``,
    excluding variables declared inside (they are body-local)."""
    assigned: list[str] = []
    declared: set[str] = set()

    def visit(ss: list[Stmt]) -> None:
        for s in ss:
            if isinstance(s, DeclStmt):
                declared.add(s.name)
            elif isinstance(s, AssignStmt):
                if isinstance(s.target, VarRef) and s.target.name not in declared:
                    if s.target.name not in assigned:
                        assigned.append(s.target.name)
            elif isinstance(s, IfStmt):
                visit(s.then_body)
                visit(s.else_body)
            elif isinstance(s, ForStmt):
                if s.init is not None:
                    visit([s.init])
                visit(s.body)
                if s.update is not None:
                    visit([s.update])
            elif isinstance(s, WhileStmt):
                visit(s.body)

    visit(stmts)
    return assigned


def lower_program(program: Program, name: str = "module") -> Module:
    module = Module(name)
    const_ints: dict[str, int] = {}
    module.meta["global_ctypes"] = {}
    module.meta["param_ctypes"] = {}
    for g in program.globals:
        if g.const_value is not None:
            const_ints[g.name] = g.const_value
        else:
            total = 1
            for d in g.ctype.dims:
                total *= d
            module.add_global(g.name, total)
            module.meta["global_ctypes"][g.name] = g.ctype
    externs = {e.name: e for e in program.externs}
    for f in program.functions:
        lowerer = FunctionLowerer(module, f, externs, const_ints)
        fn = lowerer.lower()
        module.meta["param_ctypes"][f.name] = [p.ctype for p in f.params]
        verify_function(fn)
    module.meta["const_ints"] = const_ints
    return module


def compile_c(source: str, name: str = "module") -> Module:
    """Parse and lower mini-C source to a verified predicated-SSA module."""
    return lower_program(parse(source), name)


__all__ = ["compile_c", "lower_program", "LoweringError", "FunctionLowerer"]
