"""Lexer for the mini-C front end.

The language is the C subset the paper's benchmarks are written in:
declarations, arrays, ``for``/``while``/``if``, arithmetic, comparisons,
calls, and the ``restrict`` qualifier.  Comments (// and /* */) are
skipped.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

KEYWORDS = {
    "double",
    "float",
    "int",
    "void",
    "bool",
    "if",
    "else",
    "for",
    "while",
    "return",
    "const",
    "restrict",
    "extern",
}

SYMBOLS = [
    # longest first
    "<<=", ">>=",
    "+=", "-=", "*=", "/=", "%=",
    "==", "!=", "<=", ">=", "&&", "||", "++", "--", "<<", ">>",
    "+", "-", "*", "/", "%", "<", ">", "=", "!", "&", "|", "^",
    "(", ")", "[", "]", "{", "}", ",", ";", "?", ":",
]


@dataclass(frozen=True)
class Token:
    kind: str  # 'ident', 'int', 'float', 'keyword', 'symbol', 'eof'
    text: str
    line: int
    col: int

    def __str__(self) -> str:
        return f"{self.text!r}@{self.line}:{self.col}"


class LexError(Exception):
    pass


# one compiled master pattern; per-character scanning in Python is the
# single hottest part of a cold build's front end.  Alternative order
# matters: comments before symbols (so ``//`` is not two divisions),
# numbers before symbols (so ``.5`` is not a stray dot).  The number and
# exponent shapes mirror the hand lexer exactly: digits with one
# optional dot, an exponent only when ``e`` is followed by a digit or a
# sign, and trailing f/F/l/L suffixes consumed but kept out of the text.
_TOKEN_RE = re.compile(
    r"[ \t\r\n]+"
    r"|//[^\n]*"
    r"|(?P<bc>/\*.*?\*/)"
    r"|(?P<num>(?:\d+(?:\.\d*)?|\.\d+)(?:[eE](?=[0-9+-])[+-]?\d*)?)"
    r"(?:[fFlL]*)"
    r"|(?P<ident>[A-Za-z_][A-Za-z0-9_]*)"
    r"|(?P<sym>" + "|".join(re.escape(s) for s in SYMBOLS) + r")",
    re.DOTALL,
)


def tokenize(source: str) -> list[Token]:
    tokens: list[Token] = []
    i = 0
    n = len(source)
    line = 1
    line_start = 0  # index just past the most recent newline
    match = _TOKEN_RE.match
    while i < n:
        m = match(source, i)
        if m is None:
            if source.startswith("/*", i):
                raise LexError(f"unterminated comment at line {line}")
            raise LexError(
                f"unexpected character {source[i]!r} at line {line}, "
                f"col {i - line_start + 1}"
            )
        kind = m.lastgroup
        if kind == "num":
            text = m.group("num")
            tok_kind = (
                "float" if "." in text or "e" in text or "E" in text else "int"
            )
            tokens.append(Token(tok_kind, text, line, i - line_start + 1))
        elif kind == "ident":
            text = m.group()
            tok_kind = "keyword" if text in KEYWORDS else "ident"
            tokens.append(Token(tok_kind, text, line, i - line_start + 1))
        elif kind == "sym":
            if source.startswith("/*", i):
                # the comment alternative failed, so the opener has no
                # closing */ — don't let it lex as a division
                raise LexError(f"unterminated comment at line {line}")
            tokens.append(Token("symbol", m.group(), line, i - line_start + 1))
        elif kind == "bc" or kind is None:
            # whitespace / comments: only their newlines matter
            pass
        end = m.end()
        nl = source.count("\n", i, end)
        if nl:
            line += nl
            line_start = source.rindex("\n", i, end) + 1
        i = end
    tokens.append(Token("eof", "", line, i - line_start + 1))
    return tokens


__all__ = ["Token", "tokenize", "LexError", "KEYWORDS"]
