"""Lexer for the mini-C front end.

The language is the C subset the paper's benchmarks are written in:
declarations, arrays, ``for``/``while``/``if``, arithmetic, comparisons,
calls, and the ``restrict`` qualifier.  Comments (// and /* */) are
skipped.
"""

from __future__ import annotations

from dataclasses import dataclass

KEYWORDS = {
    "double",
    "float",
    "int",
    "void",
    "bool",
    "if",
    "else",
    "for",
    "while",
    "return",
    "const",
    "restrict",
    "extern",
}

SYMBOLS = [
    # longest first
    "<<=", ">>=",
    "+=", "-=", "*=", "/=", "%=",
    "==", "!=", "<=", ">=", "&&", "||", "++", "--", "<<", ">>",
    "+", "-", "*", "/", "%", "<", ">", "=", "!", "&", "|", "^",
    "(", ")", "[", "]", "{", "}", ",", ";", "?", ":",
]


@dataclass(frozen=True)
class Token:
    kind: str  # 'ident', 'int', 'float', 'keyword', 'symbol', 'eof'
    text: str
    line: int
    col: int

    def __str__(self) -> str:
        return f"{self.text!r}@{self.line}:{self.col}"


class LexError(Exception):
    pass


def tokenize(source: str) -> list[Token]:
    tokens: list[Token] = []
    i = 0
    line, col = 1, 1
    n = len(source)

    def advance(k: int) -> None:
        nonlocal i, line, col
        for _ in range(k):
            if i < n and source[i] == "\n":
                line += 1
                col = 1
            else:
                col += 1
            i += 1

    while i < n:
        ch = source[i]
        if ch in " \t\r\n":
            advance(1)
            continue
        if source.startswith("//", i):
            while i < n and source[i] != "\n":
                advance(1)
            continue
        if source.startswith("/*", i):
            end = source.find("*/", i + 2)
            if end < 0:
                raise LexError(f"unterminated comment at line {line}")
            advance(end + 2 - i)
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and source[i + 1].isdigit()):
            start = i
            start_line, start_col = line, col
            seen_dot = False
            seen_exp = False
            while i < n:
                c = source[i]
                if c.isdigit():
                    advance(1)
                elif c == "." and not seen_dot and not seen_exp:
                    seen_dot = True
                    advance(1)
                elif c in "eE" and not seen_exp and i + 1 < n and (
                    source[i + 1].isdigit() or source[i + 1] in "+-"
                ):
                    seen_exp = True
                    advance(1)
                    if i < n and source[i] in "+-":
                        advance(1)
                else:
                    break
            text = source[start:i]
            # trailing f/F/l/L suffixes
            while i < n and source[i] in "fFlL":
                advance(1)
            kind = "float" if (seen_dot or seen_exp) else "int"
            tokens.append(Token(kind, text, start_line, start_col))
            continue
        if ch.isalpha() or ch == "_":
            start = i
            start_line, start_col = line, col
            while i < n and (source[i].isalnum() or source[i] == "_"):
                advance(1)
            text = source[start:i]
            kind = "keyword" if text in KEYWORDS else "ident"
            tokens.append(Token(kind, text, start_line, start_col))
            continue
        if ch == "(" and source.startswith("(float)", i):
            # common benchmark cast spelling; handled as symbols
            pass
        matched = False
        for sym in SYMBOLS:
            if source.startswith(sym, i):
                tokens.append(Token("symbol", sym, line, col))
                advance(len(sym))
                matched = True
                break
        if not matched:
            raise LexError(f"unexpected character {ch!r} at line {line}, col {col}")
    tokens.append(Token("eof", "", line, col))
    return tokens


__all__ = ["Token", "tokenize", "LexError", "KEYWORDS"]
