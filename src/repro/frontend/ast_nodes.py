"""AST for the mini-C front end."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional


# -- types ---------------------------------------------------------------


@dataclass(frozen=True)
class CType:
    """A mini-C type: 'int', 'double', 'void', pointers, and arrays.

    ``dims`` holds compile-time-constant array dimensions; a pointer with
    dims behaves like a C array parameter (``double A[N][N]``): the dims
    only matter for address arithmetic.
    """

    base: str  # 'int' | 'double' | 'void'
    is_pointer: bool = False
    dims: tuple[int, ...] = ()
    restrict: bool = False

    @property
    def is_array_like(self) -> bool:
        return self.is_pointer or bool(self.dims)

    def strides(self) -> tuple[int, ...]:
        """Row-major element strides, one per dimension."""
        if not self.dims:
            return (1,)
        strides = []
        acc = 1
        for d in reversed(self.dims):
            strides.append(acc)
            acc *= d
        return tuple(reversed(strides))


# -- expressions -------------------------------------------------------------


class Expr:
    line: int = 0


@dataclass
class NumLit(Expr):
    value: float | int
    is_float: bool
    line: int = 0


@dataclass
class VarRef(Expr):
    name: str
    line: int = 0


@dataclass
class Index(Expr):
    """base[e1][e2]... — base must be array-like."""

    base: Expr
    indices: list[Expr]
    line: int = 0


@dataclass
class Unary(Expr):
    op: str  # '-', '!', '+'
    operand: Expr
    line: int = 0


@dataclass
class Binary(Expr):
    op: str  # + - * / % < <= > >= == != && ||
    lhs: Expr
    rhs: Expr
    line: int = 0


@dataclass
class Ternary(Expr):
    cond: Expr
    then: Expr
    otherwise: Expr
    line: int = 0


@dataclass
class CallExpr(Expr):
    callee: str
    args: list[Expr]
    line: int = 0


@dataclass
class CastExpr(Expr):
    to: str  # 'int' | 'double'
    operand: Expr
    line: int = 0


# -- statements ----------------------------------------------------------------


class Stmt:
    line: int = 0


@dataclass
class DeclStmt(Stmt):
    name: str
    ctype: CType
    init: Optional[Expr]
    line: int = 0


@dataclass
class AssignStmt(Stmt):
    """target = value, or compound (op is '+', '-', ... for += etc.)."""

    target: Expr  # VarRef or Index
    value: Expr
    op: Optional[str] = None
    line: int = 0


@dataclass
class IfStmt(Stmt):
    cond: Expr
    then_body: list[Stmt]
    else_body: list[Stmt] = field(default_factory=list)
    line: int = 0


@dataclass
class ForStmt(Stmt):
    init: Optional[Stmt]
    cond: Optional[Expr]
    update: Optional[Stmt]
    body: list[Stmt] = field(default_factory=list)
    line: int = 0


@dataclass
class WhileStmt(Stmt):
    cond: Expr
    body: list[Stmt] = field(default_factory=list)
    line: int = 0


@dataclass
class ReturnStmt(Stmt):
    value: Optional[Expr]
    line: int = 0


@dataclass
class ExprStmt(Stmt):
    expr: Expr
    line: int = 0


# -- top level -------------------------------------------------------------------


@dataclass
class Param:
    name: str
    ctype: CType


@dataclass
class FuncDef:
    name: str
    ret: str  # 'void' | 'double' | 'int'
    params: list[Param]
    body: list[Stmt]
    line: int = 0


@dataclass
class GlobalDecl:
    name: str
    ctype: CType
    const_value: Optional[int] = None  # for `const int N = ...;`
    line: int = 0


@dataclass
class ExternDecl:
    name: str
    ret: str
    pure: bool = False
    readonly: bool = False
    line: int = 0


@dataclass
class Program:
    globals: list[GlobalDecl] = field(default_factory=list)
    externs: list[ExternDecl] = field(default_factory=list)
    functions: list[FuncDef] = field(default_factory=list)
