"""Closure-compiled execution backend for predicated SSA.

The reference :class:`~repro.interp.interpreter.Interpreter` is a tree
walker: every dynamic item pays isinstance dispatch, dict-based operand
lookup, cost-model dispatch, and predicate re-evaluation.  This module is
a template-JIT-style alternative in the spirit of single-pass back ends
like TPDE: **one pass** over a :class:`~repro.ir.loops.Function` turns
each item into a *specialized Python closure* whose behavior is baked in
at compile time —

* operand slots are resolved to indices into a flat register file (a
  plain Python list), so there is no dict lookup and no ``isinstance``
  dispatch at run time;
* execution predicates are pre-flattened into short-circuit literal
  lists (constants folded away, statically-false items dropped, the
  common single-literal guard fused straight into the item's closure);
* the opcode's behavior and its :class:`CostModel` cycle cost are baked
  into the closure as default-argument locals; hot scalar opcodes are
  instantiated from per-shape *step templates* (source text compiled
  once per shape and reused across all functions), so an ``add`` of two
  slots executes as a single bytecode expression with no inner calls;
* loops become native Python ``while`` loops with simultaneous mu-update
  buffers, exactly mirroring the reference back-edge semantics.

The backend charges **bit-identical cycles and Counters** through the
same cost model: cycles are accumulated in the same order with the same
per-item float costs, and dynamic counters are derived from per-item
execution counts whose static deltas match the interpreter's updates.
``tests/test_exec_compiled.py`` proves the identity differentially over
every workload suite at every pipeline level; the reference interpreter
stays the semantics of record.

Predicated SSA keeps every definition's guard explicit (the psi/predicated
SSA literature's precondition for direct execution), which is what lets
the translator decompose each item's guard into a closed check ahead of
time instead of re-deriving control flow dynamically.

Compilation is cached per ``Function`` (weakly, keyed by cost model and
step limit), so ``build()`` output can be executed many times across
restrict/vl/rle configurations while paying the translation cost once.
"""

from __future__ import annotations

import math
import operator
from dataclasses import dataclass
from typing import Callable, Optional, Sequence
from weakref import WeakKeyDictionary

from repro import telemetry
from repro.ir.instructions import (
    Alloca,
    BinOp,
    Broadcast,
    BuildVector,
    Call,
    Cast,
    Cmp,
    Eta,
    ExtractLane,
    Instruction,
    Load,
    Mu,
    Phi,
    PtrAdd,
    Reduce,
    Select,
    Shuffle,
    Store,
    UnOp,
    VecBin,
    VecCmp,
    VecLoad,
    VecSelect,
    VecStore,
    VecUn,
)
from repro.diag.context import get_context
from repro.ir.loops import Function, GlobalArray, Loop, Module, ScopeMixin
from repro.ir.predicates import Predicate
from repro.ir.values import Constant, Undef, Value

from .costmodel import DEFAULT_COST_MODEL, CostModel
from .interpreter import (
    Counters,
    ExecutionResult,
    InterpreterError,
    StepLimitExceeded,
    _default_externals,
    _int_div,
    _int_rem,
)
from .memory import Memory, MemoryError_, NULL_PAGE

# Sentinel for "this SSA value's defining item has not executed" — the
# compiled equivalent of a missing env binding (missing-is-false).
_MISSING = object()

# Reserved register-file slots: 0 holds the executor (externals for Call),
# 1 holds the Memory so loads/stores inline its slot array access.
_CTX = 0
_MEM = 1
_FIRST_SLOT = 2


# ---------------------------------------------------------------------------
# Opcode implementations (identical semantics to the reference interpreter)
# ---------------------------------------------------------------------------


def _div(a, b):
    if isinstance(a, int) and isinstance(b, int):
        return _int_div(a, b)
    return a / b


def _rem(a, b):
    if isinstance(a, int) and isinstance(b, int):
        return _int_rem(a, b)
    return math.fmod(a, b)


_BIN_IMPL: dict[str, Callable] = {
    "add": operator.add,
    "sub": operator.sub,
    "mul": operator.mul,
    "div": _div,
    "rem": _rem,
    "min": min,
    "max": max,
    "and": lambda a, b: int(a) & int(b),
    "or": lambda a, b: int(a) | int(b),
    "xor": lambda a, b: int(a) ^ int(b),
    "shl": lambda a, b: int(a) << int(b),
    "shr": lambda a, b: int(a) >> int(b),
    "pow": operator.pow,
}

_UN_IMPL: dict[str, Callable] = {
    "neg": operator.neg,
    "not": lambda a: not bool(a),
    "sqrt": math.sqrt,
    "abs": abs,
    "exp": math.exp,
    "log": math.log,
    "floor": math.floor,
    "sin": math.sin,
    "cos": math.cos,
}

_CMP_IMPL: dict[str, Callable] = {
    "eq": operator.eq,
    "ne": operator.ne,
    "lt": operator.lt,
    "le": operator.le,
    "gt": operator.gt,
    "ge": operator.ge,
}

# Opcodes whose semantics are a plain Python infix expression; everything
# else goes through the matching impl function.
_BIN_SYM = {"add": "+", "sub": "-", "mul": "*", "pow": "**"}
_CMP_SYM = {"eq": "==", "ne": "!=", "lt": "<", "le": "<=", "gt": ">", "ge": ">="}


# ---------------------------------------------------------------------------
# Step templates
# ---------------------------------------------------------------------------
#
# A step takes the register file R, the per-item execution-count list C,
# and the running cycle count; it returns the updated cycle count.  Hot
# scalar steps are instantiated from source templates: the template for a
# given *shape* (guard kind x operand kinds x opcode expression) is
# exec-compiled once into a factory, and each instruction calls the
# factory with its concrete slots/constants, which land in the closure as
# default-argument locals — the fastest name access CPython offers.

Step = Callable[[list, list, float], float]

_TEMPLATE_CACHE: dict[tuple, Callable] = {}


def _instantiate(key: tuple, lines: Sequence[str], used: Sequence[str],
                 values: dict) -> Step:
    mk = _TEMPLATE_CACHE.get(key)
    if mk is None:
        params = ", ".join(used)
        defaults = ", ".join(f"{p}={p}" for p in used)
        sep = ", " if defaults else ""
        src = (
            f"def _make({params}):\n"
            f"    def step(R, C, cy{sep}{defaults}):\n"
            + "".join(f"        {ln}\n" for ln in lines)
            + "    return step\n"
        )
        ns: dict = {}
        exec(src, ns)  # noqa: S102 - generated from fixed templates
        mk = _TEMPLATE_CACHE[key] = ns["_make"]
    return mk(*[values[p] for p in used])


def _guarded(chk: Callable, inner: Step) -> Step:
    """Wrap a step so it only runs (and only charges) when its predicate
    holds — used for the cold emitters; hot templates fuse the guard."""

    def step(R, C, cy, chk=chk, inner=inner):
        if chk(R):
            return inner(R, C, cy)
        return cy

    return step


# ---------------------------------------------------------------------------
# Compiled program
# ---------------------------------------------------------------------------


@dataclass
class CompiledProgram:
    """The closure chain for one function plus its static metadata."""

    fn_name: str
    steps: tuple
    n_slots: int
    n_items: int
    arg_slots: tuple
    global_pairs: tuple  # (GlobalArray, slot)
    counter_table: tuple  # per item: (opcode|None, ins, ld, st, br, be, ck, vec, call)
    read_ret: Callable[[list], object]
    # id(IR item) per counter_table row (loops have opcode None); valid for
    # the function's lifetime, which the weak compile cache ties us to —
    # lets the region profiler map execution counts back onto the IR
    item_ids: tuple = ()

    def make_counters(self, counts: list) -> Counters:
        """Aggregate per-item execution counts into interpreter Counters."""
        c = Counters()
        by = c.by_opcode
        for n, (op, ins, ld, st, br, be, ck, vec, call) in zip(
            counts, self.counter_table
        ):
            if not n:
                continue
            if ins:
                c.instructions += ins * n
            if ld:
                c.loads += ld * n
            if st:
                c.stores += st * n
            if br:
                c.branches += br * n
            if be:
                c.backedges += be * n
            if ck:
                c.checks += ck * n
            if vec:
                c.vector_ops += vec * n
            if call:
                c.calls += call * n
            if op is not None:
                by[op] = by.get(op, 0) + n
        return c


# ---------------------------------------------------------------------------
# The one-pass translator
# ---------------------------------------------------------------------------


class _FunctionCompiler:
    def __init__(self, fn: Function, cost_model: CostModel, max_steps: int):
        self.fn = fn
        self.cost = cost_model
        self.max_steps = max_steps
        self._slots: dict[Value, int] = {}
        self._n_slots = _FIRST_SLOT
        self._globals: dict[GlobalArray, int] = {}
        self._table: list[tuple] = []
        self._ids: list[int] = []

    # -- slot allocation -------------------------------------------------

    def slot(self, v: Value) -> int:
        s = self._slots.get(v)
        if s is None:
            s = self._slots[v] = self._n_slots
            self._n_slots += 1
            if isinstance(v, GlobalArray):
                self._globals[v] = s
        return s

    def operand(self, v: Value) -> tuple[str, object]:
        """Resolve an operand at compile time: ('c', value) | ('s', slot)."""
        if isinstance(v, Constant):
            return ("c", v.value)
        if isinstance(v, Undef):
            return ("c", 0)
        return ("s", self.slot(v))

    def getter(self, v: Value) -> Callable[[list], object]:
        kind, payload = self.operand(v)
        if kind == "c":
            return lambda R, k=payload: k
        return lambda R, s=payload: R[s]

    # -- predicate flattening --------------------------------------------

    def pred(self, p: Predicate):
        """Flatten a predicate at compile time.

        Returns ``True`` (always runs), ``False`` (never runs),
        ``("lit", slot, negated)`` for the common single-literal guard,
        or ``("chk", callable)`` for multi-literal conjunctions.
        """
        if p.is_true():
            return True
        terms: list[tuple[int, bool]] = []
        for lit in p.literals:
            v = lit.value
            if isinstance(v, Constant):
                if bool(v.value) == lit.negated:
                    return False
                continue  # statically-true literal
            if isinstance(v, Undef):
                # the reference lookup yields 0 -> literal holds iff negated
                if not lit.negated:
                    return False
                continue
            terms.append((self.slot(v), lit.negated))
        if not terms:
            return True
        if len(terms) == 1:
            return ("lit", terms[0][0], terms[0][1])
        tterms = tuple(terms)

        def chk(R, terms=tterms, MISSING=_MISSING):
            for s, neg in terms:
                v = R[s]
                if v is MISSING or bool(v) == neg:
                    return False
            return True

        return ("chk", chk)

    def _as_chk(self, p) -> Callable:
        """A callable R -> bool for a flattened (non-constant) predicate."""
        if isinstance(p, tuple) and p[0] == "lit":
            _, s, neg = p
            if neg:

                def chk(R, s=s, MISSING=_MISSING):
                    v = R[s]
                    return v is not MISSING and not v

            else:

                def chk(R, s=s, MISSING=_MISSING):
                    v = R[s]
                    return v is not MISSING and bool(v)

            return chk
        return p[1]

    # -- counter bookkeeping ---------------------------------------------

    def _item_index(self, entry: tuple) -> int:
        self._table.append(entry)
        return len(self._table) - 1

    def _inst_index(self, inst: Instruction) -> int:
        ld = st = br = ck = vec = call = 0
        if isinstance(inst, (Load, VecLoad)):
            ld = 1
        if isinstance(inst, (Store, VecStore)):
            st = 1
        if isinstance(inst, Cmp):
            if inst.is_branch_source:
                br = 1
            if inst.is_versioning_check:
                ck = 1
        if isinstance(
            inst,
            (VecLoad, VecStore, VecBin, VecUn, VecCmp, VecSelect, BuildVector,
             Shuffle, Broadcast, Reduce),
        ):
            vec = 1
        if isinstance(inst, Call):
            call = 1
        self._ids.append(id(inst))
        return self._item_index((inst.opcode, 1, ld, st, br, 0, ck, vec, call))

    def _loop_index(self, loop: Loop) -> int:
        # one back edge and one branch per iteration, no instruction count
        self._ids.append(id(loop))
        return self._item_index((None, 0, 0, 0, 1, 1, 0, 0, 0))

    # -- top level -------------------------------------------------------

    def compile(self) -> CompiledProgram:
        fn = self.fn
        arg_slots = tuple(self.slot(a) for a in fn.args)
        steps = self._compile_scope(fn)
        read_ret = self._compile_return(fn.return_value)
        return CompiledProgram(
            fn_name=fn.name,
            steps=steps,
            n_slots=self._n_slots,
            n_items=len(self._table),
            arg_slots=arg_slots,
            global_pairs=tuple(self._globals.items()),
            counter_table=tuple(self._table),
            read_ret=read_ret,
            item_ids=tuple(self._ids),
        )

    def _compile_return(self, rv: Optional[Value]):
        if rv is None:
            return lambda R: None
        if isinstance(rv, Constant):
            return lambda R, k=rv.value: k
        if isinstance(rv, Undef):
            return lambda R: 0
        s = self.slot(rv)
        label = rv.display_name()

        def read_ret(R, s=s, label=label, MISSING=_MISSING):
            v = R[s]
            if v is MISSING:
                raise InterpreterError(
                    f"value {label} has no binding (did it execute?)"
                )
            return v

        return read_ret

    def _compile_scope(self, scope: ScopeMixin) -> tuple:
        steps = []
        for item in scope.items:
            step = (
                self._compile_loop(item)
                if isinstance(item, Loop)
                else self._compile_instruction(item)
            )
            if step is not None:
                steps.append(step)
        return tuple(steps)

    # -- loops -----------------------------------------------------------

    def _compile_loop(self, loop: Loop) -> Optional[Step]:
        p = self.pred(loop.predicate)
        if p is False:
            return None
        li = self._loop_index(loop)
        # mu slots and init getters are resolved before the body so the
        # body's operand references land on the same slots
        mu_slots = tuple(self.slot(mu) for mu in loop.mus)
        init_getters = tuple(self.getter(mu.init) for mu in loop.mus)
        body = self._compile_scope(loop)
        rec_ops = tuple(
            self.operand(mu.rec) if mu.rec is not None else None
            for mu in loop.mus
        )
        rec_getters = tuple(self._rec_getter(mu) for mu in loop.mus)
        assert loop.cont is not None, f"loop {loop.name} has no continuation"
        cont_kind, cont_payload = self.operand(loop.cont)
        becost = self.cost.loop_backedge
        limit = self.max_steps
        lname = loop.name

        if (
            cont_kind == "s"
            and len(mu_slots) == 1
            and rec_ops[0] is not None
            and rec_ops[0][0] == "s"
        ):
            # hot path: single induction recurrence held in a slot,
            # dynamic continuation — a plain register-to-register move
            # on the back edge
            ms, gi = mu_slots[0], init_getters[0]
            rs = rec_ops[0][1]
            cs = cont_payload

            def step(R, C, cy, body=body, ms=ms, gi=gi, rs=rs, cs=cs, li=li,
                     becost=becost, limit=limit, MISSING=_MISSING,
                     lname=lname):
                R[ms] = gi(R)
                while True:
                    for s in body:
                        cy = s(R, C, cy)
                    n = C[li] + 1
                    C[li] = n
                    if n > limit:
                        raise StepLimitExceeded(
                            f"loop {lname} exceeded {limit} iterations"
                        )
                    cy = cy + becost
                    v = R[cs]
                    if v is MISSING or not v:
                        break
                    R[ms] = R[rs]
                return cy

        else:

            def step(R, C, cy, body=body, mu_slots=mu_slots,
                     init_getters=init_getters, rec_getters=rec_getters,
                     cont_kind=cont_kind, cont_payload=cont_payload, li=li,
                     becost=becost, limit=limit, MISSING=_MISSING,
                     lname=lname):
                for s, g in zip(mu_slots, init_getters):
                    R[s] = g(R)
                while True:
                    for s in body:
                        cy = s(R, C, cy)
                    n = C[li] + 1
                    C[li] = n
                    if n > limit:
                        raise StepLimitExceeded(
                            f"loop {lname} exceeded {limit} iterations"
                        )
                    cy = cy + becost
                    v = R[cont_payload] if cont_kind == "s" else cont_payload
                    if v is MISSING or not v:
                        break
                    # simultaneous mu update: read every recurrence before
                    # writing any header slot (the interpreter's two-phase
                    # next-value buffer)
                    nexts = [g(R) for g in rec_getters]
                    for s, v2 in zip(mu_slots, nexts):
                        R[s] = v2
                return cy

        if p is not True:
            step = _guarded(self._as_chk(p), step)
        return step

    def _rec_getter(self, mu: Mu):
        if mu.rec is None:
            name = mu.display_name()

            def missing_rec(R, name=name):
                raise InterpreterError(f"mu {name} has no recurrence operand")

            return missing_rec
        return self.getter(mu.rec)

    # -- instructions ----------------------------------------------------

    def _compile_instruction(self, inst: Instruction) -> Optional[Step]:
        p = self.pred(inst.predicate)
        if p is False:
            return None
        i = self._inst_index(inst)
        cost = self.cost.instruction_cost(inst)
        step = self._emit_templated(inst, i, cost, p)
        if step is not None:
            return step
        step = self._emit_cold(inst, i, cost)
        if p is not True:
            step = _guarded(self._as_chk(p), step)
        return step

    # -- templated hot emitters ------------------------------------------

    def _template_prologue(self, i: int, p) -> tuple[list, list, dict, tuple]:
        """Guard + count lines shared by every templated step."""
        used = []
        values: dict = {}
        lines: list[str] = []
        if p is True:
            gkey: tuple = ("t",)
        elif isinstance(p, tuple) and p[0] == "lit":
            _, ps, neg = p
            used += ["ps", "M"]
            values.update(ps=ps, M=_MISSING)
            lines.append("v = R[ps]")
            lines.append(f"if v is M or {'v' if neg else 'not v'}:")
            lines.append("    return cy")
            gkey = ("g", neg)
        else:
            used.append("chk")
            values["chk"] = self._as_chk(p)
            lines.append("if not chk(R):")
            lines.append("    return cy")
            gkey = ("c",)
        used.append("i")
        values["i"] = i
        lines.append("C[i] += 1")
        return lines, used, values, gkey

    @staticmethod
    def _epilogue(cost: float) -> tuple[str, tuple]:
        if cost == 0.0:
            # x + 0.0 == x for the non-negative accumulator, so skip the add
            return "return cy", ("z",)
        return "return cy + cost", ("k",)

    def _operand_expr(self, v: Value, pname: str, used: list, values: dict,
                      wrap: str = "") -> tuple[str, str]:
        """Expression text for an operand; returns (expr, shape-key-part)."""
        kind, payload = self.operand(v)
        used.append(pname)
        if kind == "c":
            values[pname] = int(payload) if wrap == "int" else payload
            return pname, "c"
        values[pname] = payload
        expr = f"R[{pname}]"
        if wrap == "int":
            expr = f"int({expr})"
        return expr, "s"

    def _emit_templated(self, inst, i, cost, p) -> Optional[Step]:
        lines, used, values, gkey = self._template_prologue(i, p)
        ret, ckey = self._epilogue(cost)
        if ckey == ("k",):
            used.append("cost")
            values["cost"] = cost

        if isinstance(inst, (BinOp, Cmp)):
            sym = _BIN_SYM.get(inst.op) if isinstance(inst, BinOp) \
                else _CMP_SYM.get(inst.rel)
            ea, ka = self._operand_expr(inst.operands[0], "a", used, values)
            eb, kb = self._operand_expr(inst.operands[1], "b", used, values)
            used.append("d")
            values["d"] = self.slot(inst)
            if sym is not None:
                lines.append(f"R[d] = {ea} {sym} {eb}")
                okey = ("bin", sym, ka, kb)
            else:
                f = _BIN_IMPL[inst.op] if isinstance(inst, BinOp) \
                    else _CMP_IMPL[inst.rel]
                used.append("f")
                values["f"] = f
                lines.append(f"R[d] = f({ea}, {eb})")
                okey = ("binf", ka, kb)
        elif isinstance(inst, UnOp):
            ea, ka = self._operand_expr(inst.operands[0], "a", used, values)
            used.append("d")
            values["d"] = self.slot(inst)
            if inst.op == "neg":
                lines.append(f"R[d] = -{ea}")
                okey = ("neg", ka)
            elif inst.op == "not":
                lines.append(f"R[d] = not {ea}")
                okey = ("not", ka)
            else:
                used.append("f")
                values["f"] = _UN_IMPL[inst.op]
                lines.append(f"R[d] = f({ea})")
                okey = ("unf", ka)
        elif isinstance(inst, Select):
            ec, kc = self._operand_expr(inst.cond, "a", used, values)
            et, kt = self._operand_expr(inst.true_value, "b", used, values)
            ef, kf = self._operand_expr(inst.false_value, "c", used, values)
            used.append("d")
            values["d"] = self.slot(inst)
            lines.append(f"R[d] = {et} if {ec} else {ef}")
            okey = ("sel", kc, kt, kf)
        elif isinstance(inst, Cast):
            ty = inst.type
            conv = int if ty.is_int() else float if ty.is_float() else \
                bool if ty.is_bool() else None
            kind, payload = self.operand(inst.operands[0])
            used.append("d")
            values["d"] = self.slot(inst)
            if kind == "c":
                used.append("a")
                values["a"] = conv(payload) if conv is not None else payload
                lines.append("R[d] = a")
                okey = ("cast", "c")
            elif conv is None:
                used.append("a")
                values["a"] = payload
                lines.append("R[d] = R[a]")
                okey = ("cast", "id")
            else:
                used += ["a", "f"]
                values.update(a=payload, f=conv)
                lines.append("R[d] = f(R[a])")
                okey = ("cast", "s")
        elif isinstance(inst, PtrAdd):
            ea, ka = self._operand_expr(inst.base, "a", used, values, wrap="int")
            eb, kb = self._operand_expr(inst.index, "b", used, values, wrap="int")
            used.append("d")
            values["d"] = self.slot(inst)
            lines.append(f"R[d] = {ea} + {eb}")
            okey = ("ptradd", ka, kb)
        elif isinstance(inst, Load):
            ep, kp = self._operand_expr(inst.pointer, "a", used, values,
                                        wrap="int")
            used += ["d", "E"]
            values.update(d=self.slot(inst), E=MemoryError_)
            lines.append("m = R[1]")
            lines.append(f"p = {ep}")
            lines.append(f"if p < {NULL_PAGE} or p >= m._next:")
            lines.append("    raise E(f'access to unallocated address {p}')")
            lines.append("R[d] = m._arr.item(p) if not m._exo else m.load(p)")
            okey = ("load", kp)
        elif isinstance(inst, Store):
            ep, kp = self._operand_expr(inst.pointer, "a", used, values,
                                        wrap="int")
            ev, kv = self._operand_expr(inst.value, "b", used, values)
            used.append("E")
            values["E"] = MemoryError_
            lines.append("m = R[1]")
            lines.append(f"p = {ep}")
            lines.append(f"v = {ev}")
            lines.append(f"if p < {NULL_PAGE} or p >= m._next:")
            lines.append("    raise E(f'access to unallocated address {p}')")
            lines.append("if type(v) is float and not m._exo:")
            lines.append("    m._arr[p] = v")
            lines.append("else:")
            lines.append("    m.store(p, v)")
            okey = ("store", kp, kv)
        elif isinstance(inst, Eta):
            ea, ka = self._operand_expr(inst.inner, "a", used, values)
            used.append("d")
            values["d"] = self.slot(inst)
            lines.append(f"R[d] = {ea}")
            okey = ("eta", ka)
        else:
            return None

        lines.append(ret)
        return _instantiate((gkey, okey, ckey), lines, used, values)

    # -- cold emitters (vector ops, calls, joins) ------------------------

    def _emit_cold(self, inst: Instruction, i: int, cost: float) -> Step:
        if isinstance(inst, (VecBin, VecCmp)):
            f = _BIN_IMPL[inst.op] if isinstance(inst, VecBin) \
                else _CMP_IMPL[inst.rel]
            d = self.slot(inst)
            ga = self.getter(inst.operands[0])
            gb = self.getter(inst.operands[1])

            def step(R, C, cy, i=i, d=d, ga=ga, gb=gb, f=f, cost=cost):
                C[i] += 1
                R[d] = [f(x, y) for x, y in zip(ga(R), gb(R))]
                return cy + cost

            return step
        if isinstance(inst, VecUn):
            d = self.slot(inst)
            ga = self.getter(inst.operands[0])
            f = _UN_IMPL[inst.op]

            def step(R, C, cy, i=i, d=d, ga=ga, f=f, cost=cost):
                C[i] += 1
                R[d] = [f(x) for x in ga(R)]
                return cy + cost

            return step
        if isinstance(inst, Alloca):
            d = self.slot(inst)

            def step(R, C, cy, i=i, d=d, n=inst.size, name=inst.name,
                     cost=cost):
                C[i] += 1
                R[d] = R[1].alloc(n, name)
                return cy + cost

            return step
        if isinstance(inst, Call):
            d = self.slot(inst)
            gs = tuple(self.getter(o) for o in inst.operands)

            def step(R, C, cy, i=i, d=d, name=inst.callee, gs=gs, cost=cost):
                C[i] += 1
                ex = R[0]
                fn = ex.externals.get(name)
                if fn is None:
                    raise InterpreterError(f"no external function {name!r}")
                R[d] = fn(ex, ex.memory, [g(R) for g in gs])
                return cy + cost

            return step
        if isinstance(inst, Phi):
            return self._emit_phi(inst, i, cost)
        if isinstance(inst, Mu):
            raise InterpreterError("mu compiled outside loop header")
        if isinstance(inst, VecLoad):
            d = self.slot(inst)
            ga = self.getter(inst.pointer)

            def step(R, C, cy, i=i, d=d, ga=ga, n=inst.access_slots,
                     cost=cost):
                C[i] += 1
                R[d] = R[1].load_block(ga(R), n)
                return cy + cost

            return step
        if isinstance(inst, VecStore):
            gp = self.getter(inst.pointer)
            gv = self.getter(inst.value)

            def step(R, C, cy, i=i, gp=gp, gv=gv, cost=cost):
                C[i] += 1
                R[1].store_block(gp(R), gv(R))
                return cy + cost

            return step
        if isinstance(inst, VecSelect):
            d = self.slot(inst)
            gm = self.getter(inst.operands[0])
            gt = self.getter(inst.operands[1])
            gf = self.getter(inst.operands[2])

            def step(R, C, cy, i=i, d=d, gm=gm, gt=gt, gf=gf, cost=cost):
                C[i] += 1
                R[d] = [
                    tv if bool(m) else fv
                    for m, tv, fv in zip(gm(R), gt(R), gf(R))
                ]
                return cy + cost

            return step
        if isinstance(inst, BuildVector):
            d = self.slot(inst)
            gs = tuple(self.getter(o) for o in inst.operands)

            def step(R, C, cy, i=i, d=d, gs=gs, cost=cost):
                C[i] += 1
                R[d] = [g(R) for g in gs]
                return cy + cost

            return step
        if isinstance(inst, ExtractLane):
            d = self.slot(inst)
            ga = self.getter(inst.operands[0])

            def step(R, C, cy, i=i, d=d, ga=ga, lane=inst.lane, cost=cost):
                C[i] += 1
                R[d] = ga(R)[lane]
                return cy + cost

            return step
        if isinstance(inst, Shuffle):
            d = self.slot(inst)
            ga = self.getter(inst.operands[0])
            mask = tuple(inst.mask)
            if len(inst.operands) > 1:
                gb = self.getter(inst.operands[1])

                def step(R, C, cy, i=i, d=d, ga=ga, gb=gb, mask=mask,
                         cost=cost):
                    C[i] += 1
                    pool = list(ga(R)) + list(gb(R))
                    R[d] = [pool[j] for j in mask]
                    return cy + cost

            else:

                def step(R, C, cy, i=i, d=d, ga=ga, mask=mask, cost=cost):
                    C[i] += 1
                    a = ga(R)
                    R[d] = [a[j] for j in mask]
                    return cy + cost

            return step
        if isinstance(inst, Broadcast):
            d = self.slot(inst)
            ga = self.getter(inst.operands[0])

            def step(R, C, cy, i=i, d=d, ga=ga, lanes=inst.type.lanes,
                     cost=cost):
                C[i] += 1
                R[d] = [ga(R)] * lanes
                return cy + cost

            return step
        if isinstance(inst, Reduce):
            d = self.slot(inst)
            ga = self.getter(inst.operands[0])
            f = _BIN_IMPL[inst.op]

            def step(R, C, cy, i=i, d=d, ga=ga, f=f, cost=cost):
                C[i] += 1
                vec = ga(R)
                acc = vec[0]
                for x in vec[1:]:
                    acc = f(acc, x)
                R[d] = acc
                return cy + cost

            return step
        raise InterpreterError(f"cannot compile {type(inst).__name__}")

    def _emit_phi(self, inst: Phi, i, cost) -> Step:
        d = self.slot(inst)
        cases = []
        for v, p in inst.incomings():
            cp = self.pred(p)
            if cp is False:
                continue
            g = self.getter(v)
            if cp is True:
                cases.append((None, g))
                break  # later incomings are unreachable
            cases.append((self._as_chk(cp), g))
        tcases = tuple(cases)

        def step(R, C, cy, i=i, d=d, cases=tcases, cost=cost):
            C[i] += 1
            for chk, g in cases:
                if chk is None or chk(R):
                    R[d] = g(R)
                    break
            else:
                R[d] = 0
            return cy + cost

        return step


# ---------------------------------------------------------------------------
# Compile cache and executor
# ---------------------------------------------------------------------------

_COMPILE_CACHE: "WeakKeyDictionary[Function, dict]" = WeakKeyDictionary()


def compile_function(
    fn: Function,
    cost_model: Optional[CostModel] = None,
    max_steps: int = 200_000_000,
) -> CompiledProgram:
    """Translate ``fn`` into a :class:`CompiledProgram` (cached).

    The cache is weak on the function and keyed by cost model identity
    and step limit, so repeated executions of a built module — across
    executors, memories, and argument sets — pay translation once.
    Compiled programs assume the function is not mutated afterwards; a
    pipeline that edits a function must do so before first execution.
    """
    cm = cost_model if cost_model is not None else DEFAULT_COST_MODEL
    per_fn = _COMPILE_CACHE.get(fn)
    if per_fn is None:
        per_fn = _COMPILE_CACHE[fn] = {}
    key = (id(cm), max_steps)
    prog = per_fn.get(key)
    if prog is None:
        with telemetry.span("translate", detail=fn.name, backend="compiled"):
            prog = per_fn[key] = _FunctionCompiler(fn, cm, max_steps).compile()
    return prog


def clear_compile_cache() -> None:
    _COMPILE_CACHE.clear()


class CompiledExecutor:
    """Drop-in replacement for :class:`Interpreter` running compiled code.

    Same constructor contract (module, memory, cost model, externals,
    step limit), same :meth:`run` result type, and — by construction and
    by differential test — the same cycles, counters, memory effects,
    checksums, and return values.  The step limit is enforced per loop
    (a loop raising after ``max_steps`` iterations) rather than per
    instruction, which bounds runaway programs with the same knob.
    """

    def __init__(
        self,
        module: Optional[Module] = None,
        memory: Optional[Memory] = None,
        cost_model: Optional[CostModel] = None,
        externals: Optional[dict] = None,
        max_steps: int = 200_000_000,
    ):
        self.module = module
        self.memory = memory if memory is not None else Memory()
        self.cost_model = cost_model if cost_model is not None else DEFAULT_COST_MODEL
        self.externals = _default_externals()
        if externals:
            self.externals.update(externals)
        self.max_steps = max_steps
        self.global_bases: dict[GlobalArray, int] = {}
        if module is not None:
            for g in module.globals.values():
                self.global_bases[g] = self.memory.alloc(g.size, g.name)

    def global_base(self, name: str) -> int:
        assert self.module is not None
        return self.global_bases[self.module.globals[name]]

    def run(self, fn: Function | str, args: Sequence = ()) -> ExecutionResult:
        if isinstance(fn, str):
            assert self.module is not None
            fn = self.module.functions[fn]
        prog = compile_function(fn, self.cost_model, self.max_steps)
        if len(args) != len(prog.arg_slots):
            raise InterpreterError(
                f"{fn.name} expects {len(prog.arg_slots)} args, got {len(args)}"
            )
        mem = self.memory
        R = [_MISSING] * prog.n_slots
        R[_CTX] = self
        R[_MEM] = mem
        for s, v in zip(prog.arg_slots, args):
            R[s] = v
        for g, s in prog.global_pairs:
            base = self.global_bases.get(g)
            if base is None:
                raise InterpreterError(f"global {g.name} not allocated")
            R[s] = base
        C = [0] * prog.n_items
        cy = 0.0
        for step in prog.steps:
            cy = step(R, C, cy)
        profile = None
        if get_context().enabled:
            # derive the region profile from the per-item counts the
            # backend maintains anyway — execution itself is untouched
            from repro.diag.profile import build_profile

            counts: dict[int, int] = {}
            iters: dict[int, int] = {}
            for item_id, entry, n in zip(prog.item_ids, prog.counter_table, C):
                if entry[0] is None:  # loop row: back-edge count
                    iters[item_id] = n
                else:
                    counts[item_id] = n
            profile = build_profile(fn, counts, iters, self.cost_model)
        return ExecutionResult(
            prog.read_ret(R), cy, prog.make_counters(C), mem, profile
        )


# Executor registry for harness-level backend selection.
BACKENDS: dict[str, type] = {}


def _register_backends() -> None:
    from .interpreter import Interpreter

    BACKENDS["reference"] = Interpreter
    BACKENDS["compiled"] = CompiledExecutor


_register_backends()


__all__ = [
    "BACKENDS",
    "CompiledExecutor",
    "CompiledProgram",
    "clear_compile_cache",
    "compile_function",
]
