"""IR execution backends, flat memory model, and the cycle cost model.

This package is the reproduction's "hardware".  Programs execute on one
of three backends sharing a cost model, so benchmark speedups are
deterministic cycle-count ratios rather than wall-clock medians:

* ``Interpreter`` — the reference tree-walking interpreter; the
  semantics of record.
* ``CompiledExecutor`` — a template-JIT-style backend that translates
  each function once into specialized Python closures; several times
  faster in wall-clock while charging bit-identical cycles and counters
  (see :mod:`repro.interp.compile`).
* ``FusedExecutor`` — the superblock-fused tier: one exec-generated
  straight-line Python function per IR function, with constant-folded
  cycle/counter accounting; the measurement default (see
  :mod:`repro.interp.fuse`).
* ``ArrayExecutor`` — the batch-vectorized tier: loops proven
  iteration-independent execute as whole-array NumPy expressions behind
  runtime version-dispatch guards, with analytic (still bit-identical)
  accounting, or none at all under ``REPRO_ACCOUNTING=off`` (see
  :mod:`repro.interp.array`).

``BACKENDS`` maps harness-facing names (``"reference"``, ``"compiled"``,
``"fused"``, ``"array"``) to executor classes with identical
constructor/run contracts.
"""

from .array import (
    ArrayExecutor,
    ArrayProgram,
    array_function,
    clear_array_cache,
)
from .compile import (
    BACKENDS,
    CompiledExecutor,
    CompiledProgram,
    clear_compile_cache,
    compile_function,
)
from .costmodel import DEFAULT_COST_MODEL, CostModel
from .fuse import (
    FusedExecutor,
    FusedProgram,
    clear_fuse_cache,
    fuse_function,
)
from .interpreter import (
    Counters,
    ExecutionResult,
    Interpreter,
    InterpreterError,
    StepLimitExceeded,
)
from .memory import Memory, MemoryError_

__all__ = [
    "ArrayExecutor",
    "ArrayProgram",
    "BACKENDS",
    "CompiledExecutor",
    "CompiledProgram",
    "CostModel",
    "DEFAULT_COST_MODEL",
    "Counters",
    "ExecutionResult",
    "FusedExecutor",
    "FusedProgram",
    "Interpreter",
    "InterpreterError",
    "StepLimitExceeded",
    "Memory",
    "MemoryError_",
    "array_function",
    "clear_array_cache",
    "clear_compile_cache",
    "clear_fuse_cache",
    "compile_function",
    "fuse_function",
]
