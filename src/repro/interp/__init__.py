"""IR interpreter, flat memory model, and the cycle cost model.

This package is the reproduction's "hardware": programs execute on a
deterministic interpreter whose cost model makes vector lanes parallel, so
benchmark speedups are cycle-count ratios rather than wall-clock medians.
"""

from .costmodel import DEFAULT_COST_MODEL, CostModel
from .interpreter import (
    Counters,
    ExecutionResult,
    Interpreter,
    InterpreterError,
    StepLimitExceeded,
)
from .memory import Memory, MemoryError_

__all__ = [
    "CostModel",
    "DEFAULT_COST_MODEL",
    "Counters",
    "ExecutionResult",
    "Interpreter",
    "InterpreterError",
    "StepLimitExceeded",
    "Memory",
    "MemoryError_",
]
