"""Batch-vectorized "array" execution tier: whole-loop NumPy execution.

The fourth execution tier.  Where the fused backend still runs one
Python bytecode iteration per loop iteration, this tier executes an
entire loop invocation as a handful of whole-array NumPy expressions
over the float64 memory slab: affine loads/stores become (strided)
slices, predicated superblocks become boolean masks merged with
``np.where``, and recognized reductions become ``ufunc.accumulate``
scans.  It is a *runtime multi-versioning* backend in exactly the
paper's sense: the legality conditions the dependence analysis cannot
discharge statically (span disjointness of the phase-split, operand
types, trip-count bounds) are materialized as cheap scalar guards at
loop entry, and each invocation dispatches between the batched fast
path and the superblock-fused scalar fallback — both arms share one
counter set, so diagnostics cannot tell them apart.

**Legality.**  A loop is batch-eligible when

* its continuation is a counted-loop form (constant step, invariant
  bound — :func:`repro.analysis.affine.counted_loop_form`),
* every memory access has a constant-stride add-recurrence address and
  :func:`repro.analysis.depgraph.phase_split_hazards` proves the
  all-loads-then-all-stores phase split legal, returning the residual
  span-disjointness checks to test at runtime,
* every mu is an integer induction or a recognized float reduction
  (``add``/``mul``/``min``/``max``), and
* every step-0 (iteration-invariant address) store is a *memory-cell
  reduction* — ``x[c] = x[c] op e`` folding over the cell's own prior
  value — whose cell the guard pins disjoint from every other access.

In speed mode the generator additionally prunes loop locals that are
dead after the loop (no user outside the loop body): their vectors,
final-value extractions, and guard conjuncts are never emitted.  Exact
mode keeps them, since risk conjuncts of dead operations still gate
data-dependent costs.

The fast path computes every per-iteration value as a vector, assigns
each SSA local its *final* value by indexing the vector at the last
(active) iteration, and only then commits stores — so scalar-observable
state (locals, memory, error behavior) is identical to the fallback.

**Accounting.**  Two modes:

* *exact* (default): cycles and counters are charged analytically —
  ``C[k] += tn`` for the loop counter, ``C[g] += mask.sum()`` per
  superblock, ``cy += n * static_cost`` — in integer arithmetic, so
  they are bit-identical to the reference interpreter (the fold is only
  applied under the same all-integral-cost condition the fused tier
  uses; fractional cost models disable batching rather than risk float
  re-association).
* *speed* (``REPRO_ACCOUNTING=off``): the accounting layer is folded
  away entirely so measurement no longer bounds throughput; results
  carry zero cycles/counters but identical memory effects and return
  values.

Bit-exactness of the values themselves is by construction: only NumPy
operations that are IEEE-identical to their scalar Python counterparts
are emitted (``+ - * /``, ``np.sqrt``, ``np.fmod``, ``np.where``-based
min/max which preserves Python's tie/NaN behavior), and the cases where
NumPy diverges (NaN or signed-zero ties inside ``minimum.accumulate``,
division by zero, negative sqrt, out-of-range int↔float conversion) are
demoted to runtime *risk* guards that fall back to the scalar arm.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass
from typing import Optional
from weakref import WeakKeyDictionary

from repro import telemetry
from repro.analysis.affine import (
    Affine,
    _defined_in,
    addrec_of,
    counted_loop_form,
    difference,
)
from repro.analysis.depgraph import BatchAccess, phase_split_hazards
from repro.ir.instructions import (
    BinOp,
    Broadcast,
    BuildVector,
    Cast,
    Cmp,
    ExtractLane,
    Instruction,
    Load,
    Mu,
    Reduce,
    Select,
    Shuffle,
    Store,
    UnOp,
    VecBin,
    VecCmp,
    VecLoad,
    VecSelect,
    VecStore,
    VecUn,
)
from repro.ir.loops import Function, Loop, Module
from repro.ir.values import Constant, Undef, Value

from .compile import BACKENDS, _BIN_SYM, _CMP_SYM
from .costmodel import DEFAULT_COST_MODEL, CostModel
from .fuse import FusedExecutor, FusedProgram, _FusedCompiler
from . import memory as _memory
from .memory import NULL_PAGE

_MAXI = 1 << 53  # ints beyond 2**53 are not exactly representable as f64


class _Bail(Exception):
    """Abort batching this loop; the scalar form is always available."""


class _DispatchRecorder:
    """Per-loop telemetry hook baked into the generated dispatch code.

    Each batched loop hoists one recorder and the generated guard calls
    it with either ``"array"`` (fast path taken) or the reason tag of
    the *first failing* guard conjunct (``"span-overlap"``,
    ``"cell-overlap"``, ``"value-domain"``, ``"affine-endpoint"``,
    ``"type-probe"``, ``"step-limit"``, ``"external-memory"``,
    ``"bounds"``) — feeding
    ``repro_array_guard_dispatch_total{function,loop,outcome,reason}``.

    The generated source is identical whether telemetry is enabled or
    not (the translate caches do not key on telemetry state); the
    recorder checks the registry's enabled flag at call time.  Counter
    handles are cached per reason so the per-invocation cost is one
    dict hit plus an integer add.
    """

    __slots__ = ("_fn", "_loop", "_handles")

    def __init__(self, fn_name: str, loop_name: str):
        self._fn = fn_name
        self._loop = loop_name
        self._handles: dict = {}

    def __call__(self, reason: str) -> None:
        h = self._handles.get(reason)
        if h is None:
            taken = reason == "array"
            h = self._handles[reason] = telemetry.counter(
                "repro_array_guard_dispatch_total",
                "array-tier runtime version dispatches by outcome and "
                "first failing guard conjunct",
                function=self._fn, loop=self._loop,
                outcome="array" if taken else "fallback",
                reason="" if taken else reason,
            )
        h.inc()


class _AV:
    """A value's vectorized form.

    ``tag``: "S" scalar expression, "C1" a ``(tn,)`` array, "ROW" a
    ``(L,)`` array (iteration-invariant vector), "COL" a ``(tn, 1)``
    array (lane-invariant vector), "M" a ``(tn, L)`` matrix.
    ``dt``: "f" float, "i" int, "b" bool.
    """

    __slots__ = ("tag", "expr", "dt", "acc")

    def __init__(self, tag: str, expr: str, dt: str, acc: Optional[str] = None):
        self.tag = tag
        self.expr = expr
        self.dt = dt
        self.acc = acc  # reduction accumulator array name (mus only)


@dataclass(frozen=True)
class _Group:
    key: object  # True | tuple[(Value, negated)]
    items: tuple


@dataclass
class _Cell:
    """A reduction through memory: ``x[c] = x[c] op e`` on a step-0
    (iteration-invariant) address.  Semantically a mu reduction whose
    initial value is read from the cell and whose result is committed by
    one store after the scan — legal once the guard pins the cell
    disjoint from every other access of the loop."""

    load: Load
    store: Store
    rec: BinOp  # the store's value
    op: str
    addend: Value


@dataclass
class _Plan:
    cl: object  # CountedLoop
    groups: list
    inductions: dict  # Mu -> AddRec
    reductions: dict  # Mu -> (op, addend, rec item)
    accesses: dict  # id(inst) -> BatchAccess
    pairs: list  # runtime span-disjointness checks (phase split)
    cell_pairs: list  # runtime cell-disjointness checks (cell folds)
    cells_by_load: dict  # id(Load) -> _Cell
    cells_by_store: dict  # id(Store) -> _Cell


def _pred_terms(p):
    """Value-level mirror of ``_FusedCompiler.pred`` (same partition)."""
    if p.is_true():
        return True
    terms = []
    for lit in p.literals:
        v = lit.value
        if isinstance(v, Constant):
            if bool(v.value) == lit.negated:
                return False
            continue
        if isinstance(v, Undef):
            if not lit.negated:
                return False
            continue
        terms.append((v, lit.negated))
    return True if not terms else tuple(terms)


def _plan_loop(loop: Loop) -> Optional[_Plan]:
    """Static batch-eligibility; None means 'emit the scalar form only'."""
    cl = counted_loop_form(loop)
    if cl is None:
        return None
    items = list(loop.items)
    pos = {id(it): i for i, it in enumerate(items)}
    pending = []
    for it in items:
        if isinstance(it, Loop):
            return None  # only innermost loops batch
        p = _pred_terms(it.predicate)
        if p is False:
            continue
        pending.append((p, it))
    groups: list[_Group] = []
    i = 0
    while i < len(pending):
        p = pending[i][0]
        j = i
        grp = []
        while j < len(pending) and pending[j][0] == p:
            grp.append(pending[j][1])
            j += 1
        groups.append(_Group(p, tuple(grp)))
        i = j
    defkey = {}
    for g in groups:
        for it in g.items:
            defkey[it] = g.key
    cont = loop.cont
    if defkey.get(cont) is not True:
        return None  # continuation must be unconditional in this body
    # mask terms must be readable when the group's first item runs:
    # loop-invariant, a mu of this loop, or an earlier unconditional item
    for g in groups:
        if g.key is True:
            continue
        first = pos[id(g.items[0])]
        for v, _neg in g.key:
            if isinstance(v, Mu) and v.loop is loop:
                continue
            if v in defkey:
                if defkey[v] is not True or pos[id(v)] >= first:
                    return None
            elif isinstance(v, Mu):
                return None  # mu of some other loop inside us — malformed
    inductions: dict = {}
    reductions: dict = {}
    for mu in loop.mus:
        if mu.rec is None:
            return None
        if mu.type.is_int() or mu.type.is_pointer():
            ar = addrec_of(mu, loop)
            if ar is None:
                return None
            inductions[mu] = ar
            continue
        rec = mu.rec
        if mu.type.is_vector() and mu.type.elem.is_float():
            # SLP'd accumulator: per-lane independent scan, batched as a
            # (tn+1, lanes) accumulate along the iteration axis
            if (
                not isinstance(rec, VecBin)
                or rec.op not in ("add", "sub", "mul", "min", "max")
                or defkey.get(rec) is not True
            ):
                return None
        elif mu.type.is_float():
            if (
                not isinstance(rec, BinOp)
                or rec.op not in ("add", "sub", "mul", "min", "max")
                or defkey.get(rec) is not True
            ):
                return None
        else:
            return None
        a, b = rec.operands
        if rec.op == "sub":
            # sub folds as add-of-negation: the accumulator must be the
            # left operand
            other = b if a is mu and b is not mu else None
        else:
            other = b if a is mu else a if b is mu else None
        if other is None or other is mu:
            return None
        reductions[mu] = (rec.op, other, rec)
    accesses: dict = {}
    mem_ops = []
    for g in groups:
        for it in g.items:
            if not isinstance(it, (Load, Store, VecLoad, VecStore)):
                continue
            ar = addrec_of(it.pointer, loop)
            if ar is None or not ar.step.is_constant():
                return None
            step, width = ar.step.const, it.access_slots
            if width <= 0:
                return None
            ba = BatchAccess(it, ar.base, step, width)
            accesses[id(it)] = ba
            mem_ops.append(ba)
    cells_by_load, cells_by_store = _match_cells(mem_ops, defkey, pos)
    if cells_by_load is None:
        return None
    cell_ids = set(cells_by_load) | set(cells_by_store)
    acc_list = []
    for ba in mem_ops:
        it = ba.inst
        if id(it) in cell_ids:
            continue
        if isinstance(it, (Store, VecStore)):
            vty = it.value.type
            ok = vty.is_float() or (vty.is_vector() and vty.elem.is_float())
            if not ok or ba.step == 0:
                return None  # overlay stores / last-write races: scalar
        acc_list.append(ba)
    pairs = phase_split_hazards(loop, acc_list)
    if pairs is None:
        return None
    pairs = list(pairs)
    # The cell fold reorders its load and store across the whole loop, so
    # a cell must be disjoint from *every* other access (not merely
    # phase-split compatible): any colliding load would observe a partial
    # sum, any colliding store would break the fold.
    others = [ba for ba in mem_ops if id(ba.inst) not in cell_ids]
    cell_accs = [accesses[lid] for lid in cells_by_load]
    cell_pairs = []
    for i, ca in enumerate(cell_accs):
        for ba in others + cell_accs[i + 1:]:
            d = difference(ba.base, ca.base)
            if d is not None:
                if ba.step == 0:
                    if -ba.width < d < 1:
                        return None  # statically collides with the cell
                    continue
                if ba.step > 0 and d >= 1:
                    continue  # sweeps upward from above the cell
                if ba.step < 0 and d + ba.width <= 0:
                    continue  # sweeps downward from below the cell
            cell_pairs.append((ca, ba))
    return _Plan(cl, groups, inductions, reductions, accesses, pairs,
                 cell_pairs, cells_by_load, cells_by_store)


def _match_cells(mem_ops, defkey, pos):
    """Pair every step-0 store with the step-0 load of the same address
    that it accumulates over.  Returns ``(by_load, by_store)`` keyed by
    ``id()``; ``(None, None)`` when some step-0 store matches no cell, in
    which case the loop must stay scalar."""
    loads0 = [ba for ba in mem_ops
              if isinstance(ba.inst, Load) and ba.step == 0
              and ba.width == 1 and ba.inst.type.is_float()
              and defkey.get(ba.inst) is True]
    by_load: dict = {}
    by_store: dict = {}
    for ba in mem_ops:
        st = ba.inst
        if not isinstance(st, Store) or ba.step != 0:
            continue
        rec = st.value
        if (defkey.get(st) is not True
                or not isinstance(rec, BinOp)
                or rec.op not in ("add", "sub", "mul", "min", "max")
                or defkey.get(rec) is not True):
            return None, None
        a, b = rec.operands
        match = None
        for ld in loads0:
            if (id(ld.inst) in by_load or pos[id(ld.inst)] >= pos[id(st)]
                    or difference(ld.base, ba.base) != 0):
                continue
            # ``sub`` folds as add-of-negation, so the cell must be the
            # left operand; the commutative ops accept either side
            if a is ld.inst and b is not ld.inst:
                match, addend = ld, b
                break
            if b is ld.inst and a is not ld.inst and rec.op != "sub":
                match, addend = ld, a
                break
        if match is None:
            return None, None
        cell = _Cell(match.inst, st, rec, rec.op, addend)
        by_load[id(match.inst)] = by_store[id(st)] = cell
    return by_load, by_store


# ---------------------------------------------------------------------------
# Per-loop fast-path code generation
# ---------------------------------------------------------------------------


class _LoopGen:
    def __init__(self, c: "_ArrayCompiler", loop: Loop, plan: _Plan, k: int):
        self.c = c
        self.loop = loop
        self.plan = plan
        self.k = k
        self.inner = _defined_in(loop)
        self.g = c.tmp()
        self.tn = c.tmp()
        self.tel = c.hoist_value(_DispatchRecorder(c.fn.name, loop.name))
        self.count_lines: list[str] = []
        self.conj2: list[tuple[str, str]] = []  # (reason, expr)
        self._conj_seen: set[str] = set()
        self.compute: list[str] = []
        self.finals: list[tuple[int, str]] = []
        self.commits: list[str] = []
        self.probes: dict[str, object] = {}
        self.av: dict[int, _AV] = {}
        self._keep: list = []  # id() stability for the av cache
        self._inprog: set[int] = set()
        self.need_ar = False
        self.ar_name = c.tmp()
        self.need_lane: dict[int, str] = {}
        self.masks: dict[int, str] = {}
        self.item_group: dict[int, int] = {}
        self.acc_base: dict[int, tuple[str, str, str]] = {}
        self.cell_acc: dict[int, str] = {}
        # Speed mode: locals dead after the loop need no vectors and no
        # finals (exact mode keeps everything — its analytic accounting
        # is the contract under test, and risk conjuncts of dead ops
        # still gate data-dependent costs).
        self.live: Optional[set] = None
        if not c.account:
            rv = c.fn.return_value
            self.live = {
                id(v) for v in self.inner
                if v is rv or any(u not in self.inner for u in v._users)
            }

    # -- small helpers ---------------------------------------------------

    def ar(self) -> str:
        self.need_ar = True
        return self.ar_name

    def lane_ar(self, lanes: int) -> str:
        t = self.need_lane.get(lanes)
        if t is None:
            t = self.need_lane[lanes] = self.c.tmp()
        return t

    def add_conj(self, e: str, reason: str = "affine-endpoint") -> None:
        if e not in self._conj_seen:
            self._conj_seen.add(e)
            self.conj2.append((reason, e))

    def _emit(self, expr: str, tag: str, dt: str) -> _AV:
        t = self.c.tmp()
        self.compute.append(f"{t} = {expr}")
        return _AV(tag, t, dt)

    def risk(self, bad: str, mask: Optional[str], badtag: str) -> None:
        """Conjoin 'no lane trips this hazard' onto the guard.

        Emitted as a narrowing ``if`` (not ``g = g and ...``) so the
        first tripped hazard is attributable: the telemetry recorder
        sees exactly one ``value-domain`` tag per fallback, and later
        hazard checks still short-circuit on the dead guard.
        """
        g, tel = self.g, self.tel
        if mask is not None:
            if badtag in ("S", "C1"):
                me = f"({bad}) & {mask}"
            elif badtag == "ROW":
                me = f"({bad})[None, :] & {mask}[:, None]"
            else:  # COL / M
                me = f"({bad}) & {mask}[:, None]"
            cond = f"{g} and NP.any({me})"
        elif badtag == "S":
            cond = f"{g} and ({bad})"
        else:
            cond = f"{g} and NP.any({bad})"
        self.compute.append(
            f"if {cond}: {g} = False; {tel}('value-domain')"
        )

    def affexpr(self, aff: Affine) -> str:
        """Scalar int expression for an invariant affine, with probes."""
        parts = []
        for sym, coeff in aff.terms.items():
            if isinstance(sym, (Constant, Undef)):
                raise _Bail()
            t = sym.type
            if not (t.is_int() or t.is_pointer()):
                raise _Bail()
            if sym in self.inner:
                raise _Bail()
            n = self.c.name(sym)
            self.probes.setdefault(n, "i")
            parts.append(n if coeff == 1 else f"{coeff}*{n}")
        if aff.const or not parts:
            parts.append(str(aff.const))
        return "(" + " + ".join(parts) + ")"

    # -- trip count and access spans -------------------------------------

    def _emit_count(self) -> None:
        cl = self.plan.cl
        eb, ed = self.affexpr(cl.base), self.affexpr(cl.bound)
        if cl.step < 0:
            d_expr, s2 = f"{eb} - {ed}", -cl.step
            rel2 = {"gt": "lt", "ge": "le"}[cl.rel]
        else:
            d_expr, s2 = f"{ed} - {eb}", cl.step
            rel2 = cl.rel
        td = self.c.tmp()
        self.count_lines.append(f"{td} = {d_expr}")
        kx = f"-(-{td} // {s2})" if rel2 == "lt" else f"{td} // {s2} + 1"
        self.count_lines.append(f"{self.tn} = {kx}")
        self.count_lines.append(
            f"{self.tn} = ({self.tn} + 1) if {self.tn} > 0 else 1"
        )
        if self.c.account:
            self.add_conj(f"C[{self.k}] + {self.tn} <= {self.c.max_steps}",
                          "step-limit")
        else:
            self.add_conj(f"{self.tn} <= {self.c.max_steps}", "step-limit")
        if self.plan.accesses:
            self.add_conj("not EXO", "external-memory")
        for a in self.plan.accesses.values():
            t = self.c.tmp()
            self.count_lines.append(f"{t} = {self.affexpr(a.base)}")
            s, w = a.step, a.width
            if s >= 0:
                lo = t
                hi = f"({t} + {s}*({self.tn} - 1) + {w})"
            else:
                lo = f"({t} + {s}*({self.tn} - 1))"
                hi = f"({t} + {w})"
            self.acc_base[id(a.inst)] = (t, lo, hi)
            self.add_conj(f"{lo} >= {NULL_PAGE}", "bounds")
            self.add_conj(f"{hi} <= {self.c.nx}", "bounds")
        for reason, plan_pairs in (("span-overlap", self.plan.pairs),
                                   ("cell-overlap", self.plan.cell_pairs)):
            for a, b in plan_pairs:
                _, loa, hia = self.acc_base[id(a.inst)]
                _, lob, hib = self.acc_base[id(b.inst)]
                self.add_conj(f"{hia} <= {lob} or {hib} <= {loa}", reason)

    # -- masks ------------------------------------------------------------

    def mask_for(self, gi: Optional[int]) -> Optional[str]:
        if gi is None:
            return None
        grp = self.plan.groups[gi]
        if grp.key is True:
            return None
        m = self.masks.get(gi)
        if m is not None:
            return m
        arr_parts, s_parts = [], []
        for v, neg in grp.key:
            av = self.aval(v)
            if av.tag == "C1":
                arr_parts.append(
                    f"({av.expr} == 0)" if neg else f"({av.expr} != 0)"
                )
            elif av.tag == "S":
                s_parts.append(
                    f"(not {av.expr})" if neg else f"bool({av.expr})"
                )
            else:
                raise _Bail()
        m = self.c.tmp()
        if arr_parts:
            e = " & ".join(arr_parts)
            if s_parts:
                e = f"({' and '.join(s_parts)}) & {e}"
            self.compute.append(f"{m} = {e}")
        else:
            self.compute.append(
                f"{m} = NP.full({self.tn}, {' and '.join(s_parts)})"
            )
        self.masks[gi] = m
        return m

    # -- value vectorization ----------------------------------------------

    def aval(self, v: Value) -> _AV:
        key = id(v)
        got = self.av.get(key)
        if got is not None:
            return got
        if key in self._inprog:
            raise _Bail()  # true cyclic recurrence — not a simple scan
        self._inprog.add(key)
        try:
            r = self._aval_inner(v)
        finally:
            self._inprog.discard(key)
        self.av[key] = r
        self._keep.append(v)
        return r

    def _aval_inner(self, v: Value) -> _AV:
        c = self.c
        if isinstance(v, Constant):
            val = v.value
            dt = ("b" if isinstance(val, bool)
                  else "i" if isinstance(val, int) else "f")
            return _AV("S", c.lit(val), dt)
        if isinstance(v, Undef):
            return _AV("S", "0", "i")
        if isinstance(v, Mu) and v.loop is self.loop:
            return self._aval_mu(v)
        if v not in self.inner:
            # loop-invariant: a named local, guarded by a type probe
            n = c.name(v)
            t = v.type
            if t.is_float():
                self.probes.setdefault(n, "f")
                return _AV("S", n, "f")
            if t.is_int() or t.is_pointer():
                self.probes.setdefault(n, "i")
                return _AV("S", n, "i")
            if t.is_bool():
                self.probes.setdefault(n, "b")
                return _AV("S", n, "b")
            if t.is_vector() and t.elem.is_float():
                self.probes.setdefault(n, ("v", t.lanes))
                return self._emit(
                    f"NP.array({n}, dtype=F64)", "ROW", "f"
                )
            raise _Bail()
        if not isinstance(v, Instruction):
            raise _Bail()
        return self._aval_item(v)

    def _aval_mu(self, mu: Mu) -> _AV:
        ar = self.plan.inductions.get(mu)
        if ar is not None:
            return self._materialize_aff(ar.base, ar.step)
        red = self.plan.reductions.get(mu)
        if red is None:
            raise _Bail()
        return self._emit_reduction(mu, red)

    def _materialize_aff(self, base: Affine, step: Affine) -> _AV:
        eb, es = self.affexpr(base), self.affexpr(step)
        e1 = f"({eb} + {es}*({self.tn} - 1))"
        self.add_conj(f"-{_MAXI} <= {eb} <= {_MAXI}")
        self.add_conj(f"-{_MAXI} <= {e1} <= {_MAXI}")
        return self._emit(f"{eb} + {es}*{self.ar()}", "C1", "i")

    def _emit_reduction(self, mu: Mu, red: tuple) -> _AV:
        op, addend, rec = red
        if mu.type.is_vector():
            return self._emit_vec_reduction(mu, op, addend, rec)
        init = self.aval(mu.init)
        if init.tag != "S" or init.dt not in ("f", "i"):
            raise _Bail()
        if init.dt == "i":
            self.add_conj(f"-{_MAXI} <= {init.expr} <= {_MAXI}")
        a = self.aval(addend)
        if a.tag not in ("S", "C1"):
            raise _Bail()
        if a.dt == "i" and a.tag == "S":
            self.add_conj(f"-{_MAXI} <= {a.expr} <= {_MAXI}")
        tacc = self.c.tmp()
        self.compute.append(f"{tacc} = NP.empty({self.tn} + 1)")
        self.compute.append(f"{tacc}[0] = {init.expr}")
        neg = "-" if op == "sub" else ""
        self.compute.append(f"{tacc}[1:] = {neg}({a.expr})")
        if op == "sub":
            op = "add"  # IEEE subtraction is addition of the negation
        if op in ("min", "max"):
            # np.minimum diverges from Python min on NaN and ±0 ties
            self.risk(
                f"NP.isnan({tacc})", None, "C1"
            )
            self.risk(f"{tacc} == 0.0", None, "C1")
            uf = "NP.minimum" if op == "min" else "NP.maximum"
        else:
            uf = "NP.add" if op == "add" else "NP.multiply"
        self.compute.append(f"{uf}.accumulate({tacc}, out={tacc})")
        # the mu reads the running value at iteration *start*; the rec
        # item is the value after this iteration's update
        self.av[id(rec)] = _AV("C1", f"{tacc}[1:]", "f")
        self._keep.append(rec)
        return _AV("C1", f"{tacc}[:{self.tn}]", "f", acc=tacc)

    def _emit_vec_reduction(self, mu: Mu, op: str, addend: Value,
                            rec: Instruction) -> _AV:
        """An SLP'd vector accumulator: lanes never mix, so the scan is a
        per-lane ``accumulate`` down a (tn+1, lanes) matrix whose row 0
        is the incoming value and rows 1..tn are the per-iteration
        addends — sequential per lane, hence bit-identical."""
        lanes = mu.type.lanes
        init = self.aval(mu.init)
        if init.tag != "ROW" or init.dt != "f":
            raise _Bail()
        a = self.aval(addend)
        if a.dt != "f" or a.tag not in ("S", "ROW", "COL", "M"):
            raise _Bail()
        tacc = self.c.tmp()
        self.compute.append(
            f"{tacc} = NP.empty(({self.tn} + 1, {lanes}))"
        )
        self.compute.append(f"{tacc}[0] = {init.expr}")
        neg = "-" if op == "sub" else ""
        self.compute.append(f"{tacc}[1:] = {neg}({self._to_m(a, lanes)})")
        if op == "sub":
            op = "add"  # IEEE subtraction is addition of the negation
        if op in ("min", "max"):
            # np.minimum diverges from Python min on NaN and ±0 ties
            self.risk(f"NP.isnan({tacc})", None, "M")
            self.risk(f"{tacc} == 0.0", None, "M")
            uf = "NP.minimum" if op == "min" else "NP.maximum"
        else:
            uf = "NP.add" if op == "add" else "NP.multiply"
        self.compute.append(f"{uf}.accumulate({tacc}, axis=0, out={tacc})")
        self.av[id(rec)] = _AV("M", f"{tacc}[1:]", "f")
        self._keep.append(rec)
        return _AV("M", f"{tacc}[:{self.tn}]", "f", acc=tacc)

    # -- per-opcode emitters ----------------------------------------------

    def _aval_item(self, v: Instruction) -> _AV:
        mask = self.mask_for(self.item_group.get(id(v)))
        ty = v.type
        if isinstance(v, Load):
            return self._aval_load(v)
        if isinstance(v, VecLoad):
            return self._aval_vecload(v)
        if ty.is_int() or ty.is_pointer():
            ar = addrec_of(v, self.loop)
            if ar is not None:
                return self._materialize_aff(ar.base, ar.step)
            if isinstance(v, Select):
                return self._aval_select(v)
            raise _Bail()
        if isinstance(v, Cmp):
            return self._aval_cmp(v)
        if isinstance(v, BinOp):
            return self._aval_binop(v, mask)
        if isinstance(v, UnOp):
            return self._aval_unop(v, mask)
        if isinstance(v, Select):
            return self._aval_select(v)
        if isinstance(v, Cast):
            return self._aval_cast(v)
        if isinstance(v, (VecBin, VecCmp)):
            return self._aval_vecbin(v, mask)
        if isinstance(v, VecUn):
            return self._aval_vecun(v, mask)
        if isinstance(v, VecSelect):
            return self._aval_vecselect(v)
        if isinstance(v, BuildVector):
            return self._aval_buildvector(v)
        if isinstance(v, ExtractLane):
            return self._aval_extractlane(v)
        if isinstance(v, Shuffle):
            return self._aval_shuffle(v)
        if isinstance(v, Broadcast):
            return self._aval_broadcast(v)
        if isinstance(v, Reduce):
            return self._aval_reduce(v)
        raise _Bail()  # Phi/Call/Alloca/Eta/...: scalar only

    @staticmethod
    def _sc_tag(*avs: _AV) -> str:
        for a in avs:
            if a.tag not in ("S", "C1"):
                raise _Bail()
        return "C1" if any(a.tag == "C1" for a in avs) else "S"

    def _int_guard(self, *avs: _AV) -> None:
        """NumPy converts big Python ints via C int64 (raising) where
        scalar Python arithmetic matches float64 rounding; keep both in
        the exactly-representable range."""
        for a in avs:
            if a.dt == "i" and a.tag == "S":
                self.add_conj(f"-{_MAXI} <= {a.expr} <= {_MAXI}")

    @staticmethod
    def _vtag(*avs: _AV) -> str:
        tags = [a.tag for a in avs]
        for t in tags:
            if t not in ("S", "ROW", "COL", "M"):
                raise _Bail()
        if "M" in tags or ("ROW" in tags and "COL" in tags):
            return "M"
        if "COL" in tags:
            return "COL"
        if "ROW" in tags:
            return "ROW"
        return "S"

    def _aval_binop(self, v: BinOp, mask: Optional[str]) -> _AV:
        a, b = self.aval(v.operands[0]), self.aval(v.operands[1])
        tag = self._sc_tag(a, b)
        return self._float_bin(v.op, a, b, tag, mask)

    def _float_bin(self, op: str, a: _AV, b: _AV, tag: str,
                   mask: Optional[str]) -> _AV:
        arr = tag != "S"
        if arr:
            self._int_guard(a, b)
        if op in ("add", "sub", "mul"):
            return self._emit(f"{a.expr} {_BIN_SYM[op]} {b.expr}", tag, "f")
        if op in ("min", "max"):
            if not arr:
                return self._emit(f"{op}({a.expr}, {b.expr})", "S", "f")
            rel = "<" if op == "min" else ">"
            # where-form matches Python min/max ties and NaN exactly
            return self._emit(
                f"NP.where({b.expr} {rel} {a.expr}, {b.expr}, {a.expr})",
                tag, "f",
            )
        if op == "div":
            self.risk(f"{b.expr} == 0", mask, b.tag)
            if not arr:
                return self._emit(
                    f"({a.expr} / {b.expr}) if {self.g} else 0.0", "S", "f"
                )
            return self._emit(f"{a.expr} / {b.expr}", tag, "f")
        if op == "rem":
            self.risk(f"{b.expr} == 0", mask, b.tag)
            if not arr:
                f = self.c.hoist("FMOD", math.fmod)
                return self._emit(
                    f"{f}({a.expr}, {b.expr}) if {self.g} else 0.0", "S", "f"
                )
            return self._emit(f"NP.fmod({a.expr}, {b.expr})", tag, "f")
        raise _Bail()  # pow / int-coercing bitwise ops: scalar only

    def _aval_cmp(self, v: Cmp) -> _AV:
        a, b = self.aval(v.operands[0]), self.aval(v.operands[1])
        tag = self._sc_tag(a, b)
        if tag != "S":
            self._int_guard(a, b)
        return self._emit(f"{a.expr} {_CMP_SYM[v.rel]} {b.expr}", tag, "b")

    def _aval_unop(self, v: UnOp, mask: Optional[str]) -> _AV:
        a = self.aval(v.operands[0])
        tag = self._sc_tag(a)
        return self._float_un(v.op, a, tag, mask)

    def _float_un(self, op: str, a: _AV, tag: str,
                  mask: Optional[str]) -> _AV:
        arr = tag not in ("S",)
        if op == "neg":
            return self._emit(f"-{a.expr}", tag, a.dt)
        if op == "abs":
            e = f"NP.abs({a.expr})" if arr else f"abs({a.expr})"
            return self._emit(e, tag, a.dt)
        if op == "not":
            return self._emit(f"{a.expr} == 0", tag, "b")
        if op == "sqrt":
            self.risk(f"{a.expr} < 0", mask, a.tag)
            if not arr:
                f = self.c.hoist("SQRT", math.sqrt)
                return self._emit(
                    f"{f}({a.expr}) if {self.g} else 0.0", "S", "f"
                )
            return self._emit(f"NP.sqrt({a.expr})", tag, "f")
        raise _Bail()  # libm transcendentals: last-ulp risk, scalar only

    def _aval_select(self, v: Select) -> _AV:
        cnd = self.aval(v.cond)
        t, f = self.aval(v.true_value), self.aval(v.false_value)
        tag = self._sc_tag(cnd, t, f)
        if t.dt != f.dt:
            raise _Bail()
        if tag == "S":
            return self._emit(
                f"({t.expr}) if ({cnd.expr}) else ({f.expr})", "S", t.dt
            )
        self._int_guard(t, f)
        return self._emit(
            f"NP.where({cnd.expr}, {t.expr}, {f.expr})", "C1", t.dt
        )

    def _aval_cast(self, v: Cast) -> _AV:
        a = self.aval(v.operands[0])
        if a.tag not in ("S", "C1") or not v.type.is_float():
            raise _Bail()
        if a.dt == "f":
            return _AV(a.tag, a.expr, "f")
        if a.tag == "C1":
            return self._emit(f"({a.expr}).astype(F64)", "C1", "f")
        if a.dt == "i":
            self.add_conj(f"-{_MAXI} <= {a.expr} <= {_MAXI}")
        return self._emit(f"float({a.expr})", "S", "f")

    def _emit_cell_reduction(self, cell: _Cell) -> _AV:
        """Fold ``x[c] = x[c] op e`` exactly like a mu reduction, with the
        initial value read from the cell; ``sub`` accumulates the negated
        addend (IEEE subtraction *is* addition of the negation, so the
        scan stays bit-identical)."""
        tb, _, _ = self.acc_base[id(cell.load)]
        a = self.aval(cell.addend)
        if a.dt != "f" or a.tag not in ("S", "C1"):
            raise _Bail()
        tacc = self.c.tmp()
        self.compute.append(f"{tacc} = NP.empty({self.tn} + 1)")
        self.compute.append(f"{tacc}[0] = AI({tb})")
        neg = "-" if cell.op == "sub" else ""
        self.compute.append(f"{tacc}[1:] = {neg}({a.expr})")
        op = "add" if cell.op == "sub" else cell.op
        if op in ("min", "max"):
            # np.minimum diverges from Python min on NaN and ±0 ties
            self.risk(f"NP.isnan({tacc})", None, "C1")
            self.risk(f"{tacc} == 0.0", None, "C1")
            uf = "NP.minimum" if op == "min" else "NP.maximum"
        else:
            uf = "NP.add" if op == "add" else "NP.multiply"
        self.compute.append(f"{uf}.accumulate({tacc}, out={tacc})")
        self.av[id(cell.rec)] = _AV("C1", f"{tacc}[1:]", "f")
        self._keep.append(cell.rec)
        self.cell_acc[id(cell.store)] = tacc
        return _AV("C1", f"{tacc}[:{self.tn}]", "f")

    def _aval_load(self, v: Load) -> _AV:
        cell = self.plan.cells_by_load.get(id(v))
        if cell is not None:
            return self._emit_cell_reduction(cell)
        tb, _, _ = self.acc_base[id(v)]
        s = self.plan.accesses[id(v)].step
        if s == 0:
            return self._emit(f"AI({tb})", "S", "f")
        if s == 1:
            e = f"ARR[{tb}:{tb} + {self.tn}]"
        elif s > 1:
            e = f"ARR[{tb}:{tb} + {self.tn}*{s}:{s}]"
        else:
            e = f"ARR[{tb} + {s}*{self.ar()}]"
        return self._emit(e, "C1", "f")

    def _aval_vecload(self, v: VecLoad) -> _AV:
        tb, _, _ = self.acc_base[id(v)]
        s = self.plan.accesses[id(v)].step
        lanes = v.type.lanes
        if s == 0:
            return self._emit(f"ARR[{tb}:{tb} + {lanes}]", "ROW", "f")
        if s == lanes and s > 0:
            e = f"ARR[{tb}:{tb} + {self.tn}*{lanes}].reshape(-1, {lanes})"
        else:
            e = (f"ARR[({tb} + {s}*{self.ar()})[:, None]"
                 f" + {self.lane_ar(lanes)}]")
        return self._emit(e, "M", "f")

    def _aval_vecbin(self, v, mask: Optional[str]) -> _AV:
        a, b = self.aval(v.operands[0]), self.aval(v.operands[1])
        tag = self._vtag(a, b)
        if isinstance(v, VecCmp):
            if tag != "S":
                self._int_guard(a, b)
            return self._emit(
                f"{a.expr} {_CMP_SYM[v.rel]} {b.expr}", tag, "b"
            )
        return self._float_bin(v.op, a, b, tag, mask)

    def _aval_vecun(self, v: VecUn, mask: Optional[str]) -> _AV:
        a = self.aval(v.operands[0])
        return self._float_un(v.op, a, self._vtag(a), mask)

    def _aval_vecselect(self, v: VecSelect) -> _AV:
        m = self.aval(v.operands[0])
        t, f = self.aval(v.operands[1]), self.aval(v.operands[2])
        tag = self._vtag(m, t, f)
        if t.dt != f.dt:
            raise _Bail()
        if tag == "S":
            return self._emit(
                f"({t.expr}) if ({m.expr}) else ({f.expr})", "S", t.dt
            )
        self._int_guard(t, f)
        return self._emit(
            f"NP.where({m.expr}, {t.expr}, {f.expr})", tag, t.dt
        )

    def _aval_buildvector(self, v: BuildVector) -> _AV:
        if not (v.type.is_vector() and v.type.elem.is_float()):
            raise _Bail()
        els = [self.aval(o) for o in v.operands]
        for e in els:
            if e.tag not in ("S", "C1"):
                raise _Bail()
        self._int_guard(*els)
        joined = ", ".join(e.expr for e in els)
        if all(e.tag == "S" for e in els):
            return self._emit(f"NP.array([{joined}], dtype=F64)", "ROW", "f")
        return self._emit(
            f"NP.stack(NP.broadcast_arrays({joined}), axis=-1)"
            f".astype(F64, copy=False)",
            "M", "f",
        )

    def _aval_extractlane(self, v: ExtractLane) -> _AV:
        a = self.aval(v.operands[0])
        j = v.lane
        if a.tag == "M":
            return self._emit(f"{a.expr}[:, {j}]", "C1", a.dt)
        if a.tag == "COL":
            return self._emit(f"{a.expr}[:, 0]", "C1", a.dt)
        if a.tag == "ROW":
            return self._emit(f"({a.expr}).item({j})", "S", a.dt)
        if a.tag == "S":
            return _AV("S", a.expr, a.dt)
        raise _Bail()

    def _to_m(self, a: _AV, lanes: int) -> str:
        if a.tag == "M":
            return a.expr
        if a.tag == "COL":
            return f"NP.broadcast_to({a.expr}, ({self.tn}, {lanes}))"
        if a.tag == "ROW":
            return f"NP.broadcast_to({a.expr}, ({self.tn}, {lanes}))"
        return f"NP.full(({self.tn}, {lanes}), {a.expr})"

    def _aval_shuffle(self, v: Shuffle) -> _AV:
        picks = list(v.mask)
        a = self.aval(v.operands[0])
        if len(v.operands) == 1:
            if a.tag in ("S", "COL"):
                return a  # every lane equal: any permutation is itself
            if a.tag == "ROW":
                return self._emit(f"({a.expr})[{picks}]", "ROW", a.dt)
            if a.tag == "M":
                return self._emit(f"({a.expr})[:, {picks}]", "M", a.dt)
            raise _Bail()
        b = self.aval(v.operands[1])
        if a.tag == "ROW" and b.tag == "ROW":
            return self._emit(
                f"NP.concatenate(({a.expr}, {b.expr}))[{picks}]", "ROW", a.dt
            )
        lanes = v.operands[0].type.lanes
        ea, eb = self._to_m(a, lanes), self._to_m(b, lanes)
        return self._emit(
            f"NP.concatenate(({ea}, {eb}), axis=1)[:, {picks}]", "M", a.dt
        )

    def _aval_broadcast(self, v: Broadcast) -> _AV:
        a = self.aval(v.operands[0])
        if a.tag == "S":
            return _AV("S", a.expr, a.dt)
        if a.tag == "C1":
            return self._emit(f"({a.expr})[:, None]", "COL", a.dt)
        raise _Bail()

    def _aval_reduce(self, v: Reduce) -> _AV:
        if v.op not in ("add", "mul", "min", "max"):
            raise _Bail()
        a = self.aval(v.operands[0])
        lanes = v.operands[0].type.lanes
        if a.tag == "M":
            cols = [f"{a.expr}[:, {j}]" for j in range(lanes)]
            arr = True
        elif a.tag == "COL":
            cols = [f"{a.expr}[:, 0]"] * lanes
            arr = True
        elif a.tag == "ROW":
            cols = [f"({a.expr}).item({j})" for j in range(lanes)]
            arr = False
        elif a.tag == "S":
            cols = [a.expr] * lanes
            arr = False
        else:
            raise _Bail()
        acc = cols[0]
        if arr and a.tag == "M":
            acc = self._emit(acc, "C1", a.dt).expr
        for x in cols[1:]:
            acc = self._reduce_step(v.op, acc, x, arr, a.dt)
        tag = "C1" if arr else "S"
        if arr and acc == cols[0]:  # lanes == 1: force a temp
            acc = self._emit(acc, "C1", a.dt).expr
        return _AV(tag, acc, a.dt)

    def _reduce_step(self, op: str, acc: str, x: str, arr: bool,
                     dt: str) -> str:
        if op in ("add", "mul"):
            sym = "+" if op == "add" else "*"
            e = f"{acc} {sym} {x}"
        elif arr:
            rel = "<" if op == "min" else ">"
            e = f"NP.where({x} {rel} {acc}, {x}, {acc})"
        else:
            e = f"{op}({acc}, {x})"
        return self._emit(e, "C1" if arr else "S", dt).expr

    # -- finals, commits, counters ----------------------------------------

    def _final_expr(self, it: Instruction, tki: str) -> str:
        av = self.av[id(it)]
        if it.type.is_vector():
            lanes = it.type.lanes
            if av.tag == "S":
                return f"[{av.expr}] * {lanes}"
            if av.tag == "ROW":
                return f"({av.expr}).tolist()"
            if av.tag == "COL":
                return f"[({av.expr}).item({tki}, 0)] * {lanes}"
            return f"({av.expr})[{tki}].tolist()"
        if av.tag == "S":
            return av.expr
        return f"({av.expr}).item({tki})"

    def _emit_finals(self) -> None:
        c = self.c
        live = self.live
        for mu in self.loop.mus:
            if live is not None and id(mu) not in live:
                continue
            n = c.name(mu)
            ar = self.plan.inductions.get(mu)
            if ar is not None:
                eb, es = self.affexpr(ar.base), self.affexpr(ar.step)
                self.finals.append((0, f"{n} = {eb} + {es}*({self.tn} - 1)"))
            else:
                acc = self.aval(mu).acc
                if mu.type.is_vector():
                    self.finals.append(
                        (0, f"{n} = {acc}[{self.tn} - 1].tolist()")
                    )
                else:
                    self.finals.append(
                        (0, f"{n} = {acc}.item({self.tn} - 1)")
                    )
        for gi, grp in enumerate(self.plan.groups):
            outs = [
                it for it in grp.items
                if not isinstance(it, (Store, VecStore))
                and (live is None or id(it) in live)
            ]
            if not outs:
                continue
            if grp.key is True:
                ind0, tki = 0, f"({self.tn} - 1)"
            else:
                m = self.mask_for(gi)
                self.finals.append((0, f"if {m}.any():"))
                tki = c.tmp()
                self.finals.append(
                    (1, f"{tki} = {self.tn} - 1 - int({m}[::-1].argmax())")
                )
                ind0 = 1
            for it in outs:
                self.finals.append(
                    (ind0, f"{c.name(it)} = {self._final_expr(it, tki)}")
                )

    def _emit_commits(self) -> None:
        for gi, grp in enumerate(self.plan.groups):
            mask = self.mask_for(gi if grp.key is not True else None)
            for it in grp.items:
                if isinstance(it, Store):
                    self._commit_store(it, mask)
                elif isinstance(it, VecStore):
                    self._commit_vecstore(it, mask)
        if self.c.account:
            self._emit_counts()

    def _commit_store(self, it: Store, mask: Optional[str]) -> None:
        tb, _, _ = self.acc_base[id(it)]
        tacc = self.cell_acc.get(id(it))
        if tacc is not None:
            # cell reduction: the last iteration's store wrote the fully
            # accumulated value (row tn of the scan)
            self.commits.append(f"ARR[{tb}] = {tacc}.item({self.tn})")
            return
        s = self.plan.accesses[id(it)].step
        val = self.av[id(it.value)]
        if s > 0:
            dst = (f"ARR[{tb}:{tb} + {self.tn}]" if s == 1
                   else f"ARR[{tb}:{tb} + {self.tn}*{s}:{s}]")
            if mask is None:
                self.commits.append(f"{dst} = {val.expr}")
            else:
                t = self.c.tmp()
                self.commits.append(f"{t} = {dst}")
                self.commits.append(
                    f"{t}[:] = NP.where({mask}, {val.expr}, {t})"
                )
        else:
            t = self.c.tmp()
            self.commits.append(f"{t} = {tb} + {s}*{self.ar()}")
            if mask is None:
                self.commits.append(f"ARR[{t}] = {val.expr}")
            else:
                self.commits.append(
                    f"ARR[{t}] = NP.where({mask}, {val.expr}, ARR[{t}])"
                )

    def _commit_vecstore(self, it: VecStore, mask: Optional[str]) -> None:
        tb, _, _ = self.acc_base[id(it)]
        s = self.plan.accesses[id(it)].step
        lanes = it.value.type.lanes
        val = self.av[id(it.value)]
        ve = self._to_m(val, lanes) if val.tag in ("S", "ROW", "COL") \
            else val.expr
        if s == lanes and s > 0:
            t = self.c.tmp()
            self.commits.append(
                f"{t} = ARR[{tb}:{tb} + {self.tn}*{lanes}]"
                f".reshape(-1, {lanes})"
            )
            if mask is None:
                self.commits.append(f"{t}[:] = {ve}")
            else:
                self.commits.append(
                    f"{t}[:] = NP.where({mask}[:, None], {ve}, {t})"
                )
        else:
            t = self.c.tmp()
            self.commits.append(
                f"{t} = ({tb} + {s}*{self.ar()})[:, None]"
                f" + {self.lane_ar(lanes)}"
            )
            if mask is None:
                self.commits.append(f"ARR[{t}] = {ve}")
            else:
                self.commits.append(
                    f"ARR[{t}] = NP.where({mask}[:, None], {ve}, ARR[{t}])"
                )

    def _emit_counts(self) -> None:
        cost = self.c.cost
        uncond = 0.0
        for grp in self.plan.groups:
            if grp.key is True:
                for it in grp.items:
                    uncond += float(cost.instruction_cost(it))
        uncond += float(cost.loop_backedge)
        self.commits.append(f"C[{self.k}] += {self.tn}")
        tot = int(uncond)
        if tot:
            self.commits.append(f"cy += {self.tn} * {tot}")
        for gi, grp in enumerate(self.plan.groups):
            if grp.key is True:
                continue
            m = self.mask_for(gi)
            gsum = int(sum(
                float(cost.instruction_cost(it)) for it in grp.items
            ))
            t = self.c.tmp()
            self.commits.append(f"{t} = int({m}.sum())")
            self.commits.append(f"C[@@G{gi}@@] += {t}")
            if gsum:
                self.commits.append(f"cy += {t} * {gsum}")

    # -- top level ---------------------------------------------------------

    def generate(self, ind: int) -> tuple[list[str], str]:
        c = self.c
        c.hoist("NP", _memory._np)
        c.hoist("F64", _memory._np.float64)
        c.hoist("ERR", _memory._np.errstate)
        self._emit_count()
        for gi, grp in enumerate(self.plan.groups):
            for it in grp.items:
                self.item_group[id(it)] = gi
        # Seed the scan accumulators first: their rec items then resolve
        # to scan rows instead of re-deriving the same values.
        for cell in self.plan.cells_by_load.values():
            self.aval(cell.load)
        for mu in self.plan.reductions:
            self.aval(mu)
        live = self.live
        for grp in self.plan.groups:
            for it in grp.items:
                if isinstance(it, (Store, VecStore)):
                    self.aval(it.value)
                elif live is None or id(it) in live:
                    self.aval(it)
        self._emit_finals()
        self._emit_commits()
        return self._assemble(ind), self.g

    def _probe_parts(self) -> list[str]:
        parts = []
        for n, kind in sorted(self.probes.items()):
            if kind == "i":
                parts.append(f"type({n}) is int")
            elif kind == "f":
                parts.append(f"type({n}) is float")
            elif kind == "b":
                parts.append(f"type({n}) is bool")
            else:
                lanes = kind[1]
                parts.append(f"type({n}) is list")
                parts.append(f"len({n}) == {lanes}")
                for j in range(lanes):
                    parts.append(f"type({n}[{j}]) is float")
        return parts

    def _assemble(self, ind: int) -> list[str]:
        g, tel = self.g, self.tel
        p0, p1, p2 = ("    " * (ind + d) for d in (0, 1, 2))
        lines = []
        probe = " and ".join(self._probe_parts()) or "True"
        lines.append(f"{p0}{g} = {probe}")
        lines.append(f"{p0}if not {g}: {tel}('type-probe')")
        lines.append(f"{p0}if {g}:")
        lines.extend(p1 + ln for ln in self.count_lines)
        # each conjunct narrows the guard via its own ``if`` so the
        # first one to fail names the fallback reason; later conjuncts
        # short-circuit on the dead guard exactly like ``g = g and ...``
        for reason, e in self.conj2:
            lines.append(
                f"{p1}if {g} and not ({e}): {g} = False; {tel}({reason!r})"
            )
        lines.append(f"{p0}if {g}:")
        lines.append(f"{p1}with ERR(all='ignore'):")
        head = []
        if self.need_ar:
            head.append(f"{self.ar_name} = NP.arange({self.tn})")
        for lanes, t in sorted(self.need_lane.items()):
            head.append(f"{t} = NP.arange({lanes})")
        lines.extend(p2 + ln for ln in head + self.compute)
        lines.append(f"{p0}if {g}:")
        lines.append(f"{p1}{tel}('array')")
        for rel, ln in self.finals:
            lines.append("    " * (ind + 1 + rel) + ln)
        lines.extend(p1 + ln for ln in self.commits)
        return lines


# ---------------------------------------------------------------------------
# Compiler, program, executor
# ---------------------------------------------------------------------------


@dataclass
class ArrayProgram(FusedProgram):
    """A fused program whose eligible loops carry a batched fast path."""

    array_regions: tuple = ()  # loop names with a vectorized fast path
    accounting: bool = True


class _ArrayCompiler(_FusedCompiler):
    """Emits fused code whose loops dispatch to NumPy fast paths."""

    def __init__(self, fn: Function, cost_model: CostModel, max_steps: int,
                 account: bool = True):
        super().__init__(fn, cost_model, max_steps, account=account)
        self.array_regions: list[str] = []
        self._np_ok = _memory._np is not None

    def emit_loop(self, loop: Loop, ind: int) -> None:
        k = self.new_counter()
        self.loop_row(loop, k)
        fast = None
        # exact mode needs the integral-cost fold for analytic accounting
        if self._np_ok and (self.int_mode or not self.account):
            plan = _plan_loop(loop)
            if plan is not None:
                try:
                    fast = _LoopGen(self, loop, plan, k).generate(ind)
                except _Bail:
                    fast = None
        if fast is None:
            self.emit_loop_scalar(loop, ind, k)
            return
        lines, gname = fast
        log_start = len(self._sb_log)
        saved, self.body = self.body, []
        self.emit_loop_scalar(loop, ind + 1, k)
        scalar_lines, self.body = self.body, saved
        if self.account:
            gmap = {ids: gidx for gidx, ids in self._sb_log[log_start:]}
            lines = _resolve_counters(lines, plan, gmap)
        self.body.extend(lines)
        self.w(ind, f"if not {gname}:")
        self.body.extend(scalar_lines)
        self.array_regions.append(loop.name)

    def compile(self) -> ArrayProgram:
        p = super().compile()
        return ArrayProgram(
            fn_name=p.fn_name,
            run=p.run,
            source=p.source,
            n_counters=p.n_counters,
            arg_count=p.arg_count,
            globals_used=p.globals_used,
            counter_table=p.counter_table,
            item_ids=p.item_ids,
            array_regions=tuple(self.array_regions),
            accounting=self.account,
        )


def _resolve_counters(lines: list[str], plan: _Plan, gmap: dict) -> list[str]:
    """Substitute superblock counter indices allocated by the scalar arm
    into the fast path's analytic ``C[...] += mask.sum()`` bumps."""
    subs = {}
    for gi, grp in enumerate(plan.groups):
        if grp.key is True:
            continue
        ids = tuple(id(it) for it in grp.items)
        gidx = gmap.get(ids)
        assert gidx is not None, "superblock grouping diverged"
        subs[f"@@G{gi}@@"] = str(gidx)
    out = []
    for ln in lines:
        if "@@G" in ln:
            for ph, idx in subs.items():
                ln = ln.replace(ph, idx)
        out.append(ln)
    return out


_ARRAY_CACHE: "WeakKeyDictionary[Function, dict]" = WeakKeyDictionary()


def array_function(
    fn: Function,
    cost_model: Optional[CostModel] = None,
    max_steps: int = 200_000_000,
    accounting: bool = True,
) -> ArrayProgram:
    """Translate ``fn`` into an :class:`ArrayProgram` (cached)."""
    cm = cost_model if cost_model is not None else DEFAULT_COST_MODEL
    per_fn = _ARRAY_CACHE.get(fn)
    if per_fn is None:
        per_fn = _ARRAY_CACHE[fn] = {}
    key = (id(cm), max_steps, bool(accounting))
    prog = per_fn.get(key)
    if prog is None:
        with telemetry.span("translate", detail=fn.name, backend="array"):
            prog = per_fn[key] = _ArrayCompiler(
                fn, cm, max_steps, account=bool(accounting)
            ).compile()
    return prog


def clear_array_cache() -> None:
    _ARRAY_CACHE.clear()


def _accounting_from_env() -> bool:
    v = os.environ.get("REPRO_ACCOUNTING", "exact").strip().lower()
    return v not in ("off", "0", "false", "no", "speed")


class ArrayExecutor(FusedExecutor):
    """Drop-in executor running batched whole-loop NumPy code.

    In exact mode (the default) cycles, counters, per-opcode counts and
    per-region diagnostics are bit-identical to the reference
    interpreter; ``REPRO_ACCOUNTING=off`` (or ``accounting=False``)
    selects speed mode, which folds accounting away entirely and
    reports zero cycles/counters.
    """

    def __init__(
        self,
        module: Optional[Module] = None,
        memory=None,
        cost_model: Optional[CostModel] = None,
        externals: Optional[dict] = None,
        max_steps: int = 200_000_000,
        accounting: Optional[bool] = None,
    ):
        super().__init__(module, memory, cost_model, externals, max_steps)
        self.accounting = (
            _accounting_from_env() if accounting is None else bool(accounting)
        )

    def _program(self, fn: Function) -> ArrayProgram:
        return array_function(
            fn, self.cost_model, self.max_steps, self.accounting
        )


BACKENDS["array"] = ArrayExecutor


__all__ = [
    "ArrayExecutor",
    "ArrayProgram",
    "array_function",
    "clear_array_cache",
]
