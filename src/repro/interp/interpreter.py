"""Reference interpreter for predicated SSA.

Executes functions directly in predicated form (paper Fig. 15b is directly
executable here): items run in order, an item runs iff its predicate
evaluates true, loops are do-while with simultaneous mu updates at the back
edge.  The interpreter doubles as the evaluation testbed — it charges
cycles through :class:`~repro.interp.costmodel.CostModel` and maintains the
dynamic counters (loads, branches, checks) that the Fig. 22 table reports.

Predicate evaluation uses *missing-is-false*: a literal whose defining
instruction did not execute makes the conjunction false.  This is sound for
verifier-clean programs because a literal's guard is always a subset of the
using item's guard.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from repro.ir.instructions import (
    Alloca,
    BinOp,
    Broadcast,
    BuildVector,
    Call,
    Cast,
    Cmp,
    Eta,
    ExtractLane,
    Instruction,
    Load,
    Mu,
    Phi,
    PtrAdd,
    Reduce,
    Select,
    Shuffle,
    Store,
    UnOp,
    VecBin,
    VecCmp,
    VecLoad,
    VecSelect,
    VecStore,
    VecUn,
)
from repro.diag.context import get_context
from repro.ir.loops import Function, GlobalArray, Loop, Module, ScopeMixin
from repro.ir.predicates import Predicate
from repro.ir.values import Argument, Constant, Undef, Value

from .costmodel import DEFAULT_COST_MODEL, CostModel
from .memory import Memory


class InterpreterError(Exception):
    pass


class StepLimitExceeded(InterpreterError):
    pass


@dataclass
class Counters:
    """Dynamic execution statistics."""

    instructions: int = 0
    loads: int = 0
    stores: int = 0
    branches: int = 0
    backedges: int = 0
    checks: int = 0
    vector_ops: int = 0
    calls: int = 0
    by_opcode: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {
            "instructions": self.instructions,
            "loads": self.loads,
            "stores": self.stores,
            "branches": self.branches,
            "backedges": self.backedges,
            "checks": self.checks,
            "vector_ops": self.vector_ops,
            "calls": self.calls,
            "by_opcode": dict(self.by_opcode),
        }

    def merge(self, other: "Counters") -> "Counters":
        """Accumulate ``other`` into self (for aggregate profiles)."""
        self.instructions += other.instructions
        self.loads += other.loads
        self.stores += other.stores
        self.branches += other.branches
        self.backedges += other.backedges
        self.checks += other.checks
        self.vector_ops += other.vector_ops
        self.calls += other.calls
        for op, n in other.by_opcode.items():
            self.by_opcode[op] = self.by_opcode.get(op, 0) + n
        return self


@dataclass
class ExecutionResult:
    return_value: object
    cycles: float
    counters: Counters
    memory: Memory
    # per-region cycle attribution (list of RegionProfile), populated only
    # when the diagnostic context is enabled — see repro.diag.profile
    profile: Optional[list] = None


# external function: (interpreter, memory, args) -> return value
ExternalFn = Callable[["Interpreter", Memory, list], object]


def _default_externals() -> dict[str, ExternalFn]:
    return {
        # an opaque "cold" function; by default it only burns cycles
        "cold_func": lambda interp, mem, args: 0,
        "sqrt": lambda interp, mem, args: math.sqrt(args[0]),
        "fabs": lambda interp, mem, args: abs(args[0]),
    }


def _int_div(a: int, b: int) -> int:
    """C-style truncating integer division."""
    q = abs(a) // abs(b)
    return q if (a >= 0) == (b >= 0) else -q


def _int_rem(a: int, b: int) -> int:
    return a - _int_div(a, b) * b


def _binop(op: str, a, b):
    if op == "add":
        return a + b
    if op == "sub":
        return a - b
    if op == "mul":
        return a * b
    if op == "div":
        if isinstance(a, int) and isinstance(b, int):
            return _int_div(a, b)
        return a / b
    if op == "rem":
        if isinstance(a, int) and isinstance(b, int):
            return _int_rem(a, b)
        return math.fmod(a, b)
    if op == "min":
        return min(a, b)
    if op == "max":
        return max(a, b)
    if op == "and":
        return int(a) & int(b)
    if op == "or":
        return int(a) | int(b)
    if op == "xor":
        return int(a) ^ int(b)
    if op == "shl":
        return int(a) << int(b)
    if op == "shr":
        return int(a) >> int(b)
    if op == "pow":
        return a**b
    raise InterpreterError(f"unknown binary op {op}")


def _unop(op: str, a):
    if op == "neg":
        return -a
    if op == "not":
        return not bool(a)
    if op == "sqrt":
        return math.sqrt(a)
    if op == "abs":
        return abs(a)
    if op == "exp":
        return math.exp(a)
    if op == "log":
        return math.log(a)
    if op == "floor":
        return math.floor(a)
    if op == "sin":
        return math.sin(a)
    if op == "cos":
        return math.cos(a)
    raise InterpreterError(f"unknown unary op {op}")


def _cmp(rel: str, a, b) -> bool:
    if rel == "eq":
        return a == b
    if rel == "ne":
        return a != b
    if rel == "lt":
        return a < b
    if rel == "le":
        return a <= b
    if rel == "gt":
        return a > b
    if rel == "ge":
        return a >= b
    raise InterpreterError(f"unknown comparison {rel}")


_MISSING = object()


class Interpreter:
    """Executes predicated-SSA functions over a :class:`Memory`."""

    def __init__(
        self,
        module: Optional[Module] = None,
        memory: Optional[Memory] = None,
        cost_model: Optional[CostModel] = None,
        externals: Optional[dict[str, ExternalFn]] = None,
        max_steps: int = 200_000_000,
    ):
        self.module = module
        self.memory = memory if memory is not None else Memory()
        self.cost_model = cost_model if cost_model is not None else DEFAULT_COST_MODEL
        self.externals = _default_externals()
        if externals:
            self.externals.update(externals)
        self.max_steps = max_steps
        self.global_bases: dict[GlobalArray, int] = {}
        if module is not None:
            for g in module.globals.values():
                self.global_bases[g] = self.memory.alloc(g.size, g.name)

    def global_base(self, name: str) -> int:
        assert self.module is not None
        return self.global_bases[self.module.globals[name]]

    # -- main entry ---------------------------------------------------------

    def run(self, fn: Function | str, args: Sequence = ()) -> ExecutionResult:
        if isinstance(fn, str):
            assert self.module is not None
            fn = self.module.functions[fn]
        if len(args) != len(fn.args):
            raise InterpreterError(
                f"{fn.name} expects {len(fn.args)} args, got {len(args)}"
            )
        env: dict[Value, object] = dict(zip(fn.args, args))
        self._counters = Counters()
        self._cycles = 0.0
        self._steps = 0
        self._env = env
        # per-item execution counts for the region profile: collected only
        # when diagnostics are on; cycles/counters are unaffected either way
        profiling = get_context().enabled
        self._prof_counts: Optional[dict[int, int]] = {} if profiling else None
        self._prof_iters: Optional[dict[int, int]] = {} if profiling else None
        self._execute_scope(fn)
        ret = None
        if fn.return_value is not None:
            ret = self._lookup(fn.return_value)
        profile = None
        if profiling:
            from repro.diag.profile import build_profile

            profile = build_profile(
                fn, self._prof_counts, self._prof_iters, self.cost_model
            )
        return ExecutionResult(
            ret, self._cycles, self._counters, self.memory, profile
        )

    # -- value lookup --------------------------------------------------------

    def _lookup(self, v: Value):
        got = self._env.get(v, _MISSING)
        if got is not _MISSING:
            return got
        if isinstance(v, Constant):
            return v.value
        if isinstance(v, GlobalArray):
            base = self.global_bases.get(v)
            if base is None:
                raise InterpreterError(f"global {v.name} not allocated")
            return base
        if isinstance(v, Undef):
            return 0
        raise InterpreterError(f"value {v!r} has no binding (did it execute?)")

    def _try_lookup(self, v: Value):
        try:
            return self._lookup(v)
        except InterpreterError:
            return _MISSING

    def _eval_pred(self, pred: Predicate) -> bool:
        for lit in pred.literals:
            raw = self._try_lookup(lit.value)
            if raw is _MISSING:
                return False
            b = bool(raw)
            if lit.negated:
                b = not b
            if not b:
                return False
        return True

    # -- execution -----------------------------------------------------------

    def _tick(self) -> None:
        self._steps += 1
        if self._steps > self.max_steps:
            raise StepLimitExceeded(f"exceeded {self.max_steps} steps")

    def _execute_scope(self, scope: ScopeMixin) -> None:
        for item in scope.items:
            if isinstance(item, Loop):
                if self._eval_pred(item.predicate):
                    self._run_loop(item)
            else:
                inst: Instruction = item  # type: ignore[assignment]
                if self._eval_pred(inst.predicate):
                    self._execute(inst)

    def _run_loop(self, loop: Loop) -> None:
        env = self._env
        for mu in loop.mus:
            env[mu] = self._lookup(mu.init)
        pi = self._prof_iters
        while True:
            self._tick()
            self._execute_scope(loop)
            self._counters.backedges += 1
            self._counters.branches += 1
            self._cycles += self.cost_model.loop_backedge
            if pi is not None:
                k = id(loop)
                pi[k] = pi.get(k, 0) + 1
            assert loop.cont is not None
            cont_raw = self._try_lookup(loop.cont)
            if cont_raw is _MISSING or not bool(cont_raw):
                break
            nexts = []
            for mu in loop.mus:
                assert mu.rec is not None
                nexts.append(self._lookup(mu.rec))
            for mu, v in zip(loop.mus, nexts):
                env[mu] = v

    def _execute(self, inst: Instruction) -> None:
        self._tick()
        c = self._counters
        c.instructions += 1
        c.by_opcode[inst.opcode] = c.by_opcode.get(inst.opcode, 0) + 1
        self._cycles += self.cost_model.instruction_cost(inst)
        pc = self._prof_counts
        if pc is not None:
            k = id(inst)
            pc[k] = pc.get(k, 0) + 1
        look = self._lookup
        env = self._env

        if isinstance(inst, BinOp):
            env[inst] = _binop(inst.op, look(inst.operands[0]), look(inst.operands[1]))
        elif isinstance(inst, UnOp):
            env[inst] = _unop(inst.op, look(inst.operands[0]))
        elif isinstance(inst, Cmp):
            env[inst] = _cmp(inst.rel, look(inst.operands[0]), look(inst.operands[1]))
            if inst.is_branch_source:
                c.branches += 1
            if inst.is_versioning_check:
                c.checks += 1
        elif isinstance(inst, Select):
            env[inst] = (
                look(inst.true_value) if bool(look(inst.cond)) else look(inst.false_value)
            )
        elif isinstance(inst, Cast):
            v = look(inst.operands[0])
            if inst.type.is_int():
                env[inst] = int(v)
            elif inst.type.is_float():
                env[inst] = float(v)
            elif inst.type.is_bool():
                env[inst] = bool(v)
            else:
                env[inst] = v
        elif isinstance(inst, PtrAdd):
            env[inst] = int(look(inst.base)) + int(look(inst.index))
        elif isinstance(inst, Load):
            env[inst] = self.memory.load(look(inst.pointer))
            c.loads += 1
        elif isinstance(inst, Store):
            self.memory.store(look(inst.pointer), look(inst.value))
            c.stores += 1
        elif isinstance(inst, Alloca):
            env[inst] = self.memory.alloc(inst.size, inst.name)
        elif isinstance(inst, Call):
            fn = self.externals.get(inst.callee)
            if fn is None:
                raise InterpreterError(f"no external function {inst.callee!r}")
            env[inst] = fn(self, self.memory, [look(a) for a in inst.operands])
            c.calls += 1
        elif isinstance(inst, Phi):
            result = _MISSING
            for v, p in inst.incomings():
                if self._eval_pred(p):
                    result = look(v)
                    break
            env[inst] = 0 if result is _MISSING else result
        elif isinstance(inst, Mu):
            raise InterpreterError("mu executed outside loop header")
        elif isinstance(inst, Eta):
            env[inst] = look(inst.inner)
        elif isinstance(inst, VecLoad):
            env[inst] = self.memory.load_block(look(inst.pointer), inst.access_slots)
            c.loads += 1
            c.vector_ops += 1
        elif isinstance(inst, VecStore):
            self.memory.store_block(look(inst.pointer), look(inst.value))
            c.stores += 1
            c.vector_ops += 1
        elif isinstance(inst, VecBin):
            a, b = look(inst.operands[0]), look(inst.operands[1])
            env[inst] = [_binop(inst.op, x, y) for x, y in zip(a, b)]
            c.vector_ops += 1
        elif isinstance(inst, VecUn):
            env[inst] = [_unop(inst.op, x) for x in look(inst.operands[0])]
            c.vector_ops += 1
        elif isinstance(inst, VecCmp):
            a, b = look(inst.operands[0]), look(inst.operands[1])
            env[inst] = [_cmp(inst.rel, x, y) for x, y in zip(a, b)]
            c.vector_ops += 1
        elif isinstance(inst, VecSelect):
            mask = look(inst.operands[0])
            t, f = look(inst.operands[1]), look(inst.operands[2])
            env[inst] = [tv if bool(m) else fv for m, tv, fv in zip(mask, t, f)]
            c.vector_ops += 1
        elif isinstance(inst, BuildVector):
            env[inst] = [look(o) for o in inst.operands]
            c.vector_ops += 1
        elif isinstance(inst, ExtractLane):
            env[inst] = look(inst.operands[0])[inst.lane]
        elif isinstance(inst, Shuffle):
            a = look(inst.operands[0])
            pool = list(a)
            if len(inst.operands) > 1:
                pool = pool + list(look(inst.operands[1]))
            env[inst] = [pool[i] for i in inst.mask]
            c.vector_ops += 1
        elif isinstance(inst, Broadcast):
            env[inst] = [look(inst.operands[0])] * inst.type.lanes
            c.vector_ops += 1
        elif isinstance(inst, Reduce):
            vec = look(inst.operands[0])
            acc = vec[0]
            for x in vec[1:]:
                acc = _binop(inst.op, acc, x)
            env[inst] = acc
            c.vector_ops += 1
        else:  # pragma: no cover - defensive
            raise InterpreterError(f"cannot execute {type(inst).__name__}")


__all__ = [
    "Interpreter",
    "InterpreterError",
    "StepLimitExceeded",
    "Counters",
    "ExecutionResult",
]
