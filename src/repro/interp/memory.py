"""Flat, slot-addressed memory for the IR interpreter.

Pointers are plain integer slot addresses into one flat space, so *any* two
pointers can genuinely alias — including partially-overlapping array
views.  This is essential: the whole point of run-time versioning checks is
that aliasing is a dynamic property, and the experiments (e.g. PolyBench
with ``restrict`` disabled, the s258 parameter-array variant) pass
overlapping and non-overlapping pointers to the same compiled code.

The slab is a flat NumPy ``float64`` array when NumPy is available (a
plain Python list otherwise — same API, same semantics), which makes the
block transfers behind vector loads/stores and workload initialization
single slice operations.  Exactness is preserved by an *overlay*: any
value that is not a plain Python ``float`` (ints, bools, or anything an
external function stores) lives in a sparse ``{addr: object}`` dict and
is returned on load exactly as it was stored, so integer semantics
(C-style truncating division, bit ops) survive a memory round trip on
every backend.

Addresses below :data:`NULL_PAGE` are a reserved null page: allocation
starts at 16 and any load or store below the first allocation raises
:class:`MemoryError_` instead of silently reading 0.0, so null-pointer
dereferences fail loudly.
"""

from __future__ import annotations

from typing import Iterable, Sequence

try:  # the slab is numpy-backed when available; the fallback is identical
    import numpy as _np
except ImportError:  # pragma: no cover - the image bakes numpy in
    _np = None

#: first valid slot address; 0..15 form the reserved null page
NULL_PAGE = 16

_ABSENT = object()


class _PySlab(list):
    """Pure-Python stand-in for the NumPy slab (numpy-less installs)."""

    def item(self, i):
        return self[i]


class MemoryError_(Exception):
    """Out-of-bounds or invalid memory access."""


class Memory:
    """A flat array of numeric slots with a bump allocator.

    Internals (relied on by the compiled/fused backends' inlined access
    paths, so they are stable attributes rather than private details):

    * ``_arr``  — the float64 slab; ``_arr.item(a)`` yields a plain float
    * ``_exo``  — the non-float overlay dict (never rebound, only mutated)
    * ``_next`` — the bump-allocation high-water mark
    """

    def __init__(self, size: int = 1 << 20):
        if _np is not None:
            self._arr = _np.zeros(size, dtype=_np.float64)
        else:
            self._arr = _PySlab([0.0] * size)
        self._exo: dict = {}
        self._next = NULL_PAGE  # low addresses reserved so 0 is "null"
        self.size = size

    # -- allocation ---------------------------------------------------------

    def alloc(self, nslots: int, name: str = "") -> int:
        """Reserve ``nslots`` contiguous slots; returns the base address."""
        if nslots < 0:
            raise MemoryError_(f"negative allocation ({name})")
        base = self._next
        self._next += nslots
        if self._next > self.size:
            raise MemoryError_(
                f"out of memory allocating {nslots} slots for {name or 'array'}"
            )
        return base

    @property
    def high_water(self) -> int:
        return self._next

    # -- access -------------------------------------------------------------

    def _check(self, addr: int) -> None:
        if not (NULL_PAGE <= addr < self._next):
            raise MemoryError_(f"access to unallocated address {addr}")

    def load(self, addr: int):
        addr = int(addr)
        self._check(addr)
        if self._exo:
            v = self._exo.get(addr, _ABSENT)
            if v is not _ABSENT:
                return v
        return self._arr.item(addr)

    def store(self, addr: int, value) -> None:
        addr = int(addr)
        self._check(addr)
        if type(value) is float:
            self._arr[addr] = value
            if self._exo:
                self._exo.pop(addr, None)
        else:
            self._exo[addr] = value

    def load_block(self, addr: int, n: int) -> list:
        addr = int(addr)
        self._check(addr)
        if n > 0:
            self._check(addr + n - 1)
        out = self._arr[addr : addr + n]
        if type(out) is not list:
            out = out.tolist()
        if self._exo:
            for k, v in self._exo.items():
                if addr <= k < addr + n:
                    out[k - addr] = v
        return out

    def store_block(self, addr: int, values: Sequence) -> None:
        addr = int(addr)
        vals = list(values)
        n = len(vals)
        self._check(addr)
        if n > 0:
            self._check(addr + n - 1)
        if all(type(v) is float for v in vals):
            self._arr[addr : addr + n] = vals
            if self._exo:
                for k in [k for k in self._exo if addr <= k < addr + n]:
                    del self._exo[k]
        else:
            for i, v in enumerate(vals):
                if type(v) is float:
                    self._arr[addr + i] = v
                    self._exo.pop(addr + i, None)
                else:
                    self._exo[addr + i] = v

    # -- bulk helpers for workloads ----------------------------------------

    def write_array(self, base: int, values: Iterable) -> None:
        vals = list(values)
        self.store_block(base, vals)

    def read_array(self, base: int, n: int) -> list:
        return self.load_block(base, n)


__all__ = ["Memory", "MemoryError_", "NULL_PAGE"]
