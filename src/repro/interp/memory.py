"""Flat, slot-addressed memory for the IR interpreter.

Pointers are plain integer slot addresses into one flat space, so *any* two
pointers can genuinely alias — including partially-overlapping array
views.  This is essential: the whole point of run-time versioning checks is
that aliasing is a dynamic property, and the experiments (e.g. PolyBench
with ``restrict`` disabled, the s258 parameter-array variant) pass
overlapping and non-overlapping pointers to the same compiled code.
"""

from __future__ import annotations

from typing import Iterable, Sequence


class MemoryError_(Exception):
    """Out-of-bounds or invalid memory access."""


class Memory:
    """A flat array of numeric slots with a bump allocator."""

    def __init__(self, size: int = 1 << 20):
        self._slots: list[float] = [0.0] * size
        self._next = 16  # keep low addresses unused so 0 is a safe "null"
        self.size = size

    # -- allocation ---------------------------------------------------------

    def alloc(self, nslots: int, name: str = "") -> int:
        """Reserve ``nslots`` contiguous slots; returns the base address."""
        if nslots < 0:
            raise MemoryError_(f"negative allocation ({name})")
        base = self._next
        self._next += nslots
        if self._next > self.size:
            raise MemoryError_(
                f"out of memory allocating {nslots} slots for {name or 'array'}"
            )
        return base

    @property
    def high_water(self) -> int:
        return self._next

    # -- access -------------------------------------------------------------

    def _check(self, addr: int) -> None:
        if not (0 <= addr < self._next):
            raise MemoryError_(f"access to unallocated address {addr}")

    def load(self, addr: int):
        addr = int(addr)
        self._check(addr)
        return self._slots[addr]

    def store(self, addr: int, value) -> None:
        addr = int(addr)
        self._check(addr)
        self._slots[addr] = value

    def load_block(self, addr: int, n: int) -> list:
        addr = int(addr)
        self._check(addr)
        self._check(addr + n - 1)
        return self._slots[addr : addr + n]

    def store_block(self, addr: int, values: Sequence) -> None:
        addr = int(addr)
        self._check(addr)
        self._check(addr + len(values) - 1)
        self._slots[addr : addr + len(values)] = list(values)

    # -- bulk helpers for workloads ----------------------------------------

    def write_array(self, base: int, values: Iterable) -> None:
        vals = list(values)
        self.store_block(base, vals)

    def read_array(self, base: int, n: int) -> list:
        return self.load_block(base, n)


__all__ = ["Memory", "MemoryError_"]
