"""Cycle cost model — the stand-in for the paper's Xeon testbed.

The paper measures wall-clock medians on hardware; we count deterministic
abstract cycles.  The model is deliberately simple and lane-parallel: a
VL-wide vector operation costs the same as one scalar operation, memory
operations cost more than ALU operations, and data-movement instructions
(gathers, shuffles, lane extracts) have real costs so the SLP cost model
faces the same trade-offs the paper's does (a gathered operand can make a
pack unprofitable; versioning checks have visible overhead).

Absolute speedups therefore differ from the paper's, but the *shape* —
which kernels vectorization wins, how check overhead scales, where
versioning stops paying — is preserved.  EXPERIMENTS.md records both.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir.instructions import (
    Alloca,
    BinOp,
    Broadcast,
    BuildVector,
    Call,
    Cast,
    Cmp,
    Eta,
    ExtractLane,
    Instruction,
    Load,
    Mu,
    Phi,
    PtrAdd,
    Reduce,
    Select,
    Shuffle,
    Store,
    UnOp,
    VecBin,
    VecCmp,
    VecLoad,
    VecSelect,
    VecStore,
    VecUn,
)

_EXPENSIVE_OPS = {"div", "rem", "pow"}
_EXPENSIVE_UNOPS = {"sqrt", "exp", "log", "sin", "cos"}


@dataclass
class CostModel:
    """Per-operation cycle costs."""

    alu: float = 1.0
    expensive_alu: float = 8.0
    mem: float = 2.0
    addr: float = 0.0  # address arithmetic folds into the access (AGU)
    branch: float = 1.0  # charged per executed branch-source comparison
    loop_backedge: float = 1.0
    call: float = 25.0
    join: float = 0.0  # phi/mu/eta resolve to register renaming
    lane_move: float = 1.0  # insert/extract one lane
    shuffle: float = 1.0
    reduce: float = 3.0
    select: float = 1.0

    def instruction_cost(self, inst: Instruction) -> float:
        if isinstance(inst, (Phi, Mu, Eta)):
            return self.join
        if isinstance(inst, PtrAdd):
            return self.addr
        if isinstance(inst, (Load, Store, VecLoad, VecStore)):
            return self.mem
        if isinstance(inst, (BinOp, VecBin)):
            return self.expensive_alu if inst.op in _EXPENSIVE_OPS else self.alu
        if isinstance(inst, (UnOp, VecUn)):
            return self.expensive_alu if inst.op in _EXPENSIVE_UNOPS else self.alu
        if isinstance(inst, Cmp):
            return self.alu + (self.branch if inst.is_branch_source else 0.0)
        if isinstance(inst, VecCmp):
            return self.alu
        if isinstance(inst, (Select, VecSelect)):
            return self.select
        if isinstance(inst, Cast):
            return self.alu
        if isinstance(inst, BuildVector):
            return self.lane_move * len(inst.operands)
        if isinstance(inst, ExtractLane):
            return self.lane_move
        if isinstance(inst, Broadcast):
            return self.lane_move
        if isinstance(inst, Shuffle):
            return self.shuffle
        if isinstance(inst, Reduce):
            return self.reduce
        if isinstance(inst, Call):
            return self.call
        if isinstance(inst, Alloca):
            return 0.0
        return self.alu


DEFAULT_COST_MODEL = CostModel()

__all__ = ["CostModel", "DEFAULT_COST_MODEL"]
