"""Superblock-fused execution backend for predicated SSA.

The third (fastest) execution tier.  Where the reference interpreter
dispatches per item per iteration and the closure-compiled backend
(:mod:`repro.interp.compile`) still pays one Python *call* per item per
iteration, this backend emits **one** ``exec``-generated Python function
per :class:`~repro.ir.loops.Function` containing the whole program as
straight-line code:

* every loop body becomes a native ``while`` loop whose body is inline
  bytecode — no per-instruction closures, no dispatch of any kind;
* SSA values become Python *locals* (the fastest storage CPython has),
  pre-initialized to a ``MISSING`` sentinel so missing-is-false
  predicate semantics survive;
* runs of consecutive items that share the same flattened execution
  predicate form a *superblock*: the predicate is evaluated once, the
  block gets a single shared execution counter, and (when exact — see
  below) its cycle charges collapse into a single constant add;
* scalar memory accesses inline the NumPy-slab fast path of
  :class:`~repro.interp.memory.Memory` with the same bounds check and
  error text as the other tiers; VL-wide loads/stores go through the
  slab's slice-based block transfers.

**Accounting invariant** (same contract as the compiled tier, enforced
by the three-way differential fuzz oracle): cycles and
:class:`~repro.interp.interpreter.Counters` — including ``by_opcode``
and the per-region diagnostic attribution — are bit-identical to the
reference interpreter.  Counter identity is structural: a superblock
counts once per execution and per-item counts are reconstructed from the
block counts, whose static deltas match the interpreter's updates
exactly.  Cycle identity under folding needs care because float addition
is not associative: the per-path constant folding (one ``cy += k`` per
block / per loop iteration) is applied **only when every cost the
function can charge is integer-valued** (the default cost model is), in
which case the accumulator stays an exact integer and folded and
sequential addition are provably bit-identical; for fractional cost
models the backend falls back to emitting the reference's per-item adds
in the reference's order, preserving bit-identity at straight-line speed.

Like the compiled tier, translation is cached weakly per function and
keyed by cost model and step limit; the step limit is enforced per loop
iteration.  Vector *arithmetic* is emitted as inline per-lane
expressions rather than NumPy ufuncs deliberately: ``np.float64``
scalars diverge from Python floats on division-by-zero and NaN min/max
ordering, and at VL∈{2,4,8} ufunc launch overhead exceeds the loop — the
NumPy win lives in the memory slab's block transfers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Optional, Sequence
from weakref import WeakKeyDictionary

from repro import telemetry
from repro.diag.context import get_context
from repro.ir.instructions import (
    Alloca,
    BinOp,
    Broadcast,
    BuildVector,
    Call,
    Cast,
    Cmp,
    Eta,
    ExtractLane,
    Instruction,
    Load,
    Mu,
    Phi,
    PtrAdd,
    Reduce,
    Select,
    Shuffle,
    Store,
    UnOp,
    VecBin,
    VecCmp,
    VecLoad,
    VecSelect,
    VecStore,
    VecUn,
)
from repro.ir.loops import Function, GlobalArray, Loop, Module, ScopeMixin
from repro.ir.values import Constant, Undef, Value

from .compile import (
    BACKENDS,
    _BIN_IMPL,
    _BIN_SYM,
    _CMP_SYM,
    _UN_IMPL,
    _div,
    _rem,
)
from .costmodel import DEFAULT_COST_MODEL, CostModel
from .interpreter import (
    Counters,
    ExecutionResult,
    InterpreterError,
    StepLimitExceeded,
    _default_externals,
)
from . import memory as _memory
from .memory import Memory, MemoryError_, NULL_PAGE

_MISSING = object()

# infix spellings for the ops the reference implements via int coercion
_INT_BIN_SYM = {"and": "&", "or": "|", "xor": "^", "shl": "<<", "shr": ">>"}


# ---------------------------------------------------------------------------
# Fused program
# ---------------------------------------------------------------------------


@dataclass
class FusedProgram:
    """One exec-compiled function plus the metadata to rebuild Counters."""

    fn_name: str
    run: Callable  # run(A, M, EX, C, G) -> (return_value, cycles)
    source: str  # generated text, kept for debugging/inspection
    n_counters: int
    arg_count: int
    globals_used: tuple  # GlobalArray objects in G-vector order
    # per IR item: (counter idx, opcode|None, ins, ld, st, br, be, ck, vec, call)
    counter_table: tuple
    item_ids: tuple  # id(IR item) per counter_table row

    def make_counters(self, C: list) -> Counters:
        """Aggregate superblock execution counts into interpreter Counters."""
        c = Counters()
        by = c.by_opcode
        for cidx, op, ins, ld, st, br, be, ck, vec, call in self.counter_table:
            n = C[cidx]
            if not n:
                continue
            if ins:
                c.instructions += ins * n
            if ld:
                c.loads += ld * n
            if st:
                c.stores += st * n
            if br:
                c.branches += br * n
            if be:
                c.backedges += be * n
            if ck:
                c.checks += ck * n
            if vec:
                c.vector_ops += vec * n
            if call:
                c.calls += call * n
            if op is not None:
                by[op] = by.get(op, 0) + n
        return c

    def profile_counts(self, C: list) -> tuple[dict, dict]:
        """(inst counts, loop iteration counts) keyed by id(IR item)."""
        counts: dict[int, int] = {}
        iters: dict[int, int] = {}
        for (cidx, op, *_), item_id in zip(self.counter_table, self.item_ids):
            if op is None:
                iters[item_id] = C[cidx]
            else:
                counts[item_id] = C[cidx]
        return counts, iters


# ---------------------------------------------------------------------------
# The translator
# ---------------------------------------------------------------------------


class _FusedCompiler:
    def __init__(self, fn: Function, cost_model: CostModel, max_steps: int,
                 account: bool = True):
        self.fn = fn
        self.cost = cost_model
        self.max_steps = max_steps
        # ``account=False`` (the array tier's speed mode) folds the whole
        # accounting layer away: no counter updates, no cycle adds, no
        # counter-table rows.  The step limit is then enforced with a
        # per-invocation local instead of the cumulative C[k] counter.
        self.account = account
        self.body: list[str] = []
        self.consts: dict[str, object] = {}
        self._names: dict[Value, str] = {}
        self._bound: set[str] = set()  # names assigned in the prelude
        self._globals: list[GlobalArray] = []
        self._n_counters = 0
        self._tmp = 0
        self._table: list[tuple] = []
        self._ids: list[int] = []
        # (counter idx, item-id tuple) per emitted superblock — the array
        # tier reads this to charge the same counters analytically
        self._sb_log: list[tuple[int, tuple]] = []
        self.int_mode = False
        # With no Alloca and no Call the allocation high-water mark is
        # fixed for the whole run, so bounds checks can read a local.
        self.nx = "M._next"
        # Inline block transfers only on the NumPy slab (list slices have
        # no .tolist() and go through Memory.load_block/store_block).
        self._np_slab = _memory._np is not None

    # -- small emission helpers ------------------------------------------

    def w(self, ind: int, text: str) -> None:
        self.body.append("    " * ind + text)

    def tmp(self) -> str:
        self._tmp += 1
        return f"t{self._tmp}"

    def new_counter(self) -> int:
        k = self._n_counters
        self._n_counters += 1
        return k

    def name(self, v: Value) -> str:
        n = self._names.get(v)
        if n is None:
            n = self._names[v] = f"v{len(self._names)}"
            if isinstance(v, GlobalArray):
                self._globals.append(v)
                self._bound.add(n)
        return n

    def hoist(self, nm: str, val) -> str:
        self.consts[nm] = val
        return nm

    def hoist_value(self, val) -> str:
        nm = f"K{len(self.consts)}"
        self.consts[nm] = val
        return nm

    def lit(self, val) -> str:
        """A source literal that evaluates to exactly ``val``."""
        if val is None:
            return "None"
        if isinstance(val, bool):
            return repr(val)
        if isinstance(val, int) or (isinstance(val, float) and math.isfinite(val)):
            r = repr(val)  # repr round-trips exactly in Python 3
            # parenthesize negatives: bare `-2 ** x` would parse as -(2**x)
            return f"({r})" if r.startswith("-") else r
        return self.hoist_value(val)

    def flit(self, cost: float) -> str:
        return self.lit(float(cost))

    def expr(self, v: Value, wrap: str = "") -> str:
        if isinstance(v, Constant):
            val = int(v.value) if wrap == "int" else v.value
            return self.lit(val)
        if isinstance(v, Undef):
            return "0"
        n = self.name(v)
        return f"int({n})" if wrap == "int" else n

    # -- predicate flattening --------------------------------------------

    def pred(self, p):
        """``True`` | ``False`` | tuple of ``(local name, negated)`` terms."""
        if p.is_true():
            return True
        terms: list[tuple[str, bool]] = []
        for lit in p.literals:
            v = lit.value
            if isinstance(v, Constant):
                if bool(v.value) == lit.negated:
                    return False
                continue  # statically-true literal
            if isinstance(v, Undef):
                # reference lookup yields 0 -> literal holds iff negated
                if not lit.negated:
                    return False
                continue
            terms.append((self.name(v), lit.negated))
        if not terms:
            return True
        return tuple(terms)

    @staticmethod
    def cond(terms) -> str:
        parts = []
        for n, neg in terms:
            if neg:
                parts.append(f"({n} is not MISS and not {n})")
            else:
                parts.append(f"({n} is not MISS and {n})")
        return " and ".join(parts)

    # -- counter bookkeeping (same static deltas as the other tiers) -----

    def inst_row(self, inst: Instruction, cidx: int) -> None:
        if not self.account:
            return
        ld = st = br = ck = vec = call = 0
        if isinstance(inst, (Load, VecLoad)):
            ld = 1
        if isinstance(inst, (Store, VecStore)):
            st = 1
        if isinstance(inst, Cmp):
            if inst.is_branch_source:
                br = 1
            if inst.is_versioning_check:
                ck = 1
        if isinstance(
            inst,
            (VecLoad, VecStore, VecBin, VecUn, VecCmp, VecSelect, BuildVector,
             Shuffle, Broadcast, Reduce),
        ):
            vec = 1
        if isinstance(inst, Call):
            call = 1
        self._ids.append(id(inst))
        self._table.append((cidx, inst.opcode, 1, ld, st, br, 0, ck, vec, call))

    def loop_row(self, loop: Loop, cidx: int) -> None:
        if not self.account:
            return
        # one back edge and one branch per iteration, no instruction count
        self._ids.append(id(loop))
        self._table.append((cidx, None, 0, 0, 0, 1, 1, 0, 0, 0))

    # -- integral-cost scan ----------------------------------------------

    def _all_integral(self) -> bool:
        if not float(self.cost.loop_backedge).is_integer():
            return False

        def walk(scope: ScopeMixin) -> bool:
            for item in scope.items:
                if isinstance(item, Loop):
                    if not walk(item):
                        return False
                elif not float(self.cost.instruction_cost(item)).is_integer():
                    return False
            return True

        return walk(self.fn)

    def _allocates(self) -> bool:
        """Whether any item can move the allocation high-water mark."""

        def walk(scope: ScopeMixin) -> bool:
            for item in scope.items:
                if isinstance(item, Loop):
                    if walk(item):
                        return True
                elif isinstance(item, (Alloca, Call)):
                    # externals get the Memory and may alloc through it
                    return True
            return False

        return walk(self.fn)

    # -- scopes and superblocks ------------------------------------------

    def emit_scope(self, scope: ScopeMixin, ind: int, scope_cidx: int) -> float:
        """Emit a scope's items; returns the summed cost of unconditional
        instructions (int mode — charged once by the scope's owner)."""
        pending = []
        for item in scope.items:
            p = self.pred(item.predicate)
            if p is False:
                continue  # statically dead, like the other tiers
            pending.append((p, item))
        uncond = 0.0
        i = 0
        while i < len(pending):
            p, item = pending[i]
            if p is True:
                if isinstance(item, Loop):
                    self.emit_loop(item, ind)
                else:
                    uncond += self.emit_inst(item, ind, scope_cidx,
                                             folded=self.int_mode)
                i += 1
                continue
            # superblock: consecutive items sharing one flattened predicate.
            # SSA guarantees no item inside the run redefines a predicate
            # term (an item defining a term cannot carry the same
            # predicate), so one evaluation covers the whole block.
            j = i
            group = []
            while j < len(pending) and pending[j][0] == p:
                group.append(pending[j][1])
                j += 1
            gidx = self.new_counter()
            self._sb_log.append((gidx, tuple(id(it) for it in group)))
            self.w(ind, f"if {self.cond(p)}:")
            if self.account:
                self.w(ind + 1, f"C[{gidx}] += 1")
            wrote = len(self.body)
            gsum = 0.0
            for it in group:
                if isinstance(it, Loop):
                    self.emit_loop(it, ind + 1)
                else:
                    gsum += self.emit_inst(it, ind + 1, gidx,
                                           folded=self.int_mode)
            if self.account and self.int_mode and gsum:
                self.w(ind + 1, f"cy += {int(gsum)}")
            if not self.account and len(self.body) == wrote:
                self.w(ind + 1, "pass")  # block emitted nothing visible
            i = j
        return uncond

    # -- loops -----------------------------------------------------------

    def emit_loop(self, loop: Loop, ind: int) -> None:
        k = self.new_counter()
        self.loop_row(loop, k)
        self.emit_loop_scalar(loop, ind, k)

    def emit_loop_scalar(self, loop: Loop, ind: int, k: int) -> None:
        """The iterating form of a loop, charging iterations to counter
        ``k``.  Split from :meth:`emit_loop` so the array tier can emit
        this same code as the fallback arm of its runtime dispatch while
        sharing the counter with the batched fast path."""
        for mu in loop.mus:  # sequential init reads, like the reference
            self.w(ind, f"{self.name(mu)} = {self.expr(mu.init)}")
        t = self.tmp()
        if not self.account:
            # speed mode: the step limit is per invocation (a local), not
            # cumulative across invocations like the C[k] counter
            self.w(ind, f"{t} = 0")
        self.w(ind, "while True:")
        bind = ind + 1
        uncond = self.emit_scope(loop, bind, k)
        if self.account:
            self.w(bind, f"{t} = C[{k}] + 1")
            self.w(bind, f"C[{k}] = {t}")
        else:
            self.w(bind, f"{t} = {t} + 1")
        self.w(bind, f"if {t} > {self.max_steps}:")
        msg = f"loop {loop.name} exceeded {self.max_steps} iterations"
        self.w(bind + 1, f"raise SLE({msg!r})")
        if self.account:
            be = float(self.cost.loop_backedge)
            if self.int_mode:
                total = int(uncond + be)
                if total:
                    self.w(bind, f"cy += {total}")
            elif be != 0.0:
                self.w(bind, f"cy += {self.flit(be)}")
        cont = loop.cont
        assert cont is not None, f"loop {loop.name} has no continuation"
        if isinstance(cont, Constant):
            if not bool(cont.value):
                self.w(bind, "break")
                return
            cname = None  # statically-true continuation: run to the limit
        elif isinstance(cont, Undef):
            self.w(bind, "break")
            return
        else:
            cname = self.name(cont)
        if cname is not None:
            self.w(bind, f"if {cname} is MISS or not {cname}:")
            self.w(bind + 1, "break")
        mus = list(loop.mus)
        if not mus:
            return
        broken = [mu for mu in mus if mu.rec is None]
        if broken:
            m2 = f"mu {broken[0].display_name()} has no recurrence operand"
            self.w(bind, f"raise IE({m2!r})")
        elif len(mus) == 1:
            self.w(bind, f"{self.name(mus[0])} = {self.expr(mus[0].rec)}")
        else:
            # simultaneous mu update: tuple assignment reads every
            # recurrence before writing any header local (the reference's
            # two-phase next-value buffer)
            lhs = ", ".join(self.name(mu) for mu in mus)
            rhs = ", ".join(self.expr(mu.rec) for mu in mus)
            self.w(bind, f"{lhs} = {rhs}")

    # -- instructions ----------------------------------------------------

    def emit_inst(self, inst: Instruction, ind: int, cidx: int,
                  folded: bool) -> float:
        cost = float(self.cost.instruction_cost(inst)) if self.account else 0.0
        self.inst_row(inst, cidx)
        if not folded and cost != 0.0:
            # fractional cost model: charge per item in reference order
            self.w(ind, f"cy += {self.flit(cost)}")

        if isinstance(inst, BinOp):
            self._emit_binop_like(inst, ind, self.name(inst), inst.op,
                                  inst.operands[0], inst.operands[1])
        elif isinstance(inst, Cmp):
            d = self.name(inst)
            a, b = self.expr(inst.operands[0]), self.expr(inst.operands[1])
            self.w(ind, f"{d} = {a} {_CMP_SYM[inst.rel]} {b}")
        elif isinstance(inst, UnOp):
            d = self.name(inst)
            a = self.expr(inst.operands[0])
            if inst.op == "neg":
                self.w(ind, f"{d} = -{a}")
            elif inst.op == "not":
                self.w(ind, f"{d} = not {a}")
            elif inst.op == "abs":
                self.w(ind, f"{d} = abs({a})")
            else:
                f = self.hoist(f"F_{inst.op}", _UN_IMPL[inst.op])
                self.w(ind, f"{d} = {f}({a})")
        elif isinstance(inst, Select):
            d = self.name(inst)
            c = self.expr(inst.cond)
            t, f = self.expr(inst.true_value), self.expr(inst.false_value)
            self.w(ind, f"{d} = {t} if {c} else {f}")
        elif isinstance(inst, Cast):
            self._emit_cast(inst, ind)
        elif isinstance(inst, PtrAdd):
            d = self.name(inst)
            a = self.expr(inst.base, wrap="int")
            b = self.expr(inst.index, wrap="int")
            self.w(ind, f"{d} = {a} + {b}")
        elif isinstance(inst, Load):
            d = self.name(inst)
            t = self.tmp()
            self.w(ind, f"{t} = {self.expr(inst.pointer, wrap='int')}")
            self.w(ind, f"if {t} < {NULL_PAGE} or {t} >= {self.nx}:")
            self.w(ind + 1,
                   f"raise E('access to unallocated address %d' % {t})")
            self.w(ind, f"{d} = AI({t}) if not EXO else ML({t})")
        elif isinstance(inst, Store):
            tp, tv = self.tmp(), self.tmp()
            self.w(ind, f"{tp} = {self.expr(inst.pointer, wrap='int')}")
            self.w(ind, f"{tv} = {self.expr(inst.value)}")
            self.w(ind, f"if {tp} < {NULL_PAGE} or {tp} >= {self.nx}:")
            self.w(ind + 1,
                   f"raise E('access to unallocated address %d' % {tp})")
            self.w(ind, f"if type({tv}) is float and not EXO:")
            self.w(ind + 1, f"ARR[{tp}] = {tv}")
            self.w(ind, "else:")
            self.w(ind + 1, f"MS({tp}, {tv})")
        elif isinstance(inst, Alloca):
            d = self.name(inst)
            self.w(ind, f"{d} = M.alloc({inst.size}, {inst.name!r})")
        elif isinstance(inst, Call):
            d = self.name(inst)
            tf = self.tmp()
            self.w(ind, f"{tf} = EXT.get({inst.callee!r})")
            self.w(ind, f"if {tf} is None:")
            m = f"no external function {inst.callee!r}"
            self.w(ind + 1, f"raise IE({m!r})")
            args = ", ".join(self.expr(o) for o in inst.operands)
            self.w(ind, f"{d} = {tf}(EX, M, [{args}])")
        elif isinstance(inst, Phi):
            self._emit_phi(inst, ind)
        elif isinstance(inst, Mu):
            raise InterpreterError("mu compiled outside loop header")
        elif isinstance(inst, Eta):
            self.w(ind, f"{self.name(inst)} = {self.expr(inst.inner)}")
        elif isinstance(inst, VecLoad):
            d = self.name(inst)
            n = inst.access_slots
            if self._np_slab and n > 0:
                t = self.tmp()
                self.w(ind, f"{t} = {self.expr(inst.pointer, wrap='int')}")
                self._emit_block_check(t, n, ind)
                self.w(ind, f"{d} = ARR[{t}:{t}+{n}].tolist() "
                            f"if not EXO else LV({t}, {n})")
            else:
                self.w(ind, f"{d} = LV({self.expr(inst.pointer)}, {n})")
        elif isinstance(inst, VecStore):
            n = inst.access_slots
            if self._np_slab and n > 0:
                t, tv = self.tmp(), self.tmp()
                self.w(ind, f"{t} = {self.expr(inst.pointer, wrap='int')}")
                self.w(ind, f"{tv} = {self.expr(inst.value)}")
                self._emit_block_check(t, n, ind)
                lanes = " and ".join(
                    f"type({tv}[{k}]) is float" for k in range(n)
                )
                self.w(ind, f"if not EXO and {lanes}:")
                self.w(ind + 1, f"ARR[{t}:{t}+{n}] = {tv}")
                self.w(ind, "else:")
                self.w(ind + 1, f"SV({t}, {tv})")
            else:
                p, v = self.expr(inst.pointer), self.expr(inst.value)
                self.w(ind, f"SV({p}, {v})")
        elif isinstance(inst, (VecBin, VecCmp)):
            d = self.name(inst)
            a, b = self.expr(inst.operands[0]), self.expr(inst.operands[1])
            if isinstance(inst, VecCmp):
                e = f"x {_CMP_SYM[inst.rel]} y"
            else:
                e = self._lane_binexpr(inst.op, "x", "y")
            self.w(ind, f"{d} = [{e} for x, y in zip({a}, {b})]")
        elif isinstance(inst, VecUn):
            d = self.name(inst)
            a = self.expr(inst.operands[0])
            if inst.op == "neg":
                e = "-x"
            elif inst.op == "not":
                e = "not x"
            elif inst.op == "abs":
                e = "abs(x)"
            else:
                f = self.hoist(f"F_{inst.op}", _UN_IMPL[inst.op])
                e = f"{f}(x)"
            self.w(ind, f"{d} = [{e} for x in {a}]")
        elif isinstance(inst, VecSelect):
            d = self.name(inst)
            m_ = self.expr(inst.operands[0])
            t_ = self.expr(inst.operands[1])
            f_ = self.expr(inst.operands[2])
            self.w(ind, f"{d} = [t if m else f "
                        f"for m, t, f in zip({m_}, {t_}, {f_})]")
        elif isinstance(inst, BuildVector):
            d = self.name(inst)
            lanes = ", ".join(self.expr(o) for o in inst.operands)
            self.w(ind, f"{d} = [{lanes}]")
        elif isinstance(inst, ExtractLane):
            d = self.name(inst)
            self.w(ind, f"{d} = {self.expr(inst.operands[0])}[{inst.lane}]")
        elif isinstance(inst, Shuffle):
            d = self.name(inst)
            t = self.tmp()
            if len(inst.operands) > 1:
                a, b = self.expr(inst.operands[0]), self.expr(inst.operands[1])
                self.w(ind, f"{t} = list({a}) + list({b})")
            else:
                self.w(ind, f"{t} = {self.expr(inst.operands[0])}")
            picks = ", ".join(f"{t}[{j}]" for j in inst.mask)
            self.w(ind, f"{d} = [{picks}]")
        elif isinstance(inst, Broadcast):
            d = self.name(inst)
            self.w(ind,
                   f"{d} = [{self.expr(inst.operands[0])}] * {inst.type.lanes}")
        elif isinstance(inst, Reduce):
            d = self.name(inst)
            tv, ta, tx = self.tmp(), self.tmp(), self.tmp()
            self.w(ind, f"{tv} = {self.expr(inst.operands[0])}")
            self.w(ind, f"{ta} = {tv}[0]")
            self.w(ind, f"for {tx} in {tv}[1:]:")
            self.w(ind + 1, f"{ta} = {self._lane_binexpr(inst.op, ta, tx)}")
            self.w(ind, f"{d} = {ta}")
        else:
            raise InterpreterError(f"cannot compile {type(inst).__name__}")
        return cost if folded else 0.0

    def _emit_block_check(self, t: str, n: int, ind: int) -> None:
        """Same two bounds probes (and messages) as Memory.load_block."""
        self.w(ind, f"if {t} < {NULL_PAGE} or {t} >= {self.nx}:")
        self.w(ind + 1, f"raise E('access to unallocated address %d' % {t})")
        if n > 1:
            self.w(ind, f"if {t} + {n - 1} >= {self.nx}:")
            self.w(ind + 1, "raise E('access to unallocated address %d'"
                            f" % ({t} + {n - 1}))")

    def _lane_binexpr(self, op: str, x: str, y: str) -> str:
        """Expression applying scalar BinOp semantics to operands x, y."""
        sym = _BIN_SYM.get(op)
        if sym is not None:
            return f"{x} {sym} {y}"
        if op in ("min", "max"):
            return f"{op}({x}, {y})"
        if op == "div":
            return f"_div({x}, {y})"
        if op == "rem":
            return f"_rem({x}, {y})"
        isym = _INT_BIN_SYM.get(op)
        if isym is not None:
            return f"int({x}) {isym} int({y})"
        f = self.hoist(f"B_{op}", _BIN_IMPL[op])
        return f"{f}({x}, {y})"

    def _emit_binop_like(self, inst, ind, d, op, va, vb) -> None:
        isym = _INT_BIN_SYM.get(op)
        if isym is not None:
            a = self.expr(va, wrap="int")
            b = self.expr(vb, wrap="int")
            self.w(ind, f"{d} = {a} {isym} {b}")
            return
        a, b = self.expr(va), self.expr(vb)
        self.w(ind, f"{d} = {self._lane_binexpr(op, a, b)}")

    def _emit_cast(self, inst: Cast, ind: int) -> None:
        d = self.name(inst)
        ty = inst.type
        conv = ("int" if ty.is_int() else "float" if ty.is_float()
                else "bool" if ty.is_bool() else None)
        src = inst.operands[0]
        if isinstance(src, (Constant, Undef)):
            val = 0 if isinstance(src, Undef) else src.value
            if conv is not None:
                val = {"int": int, "float": float, "bool": bool}[conv](val)
            self.w(ind, f"{d} = {self.lit(val)}")
            return
        a = self.name(src)
        if conv is None:
            self.w(ind, f"{d} = {a}")
        else:
            self.w(ind, f"{d} = {conv}({a})")

    def _emit_phi(self, inst: Phi, ind: int) -> None:
        d = self.name(inst)
        cases: list[tuple[object, str]] = []
        for v, p in inst.incomings():
            cp = self.pred(p)
            if cp is False:
                continue
            cases.append((cp, self.expr(v)))
            if cp is True:
                break  # later incomings are unreachable
        if not cases:
            self.w(ind, f"{d} = 0")
            return
        if cases[0][0] is True:
            self.w(ind, f"{d} = {cases[0][1]}")
            return
        kw = "if"
        terminal = False
        for cp, e in cases:
            if cp is True:
                self.w(ind, "else:")
                self.w(ind + 1, f"{d} = {e}")
                terminal = True
                break
            self.w(ind, f"{kw} {self.cond(cp)}:")
            self.w(ind + 1, f"{d} = {e}")
            kw = "elif"
        if not terminal:
            self.w(ind, "else:")
            self.w(ind + 1, f"{d} = 0")

    # -- top level -------------------------------------------------------

    def compile(self) -> FusedProgram:
        fn = self.fn
        self.int_mode = self._all_integral()
        hoist_next = not self._allocates()
        if hoist_next:
            self.nx = "NX"
        arg_names = [self.name(a) for a in fn.args]
        self._bound.update(arg_names)

        top = self.new_counter()  # counter 0: the function's own scope
        if self.account:
            self.w(1, f"C[{top}] = 1")
        uncond = self.emit_scope(fn, 1, top)
        if self.int_mode and uncond:
            self.w(1, f"cy += {int(uncond)}")
        self._emit_return(fn.return_value)

        prelude = [
            "def run(A, M, EX, C, G):",
            "    ARR = M._arr",
            "    EXO = M._exo",
            "    AI = ARR.item",
            "    ML = M.load",
            "    MS = M.store",
            "    LV = M.load_block",
            "    SV = M.store_block",
            "    EXT = EX.externals",
        ]
        if hoist_next:
            prelude.append("    NX = M._next")
        if arg_names:
            sep = "," if len(arg_names) == 1 else ""
            prelude.append(f"    {', '.join(arg_names)}{sep} = A")
        for j, g in enumerate(self._globals):
            prelude.append(f"    {self._names[g]} = G[{j}]")
        unbound = [n for v, n in self._names.items() if n not in self._bound]
        for i in range(0, len(unbound), 16):
            chunk = unbound[i : i + 16]
            prelude.append(f"    {' = '.join(chunk)} = MISS")
        prelude.append("    cy = 0" if self.int_mode else "    cy = 0.0")

        src = "\n".join(prelude + self.body) + "\n"
        ns: dict = {
            "MISS": _MISSING,
            "E": MemoryError_,
            "IE": InterpreterError,
            "SLE": StepLimitExceeded,
            "_div": _div,
            "_rem": _rem,
        }
        ns.update(self.consts)
        code = compile(src, f"<fused:{fn.name}>", "exec")
        exec(code, ns)  # noqa: S102 - generated from the checked IR above
        return FusedProgram(
            fn_name=fn.name,
            run=ns["run"],
            source=src,
            n_counters=self._n_counters,
            arg_count=len(fn.args),
            globals_used=tuple(self._globals),
            counter_table=tuple(self._table),
            item_ids=tuple(self._ids),
        )

    def _emit_return(self, rv: Optional[Value]) -> None:
        tail = "float(cy)" if self.int_mode else "cy"
        if rv is None:
            self.w(1, f"return None, {tail}")
            return
        if isinstance(rv, (Constant, Undef)):
            val = 0 if isinstance(rv, Undef) else rv.value
            self.w(1, f"return {self.lit(val)}, {tail}")
            return
        n = self.name(rv)
        msg = f"value {rv.display_name()} has no binding (did it execute?)"
        self.w(1, f"if {n} is MISS:")
        self.w(2, f"raise IE({msg!r})")
        self.w(1, f"return {n}, {tail}")


# ---------------------------------------------------------------------------
# Fuse cache and executor
# ---------------------------------------------------------------------------

_FUSE_CACHE: "WeakKeyDictionary[Function, dict]" = WeakKeyDictionary()


def fuse_function(
    fn: Function,
    cost_model: Optional[CostModel] = None,
    max_steps: int = 200_000_000,
) -> FusedProgram:
    """Translate ``fn`` into a :class:`FusedProgram` (cached).

    Weak on the function, keyed by cost model identity and step limit —
    the same compile-once/run-many contract as the compiled tier.
    Functions must not be mutated after their first fused execution.
    """
    cm = cost_model if cost_model is not None else DEFAULT_COST_MODEL
    per_fn = _FUSE_CACHE.get(fn)
    if per_fn is None:
        per_fn = _FUSE_CACHE[fn] = {}
    key = (id(cm), max_steps)
    prog = per_fn.get(key)
    if prog is None:
        with telemetry.span("translate", detail=fn.name, backend="fused"):
            prog = per_fn[key] = _FusedCompiler(fn, cm, max_steps).compile()
    return prog


def clear_fuse_cache() -> None:
    _FUSE_CACHE.clear()


class FusedExecutor:
    """Drop-in executor running superblock-fused code.

    Same constructor and :meth:`run` contract as the other two backends;
    bit-identical cycles, counters, memory effects, checksums, and return
    values by construction and by the three-way differential suite.  The
    step limit bounds loop iterations, like the compiled tier.
    """

    def __init__(
        self,
        module: Optional[Module] = None,
        memory: Optional[Memory] = None,
        cost_model: Optional[CostModel] = None,
        externals: Optional[dict] = None,
        max_steps: int = 200_000_000,
    ):
        self.module = module
        self.memory = memory if memory is not None else Memory()
        self.cost_model = cost_model if cost_model is not None else DEFAULT_COST_MODEL
        self.externals = _default_externals()
        if externals:
            self.externals.update(externals)
        self.max_steps = max_steps
        self.global_bases: dict[GlobalArray, int] = {}
        if module is not None:
            for g in module.globals.values():
                self.global_bases[g] = self.memory.alloc(g.size, g.name)

    def global_base(self, name: str) -> int:
        assert self.module is not None
        return self.global_bases[self.module.globals[name]]

    def _program(self, fn: Function) -> FusedProgram:
        """Translation hook: subclasses swap in a different compiler."""
        return fuse_function(fn, self.cost_model, self.max_steps)

    def run(self, fn: Function | str, args: Sequence = ()) -> ExecutionResult:
        if isinstance(fn, str):
            assert self.module is not None
            fn = self.module.functions[fn]
        prog = self._program(fn)
        if len(args) != prog.arg_count:
            raise InterpreterError(
                f"{fn.name} expects {prog.arg_count} args, got {len(args)}"
            )
        G = []
        for g in prog.globals_used:
            base = self.global_bases.get(g)
            if base is None:
                raise InterpreterError(f"global {g.name} not allocated")
            G.append(base)
        C = [0] * prog.n_counters
        ret, cy = prog.run(tuple(args), self.memory, self, C, G)
        profile = None
        if get_context().enabled:
            from repro.diag.profile import build_profile

            counts, iters = prog.profile_counts(C)
            profile = build_profile(fn, counts, iters, self.cost_model)
        return ExecutionResult(ret, cy, prog.make_counters(C), self.memory,
                               profile)


BACKENDS["fused"] = FusedExecutor


__all__ = [
    "FusedExecutor",
    "FusedProgram",
    "clear_fuse_cache",
    "fuse_function",
]
