"""Analysis caching with explicit invalidation (LLVM-new-PM style).

Passes consume analyses (alias analysis, affine decomposition, the
dependence graph); recomputing them from scratch at every query is the
dominant build cost once execution is fast.  :class:`AnalysisManager`
owns one cache per analysis kind and a per-function *epoch*:

* ``alias()`` returns one shared :class:`AliasAnalysis` (stateless, so
  it is never invalidated — passes declare it preserved);
* ``depgraph(scope)`` caches one :class:`DependenceGraph` per
  ``(scope, assume_independent)`` key and revalidates it against the
  scope's current item list;
* ``invalidate(fn, preserved={...})`` is called by every pass that
  mutated ``fn``, dropping whatever the pass did not declare preserved
  and bumping the function's epoch.

The epoch doubles as the *clean-round* tracker the pipeline uses to
skip whole scalar-cleanup rounds: after a round where every pass
reported zero changes, the function is marked clean at its current
epoch; any later invalidation clears the mark.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro import telemetry
from repro.ir.loops import Function, ScopeMixin

from .alias import AliasAnalysis
from .depgraph import DependenceGraph

_DEP_HELP = "dependence-graph cache lookups by outcome"

#: Analysis kind names accepted in ``preserved`` sets.
ALIAS = "alias"
DEPGRAPH = "depgraph"
ALL_ANALYSES = frozenset({ALIAS, DEPGRAPH})


class AnalysisManager:
    """Per-module analysis caches with preserved-analyses invalidation."""

    def __init__(self, honor_restrict: bool = True):
        self.honor_restrict = honor_restrict
        self._alias: Optional[AliasAnalysis] = None
        # (id(scope), frozenset(assume_independent)) -> graph; the scope
        # object is kept alive through graph.scope, so ids stay unique.
        self._graphs: dict[tuple, DependenceGraph] = {}
        self._epoch: dict[int, int] = {}
        self._clean: dict[int, int] = {}

    # -- analyses -------------------------------------------------------------

    def alias(self) -> AliasAnalysis:
        if self._alias is None:
            self._alias = AliasAnalysis(honor_restrict=self.honor_restrict)
        return self._alias

    def depgraph(
        self,
        scope: ScopeMixin,
        assume_independent: Optional[Iterable[tuple[int, int]]] = None,
    ) -> DependenceGraph:
        """The dependence graph for ``scope``, rebuilt only when the
        scope's item list changed or a pass invalidated it."""
        assume = frozenset(assume_independent or ())
        key = (id(scope), assume)
        hit = self._graphs.get(key)
        if hit is not None and hit.items == list(scope.items):
            telemetry.counter("repro_analysis_depgraph_requests_total",
                              _DEP_HELP, outcome="hit").inc()
            return hit
        telemetry.counter("repro_analysis_depgraph_requests_total",
                          _DEP_HELP,
                          outcome="stale" if hit is not None else "miss").inc()
        g = DependenceGraph(scope, self.alias(), assume_independent=set(assume))
        self._graphs[key] = g
        return g

    # -- invalidation ---------------------------------------------------------

    def epoch(self, fn: Function) -> int:
        return self._epoch.get(id(fn), 0)

    def invalidate(
        self, fn: Optional[Function] = None,
        preserved: frozenset = frozenset((ALIAS,)),
    ) -> None:
        """Drop cached results a mutating pass did not declare preserved.

        ``fn=None`` invalidates everything.  ``AliasAnalysis`` is
        stateless, so passes normally declare it preserved; a pass that
        changes aliasing structure itself (materialization stamping
        noalias groups) passes ``preserved=frozenset()``, which also
        drops the alias instance.
        """
        telemetry.counter("repro_analysis_invalidations_total",
                          "analysis-cache invalidations by scope",
                          scope="function" if fn is not None else "module",
                          ).inc()
        if DEPGRAPH not in preserved:
            self._graphs.clear()
        if ALIAS not in preserved:
            self._alias = None
        if fn is not None:
            self._epoch[id(fn)] = self._epoch.get(id(fn), 0) + 1
            self._clean.pop(id(fn), None)
        else:
            for k in list(self._epoch):
                self._epoch[k] += 1
            self._clean.clear()

    # -- clean-round tracking -------------------------------------------------

    def mark_clean(self, fn: Function) -> None:
        """Record that a full cleanup round changed nothing on ``fn``."""
        self._clean[id(fn)] = self.epoch(fn)

    def is_clean(self, fn: Function) -> bool:
        """True when no pass has touched ``fn`` since an all-zero round."""
        return self._clean.get(id(fn)) == self.epoch(fn)


__all__ = ["AnalysisManager", "ALL_ANALYSES", "ALIAS", "DEPGRAPH"]
