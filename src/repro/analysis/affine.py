"""Affine (linear) symbolic expressions over IR values — SCEV-lite.

An :class:`Affine` is ``const + sum(coeff_k * sym_k)`` where each symbol is
an opaque IR value (argument, mu, load result, ...).  This is the engine
behind:

* memory-location decomposition (base pointer + affine offset),
* static disambiguation of same-base accesses whose offsets differ by a
  constant,
* redundant-condition elimination (§IV-A: two intersection checks are
  equivalent when range offsets match), and
* condition promotion (§IV-A: rewriting an induction-variable-dependent
  range as a loop-invariant range via the add-recurrence of the IV).

:func:`addrec_of` recognizes ``v = base + step * k`` (k the iteration
counter of a given loop) — the classic SCEV add-recurrence restricted to
what the paper's checks need.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.ir.instructions import BinOp, Cast, Instruction, Mu, PtrAdd, UnOp
from repro.ir.loops import Loop
from repro.ir.values import Constant, Value


class Affine:
    """Immutable affine form ``const + Σ coeff * symbol``."""

    __slots__ = ("terms", "const")

    def __init__(self, terms: Optional[dict[Value, int]] = None, const: int = 0):
        self.terms: dict[Value, int] = {
            k: v for k, v in (terms or {}).items() if v != 0
        }
        self.const = const

    # -- constructors -------------------------------------------------------

    @staticmethod
    def constant(c: int) -> "Affine":
        return Affine({}, c)

    @staticmethod
    def symbol(v: Value) -> "Affine":
        return Affine({v: 1}, 0)

    # -- algebra ---------------------------------------------------------------

    def add(self, other: "Affine") -> "Affine":
        terms = dict(self.terms)
        for k, c in other.terms.items():
            terms[k] = terms.get(k, 0) + c
        return Affine(terms, self.const + other.const)

    def sub(self, other: "Affine") -> "Affine":
        return self.add(other.scale(-1))

    def scale(self, c: int) -> "Affine":
        if c == 0:
            return Affine.constant(0)
        return Affine({k: v * c for k, v in self.terms.items()}, self.const * c)

    # -- queries ------------------------------------------------------------------

    def is_constant(self) -> bool:
        return not self.terms

    def symbols(self) -> list[Value]:
        return list(self.terms)

    def coeff(self, v: Value) -> int:
        return self.terms.get(v, 0)

    def drop(self, v: Value) -> "Affine":
        terms = dict(self.terms)
        terms.pop(v, None)
        return Affine(terms, self.const)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Affine)
            and self.const == other.const
            and self.terms == other.terms
        )

    def __hash__(self) -> int:
        return hash((self.const, frozenset(self.terms.items())))

    def __str__(self) -> str:
        parts = []
        for v, c in sorted(self.terms.items(), key=lambda kv: kv[0].vid):
            name = v.display_name()
            parts.append(name if c == 1 else f"{c}*{name}")
        if self.const or not parts:
            parts.append(str(self.const))
        return " + ".join(parts)

    def __repr__(self) -> str:
        return f"Affine({self})"


def difference(a: Affine, b: Affine) -> Optional[int]:
    """The constant ``a - b``, or None if they differ symbolically."""
    d = a.sub(b)
    return d.const if d.is_constant() else None


def affine_of(value: Value, _depth: int = 0) -> Affine:
    """Decompose ``value`` into affine form.

    Unanalyzable sub-expressions become opaque symbols, so the result is
    always exact: ``affine_of(v)`` evaluated over any environment equals
    ``v``'s value.
    """
    if _depth > 64:
        return Affine.symbol(value)
    if isinstance(value, Constant):
        if isinstance(value.value, bool) or not isinstance(value.value, int):
            # float/bool constants are not offsets; keep opaque
            return Affine.symbol(value)
        return Affine.constant(value.value)
    if isinstance(value, PtrAdd):
        return affine_of(value.base, _depth + 1).add(affine_of(value.index, _depth + 1))
    if isinstance(value, BinOp):
        a = affine_of(value.operands[0], _depth + 1)
        b = affine_of(value.operands[1], _depth + 1)
        if value.op == "add":
            return a.add(b)
        if value.op == "sub":
            return a.sub(b)
        if value.op == "mul":
            if a.is_constant():
                return b.scale(a.const)
            if b.is_constant():
                return a.scale(b.const)
        if value.op == "shl" and b.is_constant():
            return a.scale(1 << b.const)
        return Affine.symbol(value)
    if isinstance(value, UnOp) and value.op == "neg":
        return affine_of(value.operands[0], _depth + 1).scale(-1)
    return Affine.symbol(value)


# ---------------------------------------------------------------------------
# Add-recurrences
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class AddRec:
    """``base + step * k`` where k counts iterations of ``loop`` from 0."""

    base: Affine
    step: Affine
    loop: Loop


def _defined_in(loop: Loop) -> set[Value]:
    vals: set[Value] = set(loop.mus)
    for inst in loop.instructions():
        vals.add(inst)
    return vals


def is_invariant(aff: Affine, loop: Loop, _inner: Optional[set[Value]] = None) -> bool:
    """True when no symbol of ``aff`` is defined inside ``loop``."""
    inner = _inner if _inner is not None else _defined_in(loop)
    return all(s not in inner for s in aff.symbols())


def mu_step(mu: Mu) -> Optional[Affine]:
    """If ``mu``'s recurrence is ``mu + s`` with ``s`` loop-invariant,
    return ``s``; otherwise None."""
    if mu.rec is None or mu.loop is None:
        return None
    rec = affine_of(mu.rec)
    if rec.coeff(mu) != 1:
        return None
    step = rec.drop(mu)
    if not is_invariant(step, mu.loop):
        return None
    return step


def addrec_of(value: Value, loop: Loop) -> Optional[AddRec]:
    """Express ``value`` as ``base + step*k`` over iterations of ``loop``."""
    return addrec_of_affine(affine_of(value), loop)


def addrec_of_affine(aff: Affine, loop: Loop) -> Optional[AddRec]:
    """Express an affine form as ``base + step*k`` over iterations of
    ``loop``.

    Every mu of ``loop`` appearing in the affine form must have a simple
    invariant-step recurrence; symbols defined elsewhere inside the loop
    defeat the analysis (returns None).  ``base`` is guaranteed
    loop-invariant.
    """
    inner = _defined_in(loop)
    base = Affine.constant(aff.const)
    step = Affine.constant(0)
    for sym, coeff in aff.terms.items():
        if isinstance(sym, Mu) and sym.loop is loop:
            s = mu_step(sym)
            if s is None:
                return None
            base = base.add(affine_of(sym.init).scale(coeff))
            step = step.add(s.scale(coeff))
        elif sym in inner:
            return None  # loop-variant but not a recognized recurrence
        else:
            base = base.add(Affine({sym: coeff}))
    if not is_invariant(base, loop, inner) or not is_invariant(step, loop, inner):
        return None
    return AddRec(base, step, loop)


def trip_count_affine(loop: Loop) -> Optional[Affine]:
    """Loop-invariant trip count for canonical counted loops.

    Recognizes a continuation of the form ``cmp lt/le (iv_next, bound)``
    where ``iv_next`` advances an induction mu by constant step 1 and
    ``bound`` is loop-invariant.  (This mirrors what the paper's imprecise
    condition promotion requires: "the trip count of the loop is known
    before the loop is executed".)  The loop runs do-while, so the count
    is ``bound - base`` for ``lt`` (``+1`` for ``le``), as an affine over
    loop-invariant symbols.
    """
    from repro.ir.instructions import Cmp

    cont = loop.cont
    if not isinstance(cont, Cmp) or cont.rel not in ("lt", "le"):
        return None
    nxt = addrec_of(cont.operands[0], loop)
    bound_aff = affine_of(cont.operands[1])
    inner = _defined_in(loop)
    if nxt is None or not is_invariant(bound_aff, loop, inner):
        return None
    if not (nxt.step.is_constant() and nxt.step.const == 1):
        return None
    # The continuation tests iv_next = base + k on iteration k (0-based);
    # the loop exits after the first failing iteration, so the iteration
    # count is k* + 1 where k* is the first k with ``base + k >= bound``
    # (lt) — i.e. ``bound - base + 1`` — and one more for ``le``.  The
    # loop's entry guard ensures this is >= 1 whenever the loop runs.
    count = bound_aff.sub(nxt.base).add(Affine.constant(1))
    if cont.rel == "le":
        count = count.add(Affine.constant(1))
    return count


@dataclass(frozen=True)
class CountedLoop:
    """Closed form of a counted do-while loop's continuation.

    The loop continues while ``iv(k) rel bound`` holds, where
    ``iv(k) = base + step*k`` on iteration ``k`` (0-based), ``base`` and
    ``bound`` are loop-invariant affines and ``step`` a nonzero
    compile-time constant.  The trip count is then ``K + 1`` iterations
    where ``K`` is the smallest ``k >= 0`` failing the test — for ``lt``
    with positive step ``K = max(0, ceil((bound - base) / step))``, and
    one extra step of slack for ``le``; decrementing loops (``gt``/``ge``
    with negative step) mirror by negation.
    """

    rel: str  # "lt" | "le" | "gt" | "ge"
    base: Affine
    step: int
    bound: Affine

    def trip_count(self, base: int, bound: int) -> int:
        """Evaluate the trip count for concrete base/bound values."""
        rel, s = self.rel, self.step
        if s < 0:  # mirror a decrementing loop onto an incrementing one
            base, bound, s = -base, -bound, -s
            rel = {"gt": "lt", "ge": "le"}[rel]
        d = bound - base
        if rel == "lt":
            k = -(-d // s)  # ceil
        else:
            k = d // s + 1
        return max(0, k) + 1


def counted_loop_form(loop: Loop) -> Optional[CountedLoop]:
    """Recognize ``loop`` as a counted loop with a constant step.

    This is the generalization of :func:`trip_count_affine` the array
    tier needs: unroll-and-SLP'd loops advance their induction variable
    by the vector length per iteration, and reversed loops decrement, so
    the step may be any nonzero constant and the relation any strict or
    non-strict ordering.  Returns None when the continuation is not a
    comparison of an add-recurrence against an invariant bound, or when
    the relation/step combination does not bound the iteration count
    (e.g. ``lt`` with a negative step never exits by the test).
    """
    from repro.ir.instructions import Cmp

    cont = loop.cont
    if not isinstance(cont, Cmp) or cont.rel not in ("lt", "le", "gt", "ge"):
        return None
    inner = _defined_in(loop)
    rel = cont.rel
    iv = addrec_of(cont.operands[0], loop)
    bound = affine_of(cont.operands[1])
    if iv is None or not is_invariant(bound, loop, inner):
        # allow the mirrored spelling ``cmp rel bound, iv``
        iv = addrec_of(cont.operands[1], loop)
        bound = affine_of(cont.operands[0])
        if iv is None or not is_invariant(bound, loop, inner):
            return None
        rel = {"lt": "gt", "le": "ge", "gt": "lt", "ge": "le"}[rel]
    if not iv.step.is_constant() or iv.step.const == 0:
        return None
    step = iv.step.const
    if step > 0 and rel not in ("lt", "le"):
        return None
    if step < 0 and rel not in ("gt", "ge"):
        return None
    return CountedLoop(rel=rel, base=iv.base, step=step, bound=bound)


__all__ = [
    "Affine",
    "AddRec",
    "CountedLoop",
    "affine_of",
    "addrec_of",
    "addrec_of_affine",
    "counted_loop_form",
    "difference",
    "is_invariant",
    "mu_step",
    "trip_count_affine",
]
