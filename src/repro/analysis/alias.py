"""Alias analysis over memory locations.

Three-valued like LLVM's: ``NO`` / ``MUST`` / ``MAY``.  The interesting
outcome for the versioning framework is ``MAY``: it becomes a *conditional*
dependence with an ``intersects`` condition rather than a hard edge.

Disambiguation sources, in order:

1. **Distinct allocations** — different globals, different allocas, or a
   global vs. an alloca can never overlap.
2. **restrict arguments** — when honored (the Fig. 16 toggle), a restrict
   pointer aliases nothing but itself.
3. **noalias scope groups** (§IV-B) — the materializer stamps every
   instruction versioned for independence with a shared scope id; two
   accesses sharing a group id are pairwise independent *by construction*
   (the run-time check guarantees it), which lets downstream passes (the
   SLP legality filter, GVN, LICM) see through the versioning.
4. **Same base, constant offset delta** — exact interval arithmetic.
"""

from __future__ import annotations

from enum import Enum
from typing import Optional

from repro.ir.instructions import Alloca, Instruction
from repro.ir.loops import GlobalArray
from repro.ir.values import Argument, Value

from .affine import difference
from .memloc import MemLoc, mem_location


class AliasResult(Enum):
    NO = "no"
    MAY = "may"
    MUST = "must"


NOALIAS_GROUPS_KEY = "noalias_groups"


def _is_distinct_allocation(v: Value) -> bool:
    return isinstance(v, (GlobalArray, Alloca))


class AliasAnalysis:
    """Alias queries between instructions / memory locations."""

    def __init__(self, honor_restrict: bool = True):
        self.honor_restrict = honor_restrict

    # -- location-level ------------------------------------------------------

    def alias_locs(self, a: MemLoc, b: MemLoc) -> AliasResult:
        if a.base is b.base:
            delta = difference(a.offset, b.offset)
            if delta is None:
                return AliasResult.MAY
            # ranges [delta, delta+a.size) vs [0, b.size): overlap test
            if delta >= b.size or delta + a.size <= 0:
                return AliasResult.NO
            if delta == 0 and a.size == b.size:
                return AliasResult.MUST
            return AliasResult.MUST  # partial but guaranteed overlap
        base_a, base_b = a.base, b.base
        if _is_distinct_allocation(base_a) and _is_distinct_allocation(base_b):
            return AliasResult.NO
        if self.honor_restrict:
            a_restrict = isinstance(base_a, Argument) and base_a.restrict
            b_restrict = isinstance(base_b, Argument) and base_b.restrict
            if a_restrict and (b_restrict or _is_distinct_allocation(base_b)):
                return AliasResult.NO
            if b_restrict and (a_restrict or _is_distinct_allocation(base_a)):
                return AliasResult.NO
        return AliasResult.MAY

    # -- instruction-level ------------------------------------------------------

    def alias(self, i: Instruction, j: Instruction) -> AliasResult:
        return self.alias_with_locs(i, j, mem_location(i), mem_location(j))

    def alias_with_locs(
        self,
        i: Instruction,
        j: Instruction,
        li: Optional[MemLoc],
        lj: Optional[MemLoc],
    ) -> AliasResult:
        """Like :meth:`alias`, with pre-computed locations — so clients
        holding a location memo (the dependence graph builder) avoid
        re-deriving the affine decomposition per queried pair."""
        gi = i.metadata.get(NOALIAS_GROUPS_KEY)
        gj = j.metadata.get(NOALIAS_GROUPS_KEY)
        if gi and gj and (set(gi) & set(gj)):
            return AliasResult.NO
        if li is None or lj is None:
            # a call: unknown location — may touch anything
            return AliasResult.MAY
        return self.alias_locs(li, lj)


def add_noalias_group(inst: Instruction, group_id: int) -> None:
    """Stamp ``inst`` as a member of noalias scope ``group_id``."""
    groups = inst.metadata.setdefault(NOALIAS_GROUPS_KEY, set())
    groups.add(group_id)


__all__ = ["AliasAnalysis", "AliasResult", "add_noalias_group", "NOALIAS_GROUPS_KEY"]
