"""Memory locations: base object + affine offset + size.

``MemLoc`` is the operand of the paper's ``intersects([m1,m2),[m3,m4))``
dependence conditions: a half-open slot range described symbolically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.ir.instructions import Alloca, Instruction
from repro.ir.loops import GlobalArray
from repro.ir.values import Argument, Value

from .affine import Affine, affine_of


@dataclass(frozen=True)
class MemLoc:
    """A memory range ``[base + offset, base + offset + size)``.

    ``base`` is the *base object symbol* when one can be identified (an
    Argument, GlobalArray, or Alloca), else an opaque pointer value.
    ``pointer`` is the IR value holding the range's start address — the
    thing a materialized run-time check computes with.
    """

    base: Value
    offset: Affine
    size: int
    pointer: Value

    def __str__(self) -> str:
        off = str(self.offset)
        return f"[{self.base.display_name()}+{off}, +{self.size})"


def _is_base_object(v: Value) -> bool:
    return isinstance(v, (GlobalArray, Alloca)) or (
        isinstance(v, Argument) and v.type.is_pointer()
    )


def mem_location(inst: Instruction) -> Optional[MemLoc]:
    """The location accessed by a memory instruction, or None (calls)."""
    ptr = inst.pointer
    if ptr is None:
        return None
    size = inst.access_slots
    aff = affine_of(ptr)
    base: Optional[Value] = None
    for sym in aff.symbols():
        if _is_base_object(sym) and aff.coeff(sym) == 1:
            if base is not None:
                base = None  # two candidate bases: give up
                break
            base = sym
    if base is not None:
        return MemLoc(base, aff.drop(base), size, ptr)
    # no recognizable base: the pointer itself is the base, offset 0
    return MemLoc(ptr, Affine.constant(0), size, ptr)


__all__ = ["MemLoc", "mem_location"]
