"""Dependence graph with dependence conditions (paper Fig. 6/7).

The graph is built per *scope* (a function body or one loop body): nodes
are that scope's items — instructions and whole loops — and an edge
``i -> j`` (i depends on j, j earlier in program order) is labeled with
the dependence condition ``c(i, j)``:

* use-def edges are unconditional, except phi/select operands which carry
  the operand's predicate (Fig. 6's first two cases);
* an instruction that executes under a strictly stronger predicate than
  its dependent yields a predicate condition (``j`` must execute);
* may-alias memory pairs yield ``intersects`` conditions;
* loop nodes aggregate the conditions of their member memory instructions
  (Fig. 6's final case), with ranges *promoted* to loop-invariant form —
  if promotion fails, the check cannot run before the loop and the edge
  degrades to unconditional.

Statically provable no-alias pairs produce no edge at all, and provable
must-alias pairs produce unconditional edges; only genuinely run-time
facts become conditional.
"""

from __future__ import annotations

from typing import NamedTuple, Optional

from repro.ir.instructions import Eta, Instruction, Item, Mu, Phi, Select
from repro.ir.loops import Loop, ScopeMixin
from repro.ir.values import Value

from .affine import Affine, difference
from .alias import AliasAnalysis, AliasResult
from .conditions import (
    FALSE_COND,
    TRUE_COND,
    DepCond,
    IntersectCond,
    PredCond,
    SymRange,
    make_or,
)
from .memloc import mem_location
from .promote import promote_through_loops


def range_of(inst: Instruction) -> Optional[SymRange]:
    """The symbolic slot range accessed by a memory instruction."""
    loc = mem_location(inst)
    if loc is None:
        return None
    return SymRange(loc.base, loc.offset, loc.offset.add(Affine.constant(loc.size)))


class DepEdge(NamedTuple):
    src: Item  # the dependent (later) item
    dst: Item  # the depended-on (earlier) item
    cond: DepCond

    @property
    def conditional(self) -> bool:
        return not self.cond.is_true()


def _instruction_uses(inst: Instruction) -> set[Value]:
    uses: set[Value] = set(inst.operands)
    uses.update(inst.predicate.values())
    if isinstance(inst, Phi):
        for _, p in inst.incomings():
            uses.update(p.values())
    return uses


def _item_defined(item: Item) -> set[Value]:
    if isinstance(item, Loop):
        return set(item.header_and_body_instructions())
    return {item}  # type: ignore[arg-type]


def _item_used(item: Item) -> set[Value]:
    if isinstance(item, Loop):
        used: set[Value] = set()
        for mu in item.mus:
            used.add(mu.init)
        for inst in item.instructions():
            used |= _instruction_uses(inst)
        used.update(item.predicate.values())
        if item.cont is not None:
            used.add(item.cont)
        return used - _item_defined(item)
    return _instruction_uses(item)  # type: ignore[arg-type]


def _enclosing_loops(inst: Instruction, scope: ScopeMixin) -> list[Loop]:
    """Loops containing ``inst``, innermost first, up to (not including)
    ``scope``."""
    loops: list[Loop] = []
    parent = inst.parent
    while parent is not None and parent is not scope:
        if isinstance(parent, Loop):
            loops.append(parent)
        parent = getattr(parent, "parent", None)
    return loops


class DependenceGraph:
    """Conditional dependence graph over one scope's items."""

    def __init__(
        self,
        scope: ScopeMixin,
        alias: Optional[AliasAnalysis] = None,
        assume_independent: Optional[set[tuple[int, int]]] = None,
    ):
        """``assume_independent`` holds ``(id(src), id(dst))`` pairs whose
        dependence has been discharged by an already-materialized
        versioning plan (its run-time check guards the source); the graph
        treats them as absent.  Clients pass a plan's ``removed_edges``
        here when re-analyzing versioned code for scheduling."""
        self.scope = scope
        self.alias = alias if alias is not None else AliasAnalysis()
        self.assume_independent = assume_independent or set()
        self.items: list[Item] = list(scope.items)
        self._index = {id(it): i for i, it in enumerate(self.items)}
        self._defined = {id(it): _item_defined(it) for it in self.items}
        self._used = {id(it): _item_used(it) for it in self.items}
        self._def_item: dict[Value, Item] = {}
        for it in self.items:
            for v in self._defined[id(it)]:
                self._def_item[v] = it
        self._edges: dict[tuple[int, int], DepEdge] = {}
        self._build()
        # out-adjacency in edge insertion order; edges are never added
        # after construction, so this is built once
        self._out: dict[int, list[DepEdge]] = {}
        for (si, _), e in self._edges.items():
            self._out.setdefault(si, []).append(e)

    # -- public API -----------------------------------------------------------

    def deps(self, item: Item) -> list[DepEdge]:
        """Edges from ``item`` to everything it depends on."""
        return list(self._out.get(self._index[id(item)], ()))

    def all_edges(self) -> list[DepEdge]:
        return list(self._edges.values())

    def cond(self, src: Item, dst: Item) -> DepCond:
        e = self._edges.get((self._index[id(src)], self._index[id(dst)]))
        return e.cond if e is not None else FALSE_COND

    def depends(self, src: Item, dst: Item) -> bool:
        return (self._index[id(src)], self._index[id(dst)]) in self._edges

    def defining_item(self, v: Value) -> Optional[Item]:
        return self._def_item.get(v)

    # -- construction ---------------------------------------------------------

    def _build(self) -> None:
        """Candidate-driven construction.

        Instead of evaluating the dependence condition for all
        ``O(n^2)`` ordered pairs, discover the pairs that *can* depend:
        use-def candidates come from looking up each used value's
        defining item, and memory candidates pair items that touch
        memory when at least one of the two may write.  Every other pair
        is provably ``FALSE`` (no shared value, no write between them).
        Edges are inserted in the same (ii ascending, jj ascending)
        order the exhaustive scan used, so downstream consumers that
        iterate edges in insertion order (min-cut plan inference) see an
        identical graph.
        """
        n = len(self.items)
        index = self._index
        # per-item memory summaries, computed once (not per pair)
        self._mems = [it.mem_instructions() for it in self.items]
        has_write = [
            any(m.may_write() for m in mems) for mems in self._mems
        ]
        self._loc_memo: dict[int, object] = {}
        self._range_memo: dict[int, Optional[SymRange]] = {}
        self._loops_memo: dict[int, list[Loop]] = {}
        mem_idxs: list[int] = []  # indices < ii with memory instructions
        for ii in range(n):
            i = self.items[ii]
            cand: set[int] = set()
            for v in self._used[id(i)]:
                it = self._def_item.get(v)
                if it is not None:
                    jj = index[id(it)]
                    if jj < ii:
                        cand.add(jj)
            if self._mems[ii]:
                if has_write[ii]:
                    cand.update(mem_idxs)
                else:
                    cand.update(jj for jj in mem_idxs if has_write[jj])
                mem_idxs.append(ii)
            for jj in sorted(cand):
                j = self.items[jj]
                cond = self._dep_condition(i, j)
                if not cond.is_false():
                    self._edges[(ii, jj)] = DepEdge(i, j, cond)

    def _dep_condition(self, i: Item, j: Item) -> DepCond:
        """``c(i, j)`` — the condition for i to depend directly on j."""
        if (id(i), id(j)) in self.assume_independent:
            return FALSE_COND
        parts = [self._usedef_cond(i, j), self._memory_cond(i, j)]
        return make_or(parts)

    # -- use-def edges -----------------------------------------------------------

    def _usedef_cond(self, i: Item, j: Item) -> DepCond:
        defined_j = self._defined[id(j)]
        if not (self._used[id(i)] & defined_j):
            return FALSE_COND
        if isinstance(i, Phi):
            # predicate/edge-predicate uses are unconditional
            hard: set[Value] = set(i.predicate.values())
            for _, p in i.incomings():
                hard.update(p.values())
            if hard & defined_j:
                return TRUE_COND
            conds: list[DepCond] = []
            for v, p in i.incomings():
                if v in defined_j:
                    conds.append(PredCond(p) if not p.is_true() else TRUE_COND)
            return make_or(conds)
        if isinstance(i, Select):
            hard = set(i.predicate.values())
            hard.add(i.cond)
            if hard & defined_j:
                return TRUE_COND
            conds = []
            if i.true_value in defined_j:
                conds.append(PredCond(i.predicate.and_value(i.cond)))
            if i.false_value in defined_j:
                conds.append(PredCond(i.predicate.and_value(i.cond, negated=True)))
            return make_or(conds)
        return TRUE_COND

    # -- memory edges ----------------------------------------------------------------

    def _loc_of(self, inst: Instruction):
        if id(inst) in self._loc_memo:
            return self._loc_memo[id(inst)]
        loc = mem_location(inst)
        self._loc_memo[id(inst)] = loc
        return loc

    def _range_of(self, inst: Instruction) -> Optional[SymRange]:
        if id(inst) in self._range_memo:
            return self._range_memo[id(inst)]
        loc = self._loc_of(inst)
        r = None if loc is None else SymRange(
            loc.base, loc.offset, loc.offset.add(Affine.constant(loc.size))
        )
        self._range_memo[id(inst)] = r
        return r

    def _loops_of(self, inst: Instruction) -> list[Loop]:
        loops = self._loops_memo.get(id(inst))
        if loops is None:
            loops = _enclosing_loops(inst, self.scope)
            self._loops_memo[id(inst)] = loops
        return loops

    def _memory_cond(self, i: Item, j: Item) -> DepCond:
        i_mems = self._mems[self._index[id(i)]]
        j_mems = self._mems[self._index[id(j)]]
        if not i_mems or not j_mems:
            return FALSE_COND
        conds: list[DepCond] = []
        for mi in i_mems:
            for mj in j_mems:
                if not (mi.may_write() or mj.may_write()):
                    continue
                c = self._mem_pair_cond(mi, mj, i, j)
                if c.is_true():
                    return TRUE_COND
                conds.append(c)
        return make_or(conds)

    def _mem_pair_cond(
        self, mi: Instruction, mj: Instruction, top_i: Item, top_j: Item
    ) -> DepCond:
        res = self.alias.alias_with_locs(
            mi, mj, self._loc_of(mi), self._loc_of(mj)
        )
        if res == AliasResult.NO:
            return FALSE_COND
        same_scope = (mi is top_i) and (mj is top_j)
        if same_scope and _disjoint_preds(mi.predicate, mj.predicate):
            # guarded by complementary versioning checks: the two accesses
            # can never both execute, so no dependence exists
            return FALSE_COND
        if same_scope:
            # Fig 6: j executing at a strictly stronger predicate is itself
            # a necessary (and cheaply checkable) condition
            pi, pj = mi.predicate, mj.predicate
            if pj.implies(pi) and pj != pi:
                return PredCond(pj)
        ri, rj = self._range_of(mi), self._range_of(mj)
        if ri is None or rj is None:
            return TRUE_COND  # an opaque call: nothing to check
        if res == AliasResult.MUST and same_scope:
            return TRUE_COND
        loops = self._loops_of(mi) + self._loops_of(mj)
        if loops:
            promoted = promote_through_loops(ri, rj, loops)
            if promoted is None:
                return TRUE_COND  # cannot check before the loop runs
            ri, rj = promoted
            # promotion may have made the ranges statically comparable
            static = self._static_overlap(ri, rj)
            if static is not None:
                return TRUE_COND if static else FALSE_COND
        return IntersectCond(ri, rj)

    @staticmethod
    def _static_overlap(a: SymRange, b: SymRange) -> Optional[bool]:
        return _static_overlap_impl(a, b)


def _disjoint_preds(p, q) -> bool:
    """True when the predicates contain complementary literals — the
    guarded items can never execute together."""
    return any(lit.negate() in q.literals for lit in p.literals)


def _static_overlap_impl(a: SymRange, b: SymRange) -> Optional[bool]:
    if a.base is not b.base:
        return None
    lo_delta = difference(a.lo, b.hi)
    hi_delta = difference(a.hi, b.lo)
    if lo_delta is None or hi_delta is None:
        return None
    # overlap iff a.lo < b.hi and b.lo < a.hi
    return lo_delta < 0 and hi_delta > 0


# ---------------------------------------------------------------------------
# Phase-split iteration independence (the array tier's legality query)
# ---------------------------------------------------------------------------


class BatchAccess(NamedTuple):
    """A memory access of an innermost loop in closed form.

    On iteration ``k`` (0-based) the access touches the half-open slot
    range ``[base + step*k, base + step*k + width)``; ``base`` is a
    loop-invariant affine and ``step`` a compile-time constant stride.
    """

    inst: Instruction
    base: Affine
    step: int
    width: int


def _overlap_window(d: int, s: int, w_first: int, w_second: int):
    """Integer ``m`` values with ``-w_second < d + s*m < w_first`` — the
    iteration distances at which the two strided ranges overlap."""
    lo_excl, hi_excl = -w_second - d, w_first - d  # bounds on s*m
    if s == 0:
        if lo_excl < 0 < hi_excl:
            return None  # every distance overlaps
        return range(0)
    if s < 0:
        lo_excl, hi_excl, s = -hi_excl, -lo_excl, -s
        # m ranges are symmetric; solve with positive stride on -m and
        # negate below
        lo_m = lo_excl // s + 1
        hi_m = -(-hi_excl // s) - 1
        return range(-hi_m, -lo_m + 1)
    lo_m = lo_excl // s + 1
    hi_m = -(-hi_excl // s) - 1
    return range(lo_m, hi_m + 1)


def phase_split_hazards(
    loop: Loop,
    accesses: list[BatchAccess],
    alias: Optional[AliasAnalysis] = None,
) -> Optional[list[tuple[BatchAccess, BatchAccess]]]:
    """Decide whether an innermost loop admits *phase-split* execution:
    performing every load of every iteration first, then committing every
    store.  That reordering is legal iff no store's range can reach a
    load executed after it (same iteration or any later one) and no two
    store ranges can collide across iterations — anti-dependences
    (load-then-store) are preserved by construction.

    Returns ``None`` when a hazard provably exists for some trip count;
    otherwise the list of access pairs whose address spans must still be
    proven disjoint by a run-time check (the paper's versioning
    conditions, reused as a fast-path/fallback dispatch guard).  An empty
    list means the split is unconditionally legal.
    """
    alias = alias if alias is not None else AliasAnalysis(honor_restrict=False)
    pos: dict[int, int] = {}
    for i, inst in enumerate(loop.instructions()):
        pos[id(inst)] = i
    locs = {id(a.inst): mem_location(a.inst) for a in accesses}
    runtime: list[tuple[BatchAccess, BatchAccess]] = []
    seen: set[tuple[int, int]] = set()

    def need_runtime(a: BatchAccess, b: BatchAccess) -> None:
        key = (min(id(a.inst), id(b.inst)), max(id(a.inst), id(b.inst)))
        if key not in seen:
            seen.add(key)
            runtime.append((a, b))

    def resolve(s: BatchAccess, x: BatchAccess, m_iter) -> Optional[bool]:
        """True: hazard.  False: provably safe.  None: not static."""
        # When both strides and the base difference are static, the
        # overlap window is the authoritative cross-iteration answer.
        # The alias analysis must NOT pre-empt it: its same-base NO
        # compares offsets within one environment (the constant delta
        # cancels the loop mu), so ``b[i]`` vs ``b[i-4]`` disambiguate
        # per-iteration while still colliding at distance m = 4.
        if x.step == s.step:
            d = difference(x.base, s.base)
            if d is not None:
                window = _overlap_window(d, s.step, s.width, x.width)
                if window is None:  # every iteration distance collides
                    return True
                if m_iter is None:
                    return len(window) > 0
                return any(m_iter(m) for m in window)
        ls, lx = locs[id(s.inst)], locs[id(x.inst)]
        if (
            alias.alias_with_locs(s.inst, x.inst, ls, lx) is AliasResult.NO
            and (ls is None or lx is None or ls.base is not lx.base)
        ):
            # Distinct base objects (or noalias scopes over distinct
            # objects) are iteration-independent facts: safe at every
            # distance, not just distance 0.
            return False
        return None

    stores = [a for a in accesses if a.inst.may_write()]
    loads = [a for a in accesses if a.inst.may_read()]
    for s in stores:
        for x in loads:
            # store -> later load: distance m = i_load - i_store, m >= m0
            m0 = 0 if pos[id(s.inst)] < pos[id(x.inst)] else 1
            r = resolve(s, x, lambda m, m0=m0: m >= m0)
            if r is True:
                return None
            if r is None:
                need_runtime(s, x)
    for i, s1 in enumerate(stores):
        for s2 in stores[i:]:
            # two stores colliding at any nonzero distance (or at zero
            # distance for distinct instructions) commit out of order
            same = s1.inst is s2.inst
            r = resolve(s1, s2, (lambda m: m != 0) if same else None)
            if r is True:
                return None
            if r is None:
                need_runtime(s1, s2)
    return runtime


__all__ = ["BatchAccess", "DependenceGraph", "DepEdge", "phase_split_hazards",
           "range_of"]
