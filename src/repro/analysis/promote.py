"""Condition promotion (§IV-A): make range checks loop-invariant.

Two flavours, exactly as in the paper:

* **Precise promotion** — when both ranges of an ``intersects`` check
  advance by the *same* induction-variable term, the term cancels:
  ``intersects([a+i,a+i+2), [b+i,b+i+4))`` ≡ ``intersects([a,a+2),[b,b+4))``.
  The promoted check passes iff the original passes on every iteration.

* **Imprecise (trip-count) promotion** — a range advancing by step ``s``
  over ``N`` iterations is over-approximated by its union
  ``[lo, hi + s*(N-1))`` (for ``s > 0``).  Requires the trip count to be
  known before the loop runs, and — following the paper — is only applied
  when the two ranges have *different* base objects (over-approximating
  same-object ranges would make in-place updates always "conflict").

Promotion serves two masters: the dependence graph uses it to give *loop
nodes* checkable conditions, and the plan optimizer uses it to hoist
per-iteration checks out of loops (the paper's s258 experiment relies on
this to amortize two levels of versioning).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.ir.loops import Loop

from .affine import (
    Affine,
    addrec_of_affine,
    is_invariant,
    trip_count_affine,
)
from .conditions import IntersectCond, SymRange


@dataclass
class PromotedPair:
    """Result of promoting an intersects pair out of one loop."""

    a: SymRange
    b: SymRange
    precise: bool


def _range_addrec(rng: SymRange, loop: Loop):
    lo = addrec_of_affine(rng.lo, loop)
    hi = addrec_of_affine(rng.hi, loop)
    if lo is None or hi is None:
        return None
    # a sane range advances uniformly: lo and hi share the step
    if not (lo.step.sub(hi.step).is_constant() and lo.step.sub(hi.step).const == 0):
        return None
    return lo.base, hi.base, lo.step


def promote_intersect_ranges(
    a: SymRange, b: SymRange, loop: Loop
) -> Optional[PromotedPair]:
    """Rewrite ``(a, b)`` to be invariant w.r.t. ``loop``.

    Returns None when promotion is impossible (the check would have to run
    inside the loop).
    """
    if is_invariant(a.lo, loop) and is_invariant(a.hi, loop) and \
       is_invariant(b.lo, loop) and is_invariant(b.hi, loop):
        return PromotedPair(a, b, precise=True)
    ra = _range_addrec(a, loop)
    rb = _range_addrec(b, loop)
    if ra is None or rb is None:
        return None
    a_lo, a_hi, a_step = ra
    b_lo, b_hi, b_step = rb
    # precise: identical steps cancel (their difference is what matters)
    if a_step.sub(b_step).is_constant() and a_step.sub(b_step).const == 0:
        return PromotedPair(
            SymRange(a.base, a_lo, a_hi),
            SymRange(b.base, b_lo, b_hi),
            precise=True,
        )
    # imprecise: widen each range over the whole iteration space
    if a.base is b.base:
        return None  # paper: only across different memory objects
    trips = trip_count_affine(loop)
    if trips is None:
        return None
    if not a_step.is_constant() or not b_step.is_constant():
        return None
    span = trips.add(Affine.constant(-1))  # N - 1 extra iterations

    def widen(lo: Affine, hi: Affine, step: int) -> tuple[Affine, Affine]:
        if step == 0:
            return lo, hi
        growth = span.scale(step)
        if step > 0:
            return lo, hi.add(growth)
        return lo.add(growth), hi

    wa_lo, wa_hi = widen(a_lo, a_hi, a_step.const)
    wb_lo, wb_hi = widen(b_lo, b_hi, b_step.const)
    return PromotedPair(
        SymRange(a.base, wa_lo, wa_hi),
        SymRange(b.base, wb_lo, wb_hi),
        precise=False,
    )


def promote_intersect(cond: IntersectCond, loop: Loop) -> Optional[IntersectCond]:
    pair = promote_intersect_ranges(cond.a, cond.b, loop)
    if pair is None:
        return None
    return IntersectCond(pair.a, pair.b)


def promote_through_loops(
    a: SymRange, b: SymRange, loops: list[Loop]
) -> Optional[tuple[SymRange, SymRange]]:
    """Promote a pair of ranges out of a nest of loops, innermost first."""
    for loop in loops:
        pair = promote_intersect_ranges(a, b, loop)
        if pair is None:
            return None
        a, b = pair.a, pair.b
    return a, b


__all__ = [
    "PromotedPair",
    "promote_intersect",
    "promote_intersect_ranges",
    "promote_through_loops",
]
