"""Program analyses: affine SCEV, alias analysis, memory locations, and the
conditional dependence graph (paper Figs. 5-7)."""

from .affine import (
    AddRec,
    Affine,
    CountedLoop,
    addrec_of,
    addrec_of_affine,
    affine_of,
    counted_loop_form,
    difference,
    is_invariant,
    mu_step,
    trip_count_affine,
)
from .alias import NOALIAS_GROUPS_KEY, AliasAnalysis, AliasResult, add_noalias_group
from .conditions import (
    FALSE_COND,
    TRUE_COND,
    DepCond,
    IntersectCond,
    OrCond,
    PredCond,
    SymRange,
    flatten,
    make_or,
)
from .depgraph import (
    BatchAccess,
    DepEdge,
    DependenceGraph,
    phase_split_hazards,
    range_of,
)
from .manager import ALIAS, ALL_ANALYSES, DEPGRAPH, AnalysisManager
from .memloc import MemLoc, mem_location
from .promote import promote_intersect, promote_intersect_ranges, promote_through_loops

__all__ = [
    "AddRec", "Affine", "CountedLoop", "addrec_of", "addrec_of_affine",
    "affine_of", "counted_loop_form", "difference", "is_invariant",
    "mu_step", "trip_count_affine",
    "NOALIAS_GROUPS_KEY", "AliasAnalysis", "AliasResult", "add_noalias_group",
    "FALSE_COND", "TRUE_COND", "DepCond", "IntersectCond", "OrCond",
    "PredCond", "SymRange", "flatten", "make_or",
    "BatchAccess", "DepEdge", "DependenceGraph", "phase_split_hazards",
    "range_of",
    "AnalysisManager", "ALL_ANALYSES", "ALIAS", "DEPGRAPH",
    "MemLoc", "mem_location",
    "promote_intersect", "promote_intersect_ranges", "promote_through_loops",
]
