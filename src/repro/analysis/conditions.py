"""Dependence conditions (paper Fig. 5).

    c ::= p | intersects([m1,m2), [m3,m4)) | c1 ∨ c2

A dependence condition is the *necessary* run-time condition for a
dependence to exist.  Versioning works by asserting a set of these
conditions false: ¬(necessary condition) ⇒ the dependence is absent.

Memory ranges are symbolic (:class:`SymRange`): a base pointer value plus
affine lower/upper offsets.  Keeping ranges affine — rather than plain IR
values — is what lets condition promotion (§IV-A) rewrite an
IV-dependent check into a loop-invariant one before any code is emitted.

``operands()`` returns the IR values a materialized check would read;
these are exactly the nodes the plan-inference recursion (Fig. 13 lines
11-21) must make independent of the versioned code.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.ir.predicates import Predicate
from repro.ir.values import Constant, Value

from .affine import Affine


@dataclass(frozen=True)
class SymRange:
    """Half-open slot range ``[base + lo, base + hi)`` with affine bounds."""

    base: Value
    lo: Affine
    hi: Affine

    def symbols(self) -> set[Value]:
        syms: set[Value] = {self.base}
        syms.update(self.lo.symbols())
        syms.update(self.hi.symbols())
        return syms

    def shifted(self, delta: Affine) -> "SymRange":
        return SymRange(self.base, self.lo.add(delta), self.hi.add(delta))

    def __str__(self) -> str:
        return f"[{self.base.display_name()}+({self.lo}), {self.base.display_name()}+({self.hi}))"


class DepCond:
    """Base class of dependence conditions."""

    def is_true(self) -> bool:
        return False

    def is_false(self) -> bool:
        return False

    def operands(self) -> set[Value]:
        """IR values a run-time check of this condition reads."""
        return set()


class _TrueCond(DepCond):
    def is_true(self) -> bool:
        return True

    def __repr__(self) -> str:
        return "true"


class _FalseCond(DepCond):
    def is_false(self) -> bool:
        return True

    def __repr__(self) -> str:
        return "false"


TRUE_COND = _TrueCond()
FALSE_COND = _FalseCond()


@dataclass(frozen=True)
class PredCond(DepCond):
    """Dependence occurs only if ``pred`` holds (e.g. the earlier
    instruction actually executes)."""

    pred: Predicate

    def operands(self) -> set[Value]:
        return set(self.pred.values())

    def __repr__(self) -> str:
        return f"pred({self.pred})"


@dataclass(frozen=True)
class IntersectCond(DepCond):
    """Dependence occurs only if the two ranges overlap at run time."""

    a: SymRange
    b: SymRange

    def operands(self) -> set[Value]:
        ops = self.a.symbols() | self.b.symbols()
        return {v for v in ops if not isinstance(v, Constant)}

    def __repr__(self) -> str:
        return f"intersects({self.a}, {self.b})"


@dataclass(frozen=True)
class OrCond(DepCond):
    parts: tuple[DepCond, ...]

    def operands(self) -> set[Value]:
        out: set[Value] = set()
        for p in self.parts:
            out |= p.operands()
        return out

    def __repr__(self) -> str:
        return " | ".join(map(repr, self.parts))


def make_or(conds: Iterable[DepCond]) -> DepCond:
    """Disjunction with the obvious simplifications."""
    parts: list[DepCond] = []
    seen: set[DepCond] = set()
    for c in conds:
        if c.is_true():
            return TRUE_COND
        if c.is_false():
            continue
        if isinstance(c, OrCond):
            for p in c.parts:
                if p.is_true():
                    return TRUE_COND
                if p not in seen:
                    seen.add(p)
                    parts.append(p)
        elif c not in seen:
            seen.add(c)
            parts.append(c)
    if not parts:
        return FALSE_COND
    if len(parts) == 1:
        return parts[0]
    return OrCond(tuple(parts))


def flatten(cond: DepCond) -> list[DepCond]:
    """The atomic conditions of a (possibly Or) condition."""
    if isinstance(cond, OrCond):
        out: list[DepCond] = []
        for p in cond.parts:
            out.extend(flatten(p))
        return out
    if cond.is_false():
        return []
    return [cond]


__all__ = [
    "DepCond",
    "TRUE_COND",
    "FALSE_COND",
    "PredCond",
    "IntersectCond",
    "OrCond",
    "SymRange",
    "make_or",
    "flatten",
]
