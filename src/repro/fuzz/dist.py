"""Multi-host campaign coordination: work leasing over the compile service.

A distributed campaign keeps the PR-9 engine intact — the scheduler,
the coverage map, dedup, and the sorted-batch commit all run in the
coordinating parent — and replaces only the *execution* of each round's
batches: instead of a local ``multiprocessing`` pool, batches are leased
to N compile-service daemons (``campaign.lease`` / ``campaign.result``
/ ``campaign.heartbeat``) over one persistent pipelined NDJSON
connection per host.

Determinism is preserved by construction: *which host* runs a batch
(and in what order results arrive) affects nothing — a task is
self-describing (seed + variant regenerate the kernel bit-identically
anywhere), rows carry no host-dependent data, and the parent commits
rows in sorted ``(batch, task)`` order exactly as the single-host
engine does.  That is why a distributed campaign's manifest, records,
and findings are byte-identical to a single-host run of the same seeds.

Failure handling, in order of escalation:

* a **transient hiccup** on send/receive marks the host dead and its
  outstanding batches are re-leased to the remaining live hosts
  (``repro_campaign_releases_total{host}``);
* a host that stops answering while it owes results (``kill -STOP``, a
  wedged pool) hits the **heartbeat timeout** and is treated the same —
  heartbeats are answered by the daemon's asyncio front end, never
  blocked behind pool work, so a slow-but-healthy batch is *not* a
  timeout;
* a batch that failed on several hosts (a deterministic task crash
  would bounce forever otherwise) and any work left when **every** host
  is dead runs in-process in the coordinator — zero tasks are ever
  lost, whatever dies.
"""

from __future__ import annotations

import socket
import time
from collections import OrderedDict, deque
from select import select
from typing import Callable, Optional

from repro import telemetry
from repro.service import protocol

DEFAULT_LEASE_TIMEOUT = 60.0
DEFAULT_HEARTBEAT_EVERY = 2.0
CONNECT_TIMEOUT = 10.0
CONNECT_ATTEMPTS = 3

#: A batch that errored on this many distinct leases runs locally — the
#: local run either succeeds or surfaces the real exception.
MAX_LEASE_ATTEMPTS = 3

#: Coordinator-side cache of O0 reference results by content hash
#: (shipped to each host at most once).
REF_CACHE_CAP = 512

_LATENCY_BUCKETS = (0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0)


class HostError(Exception):
    """A host connection failed mid-protocol (close/reset/garbage)."""


class HostConn:
    """One persistent pipelined connection to a compile-service daemon."""

    def __init__(self, addr: str, timeout: float = CONNECT_TIMEOUT):
        host, port = protocol.parse_addr(addr)
        self.addr = addr
        self.sock = socket.create_connection((host, port), timeout=timeout)
        self.sock.settimeout(timeout)
        self._buf = b""
        self._next_id = 0

    def fileno(self) -> int:
        return self.sock.fileno()

    def send(self, op: str, params: dict) -> int:
        """Pipeline one request; returns its id (responses echo it)."""
        self._next_id += 1
        req_id = self._next_id
        self.sock.sendall(protocol.encode(
            {"op": op, "id": req_id, "params": params}))
        return req_id

    def recv_ready(self) -> list[dict]:
        """Drain whatever the socket has into complete response lines.

        Call after ``select`` reports readability.  Raises
        :class:`HostError` on EOF or a reset — a daemon killed with
        ``kill -9`` surfaces here immediately.
        """
        try:
            data = self.sock.recv(1 << 20)
        except OSError as e:
            raise HostError(f"{self.addr}: {e}") from e
        if not data:
            raise HostError(f"{self.addr}: connection closed")
        self._buf += data
        if len(self._buf) > protocol.MAX_LINE_BYTES:
            raise HostError(f"{self.addr}: response line too long")
        msgs = []
        while True:
            line, sep, rest = self._buf.partition(b"\n")
            if not sep:
                break
            self._buf = rest
            if line.strip():
                try:
                    msgs.append(protocol.decode(line))
                except ValueError as e:
                    raise HostError(f"{self.addr}: bad response: {e}") from e
        return msgs

    def rpc(self, op: str, params: dict, timeout: float) -> dict:
        """Blocking call-and-wait for one response (connect-time only —
        rounds use the pipelined send/recv paths)."""
        req_id = self.send(op, params)
        deadline = time.monotonic() + timeout
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise HostError(f"{self.addr}: no {op} response in "
                                f"{timeout:.0f}s")
            r, _, _ = select([self], [], [], remaining)
            if not r:
                continue
            for m in self.recv_ready():
                if m.get("id") == req_id:
                    if not m.get("ok"):
                        err = m.get("error") or {}
                        raise HostError(
                            f"{self.addr}: {op} refused: "
                            f"[{err.get('code')}] {err.get('message')}")
                    return m

    def close(self) -> None:
        try:
            self.sock.close()
        except OSError:
            pass


class _Host:
    """Coordinator-side state for one daemon."""

    __slots__ = ("addr", "conn", "capacity", "dead", "shipped",
                 "outstanding", "inflight", "last_heard", "last_hb",
                 "fingerprint")

    def __init__(self, addr: str):
        self.addr = addr
        self.conn: Optional[HostConn] = None
        self.capacity = 1
        self.dead = False
        self.shipped: set[str] = set()          # ref hashes sent here
        self.outstanding: dict[str, tuple] = {}  # lease -> (bi, payload)
        self.inflight: dict[int, tuple] = {}     # req id -> (kind, lease, t0)
        self.last_heard = 0.0
        self.last_hb = 0.0
        self.fingerprint: Optional[dict] = None


def host_fingerprint(status: dict) -> dict:
    """The identity a campaign pins per host: daemon version, protocol,
    and the artifact store it serves from.  Worker count is a runtime
    knob (like ``-j``) and deliberately is not pinned."""
    store = status.get("store") or {}
    return {
        "version": status.get("version"),
        "protocol": status.get("protocol"),
        "store_root": store.get("root"),
        "shards": store.get("shards"),
    }


class DistRunner:
    """Leases campaign batches to compile-service daemons, round by round.

    ``local_task`` is the in-process executor for one task dict (the
    campaign's ``_run_task``) — the zero-lost-tasks fallback when every
    host is dead or a batch keeps erroring remotely.
    """

    def __init__(self, hosts: list[str],
                 local_task: Callable[[dict], dict],
                 lease_timeout: float = DEFAULT_LEASE_TIMEOUT,
                 heartbeat_every: float = DEFAULT_HEARTBEAT_EVERY,
                 log: Optional[Callable[[str], None]] = None):
        seen = set()
        self.hosts = []
        for a in hosts:
            if a not in seen:
                seen.add(a)
                self.hosts.append(_Host(a))
        if not self.hosts:
            raise ValueError("a distributed campaign needs at least one host")
        self.local_task = local_task
        self.lease_timeout = lease_timeout
        self.heartbeat_every = heartbeat_every
        self.log = log or (lambda msg: None)
        self.refs: OrderedDict = OrderedDict()  # content hash -> ref dict
        self._lease_seq = 0
        self._failed_leases: set[str] = set()
        self.stats = {"leases": 0, "releases": 0, "refs_shipped": 0,
                      "local_batches": 0, "dead_hosts": 0}

    # -- connect / identity -------------------------------------------------

    def connect(self, strict: bool = True) -> dict:
        """Open every host connection; ping + status each.

        ``strict`` (campaign creation) raises :class:`HostError` on any
        unreachable host — the campaign pins every host's fingerprint,
        so all of them must answer once.  Non-strict (resume) marks
        unreachable hosts dead and carries on; their work goes to the
        survivors.  Returns ``{addr: fingerprint-or-None}``.
        """
        fps: dict = {}
        for h in self.hosts:
            err: Optional[Exception] = None
            for attempt in range(CONNECT_ATTEMPTS):
                try:
                    h.conn = HostConn(h.addr)
                    h.conn.rpc("ping", {}, CONNECT_TIMEOUT)
                    status = h.conn.rpc("status", {},
                                        CONNECT_TIMEOUT)["status"]
                    break
                except (OSError, HostError, KeyError) as e:
                    err = e
                    if h.conn is not None:
                        h.conn.close()
                        h.conn = None
                    if attempt + 1 < CONNECT_ATTEMPTS:
                        time.sleep(0.1 * (1 << attempt))
            if h.conn is None:
                if strict:
                    raise HostError(
                        f"host {h.addr} is unreachable: {err}")
                self.log(f"host {h.addr} unreachable at resume "
                         f"({err}); its work goes to the other hosts")
                h.dead = True
                self.stats["dead_hosts"] += 1
                fps[h.addr] = None
                continue
            # one queued lease beyond the pool keeps the daemon busy
            # while the previous batch's rows are in flight back to us
            h.capacity = max(1, int(status.get("workers", 1))) + 1
            h.fingerprint = host_fingerprint(status)
            h.last_heard = time.monotonic()
            fps[h.addr] = h.fingerprint
        return fps

    def close(self) -> None:
        for h in self.hosts:
            if h.conn is not None:
                h.conn.close()
                h.conn = None

    # -- one round ----------------------------------------------------------

    def run_round(self, batches: list[tuple[int, list[dict]]]) -> dict:
        """Execute one round's batches across the hosts.

        ``batches`` is ``[(batch_index, [task dict, ...]), ...]``.
        Returns ``{batch_index: rows}`` for *every* input batch —
        re-leasing and the local fallback guarantee completeness.
        """
        pending = deque(batches)
        results: dict[int, list[dict]] = {}
        attempts: dict[int, int] = {}
        total = len(batches)
        while len(results) < total:
            live = [h for h in self.hosts if not h.dead]
            if not live:
                while pending:
                    bi, payload = pending.popleft()
                    results[bi] = self._run_local(payload)
                continue
            # least-loaded assignment: each batch goes to the live host
            # with the fewest outstanding leases, so a round's batches
            # spread across all hosts instead of filling the first
            # host's capacity before the second sees any work
            while pending:
                free = [h for h in self.hosts if not h.dead
                        and len(h.outstanding) < h.capacity]
                if not free:
                    break
                h = min(free, key=lambda x: len(x.outstanding))
                bi, payload = pending.popleft()
                if attempts.get(bi, 0) >= MAX_LEASE_ATTEMPTS:
                    results[bi] = self._run_local(payload)
                    continue
                attempts[bi] = attempts.get(bi, 0) + 1
                self._lease(h, bi, payload, pending)
            live = [h for h in self.hosts if not h.dead]
            if not live:
                continue
            readable, _, _ = select([h.conn for h in live], [], [], 0.25)
            now = time.monotonic()
            by_fd = {h.conn: h for h in live}
            for conn in readable:
                h = by_fd[conn]
                try:
                    msgs = conn.recv_ready()
                except HostError as e:
                    self._mark_dead(h, pending, str(e))
                    continue
                h.last_heard = now
                for m in msgs:
                    self._on_msg(h, m, results, pending)
            now = time.monotonic()
            for h in live:
                if h.dead:
                    continue
                if (h.outstanding
                        and now - h.last_heard > self.lease_timeout):
                    self._mark_dead(
                        h, pending,
                        f"no heartbeat in {self.lease_timeout:.0f}s")
                elif now - h.last_hb > self.heartbeat_every:
                    h.last_hb = now
                    try:
                        h.conn.send("campaign.heartbeat", {})
                    except OSError as e:
                        self._mark_dead(h, pending, str(e))
        return results

    # -- internals ----------------------------------------------------------

    def _lease(self, h: _Host, bi: int, payload: list[dict],
               pending: deque) -> None:
        self._lease_seq += 1
        lease_id = f"L{self._lease_seq:06d}-b{bi}"
        tasks = []
        ship: dict = {}
        for t in payload:
            ch = t.get("hash")
            known = ch is not None and ch in self.refs
            tasks.append({**t, "ref_known": known})
            if known and ch not in h.shipped:
                ship[ch] = self.refs[ch]
        h.outstanding[lease_id] = (bi, payload)
        try:
            rid_lease = h.conn.send("campaign.lease", {
                "lease": lease_id, "tasks": tasks, "refs": ship,
            })
            rid_result = h.conn.send("campaign.result", {"lease": lease_id})
        except OSError as e:
            self._mark_dead(h, pending, str(e))
            return
        t0 = time.monotonic()
        h.inflight[rid_lease] = ("ack", lease_id, t0)
        h.inflight[rid_result] = ("result", lease_id, t0)
        h.shipped.update(ship)
        self.stats["leases"] += 1
        self.stats["refs_shipped"] += len(ship)
        telemetry.counter("repro_campaign_leases_total",
                          "campaign batches leased, by host",
                          host=h.addr).inc()
        if ship:
            telemetry.counter(
                "repro_campaign_refs_shipped_total",
                "O0 reference results shipped (once per host), by host",
                host=h.addr).inc(len(ship))

    def _on_msg(self, h: _Host, m: dict, results: dict,
                pending: deque) -> None:
        info = h.inflight.pop(m.get("id"), None)
        if info is None:
            return  # a heartbeat response, or a dropped lease's tail
        kind, lease_id, t0 = info
        if kind == "ack":
            if not m.get("ok") and lease_id in h.outstanding:
                # the daemon refused the lease outright — requeue the
                # batch and ignore the paired result response
                bi, payload = h.outstanding.pop(lease_id)
                self._failed_leases.add(lease_id)
                pending.appendleft((bi, payload))
                self._count_release(h)
            return
        # kind == "result"
        if lease_id in self._failed_leases:
            self._failed_leases.discard(lease_id)
            return
        if lease_id not in h.outstanding:
            return
        bi, payload = h.outstanding.pop(lease_id)
        if not m.get("ok"):
            err = (m.get("error") or {}).get("message", "?")
            self.log(f"lease {lease_id} failed on {h.addr}: {err}")
            telemetry.counter("repro_campaign_lease_results_total",
                              "lease results by host and outcome",
                              host=h.addr, outcome="error").inc()
            pending.appendleft((bi, payload))
            self._count_release(h)
            return
        telemetry.counter("repro_campaign_lease_results_total",
                          "lease results by host and outcome",
                          host=h.addr, outcome="ok").inc()
        telemetry.histogram("repro_campaign_lease_latency_seconds",
                            "lease round-trip (send to rows), by host",
                            buckets=_LATENCY_BUCKETS,
                            host=h.addr).observe(time.monotonic() - t0)
        if telemetry.absorb(m.get("snapshot")):
            telemetry.counter(
                "repro_worker_snapshots_merged_total",
                "worker telemetry snapshots absorbed by the parent",
                kind="campaign-remote").inc()
        self._cache_refs(m.get("refs") or {})
        results[bi] = m["rows"]

    def _mark_dead(self, h: _Host, pending: deque, why: str) -> None:
        if h.dead:
            return
        h.dead = True
        self.stats["dead_hosts"] += 1
        self.log(f"host {h.addr} lost ({why}); re-leasing "
                 f"{len(h.outstanding)} batch(es)")
        if h.conn is not None:
            h.conn.close()
            h.conn = None
        for lease_id, (bi, payload) in sorted(h.outstanding.items()):
            pending.appendleft((bi, payload))
            self._count_release(h)
        h.outstanding.clear()
        h.inflight.clear()

    def _count_release(self, h: _Host) -> None:
        self.stats["releases"] += 1
        telemetry.counter("repro_campaign_releases_total",
                          "batches re-leased after a host failure, by host",
                          host=h.addr).inc()

    def _run_local(self, payload: list[dict]) -> list[dict]:
        self.stats["local_batches"] += 1
        telemetry.counter(
            "repro_campaign_local_batches_total",
            "batches run in the coordinator as a last resort").inc()
        rows = []
        for t in payload:
            row = self.local_task(t)
            row["hash"] = t.get("hash")
            rows.append(row)
        return rows

    def _cache_refs(self, refs: dict) -> None:
        for ch, ref in refs.items():
            if ch not in self.refs:
                self.refs[ch] = ref
        while len(self.refs) > REF_CACHE_CAP:
            self.refs.popitem(last=False)


__all__ = [
    "DEFAULT_HEARTBEAT_EVERY", "DEFAULT_LEASE_TIMEOUT", "DistRunner",
    "HostConn", "HostError", "host_fingerprint",
]
