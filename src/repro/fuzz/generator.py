"""Seed-deterministic grammar-based mini-C kernel generator.

Replaces (and vastly extends) the 11 hand-written statement templates the
differential suite used to draw from.  A :class:`Kernel` is a *structured*
program — statement and expression trees plus an argument binding spec —
that renders to mini-C source the front end accepts.  Keeping the
structure (rather than only text) is what makes syntax-guided reduction
possible: :mod:`repro.fuzz.reduce` edits the trees at statement / loop /
expression granularity and re-renders, so every candidate is well-formed
by construction (the DRReduce insight).

Coverage beyond the old templates:

* nested rectangular loops, triangular loops, ``while`` loops;
* multiple arrays with *overlapping / offset views* (one pointer argument
  aliasing another's allocation at a seed-chosen offset) — the exact
  dynamic-aliasing scenario the versioning framework exists for;
* scalar recurrences, dot-product reductions, conditionals with and
  without ``else``, reversed accesses, read-modify-write updates;
* ``restrict`` toggles (only ever emitted when the binding really is
  disjoint, so ``honor_restrict=True`` stays sound);
* int/float mixes: an ``int`` array, an ``int`` scalar accumulator, and
  explicit ``(double)`` casts.

Determinism is absolute: ``generate_kernel(seed)`` uses one
``random.Random(seed)`` stream and nothing else, so the same seed always
yields the same source, bindings, and initial data.  Array sizes are
*computed* from the accesses the body performs (interval arithmetic over
index expressions with the runtime ``n`` known), so no generated kernel
can read or write out of bounds.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterator, Optional, Union

# ---------------------------------------------------------------------------
# Expression / statement trees
# ---------------------------------------------------------------------------


@dataclass
class Num:
    value: Union[int, float]
    is_float: bool = True

    def render(self) -> str:
        if self.is_float:
            v = repr(float(self.value))
            return f"({v})" if self.value < 0 else v
        return f"({self.value})" if self.value < 0 else str(self.value)


@dataclass
class Var:
    name: str

    def render(self) -> str:
        return self.name


@dataclass
class Load:
    array: str
    index: "Node"

    def render(self) -> str:
        return f"{self.array}[{self.index.render()}]"


@dataclass
class Cast:
    to: str  # "double" | "int"
    operand: "Node"

    def render(self) -> str:
        return f"(({self.to})({self.operand.render()}))"


@dataclass
class Bin:
    op: str  # + - * / plus relationals for conditions
    lhs: "Node"
    rhs: "Node"

    def render(self) -> str:
        return f"({self.lhs.render()} {self.op} {self.rhs.render()})"


Node = Union[Num, Var, Load, Cast, Bin]


@dataclass
class Assign:
    target: Union[Var, Load]
    expr: Node

    def render(self, ind: str) -> str:
        return f"{ind}{self.target.render()} = {self.expr.render()};"


@dataclass
class If:
    cond: Node
    then: list = field(default_factory=list)
    els: list = field(default_factory=list)

    def render(self, ind: str) -> str:
        out = [f"{ind}if ({self.cond.render()}) {{"]
        for st in self.then:
            out.append(st.render(ind + "  "))
        if self.els:
            out.append(f"{ind}}} else {{")
            for st in self.els:
                out.append(st.render(ind + "  "))
        out.append(f"{ind}}}")
        return "\n".join(out)


@dataclass
class ForLoop:
    var: str
    bound: Node
    body: list = field(default_factory=list)
    kind: str = "for"  # "for" | "while"

    def render(self, ind: str) -> str:
        out = []
        if self.kind == "while":
            out.append(f"{ind}int {self.var} = 0;")
            out.append(f"{ind}while ({self.var} < {self.bound.render()}) {{")
        else:
            out.append(
                f"{ind}for (int {self.var} = 0; {self.var} < "
                f"{self.bound.render()}; {self.var}++) {{"
            )
        for st in self.body:
            out.append(st.render(ind + "  "))
        if self.kind == "while":
            out.append(f"{ind}  {self.var} = {self.var} + 1;")
        out.append(f"{ind}}}")
        return "\n".join(out)


Stmt = Union[Assign, If, ForLoop]


# ---------------------------------------------------------------------------
# Interval arithmetic over index / bound expressions
# ---------------------------------------------------------------------------


class UnsafeAccess(Exception):
    """An index expression could evaluate out of bounds (or is not a pure
    integer expression over loop variables, ``n`` and constants)."""


def interval(node: Node, env: dict[str, tuple[int, int]]) -> tuple[int, int]:
    """Sound integer range of an index/bound expression.

    ``env`` maps variable names (loop vars and ``n``) to inclusive ranges.
    Only ``+ - *`` over Num/Var appear in index positions by construction;
    anything else is rejected (the reducer relies on that rejection).
    """
    if isinstance(node, Num):
        v = int(node.value)
        return v, v
    if isinstance(node, Var):
        if node.name not in env:
            raise UnsafeAccess(f"variable {node.name!r} not in scope")
        return env[node.name]
    if isinstance(node, Bin) and node.op in ("+", "-", "*"):
        alo, ahi = interval(node.lhs, env)
        blo, bhi = interval(node.rhs, env)
        if node.op == "+":
            return alo + blo, ahi + bhi
        if node.op == "-":
            return alo - bhi, ahi - blo
        prods = (alo * blo, alo * bhi, ahi * blo, ahi * bhi)
        return min(prods), max(prods)
    raise UnsafeAccess(f"unsupported index expression {node!r}")


def collect_extents(body: list, n_val: int) -> dict[str, int]:
    """Required allocation size per array, from every access in ``body``.

    Raises :class:`UnsafeAccess` if any index could be negative — used
    both to size arrays at generation time and to validate reducer
    candidates against the kernel's *fixed* bindings.
    """
    req: dict[str, int] = {}

    def visit_expr(node: Node, env) -> None:
        if isinstance(node, Load):
            lo, hi = interval(node.index, env)
            if lo < 0:
                raise UnsafeAccess(
                    f"index of {node.array} may be negative ({lo})"
                )
            req[node.array] = max(req.get(node.array, 1), hi + 1)
        elif isinstance(node, Bin):
            visit_expr(node.lhs, env)
            visit_expr(node.rhs, env)
        elif isinstance(node, Cast):
            visit_expr(node.operand, env)

    def visit_stmts(stmts: list, env) -> None:
        for st in stmts:
            if isinstance(st, ForLoop):
                _, bhi = interval(st.bound, env)
                if bhi <= 0:
                    continue  # zero-trip loop: the body never executes
                env2 = dict(env)
                env2[st.var] = (0, bhi - 1)
                visit_stmts(st.body, env2)
            elif isinstance(st, If):
                visit_expr(st.cond, env)
                visit_stmts(st.then, env)
                visit_stmts(st.els, env)
            else:
                visit_expr(st.target, env)
                visit_expr(st.expr, env)

    visit_stmts(body, {"n": (n_val, n_val)})
    return req


# ---------------------------------------------------------------------------
# Kernel
# ---------------------------------------------------------------------------


@dataclass
class ParamSpec:
    name: str
    elem: str  # "double" | "int" (arrays) or "int" scalar
    is_array: bool
    restrict: bool = False


@dataclass
class Kernel:
    """A generated kernel: structure + rendered source + run bindings.

    ``bindings`` is a list of tuples the oracle turns into measurement
    arguments, in parameter order:

    * ``("array", name, size, values)`` — fresh allocation with explicit
      initial contents;
    * ``("alias", name, of, offset)`` — a view of ``of``'s allocation at
      a slot offset (genuine runtime overlap);
    * ``("scalar", name, value)``.
    """

    seed: int
    name: str
    params: list
    decls: list  # (name, kind, init literal string)
    body: list
    bindings: list
    features: set = field(default_factory=set)

    @property
    def source(self) -> str:
        sig = []
        for p in self.params:
            if p.is_array:
                r = " restrict" if p.restrict else ""
                sig.append(f"{p.elem} *{r} {p.name}")
            else:
                sig.append(f"{p.elem} {p.name}")
        lines = [f"double {self.name}({', '.join(sig)}) {{"]
        for nm, kind, init in self.decls:
            lines.append(f"  {kind} {nm} = {init};")
        for st in self.body:
            lines.append(st.render("  "))
        lines.append("  return s;")
        lines.append("}")
        return "\n".join(lines)

    @property
    def n_val(self) -> int:
        for b in self.bindings:
            if b[0] == "scalar" and b[1] == "n":
                return b[2]
        return 0

    @property
    def has_restrict(self) -> bool:
        return any(p.restrict for p in self.params if p.is_array)

    def stmt_count(self) -> int:
        """Statements in the body, counting loops/ifs as one plus their
        contents (the reduction-size metric)."""

        def count(stmts: list) -> int:
            total = 0
            for st in stmts:
                total += 1
                if isinstance(st, ForLoop):
                    total += count(st.body)
                elif isinstance(st, If):
                    total += count(st.then) + count(st.els)
            return total

        return count(self.body)

    def validate(self) -> None:
        """Check every access stays inside the *fixed* bindings.

        Reducer candidates must pass this: reductions may never turn an
        in-bounds kernel into an out-of-bounds one.
        """
        req = collect_extents(self.body, self.n_val)
        sizes: dict[str, int] = {}
        for b in self.bindings:
            if b[0] == "array":
                sizes[b[1]] = b[2]
        for b in self.bindings:
            if b[0] == "alias":
                _, name, of, offset = b
                sizes[name] = sizes[of] - offset
        for arr, need in req.items():
            if arr not in sizes:
                raise UnsafeAccess(f"access to unbound array {arr!r}")
            if need > sizes[arr]:
                raise UnsafeAccess(
                    f"{arr} needs {need} slots but only {sizes[arr]} bound"
                )


# ---------------------------------------------------------------------------
# Generation
# ---------------------------------------------------------------------------

_CONSTS = [0.5, 1.5, 2.0, -0.5, -1.5, 0.25, 3.0, 0.75]
_DIVISORS = [2.0, 4.0, -2.0, 1.5]
_CMPS = ["<", ">", "<=", ">=", "==", "!="]

#: Version of the generation grammar + binding formulas.  Campaign
#: manifests pin this: a resumed campaign regenerates kernels from seeds,
#: which is only sound while the generator still produces the same
#: programs, so a resume across a grammar change must be refused.
GENERATOR_VERSION = 1


def init_values(arr: str, size: int, seed: int, is_int: bool) -> list:
    """Deterministic initial contents for a generated array binding.

    Module-level (rather than a closure in :func:`generate_kernel`) so
    mutation operators that re-derive bindings after changing ``n`` can
    reproduce the exact same data the generator would have produced.
    """
    salt = sum(ord(c) for c in arr)
    if is_int:
        return [float((i * 3 + salt + seed) % 5) for i in range(size)]
    return [((i * 7 + salt + seed) % 11) / 11.0 + 0.25
            for i in range(size)]


class _Gen:
    def __init__(self, seed: int):
        self.rng = random.Random(seed)
        self.seed = seed
        self.features: set[str] = set()
        self.farrays: list[str] = []
        self.iarrays: list[str] = []
        self.scalars: list[str] = ["s"]
        self.int_scalars: list[str] = []
        self.while_counter = 0

    # -- expressions -----------------------------------------------------

    def const(self) -> Num:
        return Num(self.rng.choice(_CONSTS), True)

    def index(self, loop_vars: list[tuple[str, Node]]) -> Node:
        """An in-bounds index form for the current loop context.

        ``loop_vars`` is the stack of (var, bound) pairs, outermost first.
        With no loops in scope only small constants are available.
        """
        rng = self.rng
        if not loop_vars:
            return Num(rng.randint(0, 2), False)
        var, bound = loop_vars[-1]
        forms = ["plain", "plain", "plain", "offset", "const"]
        if isinstance(bound, Var) and bound.name == "n":
            forms.append("reversed")
        if len(loop_vars) >= 2:
            forms.append("outer")
            outer_var, _ = loop_vars[-2]
            if isinstance(bound, Num):
                forms.append("flat2d")
        pick = rng.choice(forms)
        if pick == "plain":
            return Var(var)
        if pick == "offset":
            return Bin("+", Var(var), Num(rng.randint(1, 3), False))
        if pick == "reversed":
            self.features.add("reversal")
            return Bin("-", Bin("-", Var("n"), Num(1, False)), Var(var))
        if pick == "outer":
            return Var(loop_vars[-2][0])
        if pick == "flat2d":
            self.features.add("flat2d")
            stride = int(bound.value)
            return Bin("+", Bin("*", Var(loop_vars[-2][0]), Num(stride, False)), Var(var))
        return Num(rng.randint(0, 2), False)

    def leaf(self, loop_vars) -> Node:
        rng = self.rng
        choices = ["load", "load", "load", "const", "scalar"]
        if self.int_scalars:
            choices.append("int_scalar")
        if self.iarrays:
            choices.append("iload")
        pick = rng.choice(choices)
        if pick == "load":
            return Load(rng.choice(self.farrays), self.index(loop_vars))
        if pick == "iload":
            self.features.add("int-array")
            ld = Load(rng.choice(self.iarrays), self.index(loop_vars))
            if rng.random() < 0.5:
                return Cast("double", ld)
            return ld
        if pick == "scalar":
            return Var("s")
        if pick == "int_scalar":
            v = Var(rng.choice(self.int_scalars))
            if rng.random() < 0.5:
                return Cast("double", v)
            return v
        return self.const()

    def expr(self, loop_vars, depth: int = 2) -> Node:
        rng = self.rng
        if depth <= 0 or rng.random() < 0.35:
            return self.leaf(loop_vars)
        op = rng.choice(["+", "+", "-", "*", "*", "/"])
        if op == "/":
            return Bin("/", self.expr(loop_vars, depth - 1),
                       Num(rng.choice(_DIVISORS), True))
        return Bin(op, self.expr(loop_vars, depth - 1),
                   self.expr(loop_vars, depth - 1))

    def condition(self, loop_vars) -> Node:
        rng = self.rng
        lhs = Load(rng.choice(self.farrays), self.index(loop_vars))
        return Bin(rng.choice(_CMPS), lhs, self.const())

    # -- statements ------------------------------------------------------

    def statement(self, loop_vars, depth: int) -> Stmt:
        rng = self.rng
        kinds = [
            "store", "store", "store", "update", "update",
            "recurrence", "reduction", "copy",
        ]
        if depth > 0:
            kinds += ["if", "if"]
        if self.int_scalars:
            kinds.append("int_update")
        if self.iarrays:
            kinds.append("iarray_update")
        pick = rng.choice(kinds)
        if pick == "store":
            arr = rng.choice(self.farrays)
            return Assign(Load(arr, self.index(loop_vars)),
                          self.expr(loop_vars))
        if pick == "update":
            arr = rng.choice(self.farrays)
            idx = self.index(loop_vars)
            op = rng.choice(["+", "*", "-"])
            return Assign(Load(arr, idx),
                          Bin(op, Load(arr, idx), self.expr(loop_vars, 1)))
        if pick == "recurrence":
            self.features.add("recurrence")
            return Assign(Var("s"),
                          Bin("+", Bin("*", Var("s"), self.const()),
                              self.leaf(loop_vars)))
        if pick == "reduction":
            self.features.add("reduction")
            a = Load(rng.choice(self.farrays), self.index(loop_vars))
            b = Load(rng.choice(self.farrays), self.index(loop_vars))
            return Assign(Var("s"), Bin("+", Var("s"), Bin("*", a, b)))
        if pick == "copy":
            dst = rng.choice(self.farrays)
            src = rng.choice(self.farrays)
            return Assign(Load(dst, self.index(loop_vars)),
                          Bin("*", Load(src, self.index(loop_vars)),
                              self.const()))
        if pick == "if":
            self.features.add("if")
            then = [self.statement(loop_vars, depth - 1)]
            if rng.random() < 0.35:
                then.append(self.statement(loop_vars, depth - 1))
            els = []
            if rng.random() < 0.4:
                self.features.add("else")
                els = [self.statement(loop_vars, depth - 1)]
            return If(self.condition(loop_vars), then, els)
        if pick == "int_update":
            t = rng.choice(self.int_scalars)
            return Assign(Var(t), Bin("+", Var(t), Num(1, False)))
        # iarray_update
        self.features.add("int-array")
        arr = rng.choice(self.iarrays)
        idx = self.index(loop_vars)
        return Assign(Load(arr, idx),
                      Bin("+", Load(arr, idx), Num(rng.randint(1, 2), False)))

    def loop_body(self, loop_vars, nstmts: int, depth: int) -> list:
        return [self.statement(loop_vars, depth) for _ in range(nstmts)]

    def construct(self, top_depth: int) -> Stmt:
        """One top-level construct: a loop nest, a while loop, or a
        straight-line statement."""
        rng = self.rng
        pick = rng.choice(
            ["simple", "simple", "simple", "nested", "triangular",
             "while", "straight"]
        )
        if pick == "straight":
            return self.statement([], 0)
        if pick == "while":
            self.features.add("while")
            var = f"k{self.while_counter}"
            self.while_counter += 1
            lv = [(var, Var("n"))]
            return ForLoop(var, Var("n"),
                           self.loop_body(lv, rng.randint(1, 3), 1),
                           kind="while")
        if pick == "nested":
            self.features.add("nested")
            inner_bound: Node = (
                Num(rng.choice([2, 3, 4]), False)
                if rng.random() < 0.7 else Var("n")
            )
            outer = [("i", Var("n"))]
            inner = outer + [("j", inner_bound)]
            inner_loop = ForLoop("j", inner_bound,
                                 self.loop_body(inner, rng.randint(1, 2), 1))
            body = [inner_loop]
            if rng.random() < 0.5:
                body.append(self.statement(outer, 1))
            if rng.random() < 0.3:
                body.insert(0, self.statement(outer, 0))
            return ForLoop("i", Var("n"), body)
        if pick == "triangular":
            self.features.add("triangular")
            outer = [("i", Var("n"))]
            tri_bound = Bin("+", Var("i"), Num(1, False))
            inner = outer + [("j", tri_bound)]
            inner_loop = ForLoop("j", tri_bound,
                                 self.loop_body(inner, rng.randint(1, 2), 1))
            body: list = [inner_loop]
            if rng.random() < 0.4:
                body.append(self.statement(outer, 1))
            return ForLoop("i", Var("n"), body)
        # simple
        lv = [("i", Var("n"))]
        return ForLoop("i", Var("n"),
                       self.loop_body(lv, rng.randint(1, 4), 2))


def generate_kernel(seed: int, name: Optional[str] = None) -> Kernel:
    """Deterministically generate one kernel from ``seed``."""
    g = _Gen(seed)
    rng = g.rng

    n_val = rng.choice([0, 1, 4, 8, 12, 12, 16, 16])
    nf = rng.choice([2, 2, 2, 3])
    g.farrays = ["A", "B", "C"][:nf]
    if rng.random() < 0.3:
        g.iarrays = ["P"]

    # aliasing decision before restrict: overlapping views forbid restrict
    alias: Optional[tuple[str, str, int]] = None  # (viewer, base, offset)
    if nf >= 2 and rng.random() < 0.45:
        viewer, base = (("B", "A") if rng.random() < 0.7 else
                        (g.farrays[-1], "A"))
        alias = (viewer, base, rng.randint(0, 4))
        g.features.add("overlap")

    params = [ParamSpec(a, "double", True) for a in g.farrays]
    params += [ParamSpec(p, "int", True) for p in g.iarrays]
    params.append(ParamSpec("n", "int", False))
    if alias is None:
        for p in params:
            if p.is_array and rng.random() < 0.4:
                p.restrict = True
                g.features.add("restrict")

    decls = [("s", "double", repr(rng.choice(_CONSTS)))]
    if rng.random() < 0.5:
        g.int_scalars = ["t"]
        decls.append(("t", "int", str(rng.randint(0, 3))))

    body = [g.construct(2) for _ in range(rng.randint(1, 3))]

    # size arrays from the accesses actually emitted
    req = collect_extents(body, n_val)
    sizes = {a: max(req.get(a, 1), 1) for a in g.farrays + g.iarrays}

    bindings: list = []
    if alias is not None:
        viewer, base, offset = alias
        sizes[base] = max(sizes[base], offset + sizes[viewer])
    for p in params:
        if not p.is_array:
            bindings.append(("scalar", p.name, n_val))
        elif alias is not None and p.name == alias[0]:
            bindings.append(("alias", p.name, alias[1], alias[2]))
        else:
            sz = sizes[p.name]
            bindings.append(("array", p.name, sz,
                             init_values(p.name, sz, seed,
                                         p.name in g.iarrays)))

    return Kernel(
        seed=seed,
        name=name or "kernel",
        params=params,
        decls=decls,
        body=body,
        bindings=bindings,
        features=g.features,
    )


__all__ = [
    "Assign", "Bin", "Cast", "ForLoop", "GENERATOR_VERSION", "If",
    "Kernel", "Load", "Node", "Num", "ParamSpec", "Stmt", "UnsafeAccess",
    "Var", "collect_extents", "generate_kernel", "init_values", "interval",
]
