"""Differential compiler fuzzing and test-case reduction.

The correctness-tooling leg of the reproduction: a seed-deterministic
grammar-based kernel generator (:mod:`.generator`), a differential
oracle checking every optimization level x backend x VL x restrict x RLE
configuration against the O0 reference (:mod:`.oracle`), a
dependency-aware delta-debugging reducer (:mod:`.reduce`), a persistent
failure corpus with auto-generated repro commands (:mod:`.corpus`), and
planted pass bugs that prove the loop end to end (:mod:`.plant`).

Driver: ``python -m repro.fuzz {run,reduce,replay}``.
"""

from .corpus import (
    CorpusEntry,
    DEFAULT_CORPUS_DIR,
    iter_entries,
    load_entry,
    replay_entry,
    replay_ok,
    save_entry,
)
from .campaign import (
    Campaign,
    CampaignConfig,
    CampaignSummary,
    run_campaign,
    screen_kernel,
)
from .generator import GENERATOR_VERSION, Kernel, UnsafeAccess, generate_kernel
from .oracle import (
    Config,
    KernelSpec,
    Mismatch,
    OracleReport,
    check_kernel,
    clear_reference_memo,
    default_configs,
    full_configs,
    reference_run,
)
from .plant import PLANTED_BUGS
from .reduce import NotFailing, ReduceResult, reduce_kernel
from .schedule import CoverageMap, Scheduler, Task, coverage_features, mutate_kernel
from .shard import (
    CampaignStateError,
    CampaignStore,
    content_hash,
    current_pins,
    shard_of,
)

__all__ = [
    "Campaign",
    "CampaignConfig",
    "CampaignStateError",
    "CampaignStore",
    "CampaignSummary",
    "Config",
    "CorpusEntry",
    "CoverageMap",
    "DEFAULT_CORPUS_DIR",
    "GENERATOR_VERSION",
    "Kernel",
    "KernelSpec",
    "Mismatch",
    "NotFailing",
    "OracleReport",
    "PLANTED_BUGS",
    "ReduceResult",
    "Scheduler",
    "Task",
    "UnsafeAccess",
    "check_kernel",
    "clear_reference_memo",
    "content_hash",
    "coverage_features",
    "current_pins",
    "default_configs",
    "full_configs",
    "generate_kernel",
    "iter_entries",
    "load_entry",
    "mutate_kernel",
    "reduce_kernel",
    "reference_run",
    "replay_entry",
    "replay_ok",
    "run_campaign",
    "save_entry",
    "screen_kernel",
    "shard_of",
]
