"""Differential compiler fuzzing and test-case reduction.

The correctness-tooling leg of the reproduction: a seed-deterministic
grammar-based kernel generator (:mod:`.generator`), a differential
oracle checking every optimization level x backend x VL x restrict x RLE
configuration against the O0 reference (:mod:`.oracle`), a
dependency-aware delta-debugging reducer (:mod:`.reduce`), a persistent
failure corpus with auto-generated repro commands (:mod:`.corpus`), and
planted pass bugs that prove the loop end to end (:mod:`.plant`).

Driver: ``python -m repro.fuzz {run,reduce,replay}``.
"""

from .corpus import (
    CorpusEntry,
    DEFAULT_CORPUS_DIR,
    iter_entries,
    load_entry,
    replay_entry,
    replay_ok,
    save_entry,
)
from .generator import Kernel, UnsafeAccess, generate_kernel
from .oracle import (
    Config,
    KernelSpec,
    Mismatch,
    OracleReport,
    check_kernel,
    default_configs,
    full_configs,
)
from .plant import PLANTED_BUGS
from .reduce import NotFailing, ReduceResult, reduce_kernel

__all__ = [
    "Config",
    "CorpusEntry",
    "DEFAULT_CORPUS_DIR",
    "Kernel",
    "KernelSpec",
    "Mismatch",
    "NotFailing",
    "OracleReport",
    "PLANTED_BUGS",
    "ReduceResult",
    "UnsafeAccess",
    "check_kernel",
    "default_configs",
    "full_configs",
    "generate_kernel",
    "iter_entries",
    "load_entry",
    "reduce_kernel",
    "replay_entry",
    "replay_ok",
    "save_entry",
]
