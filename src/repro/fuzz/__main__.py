"""Entry point: ``python -m repro.fuzz {run,reduce,replay}``."""

import sys

from repro.fuzz.cli import main

if __name__ == "__main__":
    sys.exit(main())
