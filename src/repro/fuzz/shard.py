"""Sharded, resumable campaign state on disk.

A campaign directory is a self-describing corpus of everything a
sustained fuzzing run has decided so far::

    campaign/
      manifest.json        # pins + scheduler/coverage/dedup state + counts
      cache/               # the campaign's private REPRO_CACHE_DIR
      shard-00/ .. shard-NN/
        records.json       # task key -> outcome (this shard's slice)
        fz....json         # failure findings (standard corpus entries)

Records are sharded by the SHA-256 of the task key so a huge campaign
never rewrites one giant file per checkpoint — only dirty shards are
rewritten, atomically (`tmp` + ``os.replace``).  The manifest pins the
generator grammar version, the artifact FORMAT_VERSION of the disk
cache, and the config-matrix description; ``--resume`` refuses a
directory whose pins do not match the running code, because a resumed
campaign regenerates kernels from seeds and replays artifacts from the
cache — both only sound at the pinned versions.

Nothing in the manifest or the records depends on wall-clock time or
worker scheduling, which is what makes a killed-and-resumed campaign's
final state bit-identical to an uninterrupted run's.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Optional

from repro.perf import diskcache

from .generator import GENERATOR_VERSION

CAMPAIGN_FORMAT_VERSION = 1
DEFAULT_NUM_SHARDS = 16


class CampaignStateError(Exception):
    """A campaign directory is missing, corrupt, or pinned to other
    versions of the generator / artifact format."""


def shard_of(key: str, num_shards: int = DEFAULT_NUM_SHARDS) -> int:
    """Stable shard index for a task key (hash prefix, not seed modulo,
    so mutants of one seed spread across shards)."""
    h = hashlib.sha256(key.encode("utf-8")).hexdigest()
    return int(h[:8], 16) % num_shards


def content_hash(name: str, source: str, bindings: list) -> str:
    """Content hash of a generated program: source + initial data.

    The kernel's own name is normalized out — every generated kernel
    embeds its unique ``fzNNNNNN`` name in the signature, and the name
    has no semantic effect, so two seeds (or a seed and a mutant)
    producing the same program modulo name are true duplicates.  Equal
    hashes run the exact same differential matrix; the dedup index maps
    the hash to the first task's key and later hits skip the whole
    matrix.
    """
    normalized = source.replace(name, "@kernel") if name else source
    payload = normalized + "\x00" + json.dumps(bindings, sort_keys=True)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:24]


def _atomic_write_json(path: Path, payload) -> None:
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    os.replace(tmp, path)


class CampaignStore:
    """Owns one campaign directory: manifest + sharded records."""

    def __init__(self, root: Path | str,
                 num_shards: int = DEFAULT_NUM_SHARDS):
        self.root = Path(root)
        self.num_shards = num_shards
        self.records: dict[int, dict] = {i: {} for i in range(num_shards)}
        self._dirty: set[int] = set()

    # -- paths ------------------------------------------------------------

    @property
    def manifest_path(self) -> Path:
        return self.root / "manifest.json"

    def shard_dir(self, idx: int) -> Path:
        return self.root / f"shard-{idx:02d}"

    @property
    def cache_dir(self) -> Path:
        return self.root / "cache"

    # -- records ----------------------------------------------------------

    def record(self, key: str, rec: dict) -> None:
        idx = shard_of(key, self.num_shards)
        self.records[idx][key] = rec
        self._dirty.add(idx)

    def get_record(self, key: str) -> Optional[dict]:
        return self.records[shard_of(key, self.num_shards)].get(key)

    def all_records(self) -> dict:
        out: dict = {}
        for recs in self.records.values():
            out.update(recs)
        return out

    # -- checkpointing -----------------------------------------------------

    def create(self, manifest: dict) -> None:
        if self.manifest_path.exists():
            raise CampaignStateError(
                f"{self.root} already holds a campaign; use --resume "
                f"(or a fresh directory)"
            )
        self.root.mkdir(parents=True, exist_ok=True)
        self.cache_dir.mkdir(exist_ok=True)
        self.checkpoint(manifest)

    def checkpoint(self, manifest: dict) -> None:
        """Atomically persist the manifest and every dirty shard."""
        for idx in sorted(self._dirty):
            sdir = self.shard_dir(idx)
            sdir.mkdir(parents=True, exist_ok=True)
            _atomic_write_json(
                sdir / "records.json",
                dict(sorted(self.records[idx].items())),
            )
        self._dirty.clear()
        _atomic_write_json(self.manifest_path, manifest)

    def load(self) -> dict:
        """Read the manifest + all shard records; validates the pins."""
        try:
            manifest = json.loads(self.manifest_path.read_text())
        except FileNotFoundError:
            raise CampaignStateError(
                f"{self.root} has no manifest.json — not a campaign "
                f"directory"
            ) from None
        except ValueError as e:
            raise CampaignStateError(
                f"{self.manifest_path}: corrupt manifest: {e}"
            ) from None
        pins = manifest.get("pins", {})
        expect = current_pins()
        for k, v in expect.items():
            if pins.get(k) != v:
                raise CampaignStateError(
                    f"{self.root}: pinned {k}={pins.get(k)!r} but the "
                    f"running code has {v!r}; a campaign cannot resume "
                    f"across that change"
                )
        self.num_shards = manifest["campaign"]["num_shards"]
        self.records = {i: {} for i in range(self.num_shards)}
        for idx in range(self.num_shards):
            p = self.shard_dir(idx) / "records.json"
            if p.exists():
                self.records[idx] = json.loads(p.read_text())
        self._dirty.clear()
        return manifest

    def finding_dir(self, key: str) -> Path:
        """Where a failure finding for ``key`` is saved (its shard)."""
        d = self.shard_dir(shard_of(key, self.num_shards))
        d.mkdir(parents=True, exist_ok=True)
        return d


def current_pins() -> dict:
    """The version pins a new campaign manifest records."""
    return {
        "campaign_format": CAMPAIGN_FORMAT_VERSION,
        "generator_version": GENERATOR_VERSION,
        "artifact_format": diskcache.FORMAT_VERSION,
    }


# -- host pins (distributed campaigns) ----------------------------------------
#
# The host list and each daemon's identity fingerprint live in a
# *separate* ``hosts.json`` version-pin block, not in manifest.json —
# the manifest must stay byte-identical between a single-host and a
# distributed run of the same seeds (that identity is the acceptance
# test of the whole protocol), while ``--resume`` with a different
# ``--hosts`` set must still be refused.

HOST_PINS_FILE = "hosts.json"


def host_pins_path(root: Path | str) -> Path:
    return Path(root) / HOST_PINS_FILE


def write_host_pins(root: Path | str, hosts: list,
                    fingerprints: dict) -> None:
    _atomic_write_json(host_pins_path(root), {
        "hosts": sorted(hosts),
        "fingerprints": {a: fingerprints.get(a) for a in sorted(hosts)},
    })


def load_host_pins(root: Path | str) -> Optional[dict]:
    """The pinned host block, or None for a single-host campaign."""
    p = host_pins_path(root)
    try:
        return json.loads(p.read_text())
    except FileNotFoundError:
        return None
    except ValueError as e:
        raise CampaignStateError(f"{p}: corrupt host pins: {e}") from None


def resolve_host_pins(root: Path | str,
                      hosts: Optional[list]) -> Optional[list]:
    """Reconcile a resume's ``--hosts`` with the pinned block.

    * pinned + no ``--hosts``  -> resume onto the pinned hosts;
    * pinned + same set        -> fine (order is irrelevant);
    * pinned + different set   -> refused (:class:`CampaignStateError`,
      exit 2 at the CLI) — silently rescheduling onto other stores
      would break the per-host shipped-refs and artifact provenance
      bookkeeping the campaign's results were produced under;
    * not pinned + ``--hosts`` -> refused, the campaign is single-host.
    """
    pinned = load_host_pins(root)
    if pinned is None:
        if hosts:
            raise CampaignStateError(
                f"{root}: campaign was created single-host; it cannot "
                f"be resumed with --hosts (start a new campaign)")
        return None
    if hosts and sorted(set(hosts)) != pinned["hosts"]:
        raise CampaignStateError(
            f"{root}: campaign is pinned to hosts "
            f"{','.join(pinned['hosts'])} but --hosts names "
            f"{','.join(sorted(set(hosts)))}; a campaign cannot resume "
            f"onto a different host set")
    return list(pinned["hosts"])


def check_host_fingerprints(root: Path | str, pinned: dict,
                            fingerprints: dict) -> None:
    """Refuse a resume when a *reachable* host no longer matches its
    pinned identity (different daemon version/protocol or a different
    artifact store).  Unreachable hosts (fingerprint None) pass — their
    work is re-leased, never trusted."""
    for addr, fp in sorted(fingerprints.items()):
        if fp is None:
            continue
        want = (pinned.get("fingerprints") or {}).get(addr)
        if want is not None and fp != want:
            raise CampaignStateError(
                f"{root}: host {addr} changed identity since the "
                f"campaign was created (pinned {want!r}, now {fp!r}); "
                f"refusing to resume against a different daemon/store")


__all__ = [
    "CAMPAIGN_FORMAT_VERSION", "CampaignStateError", "CampaignStore",
    "DEFAULT_NUM_SHARDS", "HOST_PINS_FILE", "check_host_fingerprints",
    "content_hash", "current_pins", "host_pins_path", "load_host_pins",
    "resolve_host_pins", "shard_of", "write_host_pins",
]
