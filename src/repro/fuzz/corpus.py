"""Persistent failure corpus: save, load, and replay kernels.

Every interesting kernel — a fuzzer-found failure, its reduced form, or
a coverage specimen worth pinning — is stored as one self-contained JSON
file under ``tests/corpus/``: rendered source, explicit argument
bindings (initial array *values*, not init formulas), the planted bug it
was found under (if any), the expected replay outcome, and the exact
command that reproduces it.  CI replays the whole directory as
regression tests, so a once-found miscompile can never silently return.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, Optional

from .oracle import KernelSpec, OracleReport, check_kernel

DEFAULT_CORPUS_DIR = Path("tests") / "corpus"


@dataclass
class CorpusEntry:
    name: str
    source: str
    bindings: list
    seed: Optional[int] = None
    bug: Optional[str] = None
    expect: str = "pass"  # "pass" | "fail"
    note: str = ""
    repro: str = ""

    def spec(self) -> KernelSpec:
        return KernelSpec(self.name, self.source, self.bindings)


def _bindings_to_json(bindings: list) -> list:
    out = []
    for b in bindings:
        if b[0] == "array":
            out.append({"kind": "array", "name": b[1], "size": b[2],
                        "values": list(b[3])})
        elif b[0] == "alias":
            out.append({"kind": "alias", "name": b[1], "of": b[2],
                        "offset": b[3]})
        else:
            out.append({"kind": "scalar", "name": b[1], "value": b[2]})
    return out


def _bindings_from_json(items: list) -> list:
    out: list = []
    for d in items:
        if d["kind"] == "array":
            out.append(("array", d["name"], d["size"], list(d["values"])))
        elif d["kind"] == "alias":
            out.append(("alias", d["name"], d["of"], d["offset"]))
        else:
            out.append(("scalar", d["name"], d["value"]))
    return out


def save_entry(
    kernel,
    directory: Path | str = DEFAULT_CORPUS_DIR,
    seed: Optional[int] = None,
    bug: Optional[str] = None,
    expect: str = "pass",
    note: str = "",
    repro: Optional[str] = None,
) -> Path:
    """Write one corpus entry; returns the file path.

    ``kernel`` is anything with ``name``/``source``/``bindings``.  The
    auto-generated ``repro`` field is the exact replay command for this
    file, so a failing CI log points straight at a local repro;
    campaigns override it with a location-independent command so the
    saved bytes never depend on where the campaign directory lives.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    stem = kernel.name
    if seed is not None and f"{seed}" not in stem:
        stem = f"{stem}-s{seed}"
    if bug:
        stem = f"{stem}-{bug}"
    path = directory / f"{stem}.json"
    payload = {
        "name": kernel.name,
        "seed": seed,
        "bug": bug,
        "expect": expect,
        "note": note,
        "repro": repro if repro is not None else (
            f"PYTHONPATH=src python -m repro.fuzz replay {path.as_posix()}"
        ),
        "bindings": _bindings_to_json(kernel.bindings),
        "source": kernel.source,
    }
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return path


def load_entry(path: Path | str) -> CorpusEntry:
    d = json.loads(Path(path).read_text())
    return CorpusEntry(
        name=d["name"],
        source=d["source"],
        bindings=_bindings_from_json(d["bindings"]),
        seed=d.get("seed"),
        bug=d.get("bug"),
        expect=d.get("expect", "pass"),
        note=d.get("note", ""),
        repro=d.get("repro", ""),
    )


#: Non-kernel JSON files that live next to corpus entries: the fuzz
#: telemetry snapshot, and a campaign directory's manifest / per-shard
#: record files.  ``replay`` must skip them.
_NON_ENTRY_NAMES = {"fuzz_telemetry.json", "manifest.json", "records.json",
                    "hosts.json"}


def iter_entries(path: Path | str = DEFAULT_CORPUS_DIR) -> Iterator[Path]:
    p = Path(path)
    if p.is_file():
        yield p
        return
    # recursive so ``fuzz replay CAMPAIGN_DIR`` replays every finding a
    # sharded campaign saved (shard-NN/fz....json)
    yield from sorted(f for f in p.rglob("*.json")
                      if f.name not in _NON_ENTRY_NAMES)


def replay_entry(entry: CorpusEntry, full: bool = False) -> OracleReport:
    """Run an entry's kernel through the oracle under its recorded bug."""
    return check_kernel(entry.spec(), bug=entry.bug, full=full)


def replay_ok(entry: CorpusEntry, report: OracleReport) -> bool:
    """Did the replay match the entry's expected outcome?

    A parse failure never satisfies ``expect == "fail"`` — a pinned
    miscompile that stops even compiling is a corpus bug, not a replay
    of the recorded failure.
    """
    if entry.expect == "pass":
        return report.ok
    return not report.ok and "parse" not in report.kinds()


__all__ = [
    "CorpusEntry", "DEFAULT_CORPUS_DIR", "iter_entries", "load_entry",
    "replay_entry", "replay_ok", "save_entry",
]
