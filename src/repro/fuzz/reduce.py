"""Syntax-guided test-case reduction for failing kernels.

Classic ddmin treats the program as a token soup and wastes most of its
budget on syntactically broken candidates.  Following DRReduce, this
reducer edits the generator's *structured* statement/expression trees, so
every candidate renders to well-formed mini-C, and re-validates each
accepted step through both the differential oracle (same failure *kind*
at the same configuration) and the kernel's bounds checker (reductions
may never introduce out-of-bounds accesses the original didn't have).
IR well-formedness is enforced on every candidate too: the oracle runs
the pipeline verifier, and ``verify_each_pass=True`` pins a corrupted
invariant to the pass that broke it.

Granularities, applied to a fixpoint:

1. **statements** — greedy one-minimal removal of statements, inner-most
   first (removing an ``if`` or a whole loop removes its subtree);
2. **loops / branches** — unwrap a loop into its body with the induction
   variable pinned to 0, collapse a loop to a single iteration, replace
   an ``if`` by either branch;
3. **expressions** — replace an operator node by either operand, a cast
   by its operand, any value expression by a literal, any index by 0,
   any bound by 1;
4. **declarations** — drop scalar declarations that are no longer used.

Each candidate is tested *in place* with undo (no per-candidate deep
copies); the working kernel is a deep copy of the input, which is never
mutated.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Callable, Optional

from .generator import (
    Assign,
    Bin,
    Cast,
    ForLoop,
    If,
    Kernel,
    Load,
    Num,
    UnsafeAccess,
    Var,
)
from .oracle import Config, OracleReport, check_kernel


@dataclass
class ReduceResult:
    kernel: Kernel
    original_report: OracleReport
    fail_config: Optional[Config]
    fail_kinds: set
    candidates_tried: int = 0
    candidates_accepted: int = 0
    rounds: int = 0

    @property
    def stmt_count(self) -> int:
        return self.kernel.stmt_count()


class NotFailing(ValueError):
    """The kernel to reduce does not fail the oracle."""


# -- tree helpers ------------------------------------------------------------


def _subst_var(node, name: str, repl):
    if isinstance(node, Var) and node.name == name:
        return copy.deepcopy(repl)
    if isinstance(node, Bin):
        node.lhs = _subst_var(node.lhs, name, repl)
        node.rhs = _subst_var(node.rhs, name, repl)
    elif isinstance(node, Cast):
        node.operand = _subst_var(node.operand, name, repl)
    elif isinstance(node, Load):
        node.index = _subst_var(node.index, name, repl)
    return node


def _subst_in_stmts(stmts: list, name: str, repl) -> list:
    for st in stmts:
        if isinstance(st, Assign):
            st.target = _subst_var(st.target, name, repl)
            st.expr = _subst_var(st.expr, name, repl)
        elif isinstance(st, If):
            st.cond = _subst_var(st.cond, name, repl)
            _subst_in_stmts(st.then, name, repl)
            _subst_in_stmts(st.els, name, repl)
        elif isinstance(st, ForLoop):
            st.bound = _subst_var(st.bound, name, repl)
            _subst_in_stmts(st.body, name, repl)
    return stmts


def _stmt_sites(body: list) -> list:
    """(container, index) for every statement, children after parents."""
    sites: list = []

    def walk(stmts: list) -> None:
        for i, st in enumerate(stmts):
            sites.append((stmts, i))
            if isinstance(st, ForLoop):
                walk(st.body)
            elif isinstance(st, If):
                walk(st.then)
                walk(st.els)

    walk(body)
    return sites


def _names_used(body: list) -> set:
    used: set = set()

    def visit_expr(node) -> None:
        if isinstance(node, Var):
            used.add(node.name)
        elif isinstance(node, Bin):
            visit_expr(node.lhs)
            visit_expr(node.rhs)
        elif isinstance(node, Cast):
            visit_expr(node.operand)
        elif isinstance(node, Load):
            visit_expr(node.index)

    for stmts, i in _stmt_sites(body):
        st = stmts[i]
        if isinstance(st, Assign):
            visit_expr(st.target)
            visit_expr(st.expr)
        elif isinstance(st, If):
            visit_expr(st.cond)
        elif isinstance(st, ForLoop):
            visit_expr(st.bound)
    return used


# -- the reducer --------------------------------------------------------------


class _Reducer:
    def __init__(self, kernel: Kernel, predicate: Callable[[Kernel], bool]):
        self.k = kernel
        self.predicate = predicate
        self.tried = 0
        self.accepted = 0

    def _ok(self) -> bool:
        self.tried += 1
        try:
            self.k.validate()
        except UnsafeAccess:
            return False
        if self.predicate(self.k):
            self.accepted += 1
            return True
        return False

    # each pass returns True if it accepted at least one change

    def remove_statements(self) -> bool:
        any_change = False
        progress = True
        while progress:
            progress = False
            for stmts, i in reversed(_stmt_sites(self.k.body)):
                if i >= len(stmts):
                    continue  # container shrank under us this sweep
                saved = stmts[i]
                del stmts[i]
                if self._ok():
                    any_change = progress = True
                else:
                    stmts.insert(i, saved)
            # a sweep that removed nothing is the one-minimal fixpoint
        return any_change

    def simplify_structure(self) -> bool:
        any_change = False
        progress = True
        while progress:
            progress = False
            for stmts, i in _stmt_sites(self.k.body):
                if i >= len(stmts):
                    continue
                st = stmts[i]
                candidates: list = []
                if isinstance(st, ForLoop):
                    # unwrap: body with the induction variable pinned to 0
                    body = _subst_in_stmts(
                        copy.deepcopy(st.body), st.var, Num(0, False)
                    )
                    candidates.append(body)
                    if not (isinstance(st.bound, Num) and st.bound.value == 1):
                        one = copy.deepcopy(st)
                        one.bound = Num(1, False)
                        candidates.append([one])
                elif isinstance(st, If):
                    candidates.append(copy.deepcopy(st.then))
                    if st.els:
                        candidates.append(copy.deepcopy(st.els))
                for repl in candidates:
                    saved = stmts[i : i + 1]
                    stmts[i : i + 1] = repl
                    if self._ok():
                        any_change = progress = True
                        break
                    stmts[i : i + len(repl)] = saved
                if progress:
                    break  # sites are stale; re-enumerate
        return any_change

    def _expr_candidates(self, node, ctx: str) -> list:
        out: list = []
        if isinstance(node, Bin):
            out += [node.lhs, node.rhs]
        elif isinstance(node, Cast):
            out.append(node.operand)
        if ctx == "value" and not isinstance(node, (Num, Var)):
            out.append(Num(1.0, True))
        elif ctx == "index" and not (
            isinstance(node, Num) and node.value == 0
        ):
            out.append(Num(0, False))
        elif ctx == "bound" and not (
            isinstance(node, Num) and node.value == 1
        ):
            out.append(Num(1, False))
        return out

    def _try_slots(self, node, set_node, ctx: str) -> bool:
        """Depth-first over one expression tree; True on accepted change."""
        for repl in self._expr_candidates(node, ctx):
            set_node(repl)
            if self._ok():
                return True
            set_node(node)
        if isinstance(node, Bin):
            sub_ctx = ctx if ctx != "cond" else "value"
            return self._try_slots(
                node.lhs, lambda v: setattr(node, "lhs", v), sub_ctx
            ) or self._try_slots(
                node.rhs, lambda v: setattr(node, "rhs", v), sub_ctx
            )
        if isinstance(node, Cast):
            return self._try_slots(
                node.operand, lambda v: setattr(node, "operand", v), ctx
            )
        if isinstance(node, Load):
            return self._try_slots(
                node.index, lambda v: setattr(node, "index", v), "index"
            )
        return False

    def simplify_exprs(self) -> bool:
        any_change = False
        progress = True
        while progress:
            progress = False
            for stmts, i in _stmt_sites(self.k.body):
                if i >= len(stmts):
                    continue
                st = stmts[i]
                if isinstance(st, Assign):
                    if isinstance(st.target, Load):
                        tgt = st.target
                        progress = self._try_slots(
                            tgt.index,
                            lambda v, t=tgt: setattr(t, "index", v),
                            "index",
                        )
                    progress = progress or self._try_slots(
                        st.expr, lambda v, s=st: setattr(s, "expr", v), "value"
                    )
                elif isinstance(st, If):
                    progress = self._try_slots(
                        st.cond, lambda v, s=st: setattr(s, "cond", v), "cond"
                    )
                elif isinstance(st, ForLoop):
                    progress = self._try_slots(
                        st.bound, lambda v, s=st: setattr(s, "bound", v),
                        "bound",
                    )
                if progress:
                    any_change = True
                    break  # mutated; re-enumerate sites
        return any_change

    def drop_decls(self) -> bool:
        any_change = False
        used = _names_used(self.k.body)
        for d in list(self.k.decls):
            name = d[0]
            if name == "s" or name in used:
                continue  # "s" is the return value
            self.k.decls.remove(d)
            if self._ok():
                any_change = True
            else:
                self.k.decls.append(d)
        return any_change


def reduce_kernel(
    kernel: Kernel,
    bug: Optional[str] = None,
    max_steps: int = 500_000,
    max_rounds: int = 12,
    configs: Optional[list] = None,
) -> ReduceResult:
    """Shrink a failing kernel while preserving its failure.

    First runs the full oracle to establish the failure (configuration +
    kinds), then iterates the reduction passes against a fast predicate:
    the candidate must reproduce a mismatch of the *same kind* at the
    *same configuration*.  Raises :class:`NotFailing` if the input kernel
    passes the oracle.
    """
    original = check_kernel(kernel, bug=bug, configs=configs,
                            max_steps=max_steps)
    if original.ok:
        raise NotFailing(f"{kernel.name}: oracle reports no mismatch")
    first = next(m for m in original.mismatches if m.config is not None)
    fail_config = first.config
    fail_kinds = {
        m.kind for m in original.mismatches if m.config == fail_config
    }

    def predicate(k: Kernel) -> bool:
        rep = check_kernel(
            k, bug=bug, configs=[fail_config], cross_backend=False,
            max_steps=max_steps, verify_each_pass=True,
        )
        return bool(rep.kinds() & fail_kinds)

    working = copy.deepcopy(kernel)
    working.name = kernel.name
    r = _Reducer(working, predicate)
    rounds = 0
    changed = True
    while changed and rounds < max_rounds:
        rounds += 1
        changed = r.remove_statements()
        changed = r.simplify_structure() or changed
        changed = r.simplify_exprs() or changed
        changed = r.drop_decls() or changed

    return ReduceResult(
        kernel=working,
        original_report=original,
        fail_config=fail_config,
        fail_kinds=fail_kinds,
        candidates_tried=r.tried,
        candidates_accepted=r.accepted,
        rounds=rounds,
    )


__all__ = ["NotFailing", "ReduceResult", "reduce_kernel"]
