"""Differential oracle: every configuration must match the O0 reference.

For one kernel the oracle runs the full configuration matrix —
optimization level × execution backend × vector length × restrict × RLE —
and demands that return value, full final memory (every array argument,
element by element), and checksum agree with the unoptimized (``O0``)
build executed on the reference interpreter.  At one designated
configuration it additionally runs *all four* backends (reference,
compiled, fused, array) and demands exact (bit-identical) agreement of
cycles and every dynamic counter, the contract :mod:`repro.interp.compile`,
:mod:`repro.interp.fuse`, and :mod:`repro.interp.array` promise.

Outcomes are classified so the reducer can preserve a failure's *kind*:

* ``parse``  — the front end rejected the source (generator/reducer bug);
* ``verify`` — a pass broke an IR invariant (:class:`VerificationError`);
* ``crash``  — execution raised (step limit, memory fault, ...);
* ``return`` / ``memory`` / ``checksum`` — a genuine miscompile;
* ``cycles`` / ``counters`` — backend accounting drift.

An intentionally planted pass bug (see :mod:`repro.fuzz.plant`) can be
applied to the optimized module — never to the O0 reference — to prove
end to end that the oracle detects and the reducer localizes miscompiles.
"""

from __future__ import annotations

import math
import os
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro import telemetry

from repro.frontend import LoweringError, ParseError, compile_c
from repro.frontend.lexer import LexError
from repro.interp import InterpreterError, MemoryError_
from repro.ir import VerificationError
from repro.diag.context import get_context
from repro.perf import diskcache
from repro.perf.measure import AliasArg, ArrayArg, ScalarArg, Workload, execute
from repro.pipeline.pipelines import optimize

from .plant import PLANTED_BUGS

REL_TOL = 1e-9
ABS_TOL = 1e-12


@dataclass(frozen=True)
class Config:
    """One point in the differential matrix."""

    level: str
    honor_restrict: bool = True
    vl: int = 4
    rle: bool = False
    backend: str = "compiled"

    def describe(self) -> str:
        return (
            f"{self.level} [backend={self.backend}, "
            f"restrict={'on' if self.honor_restrict else 'off'}, "
            f"vl={self.vl}, rle={'on' if self.rle else 'off'}]"
        )


@dataclass
class Mismatch:
    kind: str  # parse | verify | crash | return | memory | checksum | cycles | counters
    detail: str
    config: Optional[Config] = None

    def __str__(self) -> str:
        where = f" @ {self.config.describe()}" if self.config else ""
        return f"[{self.kind}]{where}: {self.detail}"


@dataclass
class KernelSpec:
    """The oracle's minimal view of a kernel: source + argument bindings.

    ``bindings`` uses the :class:`repro.fuzz.generator.Kernel` encoding
    (``("array", name, size, values)`` / ``("alias", name, of, offset)``
    / ``("scalar", name, value)``) so corpus entries replay without the
    generator's structured trees.
    """

    name: str
    source: str
    bindings: list

    @property
    def has_restrict(self) -> bool:
        return "restrict" in self.source


@dataclass
class OracleReport:
    name: str
    mismatches: list = field(default_factory=list)
    configs_run: int = 0

    @property
    def ok(self) -> bool:
        return not self.mismatches

    def kinds(self) -> set:
        return {m.kind for m in self.mismatches}


# -- configuration matrices --------------------------------------------------

CROSS_BACKEND_CONFIG = Config("supervec+v", True, 4, False)

#: every registered executor pinned against the reference at the fixed
#: cross-backend config — the four-way accounting identity check (the
#: array tier runs in exact mode here, so its analytic cycles/counters
#: must match the reference bit for bit)
CROSS_BACKENDS = ("reference", "compiled", "fused", "array")

_LEVELS = ["O3-scalar", "O3", "supervec", "supervec+v"]


def default_configs(has_restrict: bool) -> list[Config]:
    cfgs = [
        Config("O3-scalar"),
        Config("O3"),
        Config("supervec"),
        Config("supervec+v"),
        Config("supervec+v", rle=True),
        Config("supervec+v", vl=8),
        Config("supervec+v", vl=2),
        Config("supervec+v", backend="fused"),
    ]
    if has_restrict:
        cfgs.append(Config("supervec+v", honor_restrict=False))
    return cfgs


def full_configs(has_restrict: bool) -> list[Config]:
    restricts = [True, False] if has_restrict else [True]
    return [
        Config(level, hr, vl, rle)
        for level in _LEVELS
        for hr in restricts
        for vl in (2, 4, 8)
        for rle in (False, True)
    ]


# -- running one configuration -----------------------------------------------


def _workload(spec: KernelSpec) -> Workload:
    args: list = []
    for b in spec.bindings:
        if b[0] == "array":
            _, name, size, values = b
            args.append(ArrayArg(name, size, init=lambda i, v=values: v[i]))
        elif b[0] == "alias":
            _, name, of, offset = b
            args.append(AliasArg(name, of, offset))
        else:
            args.append(ScalarArg(b[1], b[2]))
    return Workload(name=spec.name, source=spec.source, entry=spec.name,
                    args=args)


def _build(spec: KernelSpec, cfg: Config, verify_each_pass: bool):
    """Compile + optimize one config, via the persistent disk cache.

    Fuzz sweeps re-build the same (source, config) pair once per seed
    replay and once more in every reduction step, so a warm
    ``REPRO_CACHE_DIR`` collapses most of a campaign's build time —
    including across the ``-j N`` worker processes, which share the
    directory.  Each hit is a *fresh unpickle*, so planted bugs (which
    mutate the optimized module in place, after this returns) can never
    leak into the cache or between configs.  Caching is bypassed under
    ``verify_each_pass`` (the point is to run the verifier between
    passes) and under an active diagnostics context (remark streams must
    come from a real pass pipeline).
    """
    if (
        not verify_each_pass
        and os.environ.get("REPRO_SERVICE_ADDR")
        and not get_context().enabled
    ):
        # a running compile service serves the build from its sharded,
        # manifest-verified store (REPRO_SERVICE_ADDR routes the whole
        # oracle matrix through it); unreachable daemons fall back to
        # the local path below, counted by the service client
        from repro.service.client import maybe_remote_build

        remote = maybe_remote_build(
            spec.source, spec.name, cfg.level,
            cfg.honor_restrict, cfg.vl, cfg.rle,
        )
        if remote is not None:
            return remote
    key = None
    if (
        not verify_each_pass
        and diskcache.cache_dir() is not None
        and not get_context().enabled
    ):
        key = diskcache.cache_key(
            spec.source, spec.name, cfg.level,
            cfg.honor_restrict, cfg.vl, cfg.rle,
        )
        hit = diskcache.load(key)
        if hit is not None:
            return hit
    module = compile_c(spec.source, name=spec.name)
    stats = optimize(
        module, cfg.level, honor_restrict=cfg.honor_restrict,
        vl=cfg.vl, rle=cfg.rle, verify_each_pass=verify_each_pass,
    )
    if key is not None:
        diskcache.store(key, module, stats)
    return module, stats


def _run_config(
    spec: KernelSpec,
    cfg: Config,
    bug: Optional[Callable],
    max_steps: Optional[int],
    verify_each_pass: bool,
):
    """Build + optimize + (optionally corrupt) + execute one config.

    Returns ``(result, mismatch)`` — exactly one is non-None.
    """
    w = _workload(spec)
    try:
        module, stats = _build(spec, cfg, verify_each_pass)
    except (ParseError, LexError, LoweringError) as e:
        return None, Mismatch("parse", str(e), cfg)
    except VerificationError as e:
        return None, Mismatch("verify", str(e), cfg)
    except Exception as e:  # a pass crashed outright
        return None, Mismatch("crash", f"{type(e).__name__}: {e}", cfg)
    if bug is not None and cfg.level != "O0":
        bug(module)
    try:
        res = execute(module, w, stats, backend=cfg.backend,
                      capture_arrays=True, max_steps=max_steps)
    except (InterpreterError, MemoryError_) as e:
        return None, Mismatch("crash", f"{type(e).__name__}: {e}", cfg)
    except Exception as e:
        # corrupted IR (e.g. a planted bug) can blow up the executors in
        # arbitrary ways; any such escape is still a "crash" outcome
        return None, Mismatch("crash", f"{type(e).__name__}: {e}", cfg)
    return res, None


def _isclose(a: float, b: float) -> bool:
    if math.isnan(a) or math.isnan(b):
        return math.isnan(a) and math.isnan(b)
    return math.isclose(a, b, rel_tol=REL_TOL, abs_tol=ABS_TOL)


def _exact(a, b) -> bool:
    """Bit-level equality for cross-backend comparison (NaN == NaN)."""
    if isinstance(a, float) and isinstance(b, float):
        return a == b or (math.isnan(a) and math.isnan(b))
    if isinstance(a, (list, tuple)) and isinstance(b, (list, tuple)):
        return len(a) == len(b) and all(map(_exact, a, b))
    if isinstance(a, dict) and isinstance(b, dict):
        return a.keys() == b.keys() and all(
            _exact(v, b[k]) for k, v in a.items()
        )
    return a == b


def _compare(ref, got, cfg: Config) -> list[Mismatch]:
    out: list[Mismatch] = []
    rv, gv = ref.return_value, got.return_value
    if (rv is None) != (gv is None) or (
        rv is not None and not _isclose(float(rv), float(gv))
    ):
        out.append(Mismatch("return", f"{gv!r} != reference {rv!r}", cfg))
    for name, ref_vals in (ref.arrays or {}).items():
        got_vals = (got.arrays or {}).get(name)
        if got_vals is None or len(got_vals) != len(ref_vals):
            out.append(Mismatch("memory", f"array {name} shape drift", cfg))
            continue
        for k, (x, y) in enumerate(zip(ref_vals, got_vals)):
            if not _isclose(float(x), float(y)):
                out.append(Mismatch(
                    "memory",
                    f"{name}[{k}] = {y!r} != reference {x!r}", cfg,
                ))
                break
    if not _isclose(ref.checksum, got.checksum):
        out.append(Mismatch(
            "checksum", f"{got.checksum!r} != reference {ref.checksum!r}", cfg
        ))
    return out


# -- the O0 reference, memoized across calls ----------------------------------

#: (source, bindings, max_steps) -> reference RunResult.  ``check_kernel``
#: used to rebuild + re-run the O0 reference on *every* call, which the
#: reducer (one call per candidate, explicit config subsets) and the
#: campaign escalation tier (screen first, full matrix later) both pay
#: for the same unchanged program.  Only successful runs are cached; the
#: reference is never subject to planted bugs, so the cached result is
#: config-independent.
_REF_MEMO: OrderedDict = OrderedDict()
_REF_MEMO_CAP = 64


def _bindings_fingerprint(bindings: list):
    return tuple(
        (b[0], b[1], b[2], tuple(b[3])) if b[0] == "array" else tuple(b)
        for b in bindings
    )


def clear_reference_memo() -> None:
    _REF_MEMO.clear()


@dataclass
class RefResult:
    """A portable O0 reference result: exactly the fields
    :func:`_compare` reads.

    Distributed campaigns ship these between hosts (content-addressed,
    at most once per host), so a daemon that never built a program's O0
    reference can still screen its escalation.  Floats survive the JSON
    round trip exactly — ``json`` serializes ``repr``-faithfully and
    parses back to the identical double — so a comparison against a
    shipped reference is bit-for-bit the comparison against a local one.
    """

    checksum: float
    return_value: object
    arrays: Optional[dict] = None


def _plain_floats(arrays: Optional[dict]) -> Optional[dict]:
    """Array captures -> plain ``{name: [float, ...]}`` (JSON-safe;
    NumPy scalars coerce exactly)."""
    if arrays is None:
        return None
    return {k: [float(x) for x in v] for k, v in arrays.items()}


def _ref_memo_put(key, res) -> None:
    _REF_MEMO[key] = res
    _REF_MEMO.move_to_end(key)
    while len(_REF_MEMO) > _REF_MEMO_CAP:
        _REF_MEMO.popitem(last=False)


def export_reference(spec: KernelSpec,
                     max_steps: Optional[int] = None) -> Optional[dict]:
    """The memoized O0 reference for ``spec`` as a JSON-safe dict, or
    None when it was never run (or has been evicted)."""
    key = (spec.source, _bindings_fingerprint(spec.bindings), max_steps)
    hit = _REF_MEMO.get(key)
    if hit is None:
        return None
    rv = hit.return_value
    if rv is not None and not isinstance(rv, (bool, int)):
        rv = float(rv)
    return {
        "checksum": float(hit.checksum),
        "return_value": rv,
        "arrays": _plain_floats(hit.arrays),
    }


def seed_reference(spec: KernelSpec, max_steps: Optional[int],
                   ref: dict) -> None:
    """Install a shipped reference result into the memo (never clobbers
    a locally computed entry — local results are at least as good)."""
    key = (spec.source, _bindings_fingerprint(spec.bindings), max_steps)
    if key in _REF_MEMO:
        return
    _ref_memo_put(key, RefResult(
        checksum=ref["checksum"],
        return_value=ref.get("return_value"),
        arrays=ref.get("arrays"),
    ))
    telemetry.counter("repro_fuzz_reference_runs_total",
                      "O0 reference builds vs memo hits",
                      outcome="seeded").inc()


def reference_run(spec: KernelSpec, max_steps: Optional[int] = None):
    """Build + run the O0 reference for ``spec``, memoized.

    Returns ``(result, mismatch)`` exactly like :func:`_run_config`.
    """
    key = (spec.source, _bindings_fingerprint(spec.bindings), max_steps)
    hit = _REF_MEMO.get(key)
    if hit is not None:
        _REF_MEMO.move_to_end(key)
        telemetry.counter("repro_fuzz_reference_runs_total",
                          "O0 reference builds vs memo hits",
                          outcome="reused").inc()
        return hit, None
    res, err = _run_config(
        spec, Config("O0", backend="reference"), None, max_steps, False
    )
    telemetry.counter("repro_fuzz_reference_runs_total",
                      "O0 reference builds vs memo hits",
                      outcome="built").inc()
    if err is None:
        _ref_memo_put(key, res)
    return res, err


# -- the oracle ---------------------------------------------------------------


def check_kernel(
    spec,
    bug: Optional[str] = None,
    configs: Optional[list[Config]] = None,
    full: bool = False,
    max_steps: Optional[int] = None,
    verify_each_pass: bool = False,
    cross_backend: bool = True,
) -> OracleReport:
    """Run the differential matrix for one kernel.

    ``spec`` is anything with ``name``/``source``/``bindings`` (a
    generator :class:`~repro.fuzz.generator.Kernel` or a
    :class:`KernelSpec`).  ``bug`` names a planted pass bug from
    :data:`repro.fuzz.plant.PLANTED_BUGS`, applied to every optimized
    build but never to the O0 reference.
    """
    spec = KernelSpec(spec.name, spec.source, spec.bindings)
    bug_fn = PLANTED_BUGS[bug] if bug else None
    report = OracleReport(name=spec.name)

    ref, err = reference_run(spec, max_steps)
    report.configs_run += 1
    if err is not None:
        report.mismatches.append(err)
        return report

    if configs is None:
        configs = (full_configs if full else default_configs)(
            spec.has_restrict
        )
    for cfg in configs:
        got, err = _run_config(spec, cfg, bug_fn, max_steps, verify_each_pass)
        report.configs_run += 1
        if err is not None:
            report.mismatches.append(err)
            continue
        report.mismatches.extend(_compare(ref, got, cfg))

    if cross_backend:
        # backend accounting agreement: all four executors at one fixed
        # config must be *exactly* identical (cycles, counters, memory)
        base = CROSS_BACKEND_CONFIG
        runs = {}
        errs = []
        for backend in CROSS_BACKENDS:
            cfg = Config(base.level, base.honor_restrict, base.vl, base.rle,
                         backend=backend)
            got, err = _run_config(spec, cfg, bug_fn, max_steps, False)
            report.configs_run += 1
            if err is not None:
                errs.append(err)
            else:
                runs[backend] = got
        seen = {str(m) for m in report.mismatches}
        for e in errs:
            if str(e) not in seen:
                report.mismatches.append(e)
                seen.add(str(e))
        b = runs.get("reference")
        if b is not None and not errs:
            for backend, a in runs.items():
                if backend == "reference":
                    continue
                cfg = Config(base.level, base.honor_restrict, base.vl,
                             base.rle, backend=backend)
                if a.cycles != b.cycles:
                    report.mismatches.append(Mismatch(
                        "cycles",
                        f"{backend} {a.cycles!r} != reference {b.cycles!r}",
                        cfg,
                    ))
                if a.counters.as_dict() != b.counters.as_dict():
                    report.mismatches.append(Mismatch(
                        "counters",
                        f"per-opcode counter drift: {backend} vs reference",
                        cfg,
                    ))
                if not _exact(a.arrays, b.arrays) or not _exact(
                    a.return_value, b.return_value
                ):
                    report.mismatches.append(Mismatch(
                        "memory",
                        f"{backend} memory/return drift at fixed config",
                        cfg,
                    ))
    return report


__all__ = [
    "ABS_TOL", "CROSS_BACKENDS", "CROSS_BACKEND_CONFIG", "Config",
    "KernelSpec", "Mismatch", "OracleReport", "REL_TOL", "RefResult",
    "check_kernel", "clear_reference_memo", "default_configs",
    "export_reference", "full_configs", "reference_run",
    "seed_reference",
]
