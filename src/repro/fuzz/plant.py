"""Intentionally planted pass bugs for exercising the oracle and reducer.

Each entry deterministically corrupts an *optimized* module the way a
buggy pass would, while keeping the IR verifier-clean — so the failure
surfaces as a genuine miscompile (memory/checksum divergence from the O0
reference), which is exactly the class of bug the fuzzer exists to
catch.  The oracle applies a planted bug to every optimized build and
never to the reference, and the reducer then shrinks the triggering
kernel to a minimal statement sequence while preserving the failure.

These are test fixtures, not fault injection for production use: they
let the test suite assert, on a HEAD with no known bugs, that the whole
find→reduce→replay loop actually works.
"""

from __future__ import annotations

from repro.ir.instructions import BinOp, Store, VecBin


def _swap_sub(module) -> int:
    """Swap the operands of every (scalar or vector) subtraction.

    Models an operand-ordering bug in an instruction-rewriting pass; any
    executed ``a - b`` with ``a != b`` diverges from the reference.
    """
    n = 0
    for fn in module.functions.values():
        for inst in fn.instructions():
            if isinstance(inst, (BinOp, VecBin)) and inst.op == "sub":
                a, b = inst.operands
                inst.set_operand(0, b)
                inst.set_operand(1, a)
                n += 1
    return n


def _drop_guard(module) -> int:
    """Erase the execution predicate of every guarded store.

    Models a predication bug in code motion: a conditional store runs
    unconditionally, clobbering memory whenever its guard was false.
    """
    from repro.ir.predicates import Predicate

    n = 0
    for fn in module.functions.values():
        for inst in fn.instructions():
            if isinstance(inst, Store) and not inst.predicate.is_true():
                inst.set_predicate(Predicate.true())
                n += 1
    return n


def _vec_swap_sub(module) -> int:
    """Swap the operands of *vector* subtractions only.

    The rare-trigger sibling of ``swap-sub``: it fires only when the SLP
    vectorizer actually packed a subtraction into a ``VecBin``, so most
    kernels are immune and the miscompile hides behind a specific
    optimization decision.  This is the shape of bug coverage-guided
    scheduling exists for — a random sweep burns seeds on immune
    kernels, while mutating seeds whose remark stream shows rare SLP
    coverage reaches a triggering kernel in far fewer tasks.
    """
    n = 0
    for fn in module.functions.values():
        for inst in fn.instructions():
            if isinstance(inst, VecBin) and inst.op == "sub":
                a, b = inst.operands
                inst.set_operand(0, b)
                inst.set_operand(1, a)
                n += 1
    return n


def _stale_mul(module) -> int:
    """Turn every multiplication into an addition.

    A blunt strength-reduction-gone-wrong bug; fires on almost any
    kernel, which makes it useful for reduction demos where the seed
    kernel should shrink to a single-statement loop.
    """
    n = 0
    for fn in module.functions.values():
        for inst in fn.instructions():
            if isinstance(inst, (BinOp, VecBin)) and inst.op == "mul":
                inst.op = "add"
                n += 1
    return n


PLANTED_BUGS = {
    "swap-sub": _swap_sub,
    "vec-swap-sub": _vec_swap_sub,
    "drop-guard": _drop_guard,
    "mul-to-add": _stale_mul,
}

__all__ = ["PLANTED_BUGS"]
