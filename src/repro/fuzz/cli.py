"""``python -m repro.fuzz {run,campaign,reduce,replay}`` — the fuzzing driver.

* ``run``      — generate seed-deterministic kernels and push each through
  the differential oracle; failures are saved to the corpus with a
  ready-made repro command.
* ``campaign`` — the sustained-throughput engine: coverage-guided
  scheduling over a tiered oracle, content-hash dedup, persistent warm
  workers, and a resumable sharded on-disk state
  (:mod:`repro.fuzz.campaign`).  ``--resume DIR`` continues a killed run.
* ``reduce``   — shrink a failing kernel (by seed, or a corpus file) to a
  minimal statement sequence that preserves the failure.
* ``replay``   — re-run corpus entries and check each against its expected
  outcome (the CI regression mode).

Exit status is 0 iff everything matched expectations.
"""

from __future__ import annotations

import argparse
import os
import sys
import time

from repro import telemetry

from .corpus import (
    DEFAULT_CORPUS_DIR,
    iter_entries,
    load_entry,
    replay_entry,
    replay_ok,
    save_entry,
)
from .generator import generate_kernel
from .oracle import check_kernel
from .plant import PLANTED_BUGS
from .reduce import NotFailing, reduce_kernel


_POOLED = False


def _pool_init() -> None:
    """Pool initializer: per-worker setup exactly once, not per task.

    Marks the process as a pooled worker (which selects the
    telemetry-delta protocol in :func:`_check_seed`), warms the backend
    registry and front end (a no-op under fork, real imports under
    spawn), and zeroes the fork-inherited telemetry registry so the
    first task's snapshot is as clean a delta as every later one's.
    """
    global _POOLED
    _POOLED = True
    import repro.interp.array  # noqa: F401
    import repro.interp.compile  # noqa: F401
    import repro.interp.fuse  # noqa: F401
    from repro.frontend import compile_c  # noqa: F401

    telemetry.reset()


def _check_seed(task) -> tuple:
    """Worker body: one seed through the oracle.

    Module-level so it pickles under multiprocessing.  Returns plain
    data only (seed, ok flag, rendered mismatches, configs, features,
    telemetry snapshot) — the parent regenerates the kernel
    deterministically from the seed when it needs the full object
    (e.g. ``--save``).

    Pooled workers (``_POOLED``, set by :func:`_pool_init`) use the
    cross-process telemetry protocol: the fork-inherited registry is
    zeroed at task start so the task-end snapshot is a per-task delta
    the parent can ``absorb()`` without double counting.  In-process
    runs never reset (they write to the live registry directly) and
    ship no snapshot.
    """
    seed, bug, full, verify_each_pass = task
    in_worker = _POOLED
    if in_worker:
        telemetry.reset()
    kernel = generate_kernel(seed, name=f"fz{seed:06d}")
    report = check_kernel(
        kernel, bug=bug, full=full, verify_each_pass=verify_each_pass,
    )
    telemetry.counter("repro_fuzz_seeds_total",
                      "fuzzed seeds by oracle outcome",
                      outcome="ok" if report.ok else "fail").inc()
    kinds = sorted({m.kind for m in report.mismatches})
    for kind in kinds:
        telemetry.counter("repro_fuzz_failure_kinds_total",
                          "failing seeds by mismatch kind", kind=kind).inc()
    snap = telemetry.snapshot(include_spans=False) if in_worker else None
    return (seed, report.ok, [str(m) for m in report.mismatches],
            report.configs_run, sorted(kernel.features), kinds, snap)


def _iter_reports(args):
    """Yield per-seed results in seed order, optionally via a pool.

    Worker results are merged deterministically: ``Pool.map`` over
    chunked seed ranges preserves submission order, so the output (and
    any saved corpus entries — and the parent's telemetry merge) is
    identical whatever ``-j`` is.
    """
    seeds = range(args.start, args.start + args.seeds)
    jobs = args.jobs if args.jobs else (os.cpu_count() or 1)
    pooled = jobs > 1 and args.seeds > 1
    tasks = [(s, args.bug, args.full, args.verify_each_pass)
             for s in seeds]
    if not pooled:
        for t in tasks:
            yield _check_seed(t)
        return
    import multiprocessing as mp

    chunk = max(1, len(tasks) // (4 * jobs))
    with mp.Pool(min(jobs, len(tasks)), initializer=_pool_init) as pool:
        for row in pool.map(_check_seed, tasks, chunksize=chunk):
            if telemetry.absorb(row[-1]):
                telemetry.counter(
                    "repro_worker_snapshots_merged_total",
                    "worker telemetry snapshots absorbed by the parent",
                    kind="fuzz").inc()
            yield row


def _run_telemetry_summary(args, dt: float, kind_totals: dict) -> None:
    """Print the end-of-run telemetry digest and persist the snapshot
    next to the corpus (``--telemetry-out`` overrides the location)."""
    snap = telemetry.snapshot()
    by_name: dict = {}
    for fam in snap["metrics"]:
        for s in fam["series"]:
            if fam["kind"] != "histogram":
                key = tuple(sorted(s["labels"].items()))
                by_name.setdefault(fam["name"], {})[key] = s["value"]
    merged = sum(
        by_name.get("repro_worker_snapshots_merged_total", {}).values()
    )
    pipelines = sum(by_name.get("repro_pipeline_runs_total", {}).values())
    execs = sum(by_name.get("repro_exec_total", {}).values())
    rate = f"{args.seeds / dt:.1f}" if dt > 0 else "inf"
    print(f"telemetry: {rate} seeds/s; {pipelines} pipeline runs, "
          f"{execs} executions; {merged} worker snapshot(s) merged")
    if kind_totals:
        kinds = ", ".join(f"{k}={n}" for k, n in sorted(kind_totals.items()))
        print(f"telemetry: failure kinds: {kinds}")
    out = args.telemetry_out or os.path.join(args.corpus,
                                             "fuzz_telemetry.json")
    try:
        os.makedirs(os.path.dirname(out) or ".", exist_ok=True)
        telemetry.save_snapshot(snap, out)
        print(f"telemetry: snapshot -> {out}")
    except OSError as e:
        print(f"telemetry: could not write snapshot: {e}", file=sys.stderr)


def _cmd_run(args) -> int:
    t0 = time.perf_counter()
    failures = 0
    kind_totals: dict = {}
    for seed, ok, mismatches, configs_run, features, kinds, _ in \
            _iter_reports(args):
        for k in kinds:
            kind_totals[k] = kind_totals.get(k, 0) + 1
        if ok:
            if args.verbose:
                print(f"  fz{seed:06d}: ok "
                      f"({configs_run} configs, features={features})")
            continue
        failures += 1
        print(f"FAIL fz{seed:06d} (seed {seed}):")
        for m in mismatches:
            print(f"  {m}")
        if args.save:
            kernel = generate_kernel(seed, name=f"fz{seed:06d}")
            path = save_entry(kernel, args.corpus, seed=seed, bug=args.bug,
                              expect="fail",
                              note="fuzzer-found failure (unreduced)")
            print(f"  saved -> {path}")
            print(f"  repro: PYTHONPATH=src python -m repro.fuzz replay {path}")
        print(f"  re-find: PYTHONPATH=src python -m repro.fuzz run "
              f"--start {seed} --seeds 1"
              + (f" --bug {args.bug}" if args.bug else ""))
    dt = time.perf_counter() - t0
    print(f"fuzz run: {args.seeds} seeds, {failures} failing kernels, "
          f"{dt:.1f}s"
          + (f" [planted bug: {args.bug}]" if args.bug else ""))
    if telemetry.enabled():
        _run_telemetry_summary(args, dt, kind_totals)
    return 1 if failures else 0


def _cmd_campaign(args) -> int:
    from .campaign import CampaignConfig, run_campaign
    from .shard import CampaignStateError

    def progress(camp):
        s = camp.summary
        esc = sum(s.escalated.values())
        print(f"  round {s.rounds}: {s.tasks} tasks "
              f"({s.seeds} seeds, {s.mutants} mutants, {s.dups} dups), "
              f"{esc} escalated, {s.failed} failing, "
              f"{camp.scheduler.pending()} pending", flush=True)

    hosts = [a.strip() for a in (args.hosts or "").split(",") if a.strip()]
    t0 = time.perf_counter()
    try:
        if args.resume:
            summary = run_campaign(
                args.resume, jobs=args.jobs, resume=True,
                max_rounds=args.max_rounds,
                progress=progress if args.verbose else None,
                hosts=hosts, lease_timeout=args.lease_timeout,
                heartbeat_every=args.heartbeat_every,
                verbose=args.verbose,
            )
        else:
            if not args.dir:
                print("campaign: --dir DIR is required (or --resume DIR)",
                      file=sys.stderr)
                return 2
            cfg = CampaignConfig(
                seeds=args.seeds, start=args.start, bug=args.bug,
                batch=args.batch, round_batches=args.round_batches,
                audit_every=args.audit_every, rare_limit=args.rare_limit,
                mutants_per_parent=args.mutants_per_parent,
                mutate=not args.no_mutate,
                checkpoint_every=args.checkpoint_every,
            )
            summary = run_campaign(
                args.dir, cfg, jobs=args.jobs,
                max_rounds=args.max_rounds,
                progress=progress if args.verbose else None,
                hosts=hosts, lease_timeout=args.lease_timeout,
                heartbeat_every=args.heartbeat_every,
                verbose=args.verbose,
            )
    except CampaignStateError as e:
        print(f"campaign: {e}", file=sys.stderr)
        return 2
    dt = time.perf_counter() - t0
    dist = getattr(summary, "dist", None)
    if dist is not None:
        print(f"campaign: distributed over {len(hosts) or 'pinned'} "
              f"host(s): {dist['leases']} lease(s), "
              f"{dist['releases']} re-lease(s), "
              f"{dist['refs_shipped']} ref(s) shipped, "
              f"{dist['local_batches']} local fallback batch(es), "
              f"{dist['dead_hosts']} host(s) lost")
    esc = sum(summary.escalated.values())
    rate = f"{summary.tasks / dt:.1f}" if dt > 0 else "inf"
    crate = f"{summary.configs / dt:.1f}" if dt > 0 else "inf"
    print(f"campaign: {summary.tasks} tasks "
          f"({summary.seeds} seeds, {summary.mutants} mutants, "
          f"{summary.dups} dups) in {dt:.1f}s — {rate} tasks/s, "
          f"{crate} configs/s; {esc} escalated "
          f"({', '.join(f'{k}={v}' for k, v in sorted(summary.escalated.items())) or 'none'}); "
          f"{summary.failed} failing")
    for f in sorted(summary.findings):
        print(f"  finding: {f}")
    root = args.resume or args.dir
    if telemetry.enabled():
        out = os.path.join(root, "fuzz_telemetry.json")
        try:
            telemetry.save_snapshot(telemetry.snapshot(), out)
            print(f"telemetry: snapshot -> {out}")
        except OSError as e:
            print(f"telemetry: could not write snapshot: {e}",
                  file=sys.stderr)
    return 1 if summary.failed else 0


def _cmd_reduce(args) -> int:
    if args.entry:
        entry = load_entry(args.entry)
        if entry.seed is None:
            print("corpus entry has no seed; reduce needs the structured "
                  "kernel, which only the generator provides", file=sys.stderr)
            return 2
        kernel = generate_kernel(entry.seed, name=entry.name)
        bug = args.bug or entry.bug
    else:
        kernel = generate_kernel(args.seed, name=f"fz{args.seed:06d}")
        bug = args.bug
    print(f"reducing {kernel.name} "
          f"({kernel.stmt_count()} statements)"
          + (f" under planted bug {bug!r}" if bug else ""))
    try:
        result = reduce_kernel(kernel, bug=bug, max_steps=args.max_steps)
    except NotFailing as e:
        print(f"nothing to reduce: {e}", file=sys.stderr)
        return 2
    k = result.kernel
    print(f"reduced to {result.stmt_count} statements in {result.rounds} "
          f"rounds ({result.candidates_tried} candidates, "
          f"{result.candidates_accepted} accepted)")
    print(f"failure preserved: kinds={sorted(result.fail_kinds)} "
          f"@ {result.fail_config.describe()}")
    print("----")
    print(k.source)
    print("----")
    if args.save:
        k.name = f"{kernel.name}_reduced"
        path = save_entry(k, args.corpus, seed=kernel.seed, bug=bug,
                          expect="fail",
                          note=f"reduced from {kernel.stmt_count()} to "
                               f"{result.stmt_count} statements")
        print(f"saved -> {path}")
    return 0


def _cmd_replay(args) -> int:
    bad = 0
    total = 0
    for path in (p for target in args.paths for p in iter_entries(target)):
        entry = load_entry(path)
        report = replay_entry(entry, full=args.full)
        total += 1
        ok = replay_ok(entry, report)
        status = "ok" if ok else "UNEXPECTED"
        outcome = "pass" if report.ok else "fail"
        print(f"  {path}: expected {entry.expect}, got {outcome} [{status}]")
        if not ok:
            bad += 1
            for m in report.mismatches:
                print(f"    {m}")
            if entry.repro:
                print(f"    repro: {entry.repro}")
    print(f"replay: {total} entries, {bad} unexpected outcomes")
    return 1 if bad else 0


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(
        prog="python -m repro.fuzz",
        description="differential compiler fuzzing and test-case reduction",
    )
    sub = ap.add_subparsers(dest="cmd", required=True)

    p_run = sub.add_parser("run", help="generate kernels and run the oracle")
    p_run.add_argument("--seeds", type=int, default=50,
                       help="number of seeds (default 50)")
    p_run.add_argument("--start", type=int, default=0,
                       help="first seed (default 0)")
    p_run.add_argument("--bug", choices=sorted(PLANTED_BUGS),
                       help="apply a planted pass bug to optimized builds")
    p_run.add_argument("--full", action="store_true",
                       help="full level x restrict x vl x rle matrix")
    p_run.add_argument("--verify-each-pass", action="store_true",
                       help="run the IR verifier after every pass")
    p_run.add_argument("--save", action="store_true",
                       help="save failing kernels to the corpus")
    p_run.add_argument("-j", "--jobs", type=int, default=1,
                       help="worker processes for the seed sweep "
                            "(0 = all cores; default 1)")
    p_run.add_argument("--corpus", default=str(DEFAULT_CORPUS_DIR))
    p_run.add_argument("--telemetry-out",
                       help="telemetry snapshot path (default: "
                            "<corpus>/fuzz_telemetry.json)")
    p_run.add_argument("-v", "--verbose", action="store_true")
    p_run.set_defaults(fn=_cmd_run)

    p_camp = sub.add_parser(
        "campaign",
        help="sustained coverage-guided campaign (resumable, sharded)")
    p_camp.add_argument("--dir", help="campaign directory (new campaign)")
    p_camp.add_argument("--resume", metavar="DIR",
                        help="continue a killed campaign exactly where "
                             "its last checkpoint left off")
    p_camp.add_argument("--seeds", type=int, default=200,
                        help="fresh seed budget (default 200)")
    p_camp.add_argument("--start", type=int, default=0)
    p_camp.add_argument("--bug", choices=sorted(PLANTED_BUGS),
                        help="apply a planted pass bug to optimized builds")
    p_camp.add_argument("-j", "--jobs", type=int, default=1,
                        help="persistent worker processes "
                             "(0 = all cores; default 1)")
    p_camp.add_argument("--hosts",
                        help="comma-separated compile-service daemons "
                             "(host:port,...) to lease batches to; the "
                             "host set is pinned — resume refuses a "
                             "different one")
    p_camp.add_argument("--lease-timeout", type=float, default=None,
                        help="re-lease a host's batches after this many "
                             "seconds without a heartbeat answer "
                             "(default 60)")
    p_camp.add_argument("--heartbeat-every", type=float, default=None,
                        help="heartbeat interval per host in seconds "
                             "(default 2)")
    p_camp.add_argument("--batch", type=int, default=4,
                        help="tasks per dispatched batch (pinned)")
    p_camp.add_argument("--round-batches", type=int, default=8,
                        help="batches per scheduling round (pinned)")
    p_camp.add_argument("--audit-every", type=int, default=16,
                        help="escalate every Nth fresh seed to the full "
                             "matrix regardless of coverage (pinned)")
    p_camp.add_argument("--rare-limit", type=int, default=2,
                        help="a feature seen <= N times is rare (pinned)")
    p_camp.add_argument("--mutants-per-parent", type=int, default=2,
                        help="mutants scheduled per rare-coverage seed "
                             "(pinned)")
    p_camp.add_argument("--no-mutate", action="store_true",
                        help="disable mutation scheduling (pure seed sweep)")
    p_camp.add_argument("--checkpoint-every", type=int, default=1,
                        help="checkpoint every N rounds (pinned)")
    p_camp.add_argument("--max-rounds", type=int,
                        help="stop after N rounds (the state stays "
                             "resumable; used by tests and the CI smoke)")
    p_camp.add_argument("-v", "--verbose", action="store_true")
    p_camp.set_defaults(fn=_cmd_campaign)

    p_red = sub.add_parser("reduce", help="shrink a failing kernel")
    group = p_red.add_mutually_exclusive_group(required=True)
    group.add_argument("--seed", type=int, help="generator seed to reduce")
    group.add_argument("--entry", help="corpus JSON file to reduce")
    p_red.add_argument("--bug", choices=sorted(PLANTED_BUGS),
                       help="planted pass bug the kernel fails under")
    p_red.add_argument("--max-steps", type=int, default=500_000,
                       help="execution step cap per candidate")
    p_red.add_argument("--save", action="store_true",
                       help="save the reduced kernel to the corpus")
    p_red.add_argument("--corpus", default=str(DEFAULT_CORPUS_DIR))
    p_red.set_defaults(fn=_cmd_reduce)

    p_rep = sub.add_parser("replay", help="replay corpus entries")
    p_rep.add_argument("paths", nargs="*", default=[str(DEFAULT_CORPUS_DIR)],
                       help="corpus files or directories")
    p_rep.add_argument("--full", action="store_true")
    p_rep.set_defaults(fn=_cmd_replay)

    args = ap.parse_args(argv)
    return args.fn(args)


__all__ = ["main"]
