"""Sustained fuzzing campaigns: the seeds/sec throughput engine.

``python -m repro.fuzz campaign`` runs the differential oracle as a
*campaign* rather than a sweep.  Three layers buy the throughput
(BENCH_fuzz.json records the resulting seeds/sec and configs/sec):

1. **Persistent warm workers.**  One long-lived process pool per
   campaign, initialized once (backend registry, telemetry recorder,
   the campaign's private ``REPRO_CACHE_DIR``); batches of tasks are
   dispatched work-stealing style (``imap_unordered``) and the results
   committed in deterministic batch order with the established
   reset-at-task-start telemetry-delta merge.  ``REPRO_SERVICE_ADDR``
   still routes builds through the PR-8 compile service when set.

2. **Redundancy elimination.**  Generated programs are content-hashed
   (source + initial data) *before* any build — a duplicate skips its
   whole matrix and is recorded as ``dup`` pointing at the original.
   Within a task the O0 reference is built and run once and reused
   across every comparison (:func:`repro.fuzz.oracle.reference_run`),
   including a later escalation of the same program.

3. **Coverage-guided scheduling over a tiered oracle.**  Every unique
   program first passes the cheap **screening tier**: the O0 reference,
   the four-way cross-backend accounting identity at the fixed
   ``supervec+v`` config, and an ``O3`` differential — with the
   ``supervec+v`` build running under a diag remark tap that doubles as
   the coverage probe.  Programs whose remark stream contains a
   never-seen pass decision, every ``audit-every``-th fresh seed, and
   every screening *failure* are escalated to the **full default
   matrix** (the same one ``fuzz run`` applies to every seed).  Seeds
   that hit *rare* features additionally schedule deterministic
   generator-parameter mutants ahead of fresh seeds
   (:mod:`repro.fuzz.schedule`).  Depth follows novelty; uniform seeds
   pay only the screen.

Campaign state (scheduler queue, coverage map, dedup index, per-task
records) lives in a sharded on-disk store with periodic atomic
checkpoints (:mod:`repro.fuzz.shard`), so killing the process loses at
most the rounds since the last checkpoint and ``--resume DIR``
recomputes exactly those — the final manifest is bit-identical to an
uninterrupted run's.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional

from repro import telemetry
from repro.diag.context import collect

from .corpus import save_entry
from .generator import generate_kernel
from .oracle import (
    CROSS_BACKENDS,
    CROSS_BACKEND_CONFIG,
    Config,
    KernelSpec,
    Mismatch,
    OracleReport,
    _build,
    _compare,
    _exact,
    _run_config,
    _workload,
    check_kernel,
    reference_run,
)
from .plant import PLANTED_BUGS
from .schedule import CoverageMap, Scheduler, Task, coverage_features, mutate_kernel
from .shard import (
    CampaignStateError,
    CampaignStore,
    content_hash,
    current_pins,
)

#: The screening tier, descriptively — pinned into the manifest so a
#: resumed campaign can refuse a matrix change.
SCREEN_MATRIX = (
    "O0-reference + cross-backend x4 @ "
    + CROSS_BACKEND_CONFIG.describe()
    + " + O3 differential"
)
FULL_MATRIX = "default_configs + cross-backend (fuzz run matrix)"


@dataclass
class CampaignConfig:
    """Schedule-affecting knobs are pinned in the manifest; ``jobs`` is
    a pure runtime knob and deliberately is not."""

    seeds: int
    start: int = 0
    bug: Optional[str] = None
    batch: int = 4
    round_batches: int = 8
    audit_every: int = 16
    rare_limit: int = 2
    mutants_per_parent: int = 2
    mutate: bool = True
    checkpoint_every: int = 1
    max_steps: Optional[int] = None
    num_shards: int = 16

    def to_json(self) -> dict:
        return {
            "seeds": self.seeds, "start": self.start, "bug": self.bug,
            "batch": self.batch, "round_batches": self.round_batches,
            "audit_every": self.audit_every, "rare_limit": self.rare_limit,
            "mutants_per_parent": self.mutants_per_parent,
            "mutate": self.mutate,
            "checkpoint_every": self.checkpoint_every,
            "max_steps": self.max_steps, "num_shards": self.num_shards,
        }

    @classmethod
    def from_json(cls, d: dict) -> "CampaignConfig":
        return cls(**d)


# ---------------------------------------------------------------------------
# The screening tier
# ---------------------------------------------------------------------------


def screen_kernel(spec: KernelSpec, bug: Optional[str] = None,
                  max_steps: Optional[int] = None):
    """Cheap first-pass oracle for one program.

    Runs the O0 reference (memoized), builds the fixed cross-backend
    config **once** under a diag remark tap (the coverage probe — one
    build serves all four executors), demands exact cycles/counters/
    memory agreement across the four backends plus tolerance-checked
    agreement with the reference, then an ``O3`` differential.  Returns
    ``(report, features)``; any mismatch makes the campaign escalate to
    the full matrix, so screening only ever *defers* detection detail,
    never loses it for these configs.
    """
    bug_fn = PLANTED_BUGS[bug] if bug else None
    report = OracleReport(name=spec.name)

    ref, err = reference_run(spec, max_steps)
    report.configs_run += 1
    if err is not None:
        report.mismatches.append(err)
        return report, ()

    base = CROSS_BACKEND_CONFIG
    with collect() as dc:
        try:
            module, stats = _build(spec, base, False)
            build_err = None
        except Exception as e:  # classified below, like _run_config
            from repro.frontend import LoweringError, ParseError
            from repro.frontend.lexer import LexError
            from repro.ir import VerificationError

            if isinstance(e, (ParseError, LexError, LoweringError)):
                build_err = Mismatch("parse", str(e), base)
            elif isinstance(e, VerificationError):
                build_err = Mismatch("verify", str(e), base)
            else:
                build_err = Mismatch(
                    "crash", f"{type(e).__name__}: {e}", base)
    features = coverage_features(dc.remarks)
    if build_err is not None:
        report.mismatches.append(build_err)
        return report, features
    if bug_fn is not None:
        bug_fn(module)

    w = _workload(spec)
    runs = {}
    for backend in CROSS_BACKENDS:
        cfg = Config(base.level, base.honor_restrict, base.vl, base.rle,
                     backend=backend)
        report.configs_run += 1
        try:
            from repro.perf.measure import execute

            runs[backend] = execute(module, w, stats, backend=backend,
                                    capture_arrays=True,
                                    max_steps=max_steps)
        except Exception as e:
            report.mismatches.append(
                Mismatch("crash", f"{type(e).__name__}: {e}", cfg))
    got = runs.get("compiled")
    if got is not None:
        report.mismatches.extend(_compare(ref, got, base))
    b = runs.get("reference")
    if b is not None and len(runs) == len(CROSS_BACKENDS):
        for backend, a in runs.items():
            if backend == "reference":
                continue
            cfg = Config(base.level, base.honor_restrict, base.vl,
                         base.rle, backend=backend)
            if a.cycles != b.cycles:
                report.mismatches.append(Mismatch(
                    "cycles",
                    f"{backend} {a.cycles!r} != reference {b.cycles!r}",
                    cfg,
                ))
            if a.counters.as_dict() != b.counters.as_dict():
                report.mismatches.append(Mismatch(
                    "counters",
                    f"per-opcode counter drift: {backend} vs reference",
                    cfg,
                ))
            if not _exact(a.arrays, b.arrays) or not _exact(
                a.return_value, b.return_value
            ):
                report.mismatches.append(Mismatch(
                    "memory",
                    f"{backend} memory/return drift at fixed config", cfg,
                ))

    o3 = Config("O3")
    got, err = _run_config(spec, o3, bug_fn, max_steps, False)
    report.configs_run += 1
    if err is not None:
        report.mismatches.append(err)
    else:
        report.mismatches.extend(_compare(ref, got, o3))
    return report, features


# ---------------------------------------------------------------------------
# Worker side
# ---------------------------------------------------------------------------

_POOLED = False


def _campaign_worker_init(cache_dir: Optional[str]) -> None:
    """Pool initializer: one-time per-worker warmup.

    Imports the whole executor ladder and the front end (a no-op under
    fork, real work under spawn), points the worker at the campaign's
    private disk cache, and zeroes the fork-inherited telemetry registry
    so per-batch snapshots are clean deltas.
    """
    global _POOLED
    _POOLED = True
    if cache_dir:
        os.environ["REPRO_CACHE_DIR"] = cache_dir
    import repro.interp.array  # noqa: F401
    import repro.interp.compile  # noqa: F401
    import repro.interp.fuse  # noqa: F401
    from repro.frontend import compile_c  # noqa: F401

    telemetry.reset()


def _materialize(task_d: dict) -> KernelSpec:
    seed, variant = task_d["seed"], task_d["variant"]
    if variant:
        k = mutate_kernel(seed, variant)
    else:
        k = generate_kernel(seed, name=f"fz{seed:06d}")
    return KernelSpec(k.name, k.source, k.bindings)


def _run_task(task_d: dict, spec: Optional[KernelSpec] = None) -> dict:
    if spec is None:
        spec = _materialize(task_d)
    bug, max_steps = task_d["bug"], task_d["max_steps"]
    if task_d["kind"] == "full":
        report = check_kernel(spec, bug=bug, max_steps=max_steps)
        tier = "full"
        features: tuple = ()
    else:
        report, features = screen_kernel(spec, bug=bug, max_steps=max_steps)
        tier = "screen"
    telemetry.counter("repro_campaign_configs_total",
                      "oracle configs run by campaign tier",
                      tier=tier).inc(report.configs_run)
    return {
        "key": task_d["key"],
        "tier": tier,
        "ok": report.ok,
        "kinds": sorted(report.kinds()),
        "mismatches": [str(m) for m in report.mismatches],
        "configs": report.configs_run,
        "features": list(features),
    }


def _run_task_batch(payload) -> tuple:
    batch_idx, tasks = payload
    if _POOLED:
        telemetry.reset()
    rows = [_run_task(t) for t in tasks]
    snap = telemetry.snapshot(include_spans=False) if _POOLED else None
    return batch_idx, rows, snap


# ---------------------------------------------------------------------------
# The engine
# ---------------------------------------------------------------------------


@dataclass
class CampaignSummary:
    seeds: int = 0
    mutants: int = 0
    dups: int = 0
    ok: int = 0
    failed: int = 0
    escalated: dict = field(default_factory=dict)
    configs_screen: int = 0
    configs_full: int = 0
    rounds: int = 0
    findings: list = field(default_factory=list)
    seconds: float = 0.0

    @property
    def tasks(self) -> int:
        return self.seeds + self.mutants

    @property
    def configs(self) -> int:
        return self.configs_screen + self.configs_full

    def to_json(self) -> dict:
        return {
            "seeds": self.seeds, "mutants": self.mutants,
            "dups": self.dups, "ok": self.ok, "failed": self.failed,
            "escalated": dict(sorted(self.escalated.items())),
            "configs_screen": self.configs_screen,
            "configs_full": self.configs_full,
            "rounds": self.rounds,
            "findings": sorted(self.findings),
        }

    @classmethod
    def from_json(cls, d: dict) -> "CampaignSummary":
        return cls(**{k: v for k, v in d.items()})


class Campaign:
    """One resumable campaign over a :class:`CampaignStore`."""

    def __init__(self, store: CampaignStore, cfg: CampaignConfig,
                 scheduler: Scheduler, coverage: CoverageMap,
                 dedup: dict, summary: CampaignSummary):
        self.store = store
        self.cfg = cfg
        self.scheduler = scheduler
        self.coverage = coverage
        self.dedup = dedup
        self.summary = summary

    # -- construction ------------------------------------------------------

    @classmethod
    def create(cls, root: Path | str, cfg: CampaignConfig) -> "Campaign":
        store = CampaignStore(root, cfg.num_shards)
        camp = cls(store, cfg,
                   Scheduler(cfg.start, cfg.start + cfg.seeds),
                   CoverageMap(), {}, CampaignSummary())
        store.create(camp.manifest())
        return camp

    @classmethod
    def resume(cls, root: Path | str) -> "Campaign":
        store = CampaignStore(root)
        manifest = store.load()
        cfg = CampaignConfig.from_json(manifest["campaign"])
        return cls(
            store, cfg,
            Scheduler.from_json(manifest["scheduler"]),
            CoverageMap.from_json(manifest["coverage"]),
            dict(manifest["dedup"]),
            CampaignSummary.from_json(manifest["counts"]),
        )

    def manifest(self) -> dict:
        return {
            "pins": current_pins(),
            "matrix": {"screen": SCREEN_MATRIX, "full": FULL_MATRIX},
            "campaign": self.cfg.to_json(),
            "scheduler": self.scheduler.to_json(),
            "coverage": self.coverage.to_json(),
            "dedup": dict(sorted(self.dedup.items())),
            "counts": self.summary.to_json(),
            "done": self.scheduler.pending() == 0,
        }

    # -- the drive loop ----------------------------------------------------

    def _draw_round(self) -> list:
        """Draw up to ``round_batches`` batches, deduplicating fresh
        programs at draw time (deterministic: depends only on committed
        scheduler + dedup state and draw order)."""
        batches = []
        for _ in range(self.cfg.round_batches):
            tasks = self.scheduler.next_batch(self.cfg.batch)
            if not tasks:
                break
            payload = []
            for t in tasks:
                spec = _materialize(t.to_json() | {"key": t.key})
                h = content_hash(spec.name, spec.source, spec.bindings)
                if t.kind != "full":
                    first = self.dedup.get(h)
                    if first is not None and first != t.key:
                        self.store.record(t.key, {
                            "kind": t.kind, "outcome": "dup",
                            "dup_of": first,
                        })
                        self.summary.dups += 1
                        self._count_task(t)
                        telemetry.counter(
                            "repro_campaign_dedup_total",
                            "programs skipped as content-hash duplicates",
                        ).inc()
                        continue
                    self.dedup.setdefault(h, t.key)
                payload.append({
                    "kind": t.kind, "seed": t.seed, "variant": t.variant,
                    "reason": t.reason, "key": t.key, "bug": self.cfg.bug,
                    "max_steps": self.cfg.max_steps, "hash": h,
                })
            if payload:
                batches.append(payload)
        return batches

    def _count_task(self, t: Task) -> None:
        if t.kind == "seed":
            self.summary.seeds += 1
        elif t.kind == "mutant":
            self.summary.mutants += 1

    def _commit_row(self, task_d: dict, row: dict) -> None:
        """Fold one completed task into campaign state — called in
        deterministic (batch, task) order."""
        t = Task(task_d["kind"], task_d["seed"], task_d["variant"],
                 task_d["reason"])
        cfg = self.cfg
        if row["tier"] == "full":
            rec = {
                "kind": t.kind, "outcome": "ok" if row["ok"] else "fail",
                "tier": "full", "reason": t.reason,
                "kinds": row["kinds"], "configs": row["configs"],
            }
            self.store.record(t.key, rec)
            if row["ok"]:
                self.summary.ok += 1
            else:
                self.summary.failed += 1
                self._save_finding(t, row)
            return
        # screening result
        self._count_task(t)
        new_feats = self.coverage.observe(row["features"])
        reason = None
        if not row["ok"]:
            reason = "failure"
        elif new_feats:
            reason = "novel"
        elif (t.kind == "seed"
              and (t.seed - cfg.start) % cfg.audit_every == 0):
            reason = "audit"
        if reason is not None:
            self.scheduler.push_escalation(
                Task("full", t.seed, t.variant, reason))
            self.summary.escalated[reason] = (
                self.summary.escalated.get(reason, 0) + 1)
            telemetry.counter("repro_campaign_escalations_total",
                              "screen tasks escalated to the full matrix",
                              reason=reason).inc()
            self.store.record(t.key, {
                "kind": t.kind, "outcome": "escalated", "tier": "screen",
                "reason": reason, "kinds": row["kinds"],
                "configs": row["configs"],
            })
        else:
            self.store.record(t.key, {
                "kind": t.kind, "outcome": "ok", "tier": "screen",
                "configs": row["configs"],
            })
            self.summary.ok += 1
        # rare-coverage parents spawn mutants (fresh seeds only — one
        # generation of mutants, so the campaign stays seed-bounded)
        if (cfg.mutate and row["ok"] and t.kind == "seed"
                and row["features"]):
            rarity = self.coverage.rarity(row["features"])
            if rarity is not None and rarity <= cfg.rare_limit:
                for v in range(1, cfg.mutants_per_parent + 1):
                    self.scheduler.push_mutant(
                        Task("mutant", t.seed, v), rarity)
                    telemetry.counter(
                        "repro_campaign_mutants_total",
                        "mutants scheduled off rare-coverage parents",
                    ).inc()

    def _save_finding(self, t: Task, row: dict) -> None:
        if row["kinds"] == ["parse"]:
            return  # not a replayable miscompile; recorded, not saved
        spec = _materialize(t.to_json() | {"key": t.key})
        fdir = self.store.finding_dir(t.key)
        # repro uses a <campaign>-relative path so finding bytes do not
        # depend on where the campaign directory lives (resume identity)
        rel_dir = fdir.relative_to(self.store.root).as_posix()
        stem = f"{spec.name}-{self.cfg.bug}" if self.cfg.bug else spec.name
        path = save_entry(
            spec, fdir,
            seed=t.seed, bug=self.cfg.bug, expect="fail",
            note=f"campaign finding ({t.reason}; variant {t.variant})",
            repro=(f"PYTHONPATH=src python -m repro.fuzz replay "
                   f"<campaign>/{rel_dir}/{stem}.json"),
        )
        rel = path.relative_to(self.store.root).as_posix()
        if rel not in self.summary.findings:
            self.summary.findings.append(rel)

    def run(self, jobs: int = 1, max_rounds: Optional[int] = None,
            progress=None, runner=None) -> CampaignSummary:
        """Drive the campaign until the schedule drains (or
        ``max_rounds`` more rounds have been committed).

        With ``runner`` (a connected :class:`repro.fuzz.dist.DistRunner`)
        each round's batches are leased to remote daemons instead of a
        local pool; everything else — drawing, dedup, the sorted-batch
        commit, checkpoint cadence — is the identical code path, which
        is the determinism argument in one sentence.
        """
        t0 = time.perf_counter()
        jobs = jobs if jobs else (os.cpu_count() or 1)
        cache_dir = str(self.store.cache_dir)
        saved_cache = os.environ.get("REPRO_CACHE_DIR")
        os.environ["REPRO_CACHE_DIR"] = cache_dir
        pool = None
        try:
            if runner is None and jobs > 1:
                import multiprocessing as mp

                pool = mp.Pool(jobs, initializer=_campaign_worker_init,
                               initargs=(cache_dir,))
            rounds_this_run = 0
            while True:
                if max_rounds is not None and rounds_this_run >= max_rounds:
                    break
                batches = self._draw_round()
                if not batches:
                    break
                indexed = list(enumerate(batches))
                if runner is not None:
                    results = runner.run_round(indexed)
                elif pool is not None:
                    results = {}
                    for bi, rows, snap in pool.imap_unordered(
                            _run_task_batch, indexed):
                        if telemetry.absorb(snap):
                            telemetry.counter(
                                "repro_worker_snapshots_merged_total",
                                "worker telemetry snapshots absorbed "
                                "by the parent", kind="campaign").inc()
                        results[bi] = rows
                else:
                    results = {bi: _run_task_batch((bi, tasks))[1]
                               for bi, tasks in indexed}
                for bi in sorted(results):
                    for task_d, row in zip(batches[bi], results[bi]):
                        self._commit_row(task_d, row)
                        if row["tier"] == "screen":
                            self.summary.configs_screen += row["configs"]
                        else:
                            self.summary.configs_full += row["configs"]
                self.summary.rounds += 1
                rounds_this_run += 1
                if self.summary.rounds % self.cfg.checkpoint_every == 0:
                    self.store.checkpoint(self.manifest())
                if progress is not None:
                    progress(self)
            self.store.checkpoint(self.manifest())
        finally:
            if pool is not None:
                pool.close()
                pool.join()
            if saved_cache is None:
                os.environ.pop("REPRO_CACHE_DIR", None)
            else:
                os.environ["REPRO_CACHE_DIR"] = saved_cache
        self.summary.seconds = time.perf_counter() - t0
        if runner is not None:
            self.summary.dist = dict(runner.stats)
        return self.summary


def run_campaign(root: Path | str, cfg: Optional[CampaignConfig] = None,
                 jobs: int = 1, resume: bool = False,
                 max_rounds: Optional[int] = None,
                 progress=None, hosts: Optional[list] = None,
                 lease_timeout: Optional[float] = None,
                 heartbeat_every: Optional[float] = None,
                 verbose: bool = False) -> CampaignSummary:
    """Create-or-resume + drive a campaign in one call.

    ``hosts`` switches execution to the distributed coordinator: the
    host set (and each daemon's identity fingerprint) is pinned into
    the campaign's ``hosts.json`` at creation, and a resume with a
    different ``--hosts`` set — or against a daemon whose identity
    changed — is refused with :class:`CampaignStateError` (exit 2).
    """
    from .shard import (
        check_host_fingerprints,
        load_host_pins,
        resolve_host_pins,
        write_host_pins,
    )

    if resume:
        camp = Campaign.resume(root)
        hosts = resolve_host_pins(root, hosts)
    else:
        if cfg is None:
            raise ValueError("a new campaign needs a CampaignConfig")
        camp = None  # created below, after the hosts prove reachable
    runner = None
    try:
        if hosts:
            from .dist import (
                DEFAULT_HEARTBEAT_EVERY,
                DEFAULT_LEASE_TIMEOUT,
                DistRunner,
                HostError,
            )

            runner = DistRunner(
                hosts, _run_task,
                lease_timeout=lease_timeout or DEFAULT_LEASE_TIMEOUT,
                heartbeat_every=heartbeat_every or DEFAULT_HEARTBEAT_EVERY,
                log=(lambda msg: print(f"  dist: {msg}", flush=True))
                if verbose else None,
            )
            try:
                fingerprints = runner.connect(strict=not resume)
            except HostError as e:
                raise CampaignStateError(str(e)) from e
            if resume:
                check_host_fingerprints(root, load_host_pins(root) or {},
                                        fingerprints)
        if camp is None:
            camp = Campaign.create(root, cfg)
            if hosts:
                write_host_pins(root, hosts, fingerprints)
        return camp.run(jobs=jobs, max_rounds=max_rounds,
                        progress=progress, runner=runner)
    finally:
        if runner is not None:
            runner.close()


__all__ = [
    "Campaign", "CampaignConfig", "CampaignSummary", "FULL_MATRIX",
    "SCREEN_MATRIX", "run_campaign", "screen_kernel",
]
