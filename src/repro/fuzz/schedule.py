"""Coverage-guided, deterministic campaign scheduling.

A sustained fuzzing campaign should not spend its oracle budget
uniformly: programs that make the optimizer take *rare* decisions are
where miscompiles hide.  The diag remark stream (PR 2) is a free
coverage signal — every pass already explains what it did and why — so
this module turns remarks into **coverage features** (pass-decision
tuples), keeps a campaign-wide frequency map, and schedules
generator-parameter **mutations** of seeds that hit rare features ahead
of fresh random seeds.

Everything here is deterministic by construction: the priority queue
breaks ties by insertion order, mutations derive from
``random.Random`` streams seeded by ``(seed, variant)`` only, and the
whole scheduler state round-trips through JSON — that is what makes
killed campaigns resumable with bit-identical results
(:mod:`repro.fuzz.shard`).
"""

from __future__ import annotations

import heapq
import random
from dataclasses import dataclass, field
from typing import Iterable, Optional

from .generator import (
    Assign,
    Bin,
    Cast,
    ForLoop,
    If,
    Kernel,
    Load,
    Num,
    UnsafeAccess,
    collect_extents,
    generate_kernel,
    init_values,
)
from .generator import _CONSTS  # the generator's own constant pool

#: Priority classes, most urgent first.  Escalations re-run a program the
#: screening tier already flagged (failure / novel coverage / audit), so
#: they preempt everything; mutants of rare-coverage parents preempt
#: fresh seeds.
CLASS_ESCALATION = 0
CLASS_MUTANT = 1
CLASS_FRESH = 2


# ---------------------------------------------------------------------------
# Coverage features from the remark stream
# ---------------------------------------------------------------------------


def coverage_features(remarks: Iterable) -> tuple:
    """Distinct pass-decision tuples of one kernel's build, as strings.

    A feature is ``pass:kind:template`` — the *unformatted* message
    template keeps cardinality low (hundreds, not millions), and
    deliberately excludes the function name and location so the same
    decision in two kernels is the same feature.
    """
    feats = {f"{r.pass_name}:{r.kind}:{r.message}" for r in remarks}
    return tuple(sorted(feats))


class CoverageMap:
    """Campaign-wide frequency map over coverage features."""

    def __init__(self, counts: Optional[dict] = None):
        self.counts: dict[str, int] = dict(counts or {})

    def observe(self, features: Iterable[str]) -> list[str]:
        """Count one kernel's features; returns the never-seen-before ones."""
        new = []
        for f in features:
            if f not in self.counts:
                new.append(f)
            self.counts[f] = self.counts.get(f, 0) + 1
        return new

    def rarity(self, features: Iterable[str]) -> Optional[int]:
        """The count of the rarest feature (post-observe), or None."""
        counts = [self.counts.get(f, 0) for f in features]
        return min(counts) if counts else None

    def to_json(self) -> dict:
        return dict(sorted(self.counts.items()))

    @classmethod
    def from_json(cls, d: dict) -> "CoverageMap":
        return cls(d)


# ---------------------------------------------------------------------------
# Deterministic generator-parameter mutations
# ---------------------------------------------------------------------------


def _value_exprs(body: list):
    """Yield every *value* expression tree in ``body`` (assignment RHSs
    and if-conditions) — never index expressions, which are bounds-proved
    and must not be perturbed."""
    for st in body:
        if isinstance(st, ForLoop):
            yield from _value_exprs(st.body)
        elif isinstance(st, If):
            yield st.cond
            yield from _value_exprs(st.then)
            yield from _value_exprs(st.els)
        elif isinstance(st, Assign):
            yield st.expr


def _walk_values(node):
    """Pre-order walk of one value expression, skipping ``Load.index``."""
    yield node
    if isinstance(node, Bin):
        yield from _walk_values(node.lhs)
        yield from _walk_values(node.rhs)
    elif isinstance(node, Cast):
        yield from _walk_values(node.operand)


def _float_consts(kernel: Kernel) -> list:
    return [n for e in _value_exprs(kernel.body) for n in _walk_values(e)
            if isinstance(n, Num) and n.is_float]


def _arith_bins(kernel: Kernel) -> list:
    return [n for e in _value_exprs(kernel.body) for n in _walk_values(e)
            if isinstance(n, Bin) and n.op in ("+", "-", "*")]


def _mutate_const(kernel: Kernel, rng: random.Random) -> bool:
    nums = _float_consts(kernel)
    if not nums:
        return False
    num = rng.choice(nums)
    pool = [c for c in _CONSTS if c != num.value]
    num.value = rng.choice(pool)
    return True


def _mutate_opswap(kernel: Kernel, rng: random.Random) -> bool:
    bins = _arith_bins(kernel)
    if not bins:
        return False
    b = rng.choice(bins)
    b.op = {"+": "-", "-": "+", "*": "+"}[b.op]
    return True


def _mutate_restrict(kernel: Kernel, rng: random.Random) -> bool:
    marked = [p for p in kernel.params if p.is_array and p.restrict]
    if not marked:
        return False
    for p in marked:
        p.restrict = False
    kernel.features.discard("restrict")
    return True


def _mutate_resize(kernel: Kernel, rng: random.Random) -> bool:
    """Change the runtime trip count ``n`` and re-derive every binding.

    Array sizes and initial values are recomputed exactly the way the
    generator computes them (shared :func:`~.generator.init_values` and
    interval-arithmetic extents), so the mutant stays in bounds by
    construction.
    """
    old_n = kernel.n_val
    choices = [n for n in (0, 1, 2, 4, 6, 8, 12, 16, 24) if n != old_n]
    new_n = rng.choice(choices)
    try:
        req = collect_extents(kernel.body, new_n)
    except UnsafeAccess:
        return False
    alias = next((b for b in kernel.bindings if b[0] == "alias"), None)
    iarrays = {p.name for p in kernel.params
               if p.is_array and p.elem == "int"}
    sizes = {p.name: max(req.get(p.name, 1), 1)
             for p in kernel.params if p.is_array}
    if alias is not None:
        _, viewer, base, offset = alias
        sizes[base] = max(sizes[base], offset + sizes[viewer])
    bindings: list = []
    for p in kernel.params:
        if not p.is_array:
            bindings.append(("scalar", p.name, new_n))
        elif alias is not None and p.name == alias[1]:
            bindings.append(alias)
        else:
            sz = sizes[p.name]
            bindings.append(("array", p.name, sz,
                             init_values(p.name, sz, kernel.seed,
                                         p.name in iarrays)))
    kernel.bindings = bindings
    return True


_MUTATORS = [
    ("resize", _mutate_resize),
    ("const", _mutate_const),
    ("opswap", _mutate_opswap),
    ("restrict", _mutate_restrict),
]


def mutate_kernel(seed: int, variant: int, name: Optional[str] = None) -> Kernel:
    """Deterministic structural mutation ``variant`` of ``seed``'s kernel.

    Regenerates the base kernel, applies one mutation operator chosen by
    a ``Random`` stream keyed on ``(seed, variant)`` (falling back down
    the operator list when an operator does not apply), and revalidates
    bounds.  Same ``(seed, variant)`` → same mutant, always.
    """
    kernel = generate_kernel(seed, name=name or f"fz{seed:06d}m{variant:02d}")
    rng = random.Random((seed << 16) ^ (variant * 0x9E3779B1) ^ 0x5EED)
    order = list(_MUTATORS)
    rng.shuffle(order)
    for _name, op in order:
        if op(kernel, rng):
            try:
                kernel.validate()
            except UnsafeAccess:
                # an operator slipped out of bounds (defensive — resize
                # recomputes sizes and the others never touch indices);
                # regenerate and try the next operator
                kernel = generate_kernel(
                    seed, name=name or f"fz{seed:06d}m{variant:02d}")
                continue
            kernel.features.add(f"mutant:{_name}")
            return kernel
    return kernel  # no operator applied: the mutant is the base kernel


# ---------------------------------------------------------------------------
# Deterministic priority queue
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Task:
    """One schedulable unit of oracle work.

    * ``kind="seed"``    — screen a fresh generator seed;
    * ``kind="mutant"``  — screen mutation ``variant`` (≥ 1) of ``seed``;
    * ``kind="full"``    — escalation: full differential matrix for the
      program ``key`` already screened (``reason`` says why).

    ``variant`` is 0 for un-mutated programs and ≥ 1 for mutants —
    including on ``full`` tasks, which re-run whatever program the
    screening task materialized.
    """

    kind: str
    seed: int
    variant: int = 0
    reason: str = ""

    @property
    def key(self) -> str:
        if self.variant:
            return f"fz{self.seed:06d}m{self.variant:02d}"
        return f"fz{self.seed:06d}"

    def to_json(self) -> dict:
        return {"kind": self.kind, "seed": self.seed,
                "variant": self.variant, "reason": self.reason}

    @classmethod
    def from_json(cls, d: dict) -> "Task":
        return cls(d["kind"], d["seed"], d.get("variant", 0),
                   d.get("reason", ""))


@dataclass
class Scheduler:
    """Deterministic priority queue over campaign tasks.

    Fresh seeds live behind a cursor (``next_fresh`` .. ``fresh_end``)
    so the queue itself only ever holds escalations and mutants.  Heap
    entries are ``(class, rank, order, task)``: class picks the tier,
    ``rank`` orders within it (mutants of rarer parents first), and the
    monotone ``order`` counter breaks every tie — so the same state
    always drains in the same order, whatever produced it.
    """

    next_fresh: int
    fresh_end: int
    _heap: list = field(default_factory=list)
    _order: int = 0

    def push_escalation(self, task: Task) -> None:
        """Queue a full-matrix escalation.

        All escalations share rank 0, so equal-priority escalations pop
        strictly FIFO — the ``_order`` stamp taken here is the only
        tie-breaker, and it survives a JSON checkpoint round-trip.
        """
        heapq.heappush(
            self._heap,
            (CLASS_ESCALATION, 0, self._order, task.to_json()),
        )
        self._order += 1

    def push_mutant(self, task: Task, rarity: int) -> None:
        """Queue a mutant; lower ``rarity`` (rarer parent) pops first.

        Mutants whose parents have *equal* rarity pop in push order
        (FIFO), via the same monotone ``_order`` stamp — never by task
        content, seed number, or heap-internal layout.
        """
        heapq.heappush(
            self._heap, (CLASS_MUTANT, rarity, self._order, task.to_json())
        )
        self._order += 1

    def pending(self) -> int:
        return len(self._heap) + max(0, self.fresh_end - self.next_fresh)

    def next_batch(self, n: int) -> list[Task]:
        batch: list[Task] = []
        while len(batch) < n:
            if self._heap:
                _, _, _, tj = heapq.heappop(self._heap)
                batch.append(Task.from_json(tj))
            elif self.next_fresh < self.fresh_end:
                batch.append(Task("seed", self.next_fresh))
                self.next_fresh += 1
            else:
                break
        return batch

    def to_json(self) -> dict:
        return {
            "next_fresh": self.next_fresh,
            "fresh_end": self.fresh_end,
            "order": self._order,
            "heap": [[c, r, o, tj] for c, r, o, tj in sorted(self._heap)],
        }

    @classmethod
    def from_json(cls, d: dict) -> "Scheduler":
        sched = cls(d["next_fresh"], d["fresh_end"])
        sched._order = d["order"]
        sched._heap = [(c, r, o, tj) for c, r, o, tj in d["heap"]]
        heapq.heapify(sched._heap)
        return sched


__all__ = [
    "CLASS_ESCALATION", "CLASS_FRESH", "CLASS_MUTANT", "CoverageMap",
    "Scheduler", "Task", "coverage_features", "mutate_kernel",
]
