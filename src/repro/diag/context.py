"""Diagnostic context: typed optimization remarks and instrumentation records.

This module is the hub of the diagnostics subsystem (DESIGN.md
"observability").  Every compiler layer reports *why* it did or did not
transform something through one :class:`DiagnosticContext`:

* **Remarks** mirror LLVM's ``-Rpass`` taxonomy: ``Passed`` (a transform
  fired), ``Missed`` (a transform bailed, with the reason), ``Analysis``
  (a fact the pass derived — dependence conditions considered, computed
  costs, plan shapes).
* **Pass records** come from :mod:`repro.diag.passmanager`: per-pass wall
  time and instruction/loop deltas.
* **Profile records** come from the execution backends: per-loop cycle
  attribution (see :mod:`repro.diag.profile`).

Collection is **off by default** and the disabled path is designed to be
free: instrumentation sites read the module-global context once and test
its ``enabled`` flag (a plain attribute load) before building any record,
so the measurement pipeline's cycles and counters are bit-identical with
diagnostics on or off — diagnostics only *observe* the deterministic
simulation, they never participate in it.

Enable globally with ``REPRO_DIAG=1`` in the environment, or locally with
the :func:`collect` context manager (what the tests and the
``python -m repro.diag report`` CLI use)::

    with collect() as dc:
        module, stats = build(workload, "supervec+v", use_cache=False)
    for r in dc.remarks:
        print(r.render())
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator, Optional

REMARK_KINDS = ("Passed", "Missed", "Analysis")


@dataclass
class Remark:
    """One typed optimization remark.

    ``message`` is a ``str.format`` template over ``args`` so consumers
    can filter/aggregate on the structured values (e.g. every cost-model
    rejection's computed costs) while :meth:`render` gives the
    human-readable line.
    """

    pass_name: str
    kind: str  # one of REMARK_KINDS
    function: str
    loc: str  # anchoring scope: loop name, instruction name, or ""
    message: str
    args: dict = field(default_factory=dict)

    def render(self) -> str:
        text = self.message.format(**self.args) if self.args else self.message
        where = f"{self.function}/{self.loc}" if self.loc else self.function
        return f"[{self.kind}] {self.pass_name} @ {where}: {text}"

    def as_dict(self) -> dict:
        return {
            "type": "remark",
            "pass": self.pass_name,
            "kind": self.kind,
            "function": self.function,
            "loc": self.loc,
            "message": self.render().split(": ", 1)[1],
            "args": {k: _jsonable(v) for k, v in self.args.items()},
        }


@dataclass
class PassRecord:
    """One pass execution: wall time plus static IR deltas."""

    pass_name: str
    function: str
    start_us: float  # offset from the pass manager's creation, microseconds
    dur_us: float
    inst_before: int
    inst_after: int
    loops_before: int
    loops_after: int

    @property
    def inst_delta(self) -> int:
        return self.inst_after - self.inst_before

    def as_dict(self) -> dict:
        return {
            "type": "pass",
            "pass": self.pass_name,
            "function": self.function,
            "start_us": round(self.start_us, 3),
            "dur_us": round(self.dur_us, 3),
            "inst_before": self.inst_before,
            "inst_after": self.inst_after,
            "loops_before": self.loops_before,
            "loops_after": self.loops_after,
        }


@dataclass
class ProfileRecord:
    """Per-region execution profile of one workload run.

    ``regions`` is the pre-order region list produced by
    :func:`repro.diag.profile.build_profile` — each entry is a
    :class:`~repro.diag.profile.RegionProfile`.
    """

    workload: str
    function: str
    backend: str
    total_cycles: float
    regions: list = field(default_factory=list)

    def as_dict(self) -> dict:
        return {
            "type": "profile",
            "workload": self.workload,
            "function": self.function,
            "backend": self.backend,
            "total_cycles": self.total_cycles,
            "regions": [r.as_dict() for r in self.regions],
        }


def _jsonable(v):
    if isinstance(v, (int, float, str, bool)) or v is None:
        return v
    if isinstance(v, (list, tuple)):
        return [_jsonable(x) for x in v]
    return str(v)


class DiagnosticContext:
    """Collects remarks, pass records, and execution profiles.

    One context is installed globally (:func:`get_context`); a disabled
    context's :meth:`remark` returns immediately, and instrumentation
    sites additionally guard on :attr:`enabled` so no argument
    formatting happens when diagnostics are off.
    """

    def __init__(self, enabled: bool = False):
        self.enabled = enabled
        self.remarks: list[Remark] = []
        self.passes: list[PassRecord] = []
        self.profiles: list[ProfileRecord] = []

    # -- emission ---------------------------------------------------------

    def remark(
        self,
        pass_name: str,
        kind: str,
        function: str,
        loc: str,
        message: str,
        **args,
    ) -> None:
        if not self.enabled:
            return
        if kind not in REMARK_KINDS:
            raise ValueError(f"unknown remark kind {kind!r}; expected {REMARK_KINDS}")
        self.remarks.append(Remark(pass_name, kind, function, loc, message, args))

    def add_pass(self, record: PassRecord) -> None:
        if self.enabled:
            self.passes.append(record)

    def add_profile(self, record: ProfileRecord) -> None:
        if self.enabled:
            self.profiles.append(record)

    # -- views ------------------------------------------------------------

    def records(self) -> Iterator:
        """All records in collection order groups: remarks, passes, profiles."""
        yield from self.remarks
        yield from self.passes
        yield from self.profiles

    def clear(self) -> None:
        self.remarks.clear()
        self.passes.clear()
        self.profiles.clear()


def _env_enabled() -> bool:
    return os.environ.get("REPRO_DIAG", "0").lower() in ("1", "true", "on", "yes")


_CONTEXT = DiagnosticContext(enabled=_env_enabled())


def get_context() -> DiagnosticContext:
    """The currently installed context (cheap; call per instrumentation site)."""
    return _CONTEXT


def set_context(ctx: DiagnosticContext) -> DiagnosticContext:
    """Install ``ctx`` globally; returns the previous context."""
    global _CONTEXT
    prev = _CONTEXT
    _CONTEXT = ctx
    return prev


def diagnostics_enabled() -> bool:
    return _CONTEXT.enabled


@contextmanager
def collect(enabled: bool = True):
    """Install a fresh context for the duration of the block.

    Yields the new :class:`DiagnosticContext`; the previous context is
    restored on exit, so nested/test usage cannot leak collection state.
    """
    ctx = DiagnosticContext(enabled=enabled)
    prev = set_context(ctx)
    try:
        yield ctx
    finally:
        set_context(prev)


def dump_ir_dir() -> Optional[str]:
    """The ``REPRO_DUMP_IR`` snapshot directory, or None when disabled."""
    d = os.environ.get("REPRO_DUMP_IR", "").strip()
    return d or None


__all__ = [
    "DiagnosticContext",
    "PassRecord",
    "ProfileRecord",
    "Remark",
    "REMARK_KINDS",
    "collect",
    "diagnostics_enabled",
    "dump_ir_dir",
    "get_context",
    "set_context",
]
