"""Compiler-wide diagnostics: remarks, pass instrumentation, profiles.

The observability layer of the reproduction (mirroring LLVM's ``-Rpass``
remarks and pass-manager instrumentation):

* :mod:`repro.diag.context` — :class:`DiagnosticContext` collecting
  typed ``Passed`` / ``Missed`` / ``Analysis`` remarks from every pass,
  the versioning framework, and the RLE/SLP clients.
* :mod:`repro.diag.passmanager` — per-pass wall time, instruction/loop
  deltas, and ``REPRO_DUMP_IR`` before/after IR snapshots.
* :mod:`repro.diag.profile` — exact per-loop cycle attribution from the
  execution backends' item counts.
* :mod:`repro.diag.export` — JSONL and Chrome ``trace_event`` output.
* ``python -m repro.diag report`` — renders remarks, pass timings, and
  hot-spot tables (see :mod:`repro.diag.report`).

Diagnostics are off by default (``REPRO_DIAG=1`` or
:func:`collect` turns them on) and never perturb measurement: cycles and
counters are bit-identical with collection enabled or disabled.
"""

from .context import (
    DiagnosticContext,
    PassRecord,
    ProfileRecord,
    Remark,
    REMARK_KINDS,
    collect,
    diagnostics_enabled,
    get_context,
    set_context,
)
from .export import chrome_trace, write_chrome_trace, write_jsonl
from .passmanager import PassManager
from .profile import RegionProfile, build_profile, hotspot_rows

__all__ = [
    "DiagnosticContext",
    "PassManager",
    "PassRecord",
    "ProfileRecord",
    "RegionProfile",
    "Remark",
    "REMARK_KINDS",
    "build_profile",
    "chrome_trace",
    "collect",
    "diagnostics_enabled",
    "get_context",
    "hotspot_rows",
    "set_context",
    "write_chrome_trace",
    "write_jsonl",
]
