"""Per-region execution profiles: cycle attribution by loop.

Both execution backends charge cycles through the same deterministic
cost model; this module turns their per-item execution counts into a
hierarchical *region* profile (the function's top level plus every loop,
pre-order), so check overhead is visible per versioned region instead of
as one aggregate number.

The attribution is exact, not sampled: an instruction's contribution is
``executed count x its static cost`` and a loop's own contribution is
``back-edge count x loop_backedge`` — precisely the terms the backends
accumulate — so the sum over the region tree reproduces the run's total
cycles bit for bit.  Because the profile is derived *after* execution
from counts the backends either already maintain (compiled) or collect
behind an ``enabled`` guard (reference), the measured cycles and
counters are unchanged by profiling.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.interp.costmodel import CostModel
from repro.ir.instructions import Cmp, Instruction
from repro.ir.loops import Function, Loop, ScopeMixin


@dataclass
class RegionProfile:
    """Cycle/count attribution for one region (function body or loop)."""

    region: str  # path like "kernel" or "kernel/loop3/loop4"
    kind: str  # "function" | "loop"
    depth: int
    iterations: int  # back edges taken (1 for the function region)
    cycles: float  # inclusive: this region plus nested loops
    self_cycles: float  # exclusive: items directly in this region
    instructions: int  # dynamic instructions directly in this region
    check_cycles: float  # cycles spent in versioning checks here (exclusive)
    checks: int  # dynamic versioning-check evaluations here

    def as_dict(self) -> dict:
        return {
            "region": self.region,
            "kind": self.kind,
            "depth": self.depth,
            "iterations": self.iterations,
            "cycles": self.cycles,
            "self_cycles": self.self_cycles,
            "instructions": self.instructions,
            "check_cycles": self.check_cycles,
            "checks": self.checks,
        }


def build_profile(
    fn: Function,
    inst_counts: dict[int, int],
    loop_iters: dict[int, int],
    cost_model: CostModel,
) -> list[RegionProfile]:
    """Aggregate per-item execution counts into a pre-order region list.

    ``inst_counts`` maps ``id(instruction) -> times executed`` and
    ``loop_iters`` maps ``id(loop) -> back edges taken``.  Items absent
    from the maps are treated as never executed (e.g. statically-dead
    code the compiled backend dropped at translation time).
    """
    out: list[RegionProfile] = []

    def visit(scope: ScopeMixin, path: str, kind: str, depth: int,
              iterations: int) -> RegionProfile:
        # a loop region owns its back-edge cost (charged once per taken
        # back edge by both backends)
        self_cycles = iterations * cost_model.loop_backedge if kind == "loop" else 0.0
        n_inst = 0
        check_cycles = 0.0
        n_checks = 0
        children: list[RegionProfile] = []
        # reserve this region's slot so pre-order holds: parent before kids
        slot = len(out)
        out.append(None)  # type: ignore[arg-type]
        for item in scope.items:
            if isinstance(item, Loop):
                children.append(
                    visit(item, f"{path}/{item.name}", "loop", depth + 1,
                          loop_iters.get(id(item), 0))
                )
            else:
                inst: Instruction = item  # type: ignore[assignment]
                n = inst_counts.get(id(inst), 0)
                if not n:
                    continue
                cost = cost_model.instruction_cost(inst)
                self_cycles += n * cost
                n_inst += n
                if isinstance(inst, Cmp) and inst.is_versioning_check:
                    check_cycles += n * cost
                    n_checks += n
        inclusive = self_cycles + sum(c.cycles for c in children)
        region = RegionProfile(
            region=path,
            kind=kind,
            depth=depth,
            iterations=iterations,
            cycles=inclusive,
            self_cycles=self_cycles,
            instructions=n_inst,
            check_cycles=check_cycles,
            checks=n_checks,
        )
        out[slot] = region
        return region

    visit(fn, fn.name, "function", 0, 1)
    return out


def total_cycles(regions: list[RegionProfile]) -> float:
    return regions[0].cycles if regions else 0.0


def hotspot_rows(
    regions: list[RegionProfile],
    total: Optional[float] = None,
    top: Optional[int] = None,
) -> list[tuple]:
    """Rows ``(region, iterations, cycles, self, %total, checks, check_cy)``
    sorted by descending inclusive cycles, for the report tables."""
    if total is None:
        total = total_cycles(regions) or 1.0
    ranked = sorted(regions, key=lambda r: (-r.cycles, r.region))
    if top is not None:
        ranked = ranked[:top]
    return [
        (
            r.region,
            r.iterations,
            r.cycles,
            r.self_cycles,
            100.0 * r.cycles / total if total else 0.0,
            r.checks,
            r.check_cycles,
        )
        for r in ranked
    ]


__all__ = ["RegionProfile", "build_profile", "hotspot_rows", "total_cycles"]
