"""Entry point: ``python -m repro.diag report [...]``."""

import sys

from repro.diag.report import main

if __name__ == "__main__":
    sys.exit(main())
