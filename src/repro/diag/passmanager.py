"""Pass-pipeline instrumentation (the LLVM pass-manager analogue).

:class:`PassManager` wraps every pass invocation the pipeline performs:
it records per-pass wall time and static instruction/loop deltas into
the active :class:`~repro.diag.context.DiagnosticContext`, and — when
``REPRO_DUMP_IR=<dir>`` is set — writes a before/after textual IR
snapshot of the transformed function via :mod:`repro.ir.printer`.

With diagnostics disabled and no dump directory the wrapper degenerates
to a direct call: no timing, no counting, no allocation.
"""

from __future__ import annotations

import os
import time
from typing import Callable, Optional

from repro import telemetry
from repro.ir.loops import Function
from repro.ir.printer import print_function

from .context import PassRecord, dump_ir_dir, get_context


def _observe_pass(pass_name: str, seconds: float) -> None:
    telemetry.histogram(
        "repro_pass_seconds", "optimization-pass wall time",
        **{"pass": pass_name},
    ).observe(seconds)


class PassManager:
    """Runs named passes over functions, recording instrumentation.

    One manager is created per ``optimize()`` invocation; ``seq`` numbers
    the pass executions so IR snapshots sort in pipeline order.
    """

    def __init__(self, module_name: str = "module",
                 dump_dir: Optional[str] = None):
        self.module_name = module_name
        self.dump_dir = dump_dir if dump_dir is not None else dump_ir_dir()
        self.seq = 0
        self._t0 = time.perf_counter()
        if self.dump_dir:
            os.makedirs(self.dump_dir, exist_ok=True)

    def _dump(self, tag: str, pass_name: str, fn: Function) -> None:
        path = os.path.join(
            self.dump_dir,
            f"{self.module_name}.{self.seq:03d}.{pass_name}.{fn.name}.{tag}.ir",
        )
        with open(path, "w") as f:
            f.write(print_function(fn) + "\n")

    def run(self, pass_name: str, fn: Function, thunk: Callable):
        """Execute ``thunk`` (the pass, closed over ``fn``) instrumented.

        Returns the thunk's result so call sites keep their pass-statistic
        plumbing (``run_gvn`` returns a deletion count, etc.).
        """
        dc = get_context()
        dump = self.dump_dir
        if not dc.enabled and not dump:
            if not telemetry.enabled():
                return thunk()
            # telemetry-only: time the pass, skip the per-pass records
            # and IR bookkeeping the diagnostic context would want
            start = time.perf_counter()
            result = thunk()
            _observe_pass(pass_name, time.perf_counter() - start)
            return result
        self.seq += 1
        if dump:
            self._dump("before", pass_name, fn)
        inst_before = fn.code_size()
        loops_before = len(fn.loops())
        start = time.perf_counter()
        result = thunk()
        end = time.perf_counter()
        _observe_pass(pass_name, end - start)
        if dump:
            self._dump("after", pass_name, fn)
        if dc.enabled:
            dc.add_pass(
                PassRecord(
                    pass_name=pass_name,
                    function=fn.name,
                    start_us=(start - self._t0) * 1e6,
                    dur_us=(end - start) * 1e6,
                    inst_before=inst_before,
                    inst_after=fn.code_size(),
                    loops_before=loops_before,
                    loops_after=len(fn.loops()),
                )
            )
        return result


__all__ = ["PassManager"]
