"""Serialization of diagnostic records: JSONL and Chrome ``trace_event``.

Two interchange formats:

* **JSONL** — one JSON object per line, each with a ``type`` field
  (``remark`` | ``pass`` | ``profile``), suitable for ``jq``/pandas
  post-processing and for CI artifacts.
* **Chrome trace** — the ``trace_event`` JSON the ``about://tracing`` /
  Perfetto viewers load.  Pass executions become complete ("X") events
  on one track in real microseconds; execution-profile regions become a
  synthetic flame on a second track where 1 simulated cycle renders as
  1 microsecond (the simulation has no wall-clock timeline, but the
  nesting and relative widths are exact).  When runtime telemetry is
  collecting (:mod:`repro.telemetry`), completed wall-clock spans
  (build, translate, execute phases) form a third track, pid 3.
"""

from __future__ import annotations

import json
from typing import IO, Iterable

from repro import telemetry

from .context import DiagnosticContext


def records(dc: DiagnosticContext) -> list[dict]:
    """Every collected record as a JSON-ready dict (remarks, passes, profiles)."""
    return [r.as_dict() for r in dc.records()]


def write_jsonl(dc: DiagnosticContext, out: IO[str]) -> int:
    """Write one record per line; returns the number of lines written."""
    n = 0
    for rec in records(dc):
        out.write(json.dumps(rec, sort_keys=True) + "\n")
        n += 1
    return n


def _pass_events(dc: DiagnosticContext) -> Iterable[dict]:
    for p in dc.passes:
        yield {
            "name": f"{p.pass_name}({p.function})",
            "cat": "pass",
            "ph": "X",
            "pid": 1,
            "tid": 1,
            "ts": round(p.start_us, 3),
            "dur": max(round(p.dur_us, 3), 0.001),
            "args": {
                "inst_before": p.inst_before,
                "inst_after": p.inst_after,
                "loops_before": p.loops_before,
                "loops_after": p.loops_after,
            },
        }


def _profile_events(dc: DiagnosticContext) -> Iterable[dict]:
    # lay workload profiles end-to-end; within one profile, nest regions
    # by pre-order: each child starts after the previous sibling, inside
    # its parent's span
    cursor = 0.0
    for prof in dc.profiles:
        starts: dict[str, float] = {}
        next_free: dict[str, float] = {}
        for r in prof.regions:
            parent = r.region.rsplit("/", 1)[0] if "/" in r.region else None
            if parent is None:
                start = cursor
            else:
                start = next_free.get(parent, starts[parent])
            starts[r.region] = start
            next_free[r.region] = start
            next_free[parent or ""] = start + r.cycles
            yield {
                "name": r.region.split("/")[-1],
                "cat": "exec",
                "ph": "X",
                "pid": 2,
                "tid": 2,
                "ts": round(start, 3),
                "dur": max(round(r.cycles, 3), 0.001),
                "args": {
                    "workload": prof.workload,
                    "backend": prof.backend,
                    "iterations": r.iterations,
                    "self_cycles": r.self_cycles,
                    "checks": r.checks,
                    "check_cycles": r.check_cycles,
                },
            }
        if prof.regions:
            cursor += prof.regions[0].cycles + 1.0


def chrome_trace(dc: DiagnosticContext) -> dict:
    """The full ``trace_event`` JSON object (``traceEvents`` container)."""
    events = list(_pass_events(dc)) + list(_profile_events(dc))
    events.append(
        {"name": "process_name", "ph": "M", "pid": 1, "tid": 0,
         "args": {"name": "compile (passes)"}}
    )
    events.append(
        {"name": "process_name", "ph": "M", "pid": 2, "tid": 0,
         "args": {"name": "execute (simulated cycles as us)"}}
    )
    events.extend(telemetry.span_trace_events(pid=3))
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(dc: DiagnosticContext, out: IO[str]) -> int:
    trace = chrome_trace(dc)
    json.dump(trace, out)
    out.write("\n")
    return len(trace["traceEvents"])


__all__ = ["chrome_trace", "records", "write_chrome_trace", "write_jsonl"]
