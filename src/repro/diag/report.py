"""``python -m repro.diag report`` — render collected diagnostics.

Runs a workload suite with diagnostics enabled (fresh builds, no caches,
so every remark-producing decision actually re-fires), then renders
three sections out of the collected records:

* **optimization remarks** per workload (the -Rpass-style stream);
* **pass timings** aggregated per pass across the suite (runs, wall
  time, net instruction delta);
* **execution hot spots** per workload: the per-region cycle
  attribution, with versioning-check overhead broken out per region.

``--jsonl`` / ``--trace`` additionally export the raw records (JSONL)
and a Chrome ``trace_event`` file loadable in ``about://tracing`` or
Perfetto.  ``--check`` runs a one-workload smoke pass that validates the
whole chain (remarks collected, profile sums to the measured cycles,
trace JSON well-formed) and exits non-zero on any failure — CI runs it.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional

from repro import telemetry
from repro.diag.context import DiagnosticContext, collect
from repro.diag.export import chrome_trace, write_chrome_trace, write_jsonl
from repro.diag.profile import hotspot_rows, total_cycles
from repro.perf.measure import build, execute
from repro.perf.report import format_table
from repro.workloads import polybench, tsvc


def suite_workloads(suite: str, workload: Optional[str] = None) -> list:
    """The workload objects the report runs over."""
    pool = []
    if suite in ("polybench", "all"):
        pool += [factory() for factory in polybench.ALL]
    if suite in ("tsvc", "all"):
        pool += tsvc.workloads()
    if workload is not None:
        pool = [w for w in pool if w.name == workload]
        if not pool:
            raise SystemExit(
                f"error: no workload named {workload!r} in suite {suite!r}"
            )
    return pool


def collect_suite(
    workloads: list,
    level: str,
    honor_restrict: bool = True,
    vl: int = 4,
    rle: bool = False,
    backend: Optional[str] = None,
) -> list[tuple[str, DiagnosticContext]]:
    """Build + run each workload under its own fresh context.

    Fresh, uncached builds: the measurement caches would otherwise
    short-circuit the optimizer (and with it every remark site) on
    repeated invocations.
    """
    out = []
    for w in workloads:
        with collect() as dc:
            module, stats = build(
                w, level, honor_restrict=honor_restrict, vl=vl, rle=rle,
                use_cache=False,
            )
            execute(module, w, stats, backend=backend)
        out.append((w.name, dc))
    return out


def merge_contexts(
    per_workload: list[tuple[str, DiagnosticContext]]
) -> DiagnosticContext:
    """One context holding every workload's records, in suite order."""
    merged = DiagnosticContext(enabled=True)
    for _, dc in per_workload:
        merged.remarks.extend(dc.remarks)
        merged.passes.extend(dc.passes)
        merged.profiles.extend(dc.profiles)
    return merged


# -- rendering ---------------------------------------------------------------


def render_remarks(
    per_workload: list[tuple[str, DiagnosticContext]],
    kinds: Optional[set[str]] = None,
) -> str:
    lines = ["== optimization remarks =="]
    for name, dc in per_workload:
        remarks = [
            r for r in dc.remarks if kinds is None or r.kind in kinds
        ]
        if not remarks:
            continue
        lines.append(f"-- {name} --")
        lines.extend(f"  {r.render()}" for r in remarks)
    if len(lines) == 1:
        lines.append("(no remarks collected)")
    return "\n".join(lines)


def render_pass_timings(merged: DiagnosticContext) -> str:
    agg: dict[str, list] = {}
    for p in merged.passes:
        row = agg.setdefault(p.pass_name, [0, 0.0, 0])
        row[0] += 1
        row[1] += p.dur_us
        row[2] += p.inst_delta
    rows = [
        (name, runs, total_us / 1000.0, delta)
        for name, (runs, total_us, delta) in sorted(
            agg.items(), key=lambda kv: -kv[1][1]
        )
    ]
    table = format_table(["pass", "runs", "total ms", "inst delta"], rows,
                         floatfmt=".3f")
    return "== pass timings ==\n" + (
        table if rows else "(no pass records collected)"
    )


def run_build_times(
    workloads: list,
    level: str,
    honor_restrict: bool = True,
    vl: int = 4,
    rle: bool = False,
) -> str:
    """Build-only sweep: where does a cold build's wall time go?

    Runs no kernels — each workload is compiled and optimized once under
    a fresh diagnostics context, and the output is (a) the per-pass
    wall-time table aggregated across the suite and (b) a per-workload
    breakdown of total build seconds against the slice spent inside
    instrumented passes (the remainder is front end, verification, and
    pipeline glue).  Builds are cold by construction: the diagnostics
    context disables both the in-process and the on-disk build caches.
    """
    import time

    per: list[tuple[str, DiagnosticContext]] = []
    rows = []
    total_s = 0.0
    for w in workloads:
        with collect() as dc:
            t0 = time.perf_counter()
            build(w, level, honor_restrict=honor_restrict, vl=vl, rle=rle,
                  use_cache=False)
            secs = time.perf_counter() - t0
        per.append((w.name, dc))
        in_passes = sum(p.dur_us for p in dc.passes) / 1e6
        total_s += secs
        rows.append((w.name, secs * 1000.0, in_passes * 1000.0,
                     100.0 * in_passes / secs if secs else 0.0))
    merged = merge_contexts(per)
    table = format_table(
        ["workload", "build ms", "in passes ms", "% in passes"],
        rows, floatfmt=".2f",
    )
    return "\n\n".join([
        render_pass_timings(merged),
        "== build times ==\n" + table +
        f"\ntotal: {total_s * 1000.0:.2f} ms over {len(rows)} workload(s)",
    ])


def render_hotspots(merged: DiagnosticContext, top: int = 5) -> str:
    lines = ["== execution hot spots =="]
    for prof in merged.profiles:
        lines.append(
            f"-- {prof.workload} ({prof.backend}, "
            f"{prof.total_cycles:.1f} cycles) --"
        )
        rows = [
            (region, iters, cycles, self_cy, pct, checks, check_cy)
            for region, iters, cycles, self_cy, pct, checks, check_cy
            in hotspot_rows(prof.regions, top=top)
        ]
        lines.append(format_table(
            ["region", "iters", "cycles", "self", "%total", "checks",
             "check cy"],
            rows, floatfmt=".1f",
        ))
    if len(lines) == 1:
        lines.append("(no profiles collected)")
    return "\n".join(lines)


def _series_of(snap: dict, name: str) -> list[tuple[dict, dict]]:
    """``(labels, series-entry)`` rows of one metric family, or []."""
    for fam in snap.get("metrics", ()):
        if fam["name"] == name:
            return [(s["labels"], s) for s in fam["series"]]
    return []


def render_metrics(snap: Optional[dict] = None) -> str:
    """Operational telemetry digest: cache hit rates, array-tier guard
    dispatch outcomes by failing conjunct, and per-backend setup
    (translate) against execute wall time.  Reads the live registry
    unless an explicit snapshot dict is given."""
    if snap is None:
        snap = telemetry.snapshot(include_spans=False)
    sections = ["== runtime telemetry =="]

    req: dict[str, dict[str, float]] = {}
    for labels, s in _series_of(snap, "repro_cache_requests_total"):
        row = req.setdefault(labels.get("cache", "?"), {})
        row[labels.get("outcome", "?")] = s["value"]
    for labels, s in _series_of(snap, "repro_diskcache_requests_total"):
        row = req.setdefault("disk", {})
        row[labels.get("outcome", "?")] = s["value"]
    evics = {
        labels.get("cache", "?"): s["value"]
        for labels, s in _series_of(snap, "repro_cache_evictions_total")
    }
    for labels, s in _series_of(snap, "repro_diskcache_evictions_total"):
        evics["disk"] = s["value"]
    if req:
        rows = []
        for cache in sorted(req):
            hits = req[cache].get("hit", 0)
            misses = req[cache].get("miss", 0) + req[cache].get("error", 0)
            total = hits + misses
            rows.append((cache, int(hits), int(misses),
                         100.0 * hits / total if total else 0.0,
                         int(evics.get(cache, 0))))
        sections.append("-- cache hit rates --\n" + format_table(
            ["cache", "hits", "misses", "hit %", "evicted"], rows,
            floatfmt=".1f",
        ))

    disp = _series_of(snap, "repro_array_guard_dispatch_total")
    if disp:
        agg: dict[tuple[str, str], float] = {}
        for labels, s in disp:
            key = (labels.get("outcome", "?"), labels.get("reason", ""))
            agg[key] = agg.get(key, 0) + s["value"]
        total = sum(agg.values())
        rows = [
            (outcome, reason or "-", int(n),
             100.0 * n / total if total else 0.0)
            for (outcome, reason), n in sorted(
                agg.items(), key=lambda kv: -kv[1]
            )
        ]
        sections.append(
            "-- array-tier guard dispatch --\n" + format_table(
                ["outcome", "reason", "dispatches", "%"], rows,
                floatfmt=".1f",
            ))

    leases = _series_of(snap, "repro_campaign_leases_total")
    if leases:
        hosts: dict[str, dict[str, float]] = {}

        def _host_row(name: str, field: str) -> None:
            for labels, s in _series_of(snap, name):
                row = hosts.setdefault(labels.get("host", "?"), {})
                row[field] = row.get(field, 0) + s["value"]

        _host_row("repro_campaign_leases_total", "leases")
        _host_row("repro_campaign_releases_total", "releases")
        _host_row("repro_campaign_refs_shipped_total", "refs")
        for labels, s in _series_of(
                snap, "repro_campaign_lease_results_total"):
            row = hosts.setdefault(labels.get("host", "?"), {})
            key = ("ok" if labels.get("outcome") == "ok" else "errors")
            row[key] = row.get(key, 0) + s["value"]
        for labels, s in _series_of(
                snap, "repro_campaign_lease_latency_seconds"):
            row = hosts.setdefault(labels.get("host", "?"), {})
            row["lat_n"] = row.get("lat_n", 0) + s["count"]
            row["lat_s"] = row.get("lat_s", 0.0) + s["sum"]
        rows = []
        for host in sorted(hosts):
            r = hosts[host]
            n = r.get("lat_n", 0)
            rows.append((
                host, int(r.get("leases", 0)), int(r.get("ok", 0)),
                int(r.get("errors", 0)), int(r.get("releases", 0)),
                int(r.get("refs", 0)),
                (r.get("lat_s", 0.0) / n * 1000.0) if n else 0.0,
            ))
        sections.append(
            "-- distributed campaign leases --\n" + format_table(
                ["host", "leases", "ok", "errors", "re-leased", "refs",
                 "mean rtt ms"],
                rows, floatfmt=".1f",
            ))

    spans: dict[str, dict[str, tuple[int, float]]] = {}
    for labels, s in _series_of(snap, "repro_span_seconds"):
        backend = labels.get("backend")
        if backend is None:
            continue
        spans.setdefault(backend, {})[labels.get("span", "?")] = (
            s["count"], s["sum"])
    if spans:
        rows = []
        for backend in sorted(spans):
            tr_n, tr_s = spans[backend].get("translate", (0, 0.0))
            ex_n, ex_s = spans[backend].get("execute", (0, 0.0))
            rows.append((backend, tr_n, tr_s * 1000.0, ex_n, ex_s * 1000.0))
        sections.append(
            "-- backend setup vs execute (wall clock) --\n" + format_table(
                ["backend", "translates", "setup ms", "executes", "exec ms"],
                rows, floatfmt=".2f",
            ))

    if len(sections) == 1:
        sections.append("(no telemetry collected)")
    return "\n\n".join(sections)


def render_report(
    per_workload: list[tuple[str, DiagnosticContext]],
    top: int = 5,
    kinds: Optional[set[str]] = None,
) -> str:
    merged = merge_contexts(per_workload)
    return "\n\n".join([
        render_remarks(per_workload, kinds=kinds),
        render_pass_timings(merged),
        render_hotspots(merged, top=top),
    ])


# -- --check smoke -----------------------------------------------------------


def run_check(backend: Optional[str] = None) -> int:
    """One-workload end-to-end validation of the diagnostics chain."""
    failures = []
    wl = [w for w in tsvc.workloads() if w.name == "s000"][0]
    per = collect_suite([wl], "supervec+v", backend=backend)
    dc = per[0][1]
    if not dc.remarks:
        failures.append("no remarks collected from s000 @ supervec+v")
    if not dc.passes:
        failures.append("no pass records collected")
    if not dc.profiles:
        failures.append("no execution profile collected")
    else:
        prof = dc.profiles[0]
        if abs(total_cycles(prof.regions) - prof.total_cycles) > 1e-9:
            failures.append(
                f"profile does not sum to measured cycles: "
                f"{total_cycles(prof.regions)} != {prof.total_cycles}"
            )
    trace = json.loads(json.dumps(chrome_trace(dc)))
    events = trace.get("traceEvents")
    if not isinstance(events, list) or not events:
        failures.append("chrome trace has no traceEvents")
    elif not all(
        isinstance(e, dict) and "ph" in e and "pid" in e for e in events
    ):
        failures.append("chrome trace events missing ph/pid fields")
    import io

    buf = io.StringIO()
    n = write_jsonl(dc, buf)
    parsed = [json.loads(line) for line in buf.getvalue().splitlines()]
    if len(parsed) != n or any("type" not in rec for rec in parsed):
        failures.append("JSONL export does not round-trip")
    if failures:
        for f in failures:
            print(f"diagnostics check FAILED: {f}", file=sys.stderr)
        return 1
    print(
        f"diagnostics check OK: {len(dc.remarks)} remark(s), "
        f"{len(dc.passes)} pass record(s), {len(events)} trace event(s)"
    )
    return 0


# -- CLI ---------------------------------------------------------------------


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.diag",
        description="Render compiler diagnostics: remarks, pass timings, "
                    "and execution hot spots.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    rep = sub.add_parser("report", help="run a suite and render diagnostics")
    rep.add_argument("--suite", choices=["polybench", "tsvc", "all"],
                     default="polybench")
    rep.add_argument("--workload", help="restrict to one workload by name")
    rep.add_argument("--level", default="supervec+v",
                     help="pipeline level (default: supervec+v)")
    rep.add_argument("--no-restrict", action="store_true",
                     help="ignore restrict qualifiers")
    rep.add_argument("--vl", type=int, default=4, help="vector length")
    rep.add_argument("--rle", action="store_true",
                     help="enable versioned redundant load elimination")
    rep.add_argument("--backend",
                     choices=["reference", "compiled", "fused", "array"],
                     default=None)
    rep.add_argument("--kind", action="append", dest="kinds",
                     choices=["Passed", "Missed", "Analysis"],
                     help="only show these remark kinds (repeatable)")
    rep.add_argument("--top", type=int, default=5,
                     help="hot-spot rows per workload")
    rep.add_argument("--jsonl", metavar="PATH",
                     help="write all records as JSON lines")
    rep.add_argument("--trace", metavar="PATH",
                     help="write a Chrome trace_event JSON file")
    rep.add_argument("--metrics", action="store_true",
                     help="append a runtime-telemetry digest: cache hit "
                          "rates, guard-dispatch outcomes, per-backend "
                          "wall time")
    rep.add_argument("--from-service", metavar="HOST:PORT",
                     help="render the metrics digest from a running "
                          "compile service's snapshot instead of running "
                          "a suite")
    rep.add_argument("--metrics-out", metavar="PATH",
                     help="write the full telemetry snapshot as JSON")
    rep.add_argument("--check", action="store_true",
                     help="run a one-workload smoke validation and exit")
    rep.add_argument("--build-times", action="store_true",
                     help="build-only sweep: per-pass wall-time table and "
                          "per-workload build totals (no execution)")
    args = parser.parse_args(argv)

    if args.check:
        return run_check(backend=args.backend)

    if args.from_service:
        # the daemon's merged registry through the --metrics renderer:
        # same digest tables, numbers fetched over the wire
        from repro.service.client import fetch_metrics

        snap = fetch_metrics(args.from_service)
        print(render_metrics(snap))
        if args.metrics_out:
            telemetry.save_snapshot(snap, args.metrics_out)
            print(f"\nwrote telemetry snapshot to {args.metrics_out}")
        return 0

    workloads = suite_workloads(args.suite, args.workload)
    if args.build_times:
        print(run_build_times(
            workloads, args.level,
            honor_restrict=not args.no_restrict,
            vl=args.vl, rle=args.rle,
        ))
        return 0
    per = collect_suite(
        workloads, args.level,
        honor_restrict=not args.no_restrict,
        vl=args.vl, rle=args.rle, backend=args.backend,
    )
    kinds = set(args.kinds) if args.kinds else None
    print(render_report(per, top=args.top, kinds=kinds))
    if args.metrics:
        print()
        print(render_metrics())
    if args.metrics_out:
        telemetry.save_snapshot(telemetry.snapshot(), args.metrics_out)
        print(f"\nwrote telemetry snapshot to {args.metrics_out}")
    merged = merge_contexts(per)
    if args.jsonl:
        with open(args.jsonl, "w") as f:
            n = write_jsonl(merged, f)
        print(f"\nwrote {n} record(s) to {args.jsonl}")
    if args.trace:
        with open(args.trace, "w") as f:
            n = write_chrome_trace(merged, f)
        print(f"wrote {n} trace event(s) to {args.trace}")
    return 0


__all__ = [
    "collect_suite",
    "main",
    "merge_contexts",
    "render_metrics",
    "render_report",
    "run_build_times",
    "run_check",
    "suite_workloads",
]
