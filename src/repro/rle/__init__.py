"""Redundant load elimination via versioning (paper §V-B)."""

from .rle import RLEStats, run_rle

__all__ = ["RLEStats", "run_rle"]
