"""Redundant load elimination with versioning (paper §V-B).

A set of loads from one address is redundant if the loads are all
*independent* — then the group's leader can be hoisted above the others
and replace them.  Spurious intervening writes (may-alias stores, opaque
calls) normally force compilers to keep every load; the versioning
framework rules those writes out at run time instead.  The paper's four
steps, verbatim:

1. collect groups of same-address, same-type loads with a *leader* whose
   execution is implied by every other member;
2. infer a versioning plan making each group independent (drop the group
   when infeasible);
3. materialize the plans;
4. hoist each leader above its group and replace the other loads.

The conservative baseline is ordinary GVN load-merging (no intervening
may-writes), which both pipelines already run — Fig. 22's comparison is
"pipeline with versioned RLE" vs "pipeline without".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.analysis.affine import affine_of
from repro.analysis.depgraph import DependenceGraph
from repro.analysis.memloc import mem_location
from repro.diag.context import get_context
from repro.ir.instructions import Instruction, Load
from repro.ir.loops import Function, Loop, ScopeMixin
from repro.opt import run_dce
from repro.ir.verifier import verify_function
from repro.vectorizer.codegen import schedule_with_group
from repro.versioning import VersioningFramework
from repro.versioning.materialize import MaterializationError
from repro.versioning.plans import VersioningPlan, merge_plans


@dataclass
class RLEStats:
    groups_found: int = 0
    groups_committed: int = 0
    loads_removed: int = 0
    plans_materialized: int = 0
    infeasible: int = 0


def _load_groups(scope: ScopeMixin) -> list[list[Load]]:
    """Same-address, same-type load groups at this scope level."""
    buckets: dict = {}
    for item in scope.items:
        if not isinstance(item, Load):
            continue
        loc = mem_location(item)
        if loc is None:
            continue
        key = (
            id(loc.base),
            frozenset(loc.offset.terms.items()),
            loc.offset.const,
            str(item.type),
        )
        buckets.setdefault(key, []).append(item)
    return [g for g in buckets.values() if len(g) >= 2]


def _pick_leader(group: list[Load]) -> Optional[Load]:
    """A member whose execution is implied by every other member's."""
    for cand in group:
        if all(o.predicate.implies(cand.predicate) for o in group):
            return cand
    return None


def run_rle(
    fn: Function,
    honor_restrict: bool = True,
    use_versioning: bool = True,
) -> RLEStats:
    """Eliminate redundant loads across spurious writes; returns stats."""
    stats = RLEStats()
    vf = VersioningFramework(fn, honor_restrict=honor_restrict)
    for scope in [fn] + list(fn.loops()):
        _rle_scope(fn, scope, vf, stats, use_versioning)
    run_dce(fn)
    verify_function(fn)
    return stats


def _rle_scope(
    fn: Function,
    scope: ScopeMixin,
    vf: VersioningFramework,
    stats: RLEStats,
    use_versioning: bool,
) -> None:
    dc = get_context()
    loc = scope.name if isinstance(scope, Loop) else ""
    for group in _load_groups(scope):
        stats.groups_found += 1
        leader = _pick_leader(group)
        if leader is None:
            if dc.enabled:
                dc.remark(
                    "rle", "Missed", fn.name, loc,
                    "load group of {n} ({first}, ...) has no leader whose "
                    "execution every member implies",
                    n=len(group), first=group[0].display_name(),
                )
            continue
        # contiguity (not just pairwise independence): the leader must be
        # hoistable above every member, crossing whatever sits between
        plan = vf.infer_schedulability(group)
        if plan is None:
            if dc.enabled:
                dc.remark(
                    "rle", "Missed", fn.name, loc,
                    "load group at {leader} dropped: no versioning plan "
                    "makes the group independent",
                    leader=leader.display_name(),
                )
            stats.infeasible += 1
            continue
        if not plan.is_empty():
            if not use_versioning:
                if dc.enabled:
                    dc.remark(
                        "rle", "Missed", fn.name, loc,
                        "load group at {leader} needs run-time checks but "
                        "versioning is disabled",
                        leader=leader.display_name(),
                    )
                stats.infeasible += 1
                continue
            try:
                vf.materialize([plan], optimize=True, verify=False)
            except MaterializationError:
                if dc.enabled:
                    dc.remark(
                        "rle", "Missed", fn.name, loc,
                        "load group at {leader} dropped: plan failed to "
                        "materialize",
                        leader=leader.display_name(),
                    )
                stats.infeasible += 1
                continue
            stats.plans_materialized += 1
        graph = DependenceGraph(
            scope, vf.alias, assume_independent=set(plan.removed_edges)
        )
        if not schedule_with_group(scope, group, graph):
            if dc.enabled:
                dc.remark(
                    "rle", "Missed", fn.name, loc,
                    "load group at {leader} dropped: cannot schedule the "
                    "group contiguously",
                    leader=leader.display_name(),
                )
            continue
        # after scheduling the group is contiguous; make the leader first
        order = {id(it): i for i, it in enumerate(scope.items)}
        group_sorted = sorted(group, key=lambda l: order[id(l)])
        if group_sorted[0] is not leader:
            _move_with_chain(scope, leader, group_sorted[0])
        removed_here = 0
        for other in group_sorted:
            if other is leader:
                continue
            for user in list(other.users()):
                user.replace_uses_of(other, leader)
            if fn.return_value is other:
                fn.set_return(leader)
            if not other.has_users():
                other.scope_erase()
                removed_here += 1
        if removed_here:
            stats.groups_committed += 1
            stats.loads_removed += removed_here
        vf.invalidate()


def _move_with_chain(scope: ScopeMixin, item: Instruction, anchor: Instruction) -> None:
    """Move ``item`` (plus any of its pure operand chain that sits after
    ``anchor``) to just before ``anchor``.  The chain is address
    arithmetic — moving it upward is always safe; moving the load itself
    is what the versioning plan licensed."""
    from repro.analysis.depgraph import _item_defined, _item_used

    pos = {id(it): i for i, it in enumerate(scope.items)}
    def_map = {}
    for it in scope.items:
        for v in _item_defined(it):
            def_map[v] = it
    anchor_idx = pos[id(anchor)]
    needed = {id(item)}
    work = list(_item_used(item))
    while work:
        v = work.pop()
        d = def_map.get(v)
        if d is None or id(d) in needed or pos.get(id(d), -1) <= anchor_idx:
            continue
        needed.add(id(d))
        work.extend(_item_used(d))
    to_move = [it for it in scope.items if id(it) in needed]
    for it in to_move:
        scope.remove(it)
    for it in to_move:
        scope.insert_before(anchor, it)


__all__ = ["run_rle", "RLEStats"]
