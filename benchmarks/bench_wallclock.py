"""Wall-clock comparison of the execution backends on the Fig. 16 kernels.

Times each phase honestly (caches cleared, the same built module handed
to every executor):

* **build**      — front end + optimization pipeline (shared by backends)
* **compile**    — PSSA-to-closure translation (compiled backend)
* **fuse**       — PSSA-to-straight-line translation (fused backend)
* **array**      — batch-vectorization translation (array backend)
* **exec ref**   — reference tree-walking interpreter
* **exec jit**   — closure-compiled executor
* **exec fused** — superblock-fused executor
* **exec arr**   — batch-vectorized executor, exact accounting
* **exec arr-s** — batch-vectorized executor, ``REPRO_ACCOUNTING=off``

and verifies on every kernel that the compiled, fused, and exact-mode
array backends return bit-identical cycles, counters, and checksums
before any timing is reported (speed mode is held to checksum identity —
its whole point is folding the accounting away).  Each per-kernel row
also carries the *setup* total per backend — build plus that backend's
translation — so amortization is visible next to the execute-phase
speedup.  Results go to ``BENCH_interp.json`` at the repo root:
per-kernel phase timings, a per-backend geomean table (each backend's
execute-phase speedup over the reference), and the aggregate
dynamic-counter profile (including the per-opcode breakdown) of the
kernel set.

A **speed phase** reruns the suite at ``O3-scalar`` with the problem
sizes scaled up (``polybench.scaled``) so per-call harness overhead
stops dominating, and times the fused executor against the array
executor in speed mode on the same built module.  Checksums must match
exactly; the per-kernel speedups and their geomean land in the
``speed_mode`` section of ``BENCH_interp.json`` — the acceptance gate is
array-speed ≥ 3x geomean over fused.

A second tier times the *build side* (``BENCH_build.json``): per-kernel
cold builds (front end + pipeline, no caches) against the pinned
pre-incrementalization baseline, a parallel cache-populate pass
(``repro.perf.batch`` with ``-j``), and warm builds served from the
persistent disk cache (``REPRO_CACHE_DIR``) — verifying per kernel that
the warm artifact prints identical IR and executes to identical cycles.

A fuzz-throughput tier (``BENCH_fuzz.json``) times the campaign engine
against the plain ``fuzz run`` sweep, and a **distributed tier** times
the same campaign leased over N compile-service daemons against a
single-host pool of equal total worker count — byte-comparing the two
campaign trees before reporting any speedup.

Run standalone (``python bench_wallclock.py``) or under pytest, where
the compiled ≥3x and fused ≥2x-over-compiled execute-phase speedups —
and the ≥2x cold / ≥10x warm build speedups — are asserted.
"""

import json
import os
import tempfile
import time
from contextlib import contextmanager

from repro.interp import (
    clear_array_cache,
    clear_compile_cache,
    clear_fuse_cache,
    compile_function,
    fuse_function,
)
from repro.interp.array import array_function
from repro.interp.interpreter import Counters
from repro.perf import measure
from repro.perf.report import (
    backend_geomean_table,
    counters_report,
    format_table,
    geomean,
)
from repro.workloads import polybench

LEVEL = "supervec+v"
SPEED_LEVEL = "O3-scalar"  # full trip counts: what the batch feeds on
SPEED_SCALE = 4
REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
JSON_PATH = os.path.join(REPO_ROOT, "BENCH_interp.json")
BUILD_JSON_PATH = os.path.join(REPO_ROOT, "BENCH_build.json")

#: Cold-build seconds (best-of-5, supervec+v) measured at the last
#: commit before the incremental-analysis work landed — the fixed
#: baseline the build tier's speedups are computed against.
BASELINE_BUILD_S = {
    "gemm": 0.014860, "2mm": 0.014677, "3mm": 0.022012,
    "syrk": 0.016804, "gemver": 0.025349, "atax": 0.017949,
    "bicg": 0.026299, "mvt": 0.006913, "gesummv": 0.020312,
    "jacobi-1d": 0.022907, "jacobi-2d": 0.062965, "trisolv": 0.005014,
    "floyd-warshall": 0.050477, "lu": 0.009220, "ludcmp": 0.016511,
    "correlation": 0.034634, "covariance": 0.022076,
}


@contextmanager
def _accounting_off():
    """Flip the array tier into speed mode for the enclosed timings."""
    prev = os.environ.get("REPRO_ACCOUNTING")
    os.environ["REPRO_ACCOUNTING"] = "off"
    try:
        yield
    finally:
        if prev is None:
            os.environ.pop("REPRO_ACCOUNTING", None)
        else:
            os.environ["REPRO_ACCOUNTING"] = prev


def _best_of(f, n=3):
    """Best-of-n wall time for a phase; returns (seconds, last result)."""
    best, result = float("inf"), None
    for _ in range(n):
        t0 = time.perf_counter()
        result = f()
        best = min(best, time.perf_counter() - t0)
    return best, result


def _assert_identical(workload, ref, got, backend):
    assert got.cycles == ref.cycles, f"{workload.name}: {backend} cycle drift"
    assert got.checksum == ref.checksum, (
        f"{workload.name}: {backend} checksum drift"
    )
    assert got.counters.as_dict() == ref.counters.as_dict(), (
        f"{workload.name}: {backend} counter drift"
    )


def measure_kernel(workload):
    t0 = time.perf_counter()
    module, stats = measure.build(workload, LEVEL, use_cache=False)
    t_build = time.perf_counter() - t0

    t_ref, ref = _best_of(
        lambda: measure.execute(module, workload, stats, backend="reference")
    )

    clear_compile_cache()
    t0 = time.perf_counter()
    for fn in module.functions.values():
        compile_function(fn)
    t_compile = time.perf_counter() - t0

    t_jit, got_jit = _best_of(
        lambda: measure.execute(module, workload, stats, backend="compiled")
    )
    _assert_identical(workload, ref, got_jit, "compiled")

    clear_fuse_cache()
    t0 = time.perf_counter()
    for fn in module.functions.values():
        fuse_function(fn)
    t_fuse = time.perf_counter() - t0

    t_fused, got_fused = _best_of(
        lambda: measure.execute(module, workload, stats, backend="fused")
    )
    _assert_identical(workload, ref, got_fused, "fused")

    clear_array_cache()
    t0 = time.perf_counter()
    for fn in module.functions.values():
        array_function(fn)
    t_array = time.perf_counter() - t0

    t_arr, got_arr = _best_of(
        lambda: measure.execute(module, workload, stats, backend="array")
    )
    _assert_identical(workload, ref, got_arr, "array")

    with _accounting_off():
        t_arr_speed, got_speed = _best_of(
            lambda: measure.execute(module, workload, stats, backend="array")
        )
    assert got_speed.checksum == ref.checksum, (
        f"{workload.name}: array-speed checksum drift"
    )

    def x(denom):
        return round(t_ref / denom, 3) if denom > 0 else float("inf")

    return {
        "kernel": workload.name,
        "build_s": round(t_build, 6),
        "compile_s": round(t_compile, 6),
        "fuse_s": round(t_fuse, 6),
        "array_s": round(t_array, 6),
        # build + per-backend translation: what a fresh process pays
        # before the first execute on each backend
        "setup_compiled_s": round(t_build + t_compile, 6),
        "setup_fused_s": round(t_build + t_fuse, 6),
        "setup_array_s": round(t_build + t_array, 6),
        "exec_reference_s": round(t_ref, 6),
        "exec_compiled_s": round(t_jit, 6),
        "exec_fused_s": round(t_fused, 6),
        "exec_array_s": round(t_arr, 6),
        "exec_array_speed_s": round(t_arr_speed, 6),
        "exec_speedup": x(t_jit),
        "exec_speedup_fused": x(t_fused),
        "exec_speedup_array": x(t_arr),
        "exec_speedup_array_speed": x(t_arr_speed),
        "fused_over_compiled": (
            round(t_jit / t_fused, 3) if t_fused > 0 else float("inf")
        ),
        "simulated_cycles": ref.cycles,
    }, ref.counters


def run_speed_bench(scale: int = SPEED_SCALE, runs: int = 3):
    """Speed phase: fused vs array-in-speed-mode on scaled-up kernels.

    Builds each kernel at ``SPEED_LEVEL`` with the polybench sizes
    scaled by ``scale``, runs the fused executor (exact accounting —
    it has no other mode) and the array executor with
    ``REPRO_ACCOUNTING=off`` on the *same* module, and demands checksum
    identity before recording the speedup.  The reference interpreter is
    deliberately absent: at these sizes it would take minutes per kernel
    and its bit-identity is already enforced by the exact phase.
    """
    measure.clear_build_cache()
    records = []
    with polybench.scaled(scale):
        sizes = {"N": polybench.N, "M": polybench.M, "L": polybench.L}
        for factory in polybench.ALL:
            w = factory()
            module, stats = measure.build(w, SPEED_LEVEL, use_cache=False)
            clear_fuse_cache()
            t_fused, got_fused = _best_of(
                lambda: measure.execute(module, w, stats, backend="fused"),
                n=runs,
            )
            clear_array_cache()
            with _accounting_off():
                t_arr, got_arr = _best_of(
                    lambda: measure.execute(
                        module, w, stats, backend="array"
                    ),
                    n=runs,
                )
            identical = got_arr.checksum == got_fused.checksum
            assert identical, f"{w.name}: speed-mode checksum drift"
            records.append({
                "kernel": w.name,
                "exec_fused_s": round(t_fused, 6),
                "exec_array_speed_s": round(t_arr, 6),
                "array_speed_over_fused": (
                    round(t_fused / t_arr, 3) if t_arr > 0 else float("inf")
                ),
                "checksum_identical": identical,
            })
    return {
        "level": SPEED_LEVEL,
        "scale": scale,
        "sizes": sizes,
        "accounting": "off",
        "kernels": records,
        "geomean_array_speed_over_fused": round(
            geomean([r["array_speed_over_fused"] for r in records]), 3
        ),
        "all_checksums_identical": all(
            r["checksum_identical"] for r in records
        ),
    }


def run_wallclock():
    measure.clear_build_cache()
    records = []
    total = Counters()
    for factory in polybench.ALL:
        rec, counters = measure_kernel(factory())
        records.append(rec)
        total.merge(counters)
    geo_jit = geomean([r["exec_speedup"] for r in records])
    geo_fused = geomean([r["exec_speedup_fused"] for r in records])
    geo_array = geomean([r["exec_speedup_array"] for r in records])
    geo_array_speed = geomean(
        [r["exec_speedup_array_speed"] for r in records]
    )
    geo_f_over_c = geomean([r["fused_over_compiled"] for r in records])
    speed = run_speed_bench()
    payload = {
        "level": LEVEL,
        "kernel_set": "fig16-polybench",
        "backends": {
            "reference": "tree-walking interpreter (repro.interp.interpreter)",
            "compiled": "closure-compiled executor (repro.interp.compile)",
            "fused": "superblock-fused executor (repro.interp.fuse)",
            "array": "batch-vectorized executor, exact analytic accounting "
                     "(repro.interp.array)",
            "array-speed": "batch-vectorized executor, accounting folded "
                           "away (REPRO_ACCOUNTING=off)",
        },
        "kernels": records,
        # per-backend geomean table: execute-phase speedup over reference
        "geomean_exec_speedup_by_backend": {
            "reference": 1.0,
            "compiled": round(geo_jit, 3),
            "fused": round(geo_fused, 3),
            "array": round(geo_array, 3),
            "array-speed": round(geo_array_speed, 3),
        },
        "geomean_exec_speedup": round(geo_jit, 3),
        "geomean_fused_over_compiled": round(geo_f_over_c, 3),
        "speed_mode": speed,
        "total_counters": total.as_dict(),
    }
    with open(JSON_PATH, "w") as f:
        json.dump(payload, f, indent=2)
        f.write("\n")
    return payload


def render(payload) -> str:
    rows = [
        (
            r["kernel"],
            r["exec_reference_s"] * 1e3, r["exec_compiled_s"] * 1e3,
            r["exec_fused_s"] * 1e3, r["exec_array_s"] * 1e3,
            r["exec_array_speed_s"] * 1e3,
            r["exec_speedup"], r["exec_speedup_fused"],
            r["exec_speedup_array"], r["exec_speedup_array_speed"],
        )
        for r in payload["kernels"]
    ]
    table = format_table(
        ["kernel", "ref ms", "jit ms", "fused ms", "arr ms", "arr-s ms",
         "jit x", "fused x", "arr x", "arr-s x"],
        rows,
    )
    setup_rows = [
        (
            r["kernel"], r["build_s"] * 1e3,
            r["setup_compiled_s"] * 1e3, r["setup_fused_s"] * 1e3,
            r["setup_array_s"] * 1e3,
        )
        for r in payload["kernels"]
    ]
    setup_table = format_table(
        ["kernel", "build ms", "setup jit ms", "setup fused ms",
         "setup arr ms"],
        setup_rows,
    )
    geo_table = backend_geomean_table(payload["geomean_exec_speedup_by_backend"])
    speed = payload["speed_mode"]
    speed_rows = [
        (
            r["kernel"], r["exec_fused_s"] * 1e3,
            r["exec_array_speed_s"] * 1e3, r["array_speed_over_fused"],
        )
        for r in speed["kernels"]
    ]
    speed_table = format_table(
        ["kernel", "fused ms", "array ms", "array x"], speed_rows,
    )
    profile = counters_report(
        payload["total_counters"], title="aggregate dynamic profile:", top=10
    )
    return (
        f"Execution-backend wall clock @ {payload['level']}\n{table}\n"
        f"per-backend setup totals (build + translate)\n{setup_table}\n"
        f"{geo_table}\n"
        f"fused over compiled: "
        f"{payload['geomean_fused_over_compiled']:.2f}x\n"
        f"Speed mode @ {speed['level']} x{speed['scale']} "
        f"(N={speed['sizes']['N']}, M={speed['sizes']['M']}, "
        f"L={speed['sizes']['L']}, accounting off)\n{speed_table}\n"
        f"array-speed over fused: "
        f"{speed['geomean_array_speed_over_fused']:.2f}x "
        f"(checksums identical: {speed['all_checksums_identical']})\n"
        f"{profile}\n[written to {JSON_PATH}]"
    )


# ---------------------------------------------------------------------------
# Build-side tier: cold pipeline vs persistent disk cache (BENCH_build.json)
# ---------------------------------------------------------------------------


def _exec_fingerprint(module, workload, stats):
    res = measure.execute(module, workload, stats)
    return res.cycles, res.checksum, res.counters.as_dict()


def run_build_bench(jobs: int = 2, runs: int = 5):
    """Time cold builds, cache stores, warm (disk-cache hit) builds, and
    a parallel batch-build pass; verify warm artifacts are bit-identical.

    Uses the existing ``REPRO_CACHE_DIR`` when the caller exported one
    (CI's warm second pass — the store phase then *hits* instead of
    storing), otherwise a private temporary directory.

    Three per-kernel timings:

    * ``build_cold_s``  — front end + pipeline, no caches (the number
      the incremental-analysis work speeds up);
    * ``store_s``       — one ``build(use_cache=True)`` against the disk
      cache: build + pickle + fused-source dump on a miss, a hit on a
      pre-warmed cache;
    * ``build_warm_s``  — disk-cache hit (in-memory LRU cleared each
      run, so the timed path is what a fresh process would pay).

    The module returned by the store phase *is* the cached artifact, so
    the warm copy is checked against it for an identical IR print and
    identical execution (cycles, checksum, counters).
    """
    import gc

    from repro.ir.printer import print_module
    from repro.perf.batch import BuildSpec, build_many

    # isolate from whatever ran before (the exec tier leaves large live
    # arrays behind): the cold-build timings must not pay another
    # phase's collection debt
    gc.collect()

    own_dir = os.environ.get("REPRO_CACHE_DIR", "").strip() == ""
    tmpdir = None
    if own_dir:
        tmpdir = tempfile.TemporaryDirectory(prefix="repro-bench-cache-")
        os.environ["REPRO_CACHE_DIR"] = tmpdir.name
    try:
        workloads = [f() for f in polybench.ALL]
        records = []
        # cold: front end + pipeline only, no caches of any kind (no
        # other work interleaved — executions would perturb the timing)
        for w in workloads:
            t_cold, _ = _best_of(
                lambda w=w: measure.build(w, LEVEL, use_cache=False), n=runs
            )
            records.append({"kernel": w.name, "build_cold_s": round(t_cold, 6)})
        # store: populate the cache; the returned module is (on a miss)
        # the very object that was pickled into the cache entry
        stored = {}
        for w, rec in zip(workloads, records):
            measure.clear_build_cache()
            t0 = time.perf_counter()
            module, stats = measure.build(w, LEVEL, use_cache=True)
            rec["store_s"] = round(time.perf_counter() - t0, 6)
            stored[w.name] = (
                print_module(module), _exec_fingerprint(module, w, stats)
            )
        # warm: every build served from the persistent cache
        for w, rec in zip(workloads, records):
            def hit(w=w):
                measure.clear_build_cache()
                return measure.build(w, LEVEL, use_cache=True)
            t_warm, (module, stats) = _best_of(hit, n=runs)
            ir, fp = stored[w.name]
            rec["build_warm_s"] = round(t_warm, 6)
            rec["warm_identical"] = (
                print_module(module) == ir
                and _exec_fingerprint(module, w, stats) == fp
            )
            base = BASELINE_BUILD_S[w.name]
            rec["baseline_s"] = base
            rec["speedup_cold"] = round(base / rec["build_cold_s"], 3)
            rec["speedup_warm"] = round(base / rec["build_warm_s"], 3)
        # parallel batch build (the `-j N` path): distinct cache keys
        # (vl=8) so the workers do real builds, not hits
        batch = [BuildSpec.of(w, LEVEL, vl=8) for w in workloads]
        t0 = time.perf_counter()
        build_many(batch, jobs=jobs)
        t_batch = time.perf_counter() - t0
        payload = {
            "level": LEVEL,
            "kernel_set": "fig16-polybench",
            "cache_dir_owned": own_dir,
            "kernels": records,
            "geomean_cold_speedup_vs_baseline": round(
                geomean([r["speedup_cold"] for r in records]), 3
            ),
            "geomean_warm_speedup_vs_baseline": round(
                geomean([r["speedup_warm"] for r in records]), 3
            ),
            "geomean_warm_over_cold": round(
                geomean(
                    [r["build_cold_s"] / r["build_warm_s"] for r in records]
                ), 3
            ),
            "all_warm_identical": all(r["warm_identical"] for r in records),
            "batch_jobs": jobs,
            "batch_kernels": len(batch),
            "batch_parallel_s": round(t_batch, 6),
        }
        with open(BUILD_JSON_PATH, "w") as f:
            json.dump(payload, f, indent=2)
            f.write("\n")
        return payload
    finally:
        if tmpdir is not None:
            os.environ["REPRO_CACHE_DIR"] = ""
            tmpdir.cleanup()


def render_build(payload) -> str:
    rows = [
        (
            r["kernel"], r["baseline_s"] * 1e3, r["build_cold_s"] * 1e3,
            r["store_s"] * 1e3, r["build_warm_s"] * 1e3,
            r["speedup_cold"], r["speedup_warm"],
        )
        for r in payload["kernels"]
    ]
    table = format_table(
        ["kernel", "baseline ms", "cold ms", "store ms", "warm ms",
         "cold x", "warm x"],
        rows,
    )
    return (
        f"Build wall clock @ {payload['level']}\n{table}\n"
        f"geomean cold speedup vs baseline: "
        f"{payload['geomean_cold_speedup_vs_baseline']:.2f}x\n"
        f"geomean warm (disk-cache) speedup: "
        f"{payload['geomean_warm_speedup_vs_baseline']:.2f}x\n"
        f"parallel batch (-j {payload['batch_jobs']}, "
        f"{payload['batch_kernels']} kernels): "
        f"{payload['batch_parallel_s'] * 1e3:.1f} ms\n"
        f"warm artifacts bit-identical: {payload['all_warm_identical']}\n"
        f"[written to {BUILD_JSON_PATH}]"
    )


# ---------------------------------------------------------------------------
# Fuzz-throughput tier: `fuzz run` sweep vs campaign engine (BENCH_fuzz.json)
# ---------------------------------------------------------------------------

FUZZ_JSON_PATH = os.path.join(REPO_ROOT, "BENCH_fuzz.json")
FUZZ_JOBS = 2


@contextmanager
def _no_cache_dir():
    """Run the enclosed phase with ``REPRO_CACHE_DIR`` unset.

    The baseline ``fuzz run`` sweep is timed the way users run it — no
    disk cache — and must not be perturbed by CI's exported warm cache;
    the campaign manages its own private cache directory either way.
    """
    prev = os.environ.pop("REPRO_CACHE_DIR", None)
    try:
        yield
    finally:
        if prev is not None:
            os.environ["REPRO_CACHE_DIR"] = prev


def run_fuzz_bench(seeds: int = 500, jobs: int = FUZZ_JOBS,
                   write: bool = True):
    """Time the campaign engine against the plain ``fuzz run`` sweep.

    Both sides get the identical seed mix (seeds ``0..seeds-1``, no
    planted bug) and the same worker count; the campaign runs with
    mutation off so it does strictly comparable work — the throughput
    win is warm persistent workers, content-hash dedup, and the tiered
    oracle (cheap screen for every seed, full matrix only for failures,
    novel coverage, and periodic audits).  Oracle soundness is part of
    the payload: the ``sweep`` section demands zero mismatches across
    every config either side ran.

    The full 500-seed tier runs from ``__main__`` (and CI) and writes
    ``BENCH_fuzz.json``; the pytest gate runs a bounded slice with
    ``write=False`` so it never clobbers the committed 500-seed record.
    """
    from types import SimpleNamespace

    from repro.fuzz.campaign import CampaignConfig, run_campaign
    from repro.fuzz.cli import _iter_reports

    with _no_cache_dir():
        args = SimpleNamespace(start=0, seeds=seeds, bug=None, full=False,
                               verify_each_pass=False, jobs=jobs)
        t0 = time.perf_counter()
        base_failures = 0
        base_configs = 0
        for _seed, ok, _m, configs_run, _f, _k, _s in _iter_reports(args):
            base_configs += configs_run
            if not ok:
                base_failures += 1
        base_s = time.perf_counter() - t0

        tmpdir = tempfile.TemporaryDirectory(prefix="repro-bench-fuzz-")
        try:
            cfg = CampaignConfig(seeds=seeds, mutate=False)
            summary = run_campaign(
                os.path.join(tmpdir.name, "campaign"), cfg, jobs=jobs)
        finally:
            tmpdir.cleanup()

    camp_s = summary.seconds
    dedup_rate = summary.dups / max(summary.tasks, 1)
    payload = {
        "jobs": jobs,
        "seed_mix": f"seeds 0..{seeds - 1}, no planted bug, mutation off "
                    f"(identical work on both sides)",
        "baseline_run": {
            "seeds": seeds,
            "seconds": round(base_s, 3),
            "seeds_per_sec": round(seeds / base_s, 3),
            "configs": base_configs,
            "configs_per_sec": round(base_configs / base_s, 3),
            "failures": base_failures,
        },
        "campaign": {
            "seeds": summary.seeds,
            "mutants": summary.mutants,
            "dups": summary.dups,
            "dedup_rate": round(dedup_rate, 4),
            "escalated": dict(sorted(summary.escalated.items())),
            "configs_screen": summary.configs_screen,
            "configs_full": summary.configs_full,
            "rounds": summary.rounds,
            "seconds": round(camp_s, 3),
            "seeds_per_sec": round(summary.seeds / camp_s, 3),
            "configs_per_sec": round(summary.configs / camp_s, 3),
            "failures": summary.failed,
        },
        "speedup_seeds_per_sec": round(
            (summary.seeds / camp_s) / (seeds / base_s), 3),
        "speedup_configs_per_sec": round(
            (summary.configs / camp_s) / (base_configs / base_s), 3),
        "sweep": {
            "seeds": seeds,
            "tasks": summary.tasks,
            "configs": base_configs + summary.configs,
            "mismatches": base_failures + summary.failed,
        },
    }
    if write:
        with open(FUZZ_JSON_PATH, "w") as f:
            json.dump(payload, f, indent=2)
            f.write("\n")
    return payload


def render_fuzz(payload) -> str:
    b, c = payload["baseline_run"], payload["campaign"]
    esc = ", ".join(f"{k}={v}" for k, v in c["escalated"].items()) or "none"
    rows = [
        ("fuzz run", b["seeds"], "-", b["configs"], b["seconds"],
         b["seeds_per_sec"], b["configs_per_sec"]),
        ("campaign", c["seeds"], c["dups"], c["configs_screen"]
         + c["configs_full"], c["seconds"], c["seeds_per_sec"],
         c["configs_per_sec"]),
    ]
    table = format_table(
        ["engine", "seeds", "dups", "configs", "sec", "seeds/s",
         "configs/s"], rows,
    )
    return (
        f"Fuzz throughput @ -j {payload['jobs']} "
        f"({payload['seed_mix']})\n{table}\n"
        f"campaign escalations: {esc} "
        f"(screen {c['configs_screen']} + full {c['configs_full']} configs)\n"
        f"seeds/sec speedup:   {payload['speedup_seeds_per_sec']:.2f}x\n"
        f"configs/sec speedup: {payload['speedup_configs_per_sec']:.2f}x\n"
        f"sweep: {payload['sweep']['seeds']} seeds, "
        f"{payload['sweep']['configs']} configs, "
        f"{payload['sweep']['mismatches']} mismatches\n"
        f"[written to {FUZZ_JSON_PATH}]"
    )


def run_dist_bench(seeds: int = 150, hosts_n: int = 2,
                   workers_per_host: int = 1, write: bool = True):
    """Distributed tier: N compile-service daemons vs one local pool.

    Both sides run the identical campaign (same seeds, mutation off) at
    the *same total worker count* — ``hosts_n * workers_per_host`` local
    pool workers on one side, that many daemon workers spread over
    ``hosts_n`` daemons on the other — so the speedup isolates what
    multi-host leasing buys (and costs).  Before any timing is
    reported, the two campaign trees are byte-compared (manifest,
    records, findings; the private caches and the distributed-only
    ``hosts.json`` pin block excluded): the distributed engine must be
    indistinguishable from the local one in everything but wall clock.

    ``write=True`` folds the result into ``BENCH_fuzz.json`` under
    ``"distributed"`` next to the single-host tiers.  Note the ≥1.8x
    floor in ``telemetry check`` needs ≥2 real cores — on a one-core
    box both sides serialize and the ratio honestly reports ~1x.
    """
    import subprocess
    import sys

    from repro.fuzz.campaign import CampaignConfig, run_campaign

    src_dir = os.path.dirname(os.path.dirname(os.path.abspath(
        __import__("repro").__file__)))

    def start_daemon(tmp: str, i: int):
        addr_file = os.path.join(tmp, f"daemon{i}.addr")
        env = dict(os.environ, REPRO_CACHE_DIR=os.path.join(tmp, f"cache{i}"))
        env["PYTHONPATH"] = src_dir + os.pathsep + env.get("PYTHONPATH", "")
        env.pop("REPRO_SERVICE_ADDR", None)
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.service", "serve", "--port", "0",
             "--workers", str(workers_per_host),
             "--store", os.path.join(tmp, f"store{i}"),
             "--addr-file", addr_file],
            env=env, stdout=subprocess.DEVNULL, stderr=subprocess.STDOUT,
        )
        for _ in range(200):
            if os.path.exists(addr_file):
                break
            time.sleep(0.05)
        else:
            proc.kill()
            raise RuntimeError(f"daemon {i} never wrote {addr_file}")
        with open(addr_file) as f:
            return proc, f.read().strip()

    def tree(root: str) -> dict:
        out = {}
        skip = {"hosts.json", "fuzz_telemetry.json"}
        for dirpath, dirnames, filenames in os.walk(root):
            dirnames[:] = [d for d in dirnames if d != "cache"]
            for name in sorted(filenames):
                if name in skip:
                    continue
                p = os.path.join(dirpath, name)
                with open(p, "rb") as f:
                    out[os.path.relpath(p, root)] = f.read()
        return out

    jobs = hosts_n * workers_per_host
    cfg = dict(seeds=seeds, mutate=False)
    daemons = []
    tmpdir = tempfile.TemporaryDirectory(prefix="repro-bench-dist-")
    try:
        tmp = tmpdir.name
        with _no_cache_dir():
            single = run_campaign(os.path.join(tmp, "single"),
                                  CampaignConfig(**cfg), jobs=jobs)
            for i in range(hosts_n):
                daemons.append(start_daemon(tmp, i))
            addrs = [a for _, a in daemons]
            dist = run_campaign(os.path.join(tmp, "dist"),
                                CampaignConfig(**cfg), hosts=addrs)
        t_single = tree(os.path.join(tmp, "single"))
        t_dist = tree(os.path.join(tmp, "dist"))
        identical = (t_single.keys() == t_dist.keys()
                     and all(t_single[k] == t_dist[k] for k in t_single))
        stats = dist.dist
    finally:
        for proc, _ in daemons:
            proc.kill()
        for proc, _ in daemons:
            proc.wait()
        tmpdir.cleanup()

    payload = {
        "hosts": hosts_n,
        "workers_per_host": workers_per_host,
        "total_workers": jobs,
        "seed_mix": f"seeds 0..{seeds - 1}, no planted bug, mutation off "
                    f"(identical work on both sides)",
        "single_host": {
            "seeds": single.seeds,
            "seconds": round(single.seconds, 3),
            "seeds_per_sec": round(single.seeds / single.seconds, 3),
        },
        "distributed": {
            "seeds": dist.seeds,
            "seconds": round(dist.seconds, 3),
            "seeds_per_sec": round(dist.seeds / dist.seconds, 3),
            "leases": stats["leases"],
            "releases": stats["releases"],
            "refs_shipped": stats["refs_shipped"],
            "local_fallback_batches": stats["local_batches"],
            "hosts_lost": stats["dead_hosts"],
        },
        "speedup_seeds_per_sec": round(single.seconds / dist.seconds, 3),
        "mismatches": single.failed + dist.failed,
        "lost_tasks": single.tasks - dist.tasks,
        "identical_to_single_host": identical,
    }
    if write:
        try:
            with open(FUZZ_JSON_PATH) as f:
                full = json.load(f)
        except (OSError, ValueError):
            full = {}
        full["distributed"] = payload
        with open(FUZZ_JSON_PATH, "w") as f:
            json.dump(full, f, indent=2)
            f.write("\n")
    return payload


def render_dist(payload) -> str:
    s, d = payload["single_host"], payload["distributed"]
    rows = [
        ("single-host", s["seeds"], s["seconds"], s["seeds_per_sec"]),
        (f"{payload['hosts']} daemons", d["seeds"], d["seconds"],
         d["seeds_per_sec"]),
    ]
    table = format_table(["engine", "seeds", "sec", "seeds/s"], rows)
    return (
        f"Distributed campaign @ {payload['total_workers']} total worker(s) "
        f"({payload['seed_mix']})\n{table}\n"
        f"leases: {d['leases']} ({d['releases']} re-leased, "
        f"{d['refs_shipped']} refs shipped, "
        f"{d['local_fallback_batches']} local fallback, "
        f"{d['hosts_lost']} host(s) lost)\n"
        f"speedup: {payload['speedup_seeds_per_sec']:.2f}x; "
        f"mismatches: {payload['mismatches']}; "
        f"lost tasks: {payload['lost_tasks']}; "
        f"byte-identical to single-host: "
        f"{payload['identical_to_single_host']}\n"
        f"[written to {FUZZ_JSON_PATH}]"
    )


def test_wallclock_fuzz_campaign_2x():
    """Bounded pytest gate: the full 500-seed tier (floor 3x) runs from
    ``__main__``/CI; at 100 seeds the screen/full mix is less favorable,
    so the floor here is 2x."""
    payload = run_fuzz_bench(seeds=100, write=False)
    print()
    print(render_fuzz(payload))
    assert payload["sweep"]["mismatches"] == 0, (
        "the fuzz sweep must be mismatch-free on HEAD"
    )
    assert payload["speedup_seeds_per_sec"] >= 2.0, (
        "campaign engine must push >=2x the seeds/sec of fuzz run at "
        f"equal -j, got {payload['speedup_seeds_per_sec']}x"
    )


def test_build_cold_2x_warm_10x():
    payload = run_build_bench()
    print()
    print(render_build(payload))
    assert payload["all_warm_identical"], (
        "disk-cache hits must reproduce the cold build bit-for-bit"
    )
    assert payload["geomean_cold_speedup_vs_baseline"] >= 2.0, (
        "cold builds must be >=2x faster than the pinned baseline, got "
        f"{payload['geomean_cold_speedup_vs_baseline']}x"
    )
    assert payload["geomean_warm_speedup_vs_baseline"] >= 10.0, (
        "disk-cache hits must be >=10x faster than the pinned baseline, "
        f"got {payload['geomean_warm_speedup_vs_baseline']}x"
    )


_PAYLOAD = None


def _wallclock_payload():
    """One full run shared by the pytest assertions below."""
    global _PAYLOAD
    if _PAYLOAD is None:
        _PAYLOAD = run_wallclock()
        print()
        print(render(_PAYLOAD))
    return _PAYLOAD


def test_wallclock_compiled_3x():
    payload = _wallclock_payload()
    assert payload["geomean_exec_speedup"] >= 3.0, (
        "compiled backend must execute >=3x faster than the reference "
        f"interpreter, got {payload['geomean_exec_speedup']}x"
    )
    assert payload["geomean_fused_over_compiled"] >= 2.0, (
        "fused backend must execute >=2x faster than the compiled "
        f"backend, got {payload['geomean_fused_over_compiled']}x"
    )


def test_wallclock_array_speed_3x():
    speed = _wallclock_payload()["speed_mode"]
    assert speed["all_checksums_identical"], (
        "speed mode must not change memory contents"
    )
    assert speed["geomean_array_speed_over_fused"] >= 3.0, (
        "array tier in speed mode must execute >=3x faster than the "
        "fused tier on the fig16-polybench set, got "
        f"{speed['geomean_array_speed_over_fused']}x"
    )


if __name__ == "__main__":
    print(render(run_wallclock()))
    print()
    print(render_build(run_build_bench()))
    print()
    print(render_fuzz(run_fuzz_bench()))
    print()
    print(render_dist(run_dist_bench()))
