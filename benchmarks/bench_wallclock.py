"""Wall-clock comparison of the execution backends on the Fig. 16 kernels.

Times each phase honestly (caches cleared, the same built module handed
to every executor):

* **build**      — front end + optimization pipeline (shared by backends)
* **compile**    — PSSA-to-closure translation (compiled backend)
* **fuse**       — PSSA-to-straight-line translation (fused backend)
* **exec ref**   — reference tree-walking interpreter
* **exec jit**   — closure-compiled executor
* **exec fused** — superblock-fused executor

and verifies on every kernel that all three backends return bit-identical
cycles, counters, and checksums before any timing is reported.  Results
go to ``BENCH_interp.json`` at the repo root: per-kernel phase timings, a
per-backend geomean table (each backend's execute-phase speedup over the
reference), and the aggregate dynamic-counter profile (including the
per-opcode breakdown) of the kernel set.

Run standalone (``python bench_wallclock.py``) or under pytest, where
the compiled ≥3x and fused ≥2x-over-compiled execute-phase speedups are
asserted.
"""

import json
import os
import time

from repro.interp import (
    clear_compile_cache,
    clear_fuse_cache,
    compile_function,
    fuse_function,
)
from repro.interp.interpreter import Counters
from repro.perf import measure
from repro.perf.report import (
    backend_geomean_table,
    counters_report,
    format_table,
    geomean,
)
from repro.workloads import polybench

LEVEL = "supervec+v"
REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
JSON_PATH = os.path.join(REPO_ROOT, "BENCH_interp.json")


def _best_of(f, n=3):
    """Best-of-n wall time for a phase; returns (seconds, last result)."""
    best, result = float("inf"), None
    for _ in range(n):
        t0 = time.perf_counter()
        result = f()
        best = min(best, time.perf_counter() - t0)
    return best, result


def _assert_identical(workload, ref, got, backend):
    assert got.cycles == ref.cycles, f"{workload.name}: {backend} cycle drift"
    assert got.checksum == ref.checksum, (
        f"{workload.name}: {backend} checksum drift"
    )
    assert got.counters.as_dict() == ref.counters.as_dict(), (
        f"{workload.name}: {backend} counter drift"
    )


def measure_kernel(workload):
    t0 = time.perf_counter()
    module, stats = measure.build(workload, LEVEL, use_cache=False)
    t_build = time.perf_counter() - t0

    t_ref, ref = _best_of(
        lambda: measure.execute(module, workload, stats, backend="reference")
    )

    clear_compile_cache()
    t0 = time.perf_counter()
    for fn in module.functions.values():
        compile_function(fn)
    t_compile = time.perf_counter() - t0

    t_jit, got_jit = _best_of(
        lambda: measure.execute(module, workload, stats, backend="compiled")
    )
    _assert_identical(workload, ref, got_jit, "compiled")

    clear_fuse_cache()
    t0 = time.perf_counter()
    for fn in module.functions.values():
        fuse_function(fn)
    t_fuse = time.perf_counter() - t0

    t_fused, got_fused = _best_of(
        lambda: measure.execute(module, workload, stats, backend="fused")
    )
    _assert_identical(workload, ref, got_fused, "fused")

    return {
        "kernel": workload.name,
        "build_s": round(t_build, 6),
        "compile_s": round(t_compile, 6),
        "fuse_s": round(t_fuse, 6),
        "exec_reference_s": round(t_ref, 6),
        "exec_compiled_s": round(t_jit, 6),
        "exec_fused_s": round(t_fused, 6),
        "exec_speedup": round(t_ref / t_jit, 3) if t_jit > 0 else float("inf"),
        "exec_speedup_fused": (
            round(t_ref / t_fused, 3) if t_fused > 0 else float("inf")
        ),
        "fused_over_compiled": (
            round(t_jit / t_fused, 3) if t_fused > 0 else float("inf")
        ),
        "simulated_cycles": ref.cycles,
    }, ref.counters


def run_wallclock():
    measure.clear_build_cache()
    records = []
    total = Counters()
    for factory in polybench.ALL:
        rec, counters = measure_kernel(factory())
        records.append(rec)
        total.merge(counters)
    geo_jit = geomean([r["exec_speedup"] for r in records])
    geo_fused = geomean([r["exec_speedup_fused"] for r in records])
    geo_f_over_c = geomean([r["fused_over_compiled"] for r in records])
    payload = {
        "level": LEVEL,
        "kernel_set": "fig16-polybench",
        "backends": {
            "reference": "tree-walking interpreter (repro.interp.interpreter)",
            "compiled": "closure-compiled executor (repro.interp.compile)",
            "fused": "superblock-fused executor (repro.interp.fuse)",
        },
        "kernels": records,
        # per-backend geomean table: execute-phase speedup over reference
        "geomean_exec_speedup_by_backend": {
            "reference": 1.0,
            "compiled": round(geo_jit, 3),
            "fused": round(geo_fused, 3),
        },
        "geomean_exec_speedup": round(geo_jit, 3),
        "geomean_fused_over_compiled": round(geo_f_over_c, 3),
        "total_counters": total.as_dict(),
    }
    with open(JSON_PATH, "w") as f:
        json.dump(payload, f, indent=2)
        f.write("\n")
    return payload


def render(payload) -> str:
    rows = [
        (
            r["kernel"], r["build_s"] * 1e3,
            r["compile_s"] * 1e3, r["fuse_s"] * 1e3,
            r["exec_reference_s"] * 1e3, r["exec_compiled_s"] * 1e3,
            r["exec_fused_s"] * 1e3,
            r["exec_speedup"], r["exec_speedup_fused"],
        )
        for r in payload["kernels"]
    ]
    table = format_table(
        ["kernel", "build ms", "compile ms", "fuse ms",
         "ref ms", "jit ms", "fused ms", "jit x", "fused x"],
        rows,
    )
    geo_table = backend_geomean_table(payload["geomean_exec_speedup_by_backend"])
    profile = counters_report(
        payload["total_counters"], title="aggregate dynamic profile:", top=10
    )
    return (
        f"Execution-backend wall clock @ {payload['level']}\n{table}\n"
        f"{geo_table}\n"
        f"fused over compiled: "
        f"{payload['geomean_fused_over_compiled']:.2f}x\n"
        f"{profile}\n[written to {JSON_PATH}]"
    )


def test_wallclock_compiled_3x():
    payload = run_wallclock()
    print()
    print(render(payload))
    assert payload["geomean_exec_speedup"] >= 3.0, (
        "compiled backend must execute >=3x faster than the reference "
        f"interpreter, got {payload['geomean_exec_speedup']}x"
    )
    assert payload["geomean_fused_over_compiled"] >= 2.0, (
        "fused backend must execute >=2x faster than the compiled "
        f"backend, got {payload['geomean_fused_over_compiled']}x"
    )


if __name__ == "__main__":
    print(render(run_wallclock()))
