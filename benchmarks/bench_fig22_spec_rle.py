"""Figure 22: redundant load elimination on the SPEC-2017-FP-like suite.

The paper's table reports, per benchmark: speedup (geomean 1.2%, max
6.4% on lbm_r), dynamic loads eliminated (geomean 4.8%), dynamic branch
increase (5.5%), extra instructions hoisted by LICM (6.4%) and deleted by
GVN (8.5%) downstream, and static code-size increase (2.3%).  SPEC
sources are licensed, so each benchmark is a synthetic kernel matching
that benchmark's redundant-load profile (see DESIGN.md); we reproduce
the row *shapes*: big wins where loads are redundant across checkable
writes, neutral-to-negative rows where checks buy nothing.
"""

from conftest import report

from repro.perf.measure import run_workload, verified_run
from repro.perf.report import geomean
from repro.workloads import speclike


def _run_suite():
    names, rows = [], {
        "speedup": [], "loads": [], "branches": [], "licm": [], "gvn": [],
        "size": [],
    }
    for factory in speclike.ALL:
        w = factory()
        base = run_workload(w, "O3-scalar", rle=False)
        opt = verified_run(w, "O3-scalar", reference=base, rle=True)
        names.append(w.name)
        rows["speedup"].append(base.cycles / opt.cycles)
        bl = max(base.counters.loads, 1)
        rows["loads"].append((base.counters.loads - opt.counters.loads) / bl * 100)
        bb = max(base.counters.branches, 1)
        rows["branches"].append((opt.counters.branches - base.counters.branches) / bb * 100)
        base_licm = base.pipeline_stats.licm_hoisted if base.pipeline_stats else 0
        opt_licm = opt.pipeline_stats.licm_hoisted if opt.pipeline_stats else 0
        rows["licm"].append(
            (opt_licm - base_licm) / max(base_licm, 1) * 100
        )
        base_gvn = base.pipeline_stats.gvn_deleted if base.pipeline_stats else 0
        opt_gvn = opt.pipeline_stats.gvn_deleted if opt.pipeline_stats else 0
        rows["gvn"].append((opt_gvn - base_gvn) / max(base_gvn, 1) * 100)
        rows["size"].append((opt.code_size - base.code_size) / max(base.code_size, 1) * 100)

    header = f"{'':34s}" + "".join(f"{n:>11s}" for n in names) + f"{'GeoMean':>10s}"
    lines = [
        "Figure 22 reproduction — versioned RLE on SPEC-2017-FP-like kernels",
        header,
    ]

    def fmt(label, vals, pct=True, geo=None):
        cells = "".join(f"{v:>10.1f}%" if pct else f"{v:>11.3f}" for v in vals)
        g = f"{geo:>9.3f}" if geo is not None else ""
        lines.append(f"{label:34s}{cells}{g}")

    fmt("Speedup (x)", rows["speedup"], pct=False, geo=geomean(rows["speedup"]))
    fmt("Loads eliminated", rows["loads"])
    fmt("Branches increase", rows["branches"])
    fmt("Extra instrs hoisted by LICM", rows["licm"])
    fmt("Extra instrs deleted by GVN", rows["gvn"])
    fmt("Code size increase", rows["size"])
    return "\n".join(lines), names, rows


def test_fig22_spec_rle(benchmark):
    text, names, rows = benchmark.pedantic(_run_suite, rounds=1, iterations=1)
    report("fig22_spec_rle", text)
    by = dict(zip(names, rows["speedup"]))
    # shape assertions mirroring the paper's table:
    assert by["lbm_r"] == max(by.values())        # lbm is the big winner
    assert by["lbm_r"] > 1.02
    assert abs(by["imagick_r"] - 1.0) < 1e-6      # nothing to do
    assert geomean(rows["speedup"]) > 1.0         # net positive geomean
    loads = dict(zip(names, rows["loads"]))
    assert loads["lbm_r"] == max(loads.values())  # most loads eliminated
    sizes = dict(zip(names, rows["size"]))
    assert sizes["lbm_r"] > 0                     # versioning grows code
