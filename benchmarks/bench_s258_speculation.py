"""The in-text s258 experiments (§V-A, Fig. 21).

1. **Biased data** — with >99% of ``a`` positive the paper reports the
   vectorized loop 2.0x faster than scalar; with TSVC's default data the
   run time is data-dependent and roughly neutral.  Our s258 gathers the
   conditionally-updated scalar, so we reproduce a consistent (data-
   independent) win plus the biased case staying at least as fast.
2. **Arrays as parameters** — the compiler must additionally prove the
   arrays distinct: a second level of versioning whose alias checks are
   hoisted out of the loop and amortized (the paper reports similar
   speedups to the global-array variant).  We assert the parameter
   variant still vectorizes, its checks are loop-invariant (dynamic
   check count stays O(1) per call, not O(n)), and its speedup is in the
   same ballpark as the global variant.
"""

from conftest import report

from repro.perf.measure import run_workload, verified_run
from repro.workloads import tsvc


def _run():
    lines = ["s258 speculation experiments (paper §V-A)"]

    default = tsvc.workloads()
    s258 = [w for w in default if w.name == "s258"][0]
    base = verified_run(s258, "O3-scalar", reference=run_workload(s258, "O0"))
    vec = verified_run(s258, "supervec+v", reference=base)
    sp_default = base.cycles / vec.cycles
    lines.append(f"s258 (default data)   speedup over scalar: {sp_default:5.2f}x")

    biased = tsvc.s258_biased()
    base_b = verified_run(biased, "O3-scalar", reference=run_workload(biased, "O0"))
    vec_b = verified_run(biased, "supervec+v", reference=base_b)
    sp_biased = base_b.cycles / vec_b.cycles
    lines.append(f"s258 (>99% positive)  speedup over scalar: {sp_biased:5.2f}x  (paper: 2.0x)")

    params = tsvc.s258_parameter_variant()
    base_p = verified_run(params, "O3-scalar", reference=run_workload(params, "O0"))
    vec_p = verified_run(params, "supervec+v", reference=base_p)
    sp_params = base_p.cycles / vec_p.cycles
    checks = vec_p.counters.checks
    backedges = max(vec_p.counters.backedges, 1)
    lines.append(
        f"s258 (parameter arrays, two-level) speedup: {sp_params:5.2f}x, "
        f"dynamic checks: {checks} over {backedges} loop iterations"
    )
    lines.append(
        "paper: similar speedups with two levels of versioning because the "
        "alias checks hoist out of the loop and amortize"
    )
    return "\n".join(lines), sp_default, sp_biased, sp_params, checks, backedges


def test_s258_speculation(benchmark):
    text, sp_d, sp_b, sp_p, checks, backedges = benchmark.pedantic(
        _run, rounds=1, iterations=1
    )
    report("s258_speculation", text)
    assert sp_p > 1.0, "parameter variant must still vectorize profitably"
    # hoisted checks: far fewer dynamic checks than loop iterations
    assert checks < backedges
    # two-level versioning lands near the global-array variant
    assert sp_p > 0.7 * sp_d
