"""Figure 16: PolyBench speedups, restrict enabled and disabled.

Paper series (speedup over LLVM -O3 *without* vectorization):
  * LLVM -O3 (loop + SLP vectorizers, loop versioning)
  * SuperVectorization (no versioning)
  * SuperVectorization + fine-grained versioning

Paper headline numbers: without restrict, SV+V is 1.65x over scalar and
1.50x over LLVM -O3; with restrict, 1.76x / 1.51x, and five kernels
(correlation, covariance, floyd-warshall, lu, ludcmp) vectorize only
with versioning.  We reproduce the series shape: who vectorizes what,
and the ordering SV+V >= SV >= scalar, with the versioning-only kernels
showing gains exclusively in the SV+V column.
"""

from conftest import report

from repro.perf.measure import run_workload, verified_run
from repro.perf.report import geomean
from repro.workloads import polybench

CONFIGS = [("O3", "LLVM-O3"), ("supervec", "SuperVec"), ("supervec+v", "SuperVec+V")]


def _run_suite(honor_restrict: bool) -> tuple[str, dict]:
    rows = []
    speedups: dict = {label: [] for _, label in CONFIGS}
    versioning_only_hits = []
    for factory in polybench.ALL:
        w = factory()
        base = run_workload(w, "O3-scalar", honor_restrict=honor_restrict)
        row = {"name": w.name}
        for level, label in CONFIGS:
            r = verified_run(w, level, reference=base, honor_restrict=honor_restrict)
            row[label] = base.cycles / r.cycles
            speedups[label].append(base.cycles / r.cycles)
        rows.append(row)
        if (
            w.name in polybench.VERSIONING_ONLY
            and row["SuperVec+V"] > max(row["LLVM-O3"], row["SuperVec"]) + 1e-9
        ):
            versioning_only_hits.append(w.name)
    lines = [
        f"Figure 16 reproduction — PolyBench speedup over -O3 scalar "
        f"(restrict {'ON' if honor_restrict else 'OFF'})",
        f"{'kernel':16s} {'LLVM-O3':>8s} {'SuperVec':>9s} {'SuperVec+V':>11s}",
    ]
    for row in rows:
        lines.append(
            f"{row['name']:16s} {row['LLVM-O3']:8.2f} {row['SuperVec']:9.2f} "
            f"{row['SuperVec+V']:11.2f}"
        )
    lines.append(
        f"{'geomean':16s} {geomean(speedups['LLVM-O3']):8.2f} "
        f"{geomean(speedups['SuperVec']):9.2f} {geomean(speedups['SuperVec+V']):11.2f}"
    )
    lines.append(
        "versioning-only wins (paper: correlation covariance floyd-warshall "
        f"lu ludcmp): {' '.join(versioning_only_hits) or '(none)'}"
    )
    return "\n".join(lines), speedups


def test_fig16_polybench(benchmark):
    outputs = []

    def run():
        for hr in (True, False):
            text, _ = _run_suite(hr)
            outputs.append(text)
        return outputs

    benchmark.pedantic(run, rounds=1, iterations=1)
    report("fig16_polybench", "\n\n".join(outputs))

    # shape assertions: versioning never loses, and it uniquely enables
    # the paper's five kernels under restrict
    _, sp = _run_suite(True)
    assert geomean(sp["SuperVec+V"]) >= geomean(sp["SuperVec"]) - 1e-9
    assert geomean(sp["SuperVec+V"]) > 1.0
