"""Shared helpers for the benchmark harness.

Each ``bench_*`` file regenerates one of the paper's tables/figures:
simulated-cycle speedups are printed as the paper-style rows/series and
also written to ``benchmarks/results/<name>.txt``.  pytest-benchmark
times the (deterministic) harness run itself; the numbers that matter are
the printed cycle ratios.
"""

import os

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def report(name: str, text: str) -> None:
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    with open(path, "w") as f:
        f.write(text + "\n")
    print()
    print(text)
    print(f"[written to {path}]")
