"""Shared helpers for the benchmark harness.

Each ``bench_*`` file regenerates one of the paper's tables/figures:
simulated-cycle speedups are printed as the paper-style rows/series and
also written to ``benchmarks/results/<name>.txt``.  pytest-benchmark
times the (deterministic) harness run itself; the numbers that matter are
the printed cycle ratios.

Benchmarks execute on the measurement harness's default backend — the
closure-compiled executor (see :mod:`repro.interp.compile`), which
charges cycles and counters bit-identical to the reference interpreter.
Set ``REPRO_BACKEND=reference`` to rerun every figure on the
tree-walking interpreter instead; the printed cycle numbers must not
change, only the wall-clock does.
"""

import os

from repro.perf import measure

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def pytest_configure(config):
    # honor an explicit backend request and start from cold caches so a
    # benchmark session measures what a fresh checkout would
    backend = os.environ.get("REPRO_BACKEND")
    if backend:
        measure.set_default_backend(backend)
    measure.clear_reference_cache()


def pytest_report_header(config):
    return f"repro execution backend: {measure.get_default_backend()}"


def report(name: str, text: str) -> None:
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    with open(path, "w") as f:
        f.write(text + "\n")
    print()
    print(text)
    print(f"[written to {path}]")
