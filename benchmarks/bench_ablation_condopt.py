"""Ablation: the §IV-A condition optimizations.

DESIGN.md calls out three design choices to ablate: redundant condition
elimination, coalescing, and promotion.  We take a may-alias kernel
whose packs need several per-lane intersects checks, version the same
pack with and without the optimizations, and compare static check count
and dynamic cycles.  Expected shape: RCE+coalescing collapse the per-lane
checks to one hull check per base pair, and promotion moves it out of
the loop, turning O(n) dynamic checks into O(1).
"""

from conftest import report

from repro.frontend import compile_c
from repro.interp import Interpreter
from repro.ir import Loop
from repro.opt import run_dce, run_simplify, unroll_innermost_loops
from repro.versioning import VersioningFramework
from repro.versioning.condopt import (
    coalesce_conditions,
    eliminate_redundant_conditions,
    optimize_plan,
)
from repro.versioning.plans import merge_plans

SRC = """
void kernel(double *a, double *b, double *c, int n) {
  for (int i = 0; i < n; i++) c[i] = a[i] * b[i] + 1.0;
}
"""


def _plan_for_pack(optimizations: str):
    m = compile_c(SRC)
    fn = m["kernel"]
    unroll_innermost_loops(fn, 4)
    run_simplify(fn)
    run_dce(fn)
    vf = VersioningFramework(fn)
    main = [l for l in fn.loops() if l.metadata.get("unroll_main")][0]
    stores = [i for i in main.items if i.opcode == "store"]
    plan = vf.infer_schedulability(stores)
    assert plan is not None and not plan.is_empty()
    raw_checks = len(plan.conditions)
    if optimizations == "none":
        pass
    elif optimizations == "rce":
        plan.conditions = eliminate_redundant_conditions(plan.conditions)
    elif optimizations == "rce+coalesce":
        plan.conditions = coalesce_conditions(
            eliminate_redundant_conditions(plan.conditions)
        )
    elif optimizations == "full":
        optimize_plan(plan, coalesce=True)
    vf.materialize([plan], optimize=False)
    interp = Interpreter(m)
    a = interp.memory.alloc(64)
    b = interp.memory.alloc(64)
    c = interp.memory.alloc(64)
    interp.memory.write_array(a, [1.0] * 64)
    interp.memory.write_array(b, [2.0] * 64)
    res = interp.run(fn, [a, b, c, 64])
    static_conds = len(plan.conditions) + len(plan.hoisted_conditions)
    return raw_checks, static_conds, res.counters.checks, res.cycles


def _run():
    lines = [
        "Ablation — §IV-A condition optimizations on a versioned pack",
        f"{'config':14s} {'static conds':>13s} {'dyn checks':>11s} {'cycles':>9s}",
    ]
    results = {}
    for cfg in ("none", "rce", "rce+coalesce", "full"):
        raw, static, dyn, cycles = _plan_for_pack(cfg)
        results[cfg] = (static, dyn, cycles)
        lines.append(f"{cfg:14s} {static:13d} {dyn:11d} {cycles:9.0f}")
    lines.append(f"(raw cut-set conditions before optimization: {raw})")
    return "\n".join(lines), results


def test_ablation_condopt(benchmark):
    text, results = benchmark.pedantic(_run, rounds=1, iterations=1)
    report("ablation_condopt", text)
    none_s, none_d, none_c = results["none"]
    rce_s, _, _ = results["rce"]
    co_s, _, _ = results["rce+coalesce"]
    full_s, full_d, full_c = results["full"]
    assert rce_s <= none_s        # RCE never adds conditions
    assert co_s <= rce_s          # coalescing merges further
    assert full_d < none_d        # promotion slashes dynamic checks
    assert full_c < none_c        # and that shows up in cycles
