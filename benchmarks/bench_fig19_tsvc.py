"""Figure 19: TSVC per-loop speedup over LLVM -O3 (loop versioning).

Paper headline: SuperVectorization is 1.09x (geomean) over LLVM -O3
without versioning and 1.17x with it; versioning enables thirteen more
loops.  With our subset we reproduce the shape: the versioned
configuration's geomean strictly exceeds the unversioned one, and the
extra wins come from the loops whose conflicts are loop-variant (s281,
s113, s131, ...), which whole-loop versioning cannot check.
"""

from conftest import report

from repro.perf.measure import run_workload, verified_run
from repro.perf.report import geomean
from repro.workloads import tsvc


def _run_suite():
    rows = []
    sv, svv = [], []
    extra = []
    for w in tsvc.workloads():
        base = verified_run(w, "O3", reference=run_workload(w, "O0"))
        r_sv = verified_run(w, "supervec", reference=base)
        r_svv = verified_run(w, "supervec+v", reference=base)
        s1 = base.cycles / r_sv.cycles
        s2 = base.cycles / r_svv.cycles
        sv.append(s1)
        svv.append(s2)
        rows.append((w.name, s1, s2))
        if s2 > s1 + 0.02:
            extra.append(w.name)
    lines = [
        "Figure 19 reproduction — TSVC speedup over LLVM -O3 (loop versioning)",
        f"{'loop':10s} {'SuperVec':>9s} {'SuperVec+V':>11s}",
    ]
    for name, s1, s2 in rows:
        marker = "  <- versioning win" if s2 > s1 + 0.02 else ""
        lines.append(f"{name:10s} {s1:9.2f} {s2:11.2f}{marker}")
    lines.append(f"{'geomean':10s} {geomean(sv):9.2f} {geomean(svv):11.2f}")
    lines.append(
        f"loops improved only by fine-grained versioning: {' '.join(extra)}"
        f"  (paper: thirteen across the full 151-loop suite)"
    )
    return "\n".join(lines), geomean(sv), geomean(svv), extra


def test_fig19_tsvc(benchmark):
    result = benchmark.pedantic(_run_suite, rounds=1, iterations=1)
    text, g_sv, g_svv, extra = result
    report("fig19_tsvc", text)
    # shape: versioning strictly improves the geomean and enables loops
    assert g_svv >= g_sv
    assert extra, "expected at least one versioning-only TSVC win"
    assert "s281" in extra or "s113" in extra or "s131" in extra
