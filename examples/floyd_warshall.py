"""Vectorizing floyd-warshall (paper §V-A, Figs. 17/18).

The in-place update on ``path`` defeats both static dependence analysis
and classic loop versioning (the conflict is loop-variant), so neither
plain SLP nor the LLVM-style baseline vectorizes it.  The fine-grained
framework checks the conflict per iteration group and executes the
vectorized code when it is absent — the Fig. 18 code shape.

Run:  python examples/floyd_warshall.py
"""

from repro.perf.measure import run_workload, verified_run
from repro.workloads import polybench


def main() -> None:
    w = polybench.floyd_warshall()
    print(f"kernel: {w.name}  (N = {polybench.N}, in-place path updates)\n")
    base = run_workload(w, "O3-scalar")
    print(f"{'configuration':22s} {'cycles':>10s} {'speedup':>8s} {'vector ops':>11s} {'checks':>7s}")
    print(f"{'-O3 scalar':22s} {base.cycles:10.0f} {1.0:8.2f} "
          f"{base.counters.vector_ops:11d} {base.counters.checks:7d}")
    for level, label in [("supervec", "SLP, no versioning"),
                         ("O3", "SLP + loop versioning"),
                         ("supervec+v", "SLP + fine-grained")]:
        r = verified_run(w, level, reference=base)
        print(f"{label:22s} {r.cycles:10.0f} {base.cycles / r.cycles:8.2f} "
              f"{r.counters.vector_ops:11d} {r.counters.checks:7d}")
    print("\nOnly the fine-grained configuration vectorizes: its checks run")
    print("inside the loop (per group of VL iterations), testing exactly the")
    print("path[i][j:j+VL] vs path[k][j:j+VL] conflict of the paper's Fig. 18.")


if __name__ == "__main__":
    main()
