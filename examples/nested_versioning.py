"""Nested (two-level) versioning on s258 with parameter arrays (§V-A).

With TSVC's arrays demoted to pointer parameters, speculating on the
``a[i] > 0`` guard requires hoisting the loads of ``a`` past the stores
to ``b`` and ``e`` — legal only if the arrays are distinct, which is a
*second* level of versioning.  The framework promotes those alias checks
out of the loop, so two levels cost O(1) dynamic checks per call.

Run:  python examples/nested_versioning.py
"""

from repro.perf.measure import run_workload, verified_run
from repro.workloads import tsvc


def main() -> None:
    for w, label in [
        (next(x for x in tsvc.workloads() if x.name == "s258"), "globals (one level)"),
        (tsvc.s258_parameter_variant(), "parameters (two levels)"),
    ]:
        base = run_workload(w, "O3-scalar")
        r = verified_run(w, "supervec+v", reference=base)
        print(f"s258 with {label:24s} speedup={base.cycles / r.cycles:5.2f}x  "
              f"dynamic checks={r.counters.checks:3d} over "
              f"{r.counters.backedges} iterations")
    print("\nThe parameter variant needs the extra alias level, yet its check")
    print("count stays far below the iteration count: condition promotion")
    print("(§IV-A) hoisted the intersects checks out of the loop, exactly the")
    print("amortization the paper reports for this experiment.")


if __name__ == "__main__":
    main()
