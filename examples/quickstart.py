"""Quickstart: the paper's running example, end to end.

Compiles Fig. 1, prints the predicated-SSA IR (Fig. 4), the dependence
conditions (Fig. 7), the inferred *nested* versioning plan (Fig. 12),
the materialized program (Fig. 15), and then executes both programs
under different aliasing scenarios to show they agree — while the
versioned one has made the two stores independent.

Run:  python examples/quickstart.py
"""

from repro.analysis import DependenceGraph
from repro.frontend import compile_c
from repro.interp import Interpreter
from repro.ir import print_function
from repro.versioning import VersioningFramework

SOURCE = """
extern void cold_func(void);
void f(double *X, double *Y) {
  Y[0] = 0.0;
  if (X[0] != 0.0) cold_func();
  Y[1] = 0.0;
}
"""


def run(module, x_aliases_y0: bool, x_value: float):
    calls = []
    interp = Interpreter(module, externals={"cold_func": lambda i, m, a: calls.append(1)})
    if x_aliases_y0:
        y = interp.memory.alloc(2)
        x = y
    else:
        x = interp.memory.alloc(1)
        y = interp.memory.alloc(2)
    interp.memory.store(x, x_value)
    res = interp.run(module["f"], [x, y])
    return interp.memory.read_array(y, 2), len(calls), res.counters.checks


def main() -> None:
    module = compile_c(SOURCE)
    fn = module["f"]

    print("=== predicated SSA (paper Fig. 4) ===")
    print(print_function(fn))

    print("\n=== dependence conditions (paper Fig. 7) ===")
    graph = DependenceGraph(fn)
    for edge in graph.all_edges():
        kind = "conditional " if edge.conditional else "unconditional"
        print(f"  {edge.src.display_name():14s} -> {edge.dst.display_name():14s}"
              f"  [{kind}] {edge.cond!r}")

    stores = [i for i in fn.instructions() if i.opcode == "store"]
    vf = VersioningFramework(fn)
    plan = vf.infer_for_items(stores)
    assert plan is not None
    print("\n=== inferred nested versioning plan (paper Fig. 12) ===")
    print(plan.describe())

    vf.materialize([plan])
    print("\n=== materialized program (paper Fig. 15) ===")
    print(print_function(fn))

    print("\n=== execution: versioned program vs the original ===")
    reference = compile_c(SOURCE)
    for aliases, xv in [(False, 0.0), (False, 5.0), (True, 5.0)]:
        ref = run(reference, aliases, xv)
        ver = run(module, aliases, xv)
        scenario = "X aliases &Y[0]" if aliases else "disjoint"
        print(f"  {scenario:16s} x={xv}:  Y={ver[0]}  cold_func calls={ver[1]} "
              f"checks={ver[2]}  (matches original: {ref[:2] == ver[:2]})")


if __name__ == "__main__":
    main()
