"""Redundant load elimination with versioning (paper §V-B).

A load of ``a[0]`` is repeated after a store through ``b`` that *might*
alias it.  Static analysis must keep both loads; the versioning
framework checks ``a != b`` once and the check-passing path keeps a
single load.  We run the optimized kernel with disjoint and with
aliased pointers to show both paths behave exactly like the original.

Run:  python examples/redundant_loads.py
"""

from repro.frontend import compile_c
from repro.interp import Interpreter
from repro.ir import print_function
from repro.rle import run_rle

SOURCE = """
double f(double *a, double *b) {
  double x = a[0];
  b[0] = x * 2.0;
  double y = a[0];
  b[1] = y * 3.0;
  return x + y;
}
"""


def run(module, aliased: bool):
    interp = Interpreter(module)
    if aliased:
        a = interp.memory.alloc(2)
        b = a  # the store b[0] really clobbers a[0]
    else:
        a = interp.memory.alloc(2)
        b = interp.memory.alloc(2)
    interp.memory.store(a, 5.0)
    res = interp.run(module["f"], [a, b])
    return res.return_value, res.counters.loads, res.counters.checks


def main() -> None:
    original = compile_c(SOURCE)
    optimized = compile_c(SOURCE)
    stats = run_rle(optimized["f"])
    print(f"RLE: {stats.groups_committed} group committed, "
          f"{stats.loads_removed} load removed, "
          f"{stats.plans_materialized} versioning plan materialized\n")
    print("=== optimized IR ===")
    print(print_function(optimized["f"]))
    print()
    for aliased in (False, True):
        ref = run(original, aliased)
        opt = run(optimized, aliased)
        label = "a == b (aliased)" if aliased else "a, b disjoint"
        print(f"{label:18s} original: value={ref[0]:6.1f} loads={ref[1]}   "
              f"optimized: value={opt[0]:6.1f} loads={opt[1]} checks={opt[2]}")
    print("\nDisjoint pointers: the check passes and one dynamic load")
    print("disappears. Aliased pointers: the check fails, the cloned loads")
    print("run in original order, and the result is still exact.")


if __name__ == "__main__":
    main()
