"""Tests for the batch-vectorized array tier (repro.interp.array).

The contract under test, beyond the backend-wide differential matrix in
test_exec_compiled: which loops the tier batches (``array_regions``),
that the runtime dispatch guard really falls back to the scalar arm on
overlapping views, that zero-trip / negative-stride / reduction loops
stay bit-identical, and that speed mode (``REPRO_ACCOUNTING=off``)
changes accounting but never memory contents.
"""

import pytest

from repro.frontend import compile_c
from repro.interp import ArrayExecutor, StepLimitExceeded, clear_array_cache
from repro.interp.array import array_function
from repro.perf import measure
from repro.perf.measure import AliasArg, ArrayArg, ScalarArg, Workload
from repro.workloads import polybench, tsvc

N = 64


def _workload(name, source, args, entry="kernel"):
    return Workload(name=name, source=source, args=args, entry=entry)


def _agree(workload, level="O3", vl=4, honor_restrict=True):
    """Build once; demand array == reference on every observable."""
    clear_array_cache()
    module, stats = measure.build(
        workload, level, honor_restrict=honor_restrict, vl=vl,
        use_cache=False,
    )
    ref = measure.execute(module, workload, stats, backend="reference")
    got = measure.execute(module, workload, stats, backend="array")
    where = f"{workload.name} @ {level} vl={vl}"
    assert got.return_value == ref.return_value, f"{where}: return drift"
    assert got.checksum == ref.checksum, f"{where}: checksum drift"
    assert got.cycles == ref.cycles, f"{where}: cycle drift"
    assert got.counters.as_dict() == ref.counters.as_dict(), (
        f"{where}: counter drift"
    )
    return module


def _regions(module, entry="kernel"):
    return array_function(module.functions[entry]).array_regions


# -- which loops get batched -------------------------------------------------


def test_streaming_loop_is_batched():
    w = _workload(
        "axpy",
        """
        void kernel(double* x, double* y, double a, int n) {
            for (int i = 0; i < n; i++) y[i] = y[i] + a * x[i];
        }
        """,
        [ArrayArg("x", N, init=lambda i: i * 0.5),
         ArrayArg("y", N, init=lambda i: 1.0 / (i + 1)),
         ScalarArg("a", 3.0), ScalarArg("n", N)],
    )
    module = _agree(w)
    assert len(_regions(module)) == 1


def test_loop_carried_recurrence_is_not_batched():
    """b[i] = b[i-1] + a[i] carries a flow dependence: the phase split is
    statically illegal, so no array region may exist for the loop."""
    w = _workload(
        "prefix",
        """
        void kernel(double* a, double* b, int n) {
            for (int i = 1; i < n; i++) b[i] = b[i-1] + a[i];
        }
        """,
        [ArrayArg("a", N, init=lambda i: i * 0.25),
         ArrayArg("b", N, init=lambda i: 1.0),
         ScalarArg("n", N)],
    )
    module = _agree(w)
    assert _regions(module) == ()


def test_constant_distance_dependence_is_not_batched():
    """The s1221 shape (distance-4 flow dependence on one array): the
    same-iteration alias disambiguation must not license the batch."""
    w = _workload(
        "dist4",
        """
        void kernel(double* a, double* b, int n) {
            for (int i = 4; i < n; i++) b[i] = b[i-4] + a[i];
        }
        """,
        [ArrayArg("a", N, init=lambda i: i * 0.125),
         ArrayArg("b", N, init=lambda i: float(i)),
         ScalarArg("n", N)],
    )
    module = _agree(w)
    assert _regions(module) == ()


# -- runtime dispatch: guard picks array vs scalar per run -------------------


ALIAS_SRC = """
void kernel(double* a, double* b, int n) {
    for (int i = 0; i < n; i++) b[i] = a[i] * 2.0 + 1.0;
}
"""


def _alias_workload(offset):
    return _workload(
        f"alias-off{offset}",
        ALIAS_SRC,
        [ArrayArg("a", N, init=lambda i: i * 0.5),
         AliasArg("b", "a", offset),
         ScalarArg("n", N - offset)],
    )


@pytest.mark.parametrize("offset", [1, 3], ids=lambda o: f"off{o}")
def test_overlapping_views_take_scalar_fallback(offset):
    """Distinct parameters, same storage, store running ahead of load (a
    flow dependence): the span-disjointness guard must fail at run time
    and the scalar arm must preserve the exact sequential semantics."""
    w = _alias_workload(offset)
    module = _agree(w, honor_restrict=False)
    # the loop itself is batchable -- only the runtime check says no
    assert len(_regions(module)) == 1


def test_anti_dependent_overlap_stays_on_fast_path():
    """Load pointer ahead of store pointer: the phase split (all loads,
    then all stores) preserves anti-dependences by construction, so the
    overlap is legal for the batch and must still be bit-identical."""
    w = _workload(
        "alias-anti",
        """
        void kernel(double* b, double* a, int n) {
            for (int i = 0; i < n; i++) b[i] = a[i] * 2.0 + 1.0;
        }
        """,
        [ArrayArg("b", N, init=lambda i: i * 0.5),
         AliasArg("a", "b", 2),
         ScalarArg("n", N - 2)],
    )
    module = _agree(w, honor_restrict=False)
    assert len(_regions(module)) == 1


def test_disjoint_views_keep_the_fast_path():
    """Same build, aliasing far enough apart: spans are disjoint, the
    guard passes, and the batched path must still be bit-identical."""
    w = _workload(
        "alias-disjoint",
        ALIAS_SRC,
        [ArrayArg("a", 2 * N, init=lambda i: i * 0.5),
         AliasArg("b", "a", N),
         ScalarArg("n", N)],
    )
    module = _agree(w, honor_restrict=False)
    assert len(_regions(module)) == 1


# -- loop shapes -------------------------------------------------------------


def test_zero_trip_loop():
    """n = 0: the entry guard skips the loop; the batched program must
    account for exactly the same (zero) iterations as the reference."""
    w = _workload(
        "zerotrip",
        """
        void kernel(double* x, double* y, int n) {
            for (int i = 0; i < n; i++) y[i] = x[i] + 1.0;
        }
        """,
        [ArrayArg("x", 8, init=lambda i: float(i)),
         ArrayArg("y", 8, init=lambda i: 0.0),
         ScalarArg("n", 0)],
    )
    module = _agree(w)
    assert len(_regions(module)) == 1


def test_negative_stride_loop():
    w = _workload(
        "reverse",
        """
        void kernel(double* x, double* y, int n) {
            for (int i = n - 1; i >= 0; i--) y[i] = x[n - 1 - i] * 0.5;
        }
        """,
        [ArrayArg("x", N, init=lambda i: i * 1.5),
         ArrayArg("y", N, init=lambda i: 0.0),
         ScalarArg("n", N)],
    )
    module = _agree(w)
    assert len(_regions(module)) == 1


@pytest.mark.parametrize("vl", [2, 4, 8], ids=lambda v: f"vl{v}")
def test_vectorized_levels_batch(vl):
    """Unroll-and-SLP'd loops advance the IV by VL per iteration; the
    tier must follow the widened stride at every vector length."""
    for w in polybench.workloads()[:4]:
        _agree(w, level="supervec+v", vl=vl)


# -- reductions and recurrences ----------------------------------------------


def test_sum_and_product_reductions():
    w = _workload(
        "sumprod",
        """
        double kernel(double* x, int n) {
            double s = 0.0;
            double p = 1.0;
            for (int i = 0; i < n; i++) {
                s = s + x[i];
                p = p * (1.0 + x[i] * 1e-3);
            }
            return s + p;
        }
        """,
        [ArrayArg("x", N, init=lambda i: (i % 7) * 0.3), ScalarArg("n", N)],
    )
    module = _agree(w)
    # unroll-and-SLP splits the loop in two (main + epilogue); both the
    # vector and the scalar accumulators must batch
    assert len(_regions(module)) >= 1


def test_min_max_reductions():
    w = _workload(
        "minmax",
        """
        double kernel(double* x, int n) {
            double lo = x[0];
            double hi = x[0];
            for (int i = 1; i < n; i++) {
                if (x[i] < lo) lo = x[i];
                if (x[i] > hi) hi = x[i];
            }
            return hi - lo;
        }
        """,
        [ArrayArg("x", N, init=lambda i: ((i * 37) % 19) - 9.0),
         ScalarArg("n", N)],
    )
    _agree(w)


def test_memory_cell_and_sub_reduction_kernels_agree():
    """mvt accumulates into a memory cell (``x[i] += A[i][j] * y[j]``),
    trisolv subtracts into a register accumulator, lu does both; all
    three must batch and stay bit-identical."""
    for name in ("mvt", "trisolv", "lu"):
        w = getattr(polybench, name)()
        module = _agree(w, level="O3-scalar")
        assert _regions(module), name


def test_cell_overlapping_sweep_takes_scalar_fallback():
    """A memory-cell reduction whose cell lies inside another access's
    sweep: the cell-disjointness guard must fail at run time and the
    scalar arm must preserve the sequential (self-feeding) semantics."""
    w = _workload(
        "cell-alias",
        """
        void kernel(double* x, double* y, int n) {
            for (int j = 0; j < n; j++) x[0] = x[0] + y[j];
        }
        """,
        [ArrayArg("x", N, init=lambda i: i * 0.75),
         AliasArg("y", "x", 0),
         ScalarArg("n", N)],
    )
    module = _agree(w, level="O3-scalar", honor_restrict=False)
    assert len(_regions(module)) == 1


def test_tsvc_reduction_kernels_agree():
    for name in ("s311", "s312", "s3110"):
        for w in tsvc.workloads():
            if w.name == name:
                _agree(w, level="supervec+v")


# -- exact vs speed mode -----------------------------------------------------


def _checksum(module, w, backend, **kwargs):
    return measure.execute(module, w, backend=backend, **kwargs).checksum


def test_speed_mode_same_memory_zero_accounting(monkeypatch):
    w = polybench.workloads()[0]
    module, stats = measure.build(w, "O3", use_cache=False)
    ref = measure.execute(module, w, stats, backend="reference")

    clear_array_cache()
    monkeypatch.setenv("REPRO_ACCOUNTING", "off")
    speed = measure.execute(module, w, stats, backend="array")
    assert speed.checksum == ref.checksum
    assert speed.cycles == 0  # accounting folded away entirely

    clear_array_cache()
    monkeypatch.delenv("REPRO_ACCOUNTING")
    exact = measure.execute(module, w, stats, backend="array")
    assert exact.checksum == ref.checksum
    assert exact.cycles == ref.cycles


def test_accounting_env_spellings(monkeypatch):
    for off in ("off", "0", "false", "no", "speed"):
        monkeypatch.setenv("REPRO_ACCOUNTING", off)
        assert ArrayExecutor().accounting is False
    for on in ("", "on", "exact", "1"):
        monkeypatch.setenv("REPRO_ACCOUNTING", on)
        assert ArrayExecutor().accounting is True
    monkeypatch.delenv("REPRO_ACCOUNTING")
    assert ArrayExecutor().accounting is True


def test_speed_mode_batches_non_integral_cost_loops():
    """Exact mode needs all-integral costs to fold analytically; speed
    mode has no such constraint and may batch regardless.  Whatever each
    mode decides, memory must match the reference."""
    w = polybench.workloads()[0]
    module, stats = measure.build(w, "supervec+v", use_cache=False)
    fn = module.functions[w.entry]
    clear_array_cache()
    exact = array_function(fn, accounting=True)
    speed = array_function(fn, accounting=False)
    assert set(exact.array_regions) <= set(speed.array_regions)


# -- step limit --------------------------------------------------------------


def test_exact_step_limit_counts_batched_iterations():
    """The fast path charges its trip count against max_steps before
    committing, so a batched loop trips the limit exactly like the
    scalar tiers."""
    src = """
    void kernel(double* x, int n) {
        for (int i = 0; i < n; i++) x[i] = x[i] + 1.0;
    }
    """
    module = compile_c(src, name="bounded")
    ex = ArrayExecutor(module, max_steps=10)
    base = ex.memory.alloc(32)
    with pytest.raises(StepLimitExceeded):
        ex.run(module.functions["kernel"], [base, 32])
