"""The campaign engine: scheduling, mutation, sharding, resume identity.

Covers the guarantees the campaign subsystem documents: deterministic
coverage-guided scheduling (same state always drains in the same order,
and survives a JSON round trip mid-drain), deterministic in-bounds
mutants, content-hash dedup that skips whole oracle matrices, the
screening tier agreeing with the full oracle on pass/fail, and the
headline resumability contract — a campaign killed at a round boundary
and resumed produces a directory bit-identical to an uninterrupted run,
even when resumed with a different worker count.
"""

import json
from types import SimpleNamespace

import pytest

from repro.frontend import compile_c
from repro.fuzz import check_kernel, generate_kernel
from repro.fuzz.campaign import Campaign, CampaignConfig, run_campaign, screen_kernel
from repro.fuzz.cli import main as fuzz_main
from repro.fuzz.schedule import (
    CoverageMap,
    Scheduler,
    Task,
    coverage_features,
    mutate_kernel,
)
from repro.fuzz.shard import (
    CampaignStateError,
    CampaignStore,
    content_hash,
    current_pins,
    shard_of,
)


# -- coverage features --------------------------------------------------------


def _remark(pass_name, kind, message):
    return SimpleNamespace(pass_name=pass_name, kind=kind, message=message)


def test_coverage_features_are_templates_not_instances():
    remarks = [
        _remark("slp", "vectorized", "packed {n} stores"),
        _remark("slp", "vectorized", "packed {n} stores"),  # dup collapses
        _remark("licm", "hoisted", "{inst} out of {loop}"),
    ]
    feats = coverage_features(remarks)
    assert feats == (
        "licm:hoisted:{inst} out of {loop}",
        "slp:vectorized:packed {n} stores",
    )


def test_coverage_map_observe_rarity_roundtrip():
    cm = CoverageMap()
    assert cm.observe(["a", "b"]) == ["a", "b"]  # both novel
    assert cm.observe(["a"]) == []
    assert cm.rarity(["a", "b"]) == 1  # b is the rarest
    assert cm.rarity([]) is None
    back = CoverageMap.from_json(json.loads(json.dumps(cm.to_json())))
    assert back.counts == cm.counts


# -- mutation -----------------------------------------------------------------


def test_mutants_are_deterministic_and_in_bounds():
    for seed in range(12):
        for variant in (1, 2):
            a = mutate_kernel(seed, variant)
            b = mutate_kernel(seed, variant)
            assert a.name == f"fz{seed:06d}m{variant:02d}"
            assert a.source == b.source
            assert a.bindings == b.bindings
            compile_c(a.source)  # parses
            a.validate()  # in bounds by construction


def test_mutants_actually_mutate():
    """Across a seed range, mutants differ from their base kernels."""
    changed = 0
    for seed in range(12):
        base = generate_kernel(seed)
        m = mutate_kernel(seed, 1)
        norm = m.source.replace(m.name, base.name)
        if norm != base.source or m.bindings != base.bindings:
            changed += 1
    assert changed >= 10  # the no-op fallback is the rare case


# -- scheduler ----------------------------------------------------------------


def test_scheduler_priority_classes_and_tie_order():
    s = Scheduler(0, 3)  # fresh seeds 0, 1, 2
    s.push_mutant(Task("mutant", 7, 1), rarity=2)
    s.push_mutant(Task("mutant", 9, 1), rarity=1)  # rarer parent first
    s.push_mutant(Task("mutant", 8, 1), rarity=1)  # ...then insertion order
    s.push_escalation(Task("full", 5, 0, "failure"))  # preempts everything
    keys = [t.key for t in s.next_batch(10)]
    assert keys == [
        "fz000005", "fz000009m01", "fz000008m01", "fz000007m01",
        "fz000000", "fz000001", "fz000002",
    ]
    assert s.pending() == 0
    assert s.next_batch(4) == []


def test_scheduler_json_roundtrip_mid_drain():
    a = Scheduler(0, 6)
    b = Scheduler(0, 6)
    for s in (a, b):
        s.push_mutant(Task("mutant", 3, 1), rarity=1)
        s.push_escalation(Task("full", 0, 0, "audit"))
    a.next_batch(2)  # drain partially...
    b.next_batch(2)
    b = Scheduler.from_json(json.loads(json.dumps(b.to_json())))  # ...persist
    assert [t.key for t in a.next_batch(10)] == \
        [t.key for t in b.next_batch(10)]
    assert a.pending() == b.pending() == 0


def test_task_key_encodes_variant():
    assert Task("seed", 12).key == "fz000012"
    assert Task("mutant", 12, 3).key == "fz000012m03"
    # a full escalation of a mutant keeps the mutant's key
    assert Task("full", 12, 3, "failure").key == "fz000012m03"
    t = Task.from_json(json.loads(json.dumps(Task("mutant", 5, 2).to_json())))
    assert t == Task("mutant", 5, 2)


# -- sharded store ------------------------------------------------------------


def test_shard_of_is_stable_and_bounded():
    for key in ("fz000000", "fz000012m01", "anything"):
        idx = shard_of(key, 16)
        assert 0 <= idx < 16
        assert shard_of(key, 16) == idx


def test_content_hash_normalizes_the_kernel_name():
    a = generate_kernel(5, name="fz000005")
    b = generate_kernel(5, name="completely_different")
    assert content_hash(a.name, a.source, a.bindings) == \
        content_hash(b.name, b.source, b.bindings)
    c = generate_kernel(6, name="fz000006")
    assert content_hash(a.name, a.source, a.bindings) != \
        content_hash(c.name, c.source, c.bindings)


def test_store_refuses_create_over_existing_campaign(tmp_path):
    store = CampaignStore(tmp_path / "c", num_shards=4)
    store.create({"pins": current_pins(), "campaign": {"num_shards": 4}})
    with pytest.raises(CampaignStateError, match="already holds"):
        CampaignStore(tmp_path / "c", num_shards=4).create({})


def test_store_load_refuses_pin_mismatch(tmp_path):
    store = CampaignStore(tmp_path / "c", num_shards=4)
    manifest = {"pins": current_pins(), "campaign": {"num_shards": 4}}
    store.create(manifest)
    bad = dict(manifest, pins=dict(current_pins(), generator_version=999))
    store.checkpoint(bad)
    with pytest.raises(CampaignStateError, match="generator_version"):
        CampaignStore(tmp_path / "c").load()


# -- screening tier -----------------------------------------------------------


def test_screen_agrees_with_full_oracle():
    """Clean on HEAD; catches the same planted bug the full matrix does."""
    spec = generate_kernel(0, name="fz000000")
    report, features = screen_kernel(spec)
    assert report.ok, "\n".join(str(m) for m in report.mismatches)
    assert features, "the supervec+v build must emit coverage remarks"
    # far cheaper than the full matrix: O0 + 4 backends + O3
    assert report.configs_run <= 7
    bad, _ = screen_kernel(spec, bug="drop-guard")
    assert not bad.ok
    assert check_kernel(spec, bug="drop-guard").ok == bad.ok


# -- the campaign engine ------------------------------------------------------

# small but real: screens, audits, escalations, mutants, and (under
# vec-swap-sub) a rare planted bug only vectorized subtractions trigger
_CFG = dict(seeds=10, bug="vec-swap-sub", batch=3, round_batches=2,
            mutants_per_parent=1, num_shards=4)


def _tree(root):
    return {
        p.relative_to(root).as_posix(): p.read_bytes()
        for p in root.rglob("*")
        if p.is_file() and "cache" not in p.relative_to(root).parts
    }


def test_campaign_kill_and_resume_is_bit_identical(tmp_path):
    """The headline resumability contract, including across -j changes."""
    sa = run_campaign(tmp_path / "A", CampaignConfig(**_CFG), jobs=1)
    # "kill" after one round (a checkpoint boundary), resume with a pool
    sb = run_campaign(tmp_path / "B", CampaignConfig(**_CFG), jobs=1,
                      max_rounds=1)
    assert sb.rounds < sa.rounds  # genuinely interrupted
    sb = run_campaign(tmp_path / "B", jobs=2, resume=True)
    assert sb.to_json() == sa.to_json()
    ta, tb = _tree(tmp_path / "A"), _tree(tmp_path / "B")
    assert set(ta) == set(tb)
    assert [k for k in sorted(ta) if ta[k] != tb[k]] == []
    # the rare bug was found and saved as a replayable finding
    assert sa.failed >= 1 and sa.findings
    manifest = json.loads((tmp_path / "A" / "manifest.json").read_text())
    assert manifest["done"] is True
    assert manifest["pins"] == current_pins()
    # findings carry location-independent repro commands
    entry = json.loads(
        (tmp_path / "A" / sorted(sa.findings)[0]).read_text())
    assert str(tmp_path) not in entry["repro"]
    assert "<campaign>/" in entry["repro"]


def test_campaign_resume_finished_is_a_noop(tmp_path):
    cfg = CampaignConfig(seeds=2, batch=2, round_batches=1, mutate=False,
                         num_shards=2)
    s1 = run_campaign(tmp_path / "c", cfg, jobs=1)
    s2 = run_campaign(tmp_path / "c", jobs=1, resume=True)
    assert s2.rounds == s1.rounds  # nothing pending, nothing re-run
    assert s2.to_json() == s1.to_json()


def test_campaign_dedup_skips_known_content(tmp_path):
    cfg = CampaignConfig(seeds=1, batch=1, round_batches=1, mutate=False,
                         audit_every=1000, num_shards=2)
    camp = Campaign.create(tmp_path / "c", cfg)
    k = generate_kernel(0, name="fz000000")
    camp.dedup[content_hash(k.name, k.source, k.bindings)] = "fz999999"
    camp.run(jobs=1)
    assert camp.summary.dups == 1
    assert camp.summary.configs == 0  # the whole matrix was skipped
    rec = camp.store.get_record("fz000000")
    assert rec == {"kind": "seed", "outcome": "dup", "dup_of": "fz999999"}


def test_campaign_cli_smoke_and_pin_refusal(tmp_path, capsys):
    d = tmp_path / "camp"
    rc = fuzz_main([
        "campaign", "--dir", str(d), "--seeds", "3", "--batch", "2",
        "--round-batches", "2", "--no-mutate", "-j", "1",
    ])
    assert rc == 0
    out = capsys.readouterr().out
    assert "campaign:" in out and "3 seeds" in out
    assert (d / "fuzz_telemetry.json").exists()
    # a pin drift makes resume refuse loudly instead of mis-replaying
    manifest = json.loads((d / "manifest.json").read_text())
    manifest["pins"]["artifact_format"] = -1
    (d / "manifest.json").write_text(json.dumps(manifest))
    assert fuzz_main(["campaign", "--resume", str(d)]) == 2
    assert "artifact_format" in capsys.readouterr().err
