"""Tests for memory locations, alias analysis, and the dependence graph."""

import pytest

from repro.analysis import (
    AliasAnalysis,
    AliasResult,
    DependenceGraph,
    IntersectCond,
    PredCond,
    add_noalias_group,
    mem_location,
    range_of,
)
from repro.frontend import compile_c
from repro.ir import (
    FLOAT,
    INT,
    PTR,
    Argument,
    Function,
    IRBuilder,
    Loop,
    Module,
    const_float,
    const_int,
)


def setup_fn(args):
    m = Module("t")
    fn = m.add_function(Function("f", list(args)))
    return m, fn, IRBuilder(fn)


class TestMemLoc:
    def test_base_and_offset(self):
        m, fn, b = setup_fn([Argument("p", PTR)])
        p = fn.args[0]
        ld = b.load(b.ptradd(p, const_int(3)))
        loc = mem_location(ld)
        assert loc.base is p and loc.offset.const == 3 and loc.size == 1

    def test_symbolic_offset(self):
        m, fn, b = setup_fn([Argument("p", PTR), Argument("i", INT)])
        p, i = fn.args
        ld = b.load(b.ptradd(p, b.mul(i, const_int(2))))
        loc = mem_location(ld)
        assert loc.base is p and loc.offset.coeff(i) == 2

    def test_vector_access_size(self):
        m, fn, b = setup_fn([Argument("p", PTR)])
        p = fn.args[0]
        v = b.vload(b.ptradd(p, const_int(0)), 4)
        assert mem_location(v).size == 4

    def test_call_has_no_location(self):
        m, fn, b = setup_fn([])
        call = b.call("ext")
        assert mem_location(call) is None

    def test_global_base(self):
        m = Module("t")
        g = m.add_global("G", 16)
        fn = m.add_function(Function("f", []))
        b = IRBuilder(fn)
        ld = b.load(b.ptradd(g, const_int(2)))
        assert mem_location(ld).base is g


class TestAlias:
    def _two_loads(self, off1, off2, same_base=True, restrict=False):
        args = [Argument("p", PTR, restrict=restrict), Argument("q", PTR, restrict=restrict)]
        m, fn, b = setup_fn(args)
        p, q = fn.args
        l1 = b.load(b.ptradd(p, const_int(off1)))
        base2 = p if same_base else q
        s2 = b.store(b.ptradd(base2, const_int(off2)), const_float(0.0))
        return l1, s2

    def test_same_base_disjoint(self):
        l1, s2 = self._two_loads(0, 1)
        assert AliasAnalysis().alias(l1, s2) == AliasResult.NO

    def test_same_base_same_offset(self):
        l1, s2 = self._two_loads(3, 3)
        assert AliasAnalysis().alias(l1, s2) == AliasResult.MUST

    def test_different_args_may_alias(self):
        l1, s2 = self._two_loads(0, 0, same_base=False)
        assert AliasAnalysis().alias(l1, s2) == AliasResult.MAY

    def test_restrict_args_noalias(self):
        l1, s2 = self._two_loads(0, 0, same_base=False, restrict=True)
        assert AliasAnalysis().alias(l1, s2) == AliasResult.NO

    def test_restrict_ignored_when_disabled(self):
        l1, s2 = self._two_loads(0, 0, same_base=False, restrict=True)
        aa = AliasAnalysis(honor_restrict=False)
        assert aa.alias(l1, s2) == AliasResult.MAY

    def test_distinct_globals_noalias(self):
        m = Module("t")
        a = m.add_global("A", 8)
        bg = m.add_global("B", 8)
        fn = m.add_function(Function("f", []))
        b = IRBuilder(fn)
        l1 = b.load(b.ptradd(a, const_int(0)))
        s2 = b.store(b.ptradd(bg, const_int(0)), const_float(1.0))
        assert AliasAnalysis().alias(l1, s2) == AliasResult.NO

    def test_distinct_allocas_noalias(self):
        m, fn, b = setup_fn([])
        b1 = b.alloca(8)
        b2 = b.alloca(8)
        l1 = b.load(b.ptradd(b1, const_int(0)))
        s2 = b.store(b.ptradd(b2, const_int(0)), const_float(1.0))
        assert AliasAnalysis().alias(l1, s2) == AliasResult.NO

    def test_noalias_group_overrides(self):
        l1, s2 = self._two_loads(0, 0, same_base=False)
        add_noalias_group(l1, 7)
        add_noalias_group(s2, 7)
        assert AliasAnalysis().alias(l1, s2) == AliasResult.NO

    def test_noalias_group_requires_shared_id(self):
        l1, s2 = self._two_loads(0, 0, same_base=False)
        add_noalias_group(l1, 7)
        add_noalias_group(s2, 8)
        assert AliasAnalysis().alias(l1, s2) == AliasResult.MAY

    def test_vector_ranges_overlap(self):
        m, fn, b = setup_fn([Argument("p", PTR)])
        p = fn.args[0]
        v = b.vload(b.ptradd(p, const_int(0)), 4)
        s = b.store(b.ptradd(p, const_int(3)), const_float(0.0))
        assert AliasAnalysis().alias(v, s) == AliasResult.MUST

    def test_vector_ranges_disjoint(self):
        m, fn, b = setup_fn([Argument("p", PTR)])
        p = fn.args[0]
        v = b.vload(b.ptradd(p, const_int(0)), 4)
        s = b.store(b.ptradd(p, const_int(4)), const_float(0.0))
        assert AliasAnalysis().alias(v, s) == AliasResult.NO


def fig1_function():
    """The paper's running example (Fig. 1 / Fig. 4)."""
    src = """
    extern void cold_func(void);
    void f(double *X, double *Y) {
      Y[0] = 0.0;
      if (X[0] != 0.0) cold_func();
      Y[1] = 0.0;
    }
    """
    m = compile_c(src)
    return m, m["f"]


def find(fn, opcode, nth=0):
    found = [i for i in fn.instructions() if i.opcode == opcode]
    return found[nth]


class TestDependenceGraphRunningExample:
    """The graph of Fig. 7, edge by edge."""

    def setup_method(self):
        self.m, self.fn = fig1_function()
        self.g = DependenceGraph(self.fn)
        self.store0 = find(self.fn, "store", 0)
        self.load = find(self.fn, "load", 0)
        self.cmp = find(self.fn, "cmp", 0)
        self.call = find(self.fn, "call", 0)
        self.store1 = find(self.fn, "store", 1)

    def test_load_depends_conditionally_on_store0(self):
        c = self.g.cond(self.load, self.store0)
        assert isinstance(c, IntersectCond)

    def test_cmp_depends_unconditionally_on_load(self):
        assert self.g.cond(self.cmp, self.load).is_true()

    def test_call_depends_unconditionally_on_cmp(self):
        assert self.g.cond(self.call, self.cmp).is_true()

    def test_call_depends_unconditionally_on_store0(self):
        # Fig 7 caption: the call's predicate is stronger, and the call
        # has no checkable location -> unconditional
        assert self.g.cond(self.call, self.store0).is_true()

    def test_store1_depends_on_call_via_predicate(self):
        c = self.g.cond(self.store1, self.call)
        assert isinstance(c, PredCond)
        assert list(c.pred.values()) == [self.cmp]

    def test_stores_mutually_independent_statically(self):
        assert not self.g.depends(self.store1, self.store0)

    def test_store1_conditional_on_load(self):
        c = self.g.cond(self.store1, self.load)
        assert isinstance(c, IntersectCond)

    def test_no_edge_to_later_items(self):
        assert not self.g.depends(self.store0, self.store1)
        assert not self.g.depends(self.load, self.cmp)


class TestDependenceGraphLoops:
    def test_loop_node_aggregates_memory(self):
        src = """
        void f(double *a, double *b, int n) {
          for (int i = 0; i < n; i++) a[i] = 1.0;
          for (int i = 0; i < n; i++) b[i] = a[i] + 1.0;
        }
        """
        m = compile_c(src)
        fn = m["f"]
        g = DependenceGraph(fn)
        loops = [it for it in fn.items if isinstance(it, Loop)]
        assert len(loops) == 2
        c = g.cond(loops[1], loops[0])
        # second loop reads a, first writes a: same base -> intersects after
        # promotion (or statically overlapping -> unconditional). Either way
        # there must be an edge.
        assert not c.is_false()

    def test_disjoint_loops_no_edge(self):
        src = """
        const int N = 8;
        double A[N];
        double B[N];
        void f() {
          for (int i = 0; i < N; i++) A[i] = 1.0;
          for (int i = 0; i < N; i++) B[i] = 2.0;
        }
        """
        m = compile_c(src)
        fn = m["f"]
        g = DependenceGraph(fn)
        loops = [it for it in fn.items if isinstance(it, Loop)]
        assert not g.depends(loops[1], loops[0])

    def test_may_alias_loops_conditional(self):
        src = """
        void f(double *a, double *b, int n) {
          for (int i = 0; i < n; i++) a[i] = 1.0;
          for (int i = 0; i < n; i++) b[i] = 2.0;
        }
        """
        m = compile_c(src)
        fn = m["f"]
        g = DependenceGraph(fn)
        loops = [it for it in fn.items if isinstance(it, Loop)]
        c = g.cond(loops[1], loops[0])
        assert isinstance(c, IntersectCond)

    def test_restrict_removes_loop_edge(self):
        src = """
        void f(double * restrict a, double * restrict b, int n) {
          for (int i = 0; i < n; i++) a[i] = 1.0;
          for (int i = 0; i < n; i++) b[i] = 2.0;
        }
        """
        m = compile_c(src)
        fn = m["f"]
        g = DependenceGraph(fn)
        loops = [it for it in fn.items if isinstance(it, Loop)]
        assert not g.depends(loops[1], loops[0])

    def test_eta_depends_on_loop(self):
        src = """
        double f(double *a, int n) {
          double s = 0.0;
          for (int i = 0; i < n; i++) s += a[i];
          return s;
        }
        """
        m = compile_c(src)
        fn = m["f"]
        g = DependenceGraph(fn)
        loop = [it for it in fn.items if isinstance(it, Loop)][0]
        eta = find(fn, "eta")
        assert g.cond(eta, loop).is_true()

    def test_unpromotable_becomes_unconditional(self):
        """Indirect index defeats promotion -> unconditional edge."""
        src = """
        void f(double *a, double *b, int *idx, int n) {
          for (int i = 0; i < n; i++) a[idx[i]] = 1.0;
          for (int i = 0; i < n; i++) b[i] = 2.0;
        }
        """
        m = compile_c(src)
        fn = m["f"]
        g = DependenceGraph(fn)
        loops = [it for it in fn.items if isinstance(it, Loop)]
        c = g.cond(loops[1], loops[0])
        assert c.is_true()


class TestSelectPhiConditions:
    def test_select_operand_condition(self):
        m, fn, b = setup_fn([Argument("p", PTR)])
        p = fn.args[0]
        x = b.load(b.ptradd(p, const_int(0)), name="x")
        y = b.load(b.ptradd(p, const_int(1)), name="y")
        c = b.cmp("gt", x, y, name="c")
        s = b.select(c, x, y)
        g = DependenceGraph(fn)
        cond_t = g.cond(s, x)
        # x is also an operand of c... the select's use of x through the
        # condition value path is via c (unconditional on c); direct arm use
        # of x yields a PredCond — combined they may merge. The edge to y
        # (false arm) must carry the negated predicate or be part of an Or.
        assert not cond_t.is_false()
        cond_c = g.cond(s, c)
        assert cond_c.is_true()

    def test_phi_operand_condition(self):
        src = """
        double f(double *a, double x) {
          double r = 1.0;
          if (x > 0.0) { r = a[0]; }
          return r;
        }
        """
        m = compile_c(src)
        fn = m["f"]
        g = DependenceGraph(fn)
        phi = find(fn, "phi")
        load = find(fn, "load")
        c = g.cond(phi, load)
        assert isinstance(c, PredCond)
