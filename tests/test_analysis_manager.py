"""Tests for the AnalysisManager: caching, preserved-analyses
invalidation, and the stale-cache hazard that makes invalidation
mandatory for passes that mutate memory instructions."""

from repro.analysis import ALIAS, DEPGRAPH, AnalysisManager
from repro.ir import (
    PTR,
    Argument,
    Function,
    IRBuilder,
    Module,
    const_float,
    const_int,
)
from repro.pipeline.pipelines import PASS_PRESERVES


def setup_fn(args):
    m = Module("t")
    fn = m.add_function(Function("f", list(args)))
    return m, fn, IRBuilder(fn)


class TestCaching:
    def test_depgraph_cached_by_identity(self):
        m, fn, b = setup_fn([Argument("p", PTR)])
        p = fn.args[0]
        b.store(b.ptradd(p, const_int(0)), const_float(1.0))
        am = AnalysisManager()
        assert am.depgraph(fn) is am.depgraph(fn)

    def test_depgraph_revalidated_on_item_list_change(self):
        m, fn, b = setup_fn([Argument("p", PTR)])
        p = fn.args[0]
        b.store(b.ptradd(p, const_int(0)), const_float(1.0))
        am = AnalysisManager()
        g1 = am.depgraph(fn)
        # structural change: the item list no longer matches the snapshot
        b.store(b.ptradd(p, const_int(4)), const_float(2.0))
        g2 = am.depgraph(fn)
        assert g2 is not g1
        assert len(g2.items) == len(fn.items)

    def test_distinct_assume_sets_distinct_graphs(self):
        m, fn, b = setup_fn([Argument("p", PTR)])
        p = fn.args[0]
        s1 = b.store(b.ptradd(p, const_int(0)), const_float(1.0))
        s2 = b.store(b.ptradd(p, const_int(0)), const_float(2.0))
        am = AnalysisManager()
        g_plain = am.depgraph(fn)
        g_assumed = am.depgraph(fn, assume_independent={(id(s2), id(s1))})
        assert g_plain is not g_assumed
        assert g_plain.depends(s2, s1)
        assert not g_assumed.depends(s2, s1)
        # each key caches independently
        assert am.depgraph(fn) is g_plain

    def test_alias_shared_and_honors_restrict(self):
        am = AnalysisManager(honor_restrict=False)
        assert am.alias() is am.alias()
        assert am.alias().honor_restrict is False


class TestInvalidation:
    def test_mutated_memory_instruction_needs_invalidation(self):
        """The satellite regression: a pass that redirects a memory
        instruction *in place* (same item list, new address) MUST
        invalidate the depgraph — revalidation alone cannot see the
        mutation, so stale reuse would miss the new dependence."""
        m, fn, b = setup_fn([Argument("p", PTR)])
        p = fn.args[0]
        a0 = b.ptradd(p, const_int(0))
        a8 = b.ptradd(p, const_int(8))
        s1 = b.store(a0, const_float(1.0))
        s2 = b.store(a8, const_float(2.0))

        am = AnalysisManager()
        g = am.depgraph(fn)
        assert not g.depends(s2, s1)  # p+8 vs p+0: provably disjoint

        # an in-place mutation a (buggy) pass might make: retarget the
        # second store at the first store's slot
        s2.set_operand(0, a0)

        # the item list is unchanged, so the cache CANNOT tell — stale
        # reuse silently reports independence.  This is the wrong answer
        # a pass skipping invalidation would act on.
        stale = am.depgraph(fn)
        assert stale is g
        assert not stale.depends(s2, s1)

        # the pass contract: after mutating memory instructions,
        # invalidate (alias may be preserved; the graph may not)
        am.invalidate(fn, preserved=frozenset({ALIAS}))
        fresh = am.depgraph(fn)
        assert fresh is not g
        assert fresh.depends(s2, s1)
        assert not fresh.cond(s2, s1).is_false()

    def test_preserving_depgraph_keeps_it(self):
        m, fn, b = setup_fn([Argument("p", PTR)])
        p = fn.args[0]
        b.store(b.ptradd(p, const_int(0)), const_float(1.0))
        am = AnalysisManager()
        g = am.depgraph(fn)
        am.invalidate(fn, preserved=frozenset({ALIAS, DEPGRAPH}))
        assert am.depgraph(fn) is g

    def test_alias_dropped_when_not_preserved(self):
        am = AnalysisManager()
        a = am.alias()
        am.invalidate(preserved=frozenset({DEPGRAPH}))
        assert am.alias() is not a

    def test_alias_survives_when_preserved(self):
        am = AnalysisManager()
        a = am.alias()
        am.invalidate(preserved=frozenset({ALIAS}))
        assert am.alias() is a

    def test_pipeline_preserved_sets_never_keep_depgraph(self):
        # every mutating pass in the pipeline must drop the depgraph;
        # only materialization additionally drops alias facts
        for name, preserved in PASS_PRESERVES.items():
            assert DEPGRAPH not in preserved, name
        assert PASS_PRESERVES["slp"] == frozenset()


class TestCleanupRoundSkipping:
    SRC = """
    void k(double* restrict a, double* restrict b, int n) {
        for (int i = 0; i < n; i = i + 1) {
            double t = b[0] * 2.0;
            a[i] = a[i] + t + b[0] * 2.0;
        }
    }
    """

    def test_stats_and_ir_identical_with_and_without_skips(self):
        """Satellite: clean-round skipping (an analysis-cache hit) must
        leave PipelineStats exactly as a full run would — same keys,
        same per-function sums — and of course the same IR."""
        from repro.diag.context import collect
        from repro.frontend import compile_c
        from repro.ir.printer import print_module
        from repro.pipeline.pipelines import optimize

        m_skip = compile_c(self.SRC, name="k")
        s_skip = optimize(m_skip, "O3")  # rounds skipped once clean
        with collect():  # diagnostics on: every round really runs
            m_full = compile_c(self.SRC, name="k")
            s_full = optimize(m_full, "O3")
        assert s_skip.gvn == s_full.gvn
        assert s_skip.licm == s_full.licm
        assert set(s_skip.gvn) == {"k"}  # keys materialized either way

        # the two compiles draw fresh global value ids, so compare
        # alpha-renamed prints: vids replaced by first-appearance order
        def norm(module):
            import re

            # collapse the padding too: the printer aligns the predicate
            # column on vid width, which alpha-renaming changes
            text = re.sub(r" +", " ", print_module(module))
            names: dict = {}
            return re.sub(
                r"\bv\d+\b",
                lambda m: names.setdefault(m.group(), f"x{len(names)}"),
                text,
            )

        assert norm(m_skip) == norm(m_full)


class TestCleanRounds:
    def test_epoch_bumps_and_clean_mark(self):
        m, fn, _ = setup_fn([])
        am = AnalysisManager()
        assert not am.is_clean(fn)
        am.mark_clean(fn)
        assert am.is_clean(fn)
        am.invalidate(fn)
        assert not am.is_clean(fn)
        assert am.epoch(fn) == 1

    def test_invalidate_all_clears_every_mark(self):
        m1, f1, _ = setup_fn([])
        m2, f2, _ = setup_fn([])
        am = AnalysisManager()
        am.invalidate(f1)
        am.mark_clean(f1)
        am.mark_clean(f2)
        am.invalidate()
        assert not am.is_clean(f1)
        assert not am.is_clean(f2)
