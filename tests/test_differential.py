"""Differential testing: generated kernels × pipelines × backends.

The kernels come from :mod:`repro.fuzz.generator` — seed-deterministic
structured programs with nested/triangular loops, overlapping array
views, reductions, recurrences, conditionals, restrict toggles, and
int/float mixes (far beyond the 11 fixed templates this file used to
hold).  Each kernel runs through :func:`repro.fuzz.oracle.check_kernel`,
which demands that every optimization level × backend × VL × restrict ×
RLE configuration reproduce the unoptimized reference exactly — and that
the two execution backends agree bit-for-bit on cycles and counters at a
fixed configuration.  This is the repo's strongest guard: the versioning
framework's whole job is to keep the overlapping case correct while
speeding up the disjoint one.

A small fixed-seed Hypothesis smoke remains so shrinking still works on
the seed space itself; the deep sweep lives in the fuzz CLI
(``python -m repro.fuzz run``) and CI runs it with ``--seeds 100``.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fuzz import check_kernel, default_configs, generate_kernel
from repro.fuzz.oracle import Config

# Every seed here ran clean on a 200-seed sweep; keep the list spread
# over the feature space (see test_fuzz.py for coverage assertions).
FIXED_SEEDS = list(range(16))


@pytest.mark.parametrize("seed", FIXED_SEEDS)
def test_generated_kernel_all_pipelines(seed):
    kernel = generate_kernel(seed, name=f"fz{seed:06d}")
    report = check_kernel(kernel)
    assert report.ok, "\n".join(str(m) for m in report.mismatches)


def test_default_configs_cover_the_matrix():
    cfgs = default_configs(has_restrict=True)
    assert {c.level for c in cfgs} >= {
        "O3-scalar", "O3", "supervec", "supervec+v"
    }
    assert {c.vl for c in cfgs} == {2, 4, 8}
    assert any(c.rle for c in cfgs)
    assert any(not c.honor_restrict for c in cfgs)
    # restrict-off only exists for kernels that use restrict
    assert all(c.honor_restrict for c in default_configs(False))


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=63))
def test_random_seed_smoke(seed):
    """Hypothesis smoke over the seed space at two pipeline points."""
    kernel = generate_kernel(seed, name=f"fz{seed:06d}")
    report = check_kernel(
        kernel,
        configs=[Config("O3"), Config("supervec+v")],
        cross_backend=False,
    )
    assert report.ok, "\n".join(str(m) for m in report.mismatches)
