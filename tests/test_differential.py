"""Differential testing: random kernels × pipelines × aliasing.

Hypothesis generates small structured kernels (loops over arrays with
arithmetic, conditionals, in-place updates, scalar recurrences), and we
check every optimization pipeline — including versioned SLP and RLE —
produces memory/return results identical to the unoptimized build, under
both disjoint and *overlapping* array arguments.  This is the repo's
strongest guard: the versioning framework's whole job is to keep the
overlapping case correct while speeding up the disjoint one.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.frontend import compile_c
from repro.interp import Interpreter
from repro.opt import run_dce, run_gvn, run_licm, run_simplify
from repro.rle import run_rle
from repro.vectorizer import VectorizeConfig, vectorize_function

N = 16

_STMT_TEMPLATES = [
    "a[i] = b[i] + {c1};",
    "a[i] = a[i] * {c1} + b[i];",
    "b[i] = a[i] - b[i] * {c2};",
    "a[i] = b[{n1}-i-1] * {c1};",
    "a[i] = a[{n1}-i-1] + b[i];",
    "b[i] = a[i] + a[i] * {c2};",
    "s = s + a[i] * {c1};",
    "if (a[i] > {c2}) {{ b[i] = b[i] + {c1}; }}",
    "if (b[i] > 0.0) {{ s = a[i] * {c2}; }}",
    "a[i] = a[i] + s;",
    "b[i] = a[0] + {c1};",
]


def _gen_source(stmt_idxs, c1, c2, second_loop_idxs):
    body = "\n        ".join(
        _STMT_TEMPLATES[k].format(c1=c1, c2=c2, n1=N) for k in stmt_idxs
    )
    body2 = "\n        ".join(
        _STMT_TEMPLATES[k].format(c1=c2, c2=c1, n1=N) for k in second_loop_idxs
    )
    loops = f"""
      for (int i = 0; i < n; i++) {{
        {body}
      }}
    """
    if second_loop_idxs:
        loops += f"""
      for (int i = 0; i < n; i++) {{
        {body2}
      }}
    """
    return f"""
    double kernel(double *a, double *b, int n) {{
      double s = 0.0;
      {loops}
      return s;
    }}
    """


def _run(module, overlap: int, n: int):
    interp = Interpreter(module)
    if overlap:
        base = interp.memory.alloc(2 * N + overlap)
        a, b = base, base + overlap
        span = 2 * N + overlap
    else:
        a = interp.memory.alloc(N)
        b = interp.memory.alloc(N)
        base, span = a, N  # checks read both below
    init = [((i * 7) % 11) / 11.0 + 0.25 for i in range(2 * N + 8)]
    if overlap:
        interp.memory.write_array(base, init[: 2 * N + overlap])
    else:
        interp.memory.write_array(a, init[:N])
        interp.memory.write_array(b, init[N : 2 * N])
    res = interp.run(module["kernel"], [a, b, n])
    mem = interp.memory.read_array(a, N) + interp.memory.read_array(b, N)
    return res.return_value, mem


def _assert_equivalent(src, transform, overlap, n):
    ref = compile_c(src)
    opt = compile_c(src)
    transform(opt["kernel"])
    r_ref = _run(ref, overlap, n)
    r_opt = _run(opt, overlap, n)
    assert r_ref[0] == pytest.approx(r_opt[0], rel=1e-9, abs=1e-12)
    for x, y in zip(r_ref[1], r_opt[1]):
        assert x == pytest.approx(y, rel=1e-9, abs=1e-12)


@settings(max_examples=40, deadline=None)
@given(
    stmts=st.lists(st.integers(0, len(_STMT_TEMPLATES) - 1), min_size=1, max_size=4),
    stmts2=st.lists(st.integers(0, len(_STMT_TEMPLATES) - 1), max_size=3),
    c1=st.sampled_from([0.5, 1.0, 2.0, -1.5]),
    c2=st.sampled_from([0.25, -0.5, 3.0]),
    overlap=st.sampled_from([0, 1, 3, N]),
    n=st.sampled_from([0, 1, 5, N]),
    mode=st.sampled_from(["fine", "loop", "none"]),
)
def test_random_kernel_slp(stmts, stmts2, c1, c2, overlap, n, mode):
    src = _gen_source(stmts, c1, c2, stmts2)

    def transform(fn):
        vectorize_function(fn, VectorizeConfig(mode=mode))

    _assert_equivalent(src, transform, overlap, n)


@settings(max_examples=25, deadline=None)
@given(
    stmts=st.lists(st.integers(0, len(_STMT_TEMPLATES) - 1), min_size=1, max_size=4),
    c1=st.sampled_from([0.5, 2.0]),
    c2=st.sampled_from([0.25, -0.5]),
    overlap=st.sampled_from([0, 1, N]),
    n=st.sampled_from([0, 3, N]),
)
def test_random_kernel_rle(stmts, c1, c2, overlap, n):
    src = _gen_source(stmts, c1, c2, [])
    _assert_equivalent(src, lambda fn: run_rle(fn), overlap, n)


@settings(max_examples=25, deadline=None)
@given(
    stmts=st.lists(st.integers(0, len(_STMT_TEMPLATES) - 1), min_size=1, max_size=5),
    c1=st.sampled_from([0.5, 2.0]),
    c2=st.sampled_from([0.25, 3.0]),
    overlap=st.sampled_from([0, 2]),
    n=st.sampled_from([1, N]),
)
def test_random_kernel_scalar_opts(stmts, c1, c2, overlap, n):
    src = _gen_source(stmts, c1, c2, [])

    def transform(fn):
        run_simplify(fn)
        run_gvn(fn)
        run_licm(fn)
        run_dce(fn)

    _assert_equivalent(src, transform, overlap, n)


@settings(max_examples=15, deadline=None)
@given(
    stmts=st.lists(st.integers(0, len(_STMT_TEMPLATES) - 1), min_size=2, max_size=4),
    overlap=st.sampled_from([0, 1]),
)
def test_random_kernel_full_stack(stmts, overlap):
    """RLE then versioned SLP then cleanups, all composed."""
    src = _gen_source(stmts, 1.5, -0.5, stmts[:2])

    def transform(fn):
        run_simplify(fn)
        run_gvn(fn)
        run_rle(fn)
        vectorize_function(fn, VectorizeConfig(mode="fine"))
        run_simplify(fn)
        run_dce(fn)

    _assert_equivalent(src, transform, overlap, N)
